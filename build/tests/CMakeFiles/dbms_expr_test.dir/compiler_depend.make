# Empty compiler generated dependencies file for dbms_expr_test.
# This may be replaced when dependencies are built.
