file(REMOVE_RECURSE
  "CMakeFiles/dbms_expr_test.dir/dbms_expr_test.cc.o"
  "CMakeFiles/dbms_expr_test.dir/dbms_expr_test.cc.o.d"
  "dbms_expr_test"
  "dbms_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
