file(REMOVE_RECURSE
  "CMakeFiles/tatonnement_test.dir/tatonnement_test.cc.o"
  "CMakeFiles/tatonnement_test.dir/tatonnement_test.cc.o.d"
  "tatonnement_test"
  "tatonnement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tatonnement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
