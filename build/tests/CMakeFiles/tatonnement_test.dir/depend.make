# Empty dependencies file for tatonnement_test.
# This may be replaced when dependencies are built.
