file(REMOVE_RECURSE
  "CMakeFiles/dbms_parser_test.dir/dbms_parser_test.cc.o"
  "CMakeFiles/dbms_parser_test.dir/dbms_parser_test.cc.o.d"
  "dbms_parser_test"
  "dbms_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
