# Empty dependencies file for dbms_parser_test.
# This may be replaced when dependencies are built.
