file(REMOVE_RECURSE
  "CMakeFiles/dbms_differential_test.dir/dbms_differential_test.cc.o"
  "CMakeFiles/dbms_differential_test.dir/dbms_differential_test.cc.o.d"
  "dbms_differential_test"
  "dbms_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
