# Empty dependencies file for dbms_differential_test.
# This may be replaced when dependencies are built.
