file(REMOVE_RECURSE
  "CMakeFiles/dbms_value_test.dir/dbms_value_test.cc.o"
  "CMakeFiles/dbms_value_test.dir/dbms_value_test.cc.o.d"
  "dbms_value_test"
  "dbms_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
