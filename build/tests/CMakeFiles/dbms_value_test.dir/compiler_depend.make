# Empty compiler generated dependencies file for dbms_value_test.
# This may be replaced when dependencies are built.
