file(REMOVE_RECURSE
  "CMakeFiles/dbms_plan_test.dir/dbms_plan_test.cc.o"
  "CMakeFiles/dbms_plan_test.dir/dbms_plan_test.cc.o.d"
  "dbms_plan_test"
  "dbms_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
