# Empty dependencies file for dbms_plan_test.
# This may be replaced when dependencies are built.
