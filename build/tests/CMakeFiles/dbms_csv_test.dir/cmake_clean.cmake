file(REMOVE_RECURSE
  "CMakeFiles/dbms_csv_test.dir/dbms_csv_test.cc.o"
  "CMakeFiles/dbms_csv_test.dir/dbms_csv_test.cc.o.d"
  "dbms_csv_test"
  "dbms_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
