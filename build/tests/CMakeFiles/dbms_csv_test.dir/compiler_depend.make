# Empty compiler generated dependencies file for dbms_csv_test.
# This may be replaced when dependencies are built.
