file(REMOVE_RECURSE
  "CMakeFiles/qa_nt_agent_test.dir/qa_nt_agent_test.cc.o"
  "CMakeFiles/qa_nt_agent_test.dir/qa_nt_agent_test.cc.o.d"
  "qa_nt_agent_test"
  "qa_nt_agent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_nt_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
