# Empty dependencies file for qa_nt_agent_test.
# This may be replaced when dependencies are built.
