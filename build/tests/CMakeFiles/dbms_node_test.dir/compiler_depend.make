# Empty compiler generated dependencies file for dbms_node_test.
# This may be replaced when dependencies are built.
