file(REMOVE_RECURSE
  "CMakeFiles/dbms_node_test.dir/dbms_node_test.cc.o"
  "CMakeFiles/dbms_node_test.dir/dbms_node_test.cc.o.d"
  "dbms_node_test"
  "dbms_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
