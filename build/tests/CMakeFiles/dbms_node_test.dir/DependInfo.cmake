
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dbms_node_test.cc" "tests/CMakeFiles/dbms_node_test.dir/dbms_node_test.cc.o" "gcc" "tests/CMakeFiles/dbms_node_test.dir/dbms_node_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dbms/CMakeFiles/qa_dbms.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/allocation/CMakeFiles/qa_allocation.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/qa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/qa_market.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/qa_query.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/qa_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/qa_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
