file(REMOVE_RECURSE
  "CMakeFiles/dbms_ddl_test.dir/dbms_ddl_test.cc.o"
  "CMakeFiles/dbms_ddl_test.dir/dbms_ddl_test.cc.o.d"
  "dbms_ddl_test"
  "dbms_ddl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_ddl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
