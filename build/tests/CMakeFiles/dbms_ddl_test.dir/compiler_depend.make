# Empty compiler generated dependencies file for dbms_ddl_test.
# This may be replaced when dependencies are built.
