# Empty compiler generated dependencies file for market_vectors_test.
# This may be replaced when dependencies are built.
