file(REMOVE_RECURSE
  "CMakeFiles/market_vectors_test.dir/market_vectors_test.cc.o"
  "CMakeFiles/market_vectors_test.dir/market_vectors_test.cc.o.d"
  "market_vectors_test"
  "market_vectors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_vectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
