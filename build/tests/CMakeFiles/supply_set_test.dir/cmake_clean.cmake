file(REMOVE_RECURSE
  "CMakeFiles/supply_set_test.dir/supply_set_test.cc.o"
  "CMakeFiles/supply_set_test.dir/supply_set_test.cc.o.d"
  "supply_set_test"
  "supply_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supply_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
