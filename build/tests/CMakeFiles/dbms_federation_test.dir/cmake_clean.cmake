file(REMOVE_RECURSE
  "CMakeFiles/dbms_federation_test.dir/dbms_federation_test.cc.o"
  "CMakeFiles/dbms_federation_test.dir/dbms_federation_test.cc.o.d"
  "dbms_federation_test"
  "dbms_federation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_federation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
