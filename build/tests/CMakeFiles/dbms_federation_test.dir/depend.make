# Empty dependencies file for dbms_federation_test.
# This may be replaced when dependencies are built.
