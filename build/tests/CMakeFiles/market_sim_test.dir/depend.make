# Empty dependencies file for market_sim_test.
# This may be replaced when dependencies are built.
