file(REMOVE_RECURSE
  "CMakeFiles/market_sim_test.dir/market_sim_test.cc.o"
  "CMakeFiles/market_sim_test.dir/market_sim_test.cc.o.d"
  "market_sim_test"
  "market_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
