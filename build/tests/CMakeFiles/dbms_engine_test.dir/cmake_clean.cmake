file(REMOVE_RECURSE
  "CMakeFiles/dbms_engine_test.dir/dbms_engine_test.cc.o"
  "CMakeFiles/dbms_engine_test.dir/dbms_engine_test.cc.o.d"
  "dbms_engine_test"
  "dbms_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
