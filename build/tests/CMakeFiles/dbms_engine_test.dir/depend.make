# Empty dependencies file for dbms_engine_test.
# This may be replaced when dependencies are built.
