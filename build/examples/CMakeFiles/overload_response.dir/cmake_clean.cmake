file(REMOVE_RECURSE
  "CMakeFiles/overload_response.dir/overload_response.cpp.o"
  "CMakeFiles/overload_response.dir/overload_response.cpp.o.d"
  "overload_response"
  "overload_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overload_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
