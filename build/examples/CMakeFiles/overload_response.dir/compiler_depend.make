# Empty compiler generated dependencies file for overload_response.
# This may be replaced when dependencies are built.
