file(REMOVE_RECURSE
  "CMakeFiles/zipf_federation.dir/zipf_federation.cpp.o"
  "CMakeFiles/zipf_federation.dir/zipf_federation.cpp.o.d"
  "zipf_federation"
  "zipf_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipf_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
