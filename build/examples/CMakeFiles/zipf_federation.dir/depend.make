# Empty dependencies file for zipf_federation.
# This may be replaced when dependencies are built.
