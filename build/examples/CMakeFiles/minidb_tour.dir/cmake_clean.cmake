file(REMOVE_RECURSE
  "CMakeFiles/minidb_tour.dir/minidb_tour.cpp.o"
  "CMakeFiles/minidb_tour.dir/minidb_tour.cpp.o.d"
  "minidb_tour"
  "minidb_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
