# Empty compiler generated dependencies file for minidb_tour.
# This may be replaced when dependencies are built.
