# Empty compiler generated dependencies file for bench_fig5c_tracking.
# This may be replaced when dependencies are built.
