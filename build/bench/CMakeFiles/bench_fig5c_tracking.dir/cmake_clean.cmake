file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_tracking.dir/bench_fig5c_tracking.cc.o"
  "CMakeFiles/bench_fig5c_tracking.dir/bench_fig5c_tracking.cc.o.d"
  "bench_fig5c_tracking"
  "bench_fig5c_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
