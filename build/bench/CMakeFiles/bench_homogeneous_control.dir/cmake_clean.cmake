file(REMOVE_RECURSE
  "CMakeFiles/bench_homogeneous_control.dir/bench_homogeneous_control.cc.o"
  "CMakeFiles/bench_homogeneous_control.dir/bench_homogeneous_control.cc.o.d"
  "bench_homogeneous_control"
  "bench_homogeneous_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_homogeneous_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
