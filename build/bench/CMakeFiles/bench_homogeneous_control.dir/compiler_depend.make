# Empty compiler generated dependencies file for bench_homogeneous_control.
# This may be replaced when dependencies are built.
