file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_information.dir/bench_ablation_information.cc.o"
  "CMakeFiles/bench_ablation_information.dir/bench_ablation_information.cc.o.d"
  "bench_ablation_information"
  "bench_ablation_information.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_information.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
