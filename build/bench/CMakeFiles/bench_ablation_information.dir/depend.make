# Empty dependencies file for bench_ablation_information.
# This may be replaced when dependencies are built.
