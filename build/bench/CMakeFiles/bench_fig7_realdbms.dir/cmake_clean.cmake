file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_realdbms.dir/bench_fig7_realdbms.cc.o"
  "CMakeFiles/bench_fig7_realdbms.dir/bench_fig7_realdbms.cc.o.d"
  "bench_fig7_realdbms"
  "bench_fig7_realdbms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_realdbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
