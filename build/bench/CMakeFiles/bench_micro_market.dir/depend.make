# Empty dependencies file for bench_micro_market.
# This may be replaced when dependencies are built.
