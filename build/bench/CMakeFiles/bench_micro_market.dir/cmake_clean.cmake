file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_market.dir/bench_micro_market.cc.o"
  "CMakeFiles/bench_micro_market.dir/bench_micro_market.cc.o.d"
  "bench_micro_market"
  "bench_micro_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
