# Empty compiler generated dependencies file for bench_fig5b_freq_sweep.
# This may be replaced when dependencies are built.
