file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_motivating.dir/bench_fig1_motivating.cc.o"
  "CMakeFiles/bench_fig1_motivating.dir/bench_fig1_motivating.cc.o.d"
  "bench_fig1_motivating"
  "bench_fig1_motivating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
