# Empty compiler generated dependencies file for bench_ablation_equitable.
# This may be replaced when dependencies are built.
