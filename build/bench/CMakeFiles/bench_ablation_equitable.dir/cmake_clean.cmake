file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_equitable.dir/bench_ablation_equitable.cc.o"
  "CMakeFiles/bench_ablation_equitable.dir/bench_ablation_equitable.cc.o.d"
  "bench_ablation_equitable"
  "bench_ablation_equitable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_equitable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
