# Empty compiler generated dependencies file for bench_fig5a_load_sweep.
# This may be replaced when dependencies are built.
