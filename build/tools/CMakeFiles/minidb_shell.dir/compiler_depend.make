# Empty compiler generated dependencies file for minidb_shell.
# This may be replaced when dependencies are built.
