file(REMOVE_RECURSE
  "CMakeFiles/minidb_shell.dir/minidb_shell.cc.o"
  "CMakeFiles/minidb_shell.dir/minidb_shell.cc.o.d"
  "minidb_shell"
  "minidb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
