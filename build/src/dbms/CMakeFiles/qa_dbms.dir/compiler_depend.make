# Empty compiler generated dependencies file for qa_dbms.
# This may be replaced when dependencies are built.
