
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbms/buffer_pool.cc" "src/dbms/CMakeFiles/qa_dbms.dir/buffer_pool.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/buffer_pool.cc.o.d"
  "/root/repo/src/dbms/csv.cc" "src/dbms/CMakeFiles/qa_dbms.dir/csv.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/csv.cc.o.d"
  "/root/repo/src/dbms/database.cc" "src/dbms/CMakeFiles/qa_dbms.dir/database.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/database.cc.o.d"
  "/root/repo/src/dbms/dataset.cc" "src/dbms/CMakeFiles/qa_dbms.dir/dataset.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/dataset.cc.o.d"
  "/root/repo/src/dbms/dbms_federation.cc" "src/dbms/CMakeFiles/qa_dbms.dir/dbms_federation.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/dbms_federation.cc.o.d"
  "/root/repo/src/dbms/dbms_node.cc" "src/dbms/CMakeFiles/qa_dbms.dir/dbms_node.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/dbms_node.cc.o.d"
  "/root/repo/src/dbms/ddl.cc" "src/dbms/CMakeFiles/qa_dbms.dir/ddl.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/ddl.cc.o.d"
  "/root/repo/src/dbms/engine.cc" "src/dbms/CMakeFiles/qa_dbms.dir/engine.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/engine.cc.o.d"
  "/root/repo/src/dbms/expr.cc" "src/dbms/CMakeFiles/qa_dbms.dir/expr.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/expr.cc.o.d"
  "/root/repo/src/dbms/history.cc" "src/dbms/CMakeFiles/qa_dbms.dir/history.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/history.cc.o.d"
  "/root/repo/src/dbms/lexer.cc" "src/dbms/CMakeFiles/qa_dbms.dir/lexer.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/lexer.cc.o.d"
  "/root/repo/src/dbms/parser.cc" "src/dbms/CMakeFiles/qa_dbms.dir/parser.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/parser.cc.o.d"
  "/root/repo/src/dbms/plan.cc" "src/dbms/CMakeFiles/qa_dbms.dir/plan.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/plan.cc.o.d"
  "/root/repo/src/dbms/planner.cc" "src/dbms/CMakeFiles/qa_dbms.dir/planner.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/planner.cc.o.d"
  "/root/repo/src/dbms/table.cc" "src/dbms/CMakeFiles/qa_dbms.dir/table.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/table.cc.o.d"
  "/root/repo/src/dbms/value.cc" "src/dbms/CMakeFiles/qa_dbms.dir/value.cc.o" "gcc" "src/dbms/CMakeFiles/qa_dbms.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/qa_market.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/qa_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/qa_query.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/qa_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
