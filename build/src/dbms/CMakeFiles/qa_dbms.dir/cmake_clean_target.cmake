file(REMOVE_RECURSE
  "libqa_dbms.a"
)
