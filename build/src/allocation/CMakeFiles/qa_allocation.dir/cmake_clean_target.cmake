file(REMOVE_RECURSE
  "libqa_allocation.a"
)
