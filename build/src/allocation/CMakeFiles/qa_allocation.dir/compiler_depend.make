# Empty compiler generated dependencies file for qa_allocation.
# This may be replaced when dependencies are built.
