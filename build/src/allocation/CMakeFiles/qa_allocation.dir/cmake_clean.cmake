file(REMOVE_RECURSE
  "CMakeFiles/qa_allocation.dir/baselines.cc.o"
  "CMakeFiles/qa_allocation.dir/baselines.cc.o.d"
  "CMakeFiles/qa_allocation.dir/factory.cc.o"
  "CMakeFiles/qa_allocation.dir/factory.cc.o.d"
  "CMakeFiles/qa_allocation.dir/markov.cc.o"
  "CMakeFiles/qa_allocation.dir/markov.cc.o.d"
  "CMakeFiles/qa_allocation.dir/qa_nt_allocator.cc.o"
  "CMakeFiles/qa_allocation.dir/qa_nt_allocator.cc.o.d"
  "libqa_allocation.a"
  "libqa_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
