
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/allocation/baselines.cc" "src/allocation/CMakeFiles/qa_allocation.dir/baselines.cc.o" "gcc" "src/allocation/CMakeFiles/qa_allocation.dir/baselines.cc.o.d"
  "/root/repo/src/allocation/factory.cc" "src/allocation/CMakeFiles/qa_allocation.dir/factory.cc.o" "gcc" "src/allocation/CMakeFiles/qa_allocation.dir/factory.cc.o.d"
  "/root/repo/src/allocation/markov.cc" "src/allocation/CMakeFiles/qa_allocation.dir/markov.cc.o" "gcc" "src/allocation/CMakeFiles/qa_allocation.dir/markov.cc.o.d"
  "/root/repo/src/allocation/qa_nt_allocator.cc" "src/allocation/CMakeFiles/qa_allocation.dir/qa_nt_allocator.cc.o" "gcc" "src/allocation/CMakeFiles/qa_allocation.dir/qa_nt_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/qa_market.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/qa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/qa_query.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/qa_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
