file(REMOVE_RECURSE
  "CMakeFiles/qa_catalog.dir/catalog.cc.o"
  "CMakeFiles/qa_catalog.dir/catalog.cc.o.d"
  "libqa_catalog.a"
  "libqa_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
