# Empty dependencies file for qa_catalog.
# This may be replaced when dependencies are built.
