file(REMOVE_RECURSE
  "libqa_catalog.a"
)
