
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/sinusoid.cc" "src/workload/CMakeFiles/qa_workload.dir/sinusoid.cc.o" "gcc" "src/workload/CMakeFiles/qa_workload.dir/sinusoid.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/qa_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/qa_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/uniform.cc" "src/workload/CMakeFiles/qa_workload.dir/uniform.cc.o" "gcc" "src/workload/CMakeFiles/qa_workload.dir/uniform.cc.o.d"
  "/root/repo/src/workload/zipf_workload.cc" "src/workload/CMakeFiles/qa_workload.dir/zipf_workload.cc.o" "gcc" "src/workload/CMakeFiles/qa_workload.dir/zipf_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/qa_query.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/qa_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
