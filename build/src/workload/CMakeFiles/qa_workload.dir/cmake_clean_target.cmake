file(REMOVE_RECURSE
  "libqa_workload.a"
)
