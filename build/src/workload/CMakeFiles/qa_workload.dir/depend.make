# Empty dependencies file for qa_workload.
# This may be replaced when dependencies are built.
