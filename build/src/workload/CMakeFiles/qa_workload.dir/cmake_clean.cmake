file(REMOVE_RECURSE
  "CMakeFiles/qa_workload.dir/sinusoid.cc.o"
  "CMakeFiles/qa_workload.dir/sinusoid.cc.o.d"
  "CMakeFiles/qa_workload.dir/trace.cc.o"
  "CMakeFiles/qa_workload.dir/trace.cc.o.d"
  "CMakeFiles/qa_workload.dir/uniform.cc.o"
  "CMakeFiles/qa_workload.dir/uniform.cc.o.d"
  "CMakeFiles/qa_workload.dir/zipf_workload.cc.o"
  "CMakeFiles/qa_workload.dir/zipf_workload.cc.o.d"
  "libqa_workload.a"
  "libqa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
