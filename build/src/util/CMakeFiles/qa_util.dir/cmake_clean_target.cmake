file(REMOVE_RECURSE
  "libqa_util.a"
)
