file(REMOVE_RECURSE
  "CMakeFiles/qa_util.dir/logging.cc.o"
  "CMakeFiles/qa_util.dir/logging.cc.o.d"
  "CMakeFiles/qa_util.dir/mathutil.cc.o"
  "CMakeFiles/qa_util.dir/mathutil.cc.o.d"
  "CMakeFiles/qa_util.dir/rng.cc.o"
  "CMakeFiles/qa_util.dir/rng.cc.o.d"
  "CMakeFiles/qa_util.dir/status.cc.o"
  "CMakeFiles/qa_util.dir/status.cc.o.d"
  "CMakeFiles/qa_util.dir/table_writer.cc.o"
  "CMakeFiles/qa_util.dir/table_writer.cc.o.d"
  "CMakeFiles/qa_util.dir/vtime.cc.o"
  "CMakeFiles/qa_util.dir/vtime.cc.o.d"
  "libqa_util.a"
  "libqa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
