file(REMOVE_RECURSE
  "CMakeFiles/qa_query.dir/cost_model.cc.o"
  "CMakeFiles/qa_query.dir/cost_model.cc.o.d"
  "CMakeFiles/qa_query.dir/node_profile.cc.o"
  "CMakeFiles/qa_query.dir/node_profile.cc.o.d"
  "CMakeFiles/qa_query.dir/template_gen.cc.o"
  "CMakeFiles/qa_query.dir/template_gen.cc.o.d"
  "libqa_query.a"
  "libqa_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
