# Empty compiler generated dependencies file for qa_query.
# This may be replaced when dependencies are built.
