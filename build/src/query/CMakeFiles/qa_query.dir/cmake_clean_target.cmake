file(REMOVE_RECURSE
  "libqa_query.a"
)
