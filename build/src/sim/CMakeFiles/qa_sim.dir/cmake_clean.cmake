file(REMOVE_RECURSE
  "CMakeFiles/qa_sim.dir/event_queue.cc.o"
  "CMakeFiles/qa_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/qa_sim.dir/federation.cc.o"
  "CMakeFiles/qa_sim.dir/federation.cc.o.d"
  "CMakeFiles/qa_sim.dir/node.cc.o"
  "CMakeFiles/qa_sim.dir/node.cc.o.d"
  "CMakeFiles/qa_sim.dir/scenario.cc.o"
  "CMakeFiles/qa_sim.dir/scenario.cc.o.d"
  "libqa_sim.a"
  "libqa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
