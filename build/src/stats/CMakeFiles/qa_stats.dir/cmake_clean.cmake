file(REMOVE_RECURSE
  "CMakeFiles/qa_stats.dir/series.cc.o"
  "CMakeFiles/qa_stats.dir/series.cc.o.d"
  "CMakeFiles/qa_stats.dir/summary.cc.o"
  "CMakeFiles/qa_stats.dir/summary.cc.o.d"
  "libqa_stats.a"
  "libqa_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
