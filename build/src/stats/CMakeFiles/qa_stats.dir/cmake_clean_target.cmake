file(REMOVE_RECURSE
  "libqa_stats.a"
)
