# Empty compiler generated dependencies file for qa_stats.
# This may be replaced when dependencies are built.
