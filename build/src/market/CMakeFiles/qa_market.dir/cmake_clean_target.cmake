file(REMOVE_RECURSE
  "libqa_market.a"
)
