file(REMOVE_RECURSE
  "CMakeFiles/qa_market.dir/market_sim.cc.o"
  "CMakeFiles/qa_market.dir/market_sim.cc.o.d"
  "CMakeFiles/qa_market.dir/pareto.cc.o"
  "CMakeFiles/qa_market.dir/pareto.cc.o.d"
  "CMakeFiles/qa_market.dir/qa_nt.cc.o"
  "CMakeFiles/qa_market.dir/qa_nt.cc.o.d"
  "CMakeFiles/qa_market.dir/supply_set.cc.o"
  "CMakeFiles/qa_market.dir/supply_set.cc.o.d"
  "CMakeFiles/qa_market.dir/tatonnement.cc.o"
  "CMakeFiles/qa_market.dir/tatonnement.cc.o.d"
  "CMakeFiles/qa_market.dir/vectors.cc.o"
  "CMakeFiles/qa_market.dir/vectors.cc.o.d"
  "libqa_market.a"
  "libqa_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
