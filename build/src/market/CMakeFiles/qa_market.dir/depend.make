# Empty dependencies file for qa_market.
# This may be replaced when dependencies are built.
