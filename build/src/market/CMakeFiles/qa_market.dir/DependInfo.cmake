
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/market_sim.cc" "src/market/CMakeFiles/qa_market.dir/market_sim.cc.o" "gcc" "src/market/CMakeFiles/qa_market.dir/market_sim.cc.o.d"
  "/root/repo/src/market/pareto.cc" "src/market/CMakeFiles/qa_market.dir/pareto.cc.o" "gcc" "src/market/CMakeFiles/qa_market.dir/pareto.cc.o.d"
  "/root/repo/src/market/qa_nt.cc" "src/market/CMakeFiles/qa_market.dir/qa_nt.cc.o" "gcc" "src/market/CMakeFiles/qa_market.dir/qa_nt.cc.o.d"
  "/root/repo/src/market/supply_set.cc" "src/market/CMakeFiles/qa_market.dir/supply_set.cc.o" "gcc" "src/market/CMakeFiles/qa_market.dir/supply_set.cc.o.d"
  "/root/repo/src/market/tatonnement.cc" "src/market/CMakeFiles/qa_market.dir/tatonnement.cc.o" "gcc" "src/market/CMakeFiles/qa_market.dir/tatonnement.cc.o.d"
  "/root/repo/src/market/vectors.cc" "src/market/CMakeFiles/qa_market.dir/vectors.cc.o" "gcc" "src/market/CMakeFiles/qa_market.dir/vectors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/qa_query.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/qa_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
