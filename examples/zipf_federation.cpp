// The full Table 3 federation on a heterogeneous Zipf workload.
//
// Builds the paper's simulation scenario end to end — synthetic catalog
// (1000 relations, ~5 mirrors each), 100 heterogeneous nodes, 100
// select-join-project-sort query templates calibrated to a 2 s best-case
// execution time — generates a Zipf workload and runs QA-NT over it,
// reporting throughput, response times, and market statistics.

#include <iostream>

#include "allocation/factory.h"
#include "allocation/qa_nt_allocator.h"
#include "sim/federation.h"
#include "sim/scenario.h"
#include "util/table_writer.h"
#include "workload/zipf_workload.h"

using namespace qa;
using util::kMillisecond;

int main() {
  const uint64_t seed = 2026;
  util::Rng rng(seed);

  // Scaled-down Table 3 so the example finishes in seconds; flip these to
  // the defaults for the full 100-node/1000-relation federation.
  sim::Table3Config table3;
  table3.catalog.num_relations = 300;
  table3.catalog.num_nodes = 40;
  table3.profiles.num_nodes = 40;
  table3.templates.num_classes = 40;
  sim::Scenario scenario = sim::BuildTable3Scenario(table3, rng);

  std::cout << "Federation: " << scenario.cost_model->num_nodes()
            << " nodes, " << scenario.catalog->num_relations()
            << " relations, " << scenario.cost_model->num_classes()
            << " query classes\n";

  workload::ZipfWorkloadConfig zipf;
  zipf.num_queries = 3000;
  zipf.num_classes = scenario.cost_model->num_classes();
  zipf.mean_interarrival = 4000 * kMillisecond;  // moderate overload
  zipf.num_origin_nodes = scenario.cost_model->num_nodes();
  util::Rng wl_rng(seed + 1);
  workload::Trace trace = workload::GenerateZipfWorkload(zipf, wl_rng);
  std::cout << "Workload: " << trace.size()
            << " queries, Zipf(a=1) inter-arrivals, last arrival at "
            << util::ToSeconds(trace.LastArrivalTime()) << " s\n\n";

  allocation::AllocatorParams params;
  params.cost_model = scenario.cost_model.get();
  params.period = 500 * kMillisecond;
  params.seed = seed;
  auto alloc = allocation::CreateAllocator("QA-NT", params);

  sim::FederationConfig config;
  config.period = params.period;
  config.max_retries = 5000;
  sim::Federation fed(scenario.cost_model.get(), alloc.get(), config);
  sim::SimMetrics metrics = fed.Run(trace);

  std::cout << "Response time: " << metrics.response_time_ms.ToString()
            << " ms\n"
            << "Throughput:    " << metrics.ThroughputQps()
            << " queries/s over " << util::ToSeconds(metrics.end_time)
            << " s\n"
            << "Retries:       " << metrics.retries << ", dropped "
            << metrics.dropped << "\n"
            << "Messages:      " << metrics.messages << " ("
            << static_cast<double>(metrics.messages) /
                   static_cast<double>(trace.size())
            << " per query)\n\n";

  // Market introspection: the five priciest (class, node) beliefs.
  auto* qa_nt = static_cast<allocation::QaNtAllocator*>(alloc.get());
  util::TableWriter prices({"Node", "Class", "Price", "Unit cost (ms)"});
  struct Entry {
    int node;
    int k;
    double price;
    double cost_ms;
  };
  std::vector<Entry> entries;
  for (int i = 0; i < qa_nt->num_nodes(); ++i) {
    const market::QaNtAgent& agent = qa_nt->agent(i);
    for (int k = 0; k < scenario.cost_model->num_classes(); ++k) {
      if (!agent.CanEvaluate(k)) continue;
      entries.push_back({i, k, agent.prices()[k],
                         util::ToMillis(agent.unit_cost(k))});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.price > b.price; });
  for (size_t i = 0; i < entries.size() && i < 5; ++i) {
    prices.AddRow(entries[i].node, entries[i].k, entries[i].price,
                  entries[i].cost_ms);
  }
  std::cout << "Highest prices after the run (scarcity signals):\n";
  prices.Print(std::cout);
  return 0;
}
