// Overload response: what happens when demand spikes past capacity.
//
// A 50-node heterogeneous federation faces a sinusoid workload whose peak
// reaches 150% of system capacity. The example runs QA-NT and the Greedy
// baseline on the identical trace and shows (a) response-time statistics,
// (b) how QA-NT's virtual prices act as a decentralized overload detector
// (the §5.1 threshold idea): prices rise exactly while the system is
// overloaded.

#include <algorithm>
#include <iostream>

#include "allocation/factory.h"
#include "allocation/qa_nt_allocator.h"
#include "sim/federation.h"
#include "sim/scenario.h"
#include "util/table_writer.h"
#include "workload/sinusoid.h"

using namespace qa;
using util::kMillisecond;
using util::kSecond;

int main() {
  const uint64_t seed = 7;
  util::Rng rng(seed);

  sim::TwoClassConfig scenario;
  scenario.num_nodes = 50;
  auto costs = sim::BuildTwoClassCostModel(scenario, rng);

  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*costs, {2.0, 1.0}, period);
  std::cout << "Estimated capacity: " << capacity << " queries/s\n";

  workload::SinusoidConfig wave;
  wave.frequency_hz = 0.05;
  wave.duration = 40 * kSecond;
  wave.num_origin_nodes = scenario.num_nodes;
  wave.q1_peak_rate = 1.5 * capacity;  // peak 50% beyond capacity
  util::Rng wl_rng(seed + 1);
  workload::Trace trace = workload::GenerateSinusoidWorkload(wave, wl_rng);
  std::cout << "Workload: " << trace.size()
            << " queries, peak 150% of capacity\n\n";

  util::TableWriter table({"Mechanism", "Mean (ms)", "p95 (ms)",
                           "Completed", "Retries"});
  for (const std::string& mech : {std::string("QA-NT"),
                                  std::string("Greedy")}) {
    allocation::AllocatorParams params;
    params.cost_model = costs.get();
    params.period = period;
    params.seed = seed;
    auto alloc = allocation::CreateAllocator(mech, params);

    sim::FederationConfig config;
    config.period = period;
    config.max_retries = 5000;
    sim::Federation fed(costs.get(), alloc.get(), config);
    sim::SimMetrics m = fed.Run(trace);
    table.AddRow(mech, m.MeanResponseMs(),
                 m.response_time_ms.Percentile(95), m.completed,
                 m.retries);

    if (mech == "QA-NT") {
      // Peek at the market's overload signal: the maximum price across
      // agents after the run. During the overload the declines drove
      // prices far above the initial 1.0 — a node can detect "the system
      // is overloaded" purely from its own price vector.
      auto* qa_nt = static_cast<allocation::QaNtAllocator*>(alloc.get());
      double max_price = 0.0;
      for (int i = 0; i < qa_nt->num_nodes(); ++i) {
        for (int k = 0; k < 2; ++k) {
          max_price = std::max(max_price, qa_nt->agent(i).prices()[k]);
        }
      }
      std::cout << "QA-NT max price after run: " << max_price
                << " (initial 1.0) -> prices are a native overload "
                   "detector.\n";
    }
  }
  table.Print(std::cout);
  std::cout << "\nQA-NT keeps node queues short by admission control and "
               "resubmission, spending the overload in client-side "
               "retries; Greedy pushes everything onto the (estimated) "
               "fastest nodes and rides out long queues.\n";
  return 0;
}
