// Quickstart: the query market in ~60 lines.
//
// Builds the paper's Fig. 1 federation (two nodes, two query classes),
// runs the QA-NT market for a few periods, and shows how private prices
// steer each node to the allocation that maximizes served queries.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "market/market_sim.h"
#include "query/cost_model.h"
#include "util/vtime.h"

using qa::market::MarketSimConfig;
using qa::market::MarketSimulator;
using qa::market::QuantityVector;
using qa::util::kMillisecond;

int main() {
  // 1. Describe who can run what, and how fast: node N1 evaluates q1 in
  //    400 ms and q2 in 100 ms; N2 in 450 ms and 500 ms.
  qa::query::MatrixCostModel costs(/*num_classes=*/2, /*num_nodes=*/2);
  costs.SetCost(/*k=*/0, /*node=*/0, 400 * kMillisecond);
  costs.SetCost(/*k=*/1, /*node=*/0, 100 * kMillisecond);
  costs.SetCost(/*k=*/0, /*node=*/1, 450 * kMillisecond);
  costs.SetCost(/*k=*/1, /*node=*/1, 500 * kMillisecond);

  // 2. Start a market: every node gets a QA-NT agent with private prices.
  MarketSimConfig config;
  config.period = 1000 * kMillisecond;  // the paper's time period T
  MarketSimulator market(&costs, config);

  // 3. Each period, node 0's applications pose one q1 and six q2, node 1's
  //    pose one q1 (the Fig. 1 workload). Agents offer/decline per their
  //    prices; unserved queries are resubmitted next period.
  std::vector<QuantityVector> demand = {QuantityVector({1, 6}),
                                        QuantityVector({1, 0})};
  for (int period = 0; period < 8; ++period) {
    MarketSimulator::PeriodResult result = market.RunPeriod(demand);
    std::cout << "period " << period
              << "  consumed=" << result.aggregate_consumption.ToString()
              << "  unserved=" << result.unserved.ToString()
              << "  N1 prices=" << market.agent(0).prices().ToString()
              << "  N1 supply=" << market.agent(0).planned_supply().ToString()
              << "\n";
  }

  // 4. The invisible hand at work: N1 specializes in the cheap q2 queries
  //    (its best price-per-cost density), leaving q1 to N2 — the paper's
  //    QA allocation, found with no coordinator and no load disclosure.
  std::cout << "\nN1 served " << market.agent(0).stats().offers_accepted
            << " queries, N2 served "
            << market.agent(1).stats().offers_accepted << ".\n";
  return 0;
}
