// A tour of minidb, the in-memory relational engine behind the §5.2
// reproduction: tables, views, the statement builder, EXPLAIN PLAN, the
// buffer pool, and the plan-history estimator that fixes EXPLAIN's
// buffer-blindness (exactly the effect the paper hit with the commercial
// DBMS).

#include <iostream>

#include "dbms/dbms_node.h"
#include "dbms/engine.h"
#include "dbms/parser.h"
#include "util/rng.h"

using namespace qa;
using namespace qa::dbms;

int main() {
  // ---- Build a node-local database.
  Database db;
  Table customers("customers", Schema({{"id", ValueType::kInt},
                                       {"region", ValueType::kString},
                                       {"tier", ValueType::kInt}}));
  Table orders("orders", Schema({{"id", ValueType::kInt},
                                 {"customer_id", ValueType::kInt},
                                 {"amount", ValueType::kDouble}}));
  util::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    customers.AppendUnchecked(
        {Value(int64_t{i}),
         Value(std::string(i % 2 == 0 ? "emea" : "apac")),
         Value(rng.UniformInt(1, 3))});
  }
  for (int i = 0; i < 5000; ++i) {
    orders.AppendUnchecked({Value(int64_t{i}), Value(rng.UniformInt(0, 499)),
                            Value(rng.UniformReal(1.0, 500.0))});
  }
  (void)db.CreateTable(std::move(customers));
  (void)db.CreateTable(std::move(orders));

  // A select-project view over orders, like the 80 views of §5.2.
  ViewDef big_orders;
  big_orders.name = "big_orders";
  big_orders.base_table = "orders";
  big_orders.columns = {"id", "customer_id", "amount"};
  big_orders.filters.push_back({"amount", /*>=*/5, Value(250.0)});
  (void)db.CreateView(big_orders);

  // ---- A select-join-project-group-sort statement via the builder.
  SelectStatement stmt = StatementBuilder()
                             .From("big_orders")
                             .From("customers")
                             .Join(0, "customer_id", 1, "id")
                             .Where(1, "tier", /*=*/0, Value(int64_t{2}))
                             .GroupBy(1, "region")
                             .Agg(Aggregate::Fn::kSum, 0, "amount")
                             .Agg(Aggregate::Fn::kCount, 0, "id")
                             .OrderBy(1, "region")
                             .Build();

  // ---- EXPLAIN PLAN.
  Planner planner(&db);
  auto explained = planner.Explain(stmt);
  std::cout << "EXPLAIN PLAN:\n" << explained->text
            << "signature: " << explained->signature << "\n"
            << "estimated I/O bytes: " << explained->estimate.io_bytes
            << ", CPU tuple units: " << explained->estimate.cpu_tuples
            << "\n\n";

  // The same statement can come from SQL text (minidb ships a parser):
  auto parsed = ParseSelect(
      "SELECT customers.region, SUM(big_orders.amount), COUNT(big_orders.id) "
      "FROM big_orders JOIN customers ON big_orders.customer_id = "
      "customers.id WHERE customers.tier = 2 "
      "GROUP BY customers.region ORDER BY customers.region");
  std::cout << "SQL text parses to the same plan: "
            << (parsed.ok() ? "yes" : parsed.status().ToString()) << "\n\n";

  // ---- Execute.
  auto result = ExecuteStatement(db, stmt);
  std::cout << "Result (" << result->table.num_rows() << " rows) "
            << result->table.schema().ToString() << ":\n";
  for (const Row& row : result->table.rows()) {
    for (const Value& v : row) std::cout << v.ToString() << "  ";
    std::cout << "\n";
  }

  // ---- The §5.2 estimation problem, in miniature: wrap the database in a
  // DbmsNode (hardware model + buffer pool + history) and watch the
  // buffer-blind estimate get corrected by execution history.
  DbmsNodeConfig hw;
  hw.hw.cpu_ghz = 2.0;
  hw.hw.io_mbps = 40.0;
  hw.data_scale = 2000.0;  // emulate a much larger on-disk dataset
  DbmsNode node(0, std::move(db), hw);

  auto cold = node.EstimateQuery(stmt);
  std::cout << "\nEXPLAIN-based estimate (cold, buffer-blind): "
            << util::ToMillis(cold->est_exec) << " ms\n";
  auto run1 = node.ExecuteQuery(stmt);
  std::cout << "1st execution (cold buffers):               "
            << util::ToMillis(run1->duration) << " ms\n";
  auto run2 = node.ExecuteQuery(stmt);
  std::cout << "2nd execution (tables now resident):        "
            << util::ToMillis(run2->duration) << " ms\n";
  auto warm = node.EstimateQuery(stmt);
  std::cout << "history-corrected estimate:                 "
            << util::ToMillis(warm->est_exec) << " ms"
            << (warm->from_history ? " (from history)" : "") << "\n"
            << "\nThe optimizer's estimate ignores the buffer pool; the "
               "plan-keyed history converges on observed reality — the "
               "paper's workaround, reproduced.\n";
  return 0;
}
