// Reproduces Fig. 3: an example two-class sinusoid workload — queries
// entering the system per half second, for Q1 and Q2 (900-degree phase
// offset, Q1 peak rate twice Q2's).

#include <iostream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace qa;
  using util::kMillisecond;
  using util::kSecond;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Fig. 3", "Example 0.05 Hz sinusoid workload", seed);

  workload::SinusoidConfig config;
  config.frequency_hz = 0.05;
  config.q1_peak_rate = 40.0;
  config.duration = (quick ? 20 : 40) * kSecond;
  config.num_origin_nodes = 100;
  util::Rng rng(seed);
  workload::Trace trace = workload::GenerateSinusoidWorkload(config, rng);

  std::vector<int> q1 = trace.ArrivalCounts(0, 500 * kMillisecond,
                                            config.duration);
  std::vector<int> q2 = trace.ArrivalCounts(1, 500 * kMillisecond,
                                            config.duration);

  util::TableWriter table(
      {"t (ms)", "Q1 arrivals per 0.5s", "Q2 arrivals per 0.5s"});
  for (size_t b = 0; b < q1.size(); ++b) {
    table.AddRow(static_cast<int64_t>(b) * 500, q1[b], q2[b]);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: Q1 and Q2 sinusoids, Q1 peak twice Q2's, "
               "900-degree (=180-degree effective) phase offset so the "
               "peaks alternate.\n";
  return 0;
}
