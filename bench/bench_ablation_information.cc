// Ablation (DESIGN.md §7): how much is load *information* worth?
// Sweeps the queue-blind greedy's randomization (its only defense against
// pile-ups, since it sees execution-time estimates but no queues), and
// compares against QA-NT (no load disclosure at all — admission control
// emerges from private prices) and the fully informed Greedy baseline
// (fresh backlog + estimate), plus stale two-probes at several staleness
// levels.

#include <iostream>

#include "allocation/baselines.h"
#include "bench/bench_common.h"

namespace qa {
namespace {

using util::kMillisecond;
using util::kSecond;

}  // namespace
}  // namespace qa

int main(int argc, char** argv) {
  using namespace qa;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Ablation: load information",
                "Blind-greedy randomization sweep vs QA-NT vs informed "
                "Greedy vs stale two-probes (95% peak sinusoid)",
                seed);

  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = quick ? 30 : 100;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

  workload::SinusoidConfig workload;
  workload.frequency_hz = 0.05;
  workload.duration = (quick ? 40 : 80) * kSecond;
  workload.num_origin_nodes = scenario.num_nodes;
  workload.q1_peak_rate = 0.95 * capacity;
  util::Rng wl_rng(seed + 1);
  workload::Trace trace =
      workload::GenerateSinusoidWorkload(workload, wl_rng);

  // The whole ablation grid, one RunSpec per row; custom allocators are
  // built on the worker via make_allocator. Row labels are paired with the
  // specs by index.
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<exec::RunSpec> specs;
  auto add = [&](const std::string& row, const std::string& info,
                 std::function<std::unique_ptr<allocation::Allocator>()>
                     make) {
    exec::RunSpec spec = bench::MakeSpec(*model, "", trace, period, seed);
    spec.make_allocator = std::move(make);
    specs.push_back(std::move(spec));
    labels.emplace_back(row, info);
  };

  for (double r : {0.0, 0.25, 0.5, 1.0, 1.5}) {
    add("GreedyBlind r=" + std::to_string(r).substr(0, 4),
        "estimates only", [seed, r]() {
          return std::make_unique<allocation::BlindGreedyAllocator>(seed,
                                                                    r);
        });
  }
  for (int stale_s : {0, 2, 5, 15}) {
    add("TwoProbes stale=" + std::to_string(stale_s) + "s",
        "2 sampled loads", [seed, stale_s]() {
          return std::make_unique<allocation::TwoRandomProbesAllocator>(
              seed, stale_s * 1000 * kMillisecond);
        });
  }
  add("QA-NT", "none (private prices)", [&model, period, seed]() {
    allocation::AllocatorParams params;
    params.cost_model = model.get();
    params.period = period;
    params.seed = seed;
    return allocation::CreateAllocator("QA-NT", params);
  });
  add("Greedy (informed)", "all fresh backlogs", [seed]() {
    return std::make_unique<allocation::GreedyAllocator>(seed);
  });

  bench::Telemetry telemetry(args, "Ablation: load information");
  telemetry.ReportField("capacity_qps", capacity);
  // Trace the QA-NT row (single-writer recorder, one traced run).
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i].first == "QA-NT") telemetry.Trace(specs[i]);
  }
  std::vector<exec::RunResult> cells = args.MakeRunner().Run(specs);

  util::TableWriter table({"Mechanism", "Load info", "Mean (ms)",
                           "p95 (ms)"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const sim::SimMetrics& m = cells[i].metrics;
    telemetry.Report(labels[i].first, m);
    table.AddRow(labels[i].first, labels[i].second, m.MeanResponseMs(),
                 m.response_time_ms.Percentile(95));
  }
  table.Print(std::cout);
  std::cout << "\nReading: QA-NT approaches the fully informed Greedy "
               "without any node disclosing its load (and beats it beyond "
               "capacity); the queue-blind greedy needs heavy "
               "randomization to avoid pile-ups and still trails; stale "
               "probes degrade gracefully with staleness.\n";
  return 0;
}
