// Ablation (DESIGN.md §7): how much is load *information* worth?
// Sweeps the queue-blind greedy's randomization (its only defense against
// pile-ups, since it sees execution-time estimates but no queues), and
// compares against QA-NT (no load disclosure at all — admission control
// emerges from private prices) and the fully informed Greedy baseline
// (fresh backlog + estimate), plus stale two-probes at several staleness
// levels.

#include <iostream>

#include "allocation/baselines.h"
#include "bench/bench_common.h"

namespace qa {
namespace {

using util::kMillisecond;
using util::kSecond;

sim::SimMetrics RunWith(allocation::Allocator* alloc,
                        const query::CostModel& model,
                        const workload::Trace& trace,
                        util::VDuration period) {
  sim::FederationConfig config;
  config.period = period;
  config.max_retries = 5000;
  sim::Federation fed(&model, alloc, config);
  return fed.Run(trace);
}

}  // namespace
}  // namespace qa

int main(int argc, char** argv) {
  using namespace qa;
  const uint64_t seed = 42;
  bool quick = bench::QuickMode(argc, argv);
  bench::Banner("Ablation: load information",
                "Blind-greedy randomization sweep vs QA-NT vs informed "
                "Greedy vs stale two-probes (95% peak sinusoid)",
                seed);

  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = quick ? 30 : 100;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

  workload::SinusoidConfig workload;
  workload.frequency_hz = 0.05;
  workload.duration = (quick ? 40 : 80) * kSecond;
  workload.num_origin_nodes = scenario.num_nodes;
  workload.q1_peak_rate = 0.95 * capacity;
  util::Rng wl_rng(seed + 1);
  workload::Trace trace =
      workload::GenerateSinusoidWorkload(workload, wl_rng);

  util::TableWriter table({"Mechanism", "Load info", "Mean (ms)",
                           "p95 (ms)"});

  for (double r : {0.0, 0.25, 0.5, 1.0, 1.5}) {
    allocation::BlindGreedyAllocator greedy(seed, r);
    sim::SimMetrics m = RunWith(&greedy, *model, trace, period);
    table.AddRow("GreedyBlind r=" + std::to_string(r).substr(0, 4),
                 "estimates only", m.MeanResponseMs(),
                 m.response_time_ms.Percentile(95));
  }

  for (int stale_s : {0, 2, 5, 15}) {
    allocation::TwoRandomProbesAllocator probes(
        seed, stale_s * 1000 * kMillisecond);
    sim::SimMetrics m = RunWith(&probes, *model, trace, period);
    table.AddRow("TwoProbes stale=" + std::to_string(stale_s) + "s",
                 "2 sampled loads", m.MeanResponseMs(),
                 m.response_time_ms.Percentile(95));
  }

  {
    allocation::AllocatorParams params;
    params.cost_model = model.get();
    params.period = period;
    params.seed = seed;
    auto qa_nt = allocation::CreateAllocator("QA-NT", params);
    sim::SimMetrics m = RunWith(qa_nt.get(), *model, trace, period);
    table.AddRow("QA-NT", "none (private prices)", m.MeanResponseMs(),
                 m.response_time_ms.Percentile(95));
  }
  {
    allocation::GreedyAllocator greedy(seed);
    sim::SimMetrics m = RunWith(&greedy, *model, trace, period);
    table.AddRow("Greedy (informed)", "all fresh backlogs",
                 m.MeanResponseMs(), m.response_time_ms.Percentile(95));
  }
  table.Print(std::cout);
  std::cout << "\nReading: QA-NT approaches the fully informed Greedy "
               "without any node disclosing its load (and beats it beyond "
               "capacity); the queue-blind greedy needs heavy "
               "randomization to avoid pile-ups and still trails; stale "
               "probes degrade gracefully with staleness.\n";
  return 0;
}
