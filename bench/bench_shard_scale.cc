// Shard-scale sweep: wall-clock throughput of the sharded simulator core
// as the 10,000-node Fig. 4 operating point is split over 1, 2, 4 and 8
// shards on one worker pool.
//
// The sharded core's contract is byte-identical results at any shard and
// thread count (see DESIGN.md "Sharded core" and the property-fuzz suite),
// so this sweep measures pure execution-layout speedup: the same events,
// the same trace, the same metrics — only the events/sec figure may move.
// The bench double-checks that contract on every run: any drift in
// completed/messages/events_dispatched across shard counts exits nonzero,
// which is the fixed-seed CI smoke (`--quick --shards=4`).
//
// Rows land in BENCH_shard.json: events_per_sec, msgs_per_query,
// speedup_vs_1shard, and measured per-phase wall time (lane drain, merge,
// mediator dispatch, market tick, allocate) plus the lane-imbalance factor
// per shard count — so the scaling curve is phase-attributed, not just a
// single throughput number. On a single-core runner the speedup column
// hovers around 1.0 (the fork-join drains serialize); the interesting
// gates there are that shards=1 stays within noise of the unsharded
// BENCH_scale.json baseline (the sharded core's bookkeeping is free when
// unused) and that drain/merge overhead stays a small share of the wall
// time.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/monotonic_clock.h"
#include "exec/thread_pool.h"

namespace {


struct Cell {
  int shards = 1;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  qa::sim::SimMetrics metrics;
  /// Per-phase wall time (ms) from the run's metrics collector.
  double drain_ms = 0.0;
  double merge_ms = 0.0;
  double dispatch_ms = 0.0;
  double tick_ms = 0.0;
  double allocate_ms = 0.0;
  /// max/mean of per-lane drain time: 1.0 = perfectly balanced shards.
  double lane_imbalance = 0.0;
};

/// Total milliseconds spent in one phase histogram.
double PhaseMs(const qa::obs::metrics::Collector& collector, int metric) {
  return static_cast<double>(collector.registry().histogram(metric).sum) *
         1e-6;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qa;
  using util::kMillisecond;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  if (args.report_path.empty()) args.report_path = "BENCH_shard.json";
  const uint64_t seed = args.seed;
  const int threads = exec::ThreadPool::ResolveThreadCount(args.threads);
  bench::Banner("Shard",
                "Sharded simulator core, Fig. 4 operating point at scale, "
                "shards 1 -> 8",
                seed);

  // One operating point, the scale bench's largest: 10,000 nodes under
  // QA-NT with stratified-sample(16) solicitation (broadcast at 10k nodes
  // measures message flooding, not core throughput). Quick mode shrinks to
  // 1,000 nodes / 4k queries for the CI smoke.
  const int num_nodes = args.quick ? 1000 : 10000;
  const double target_queries = args.quick ? 4000.0 : 12000.0;

  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = num_nodes;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);

  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

  workload::SinusoidConfig workload;
  workload.q1_peak_rate = 0.95 * capacity;
  double mean_rate = 1.125 * workload.q1_peak_rate;
  double duration_s = mean_rate > 0.0 ? target_queries / mean_rate : 1.0;
  workload.duration = util::FromSeconds(duration_s);
  workload.frequency_hz = 1.0 / duration_s;
  workload.num_origin_nodes = num_nodes;
  util::Rng wl_rng(seed + 1);
  workload::Trace trace =
      workload::GenerateSinusoidWorkload(workload, wl_rng);
  std::cout << "N=" << num_nodes << ": capacity " << capacity << " q/s, "
            << trace.size() << " queries over " << duration_s << " s, "
            << threads << " worker thread(s)\n\n";

  allocation::SolicitationConfig solicitation;
  solicitation.policy = allocation::SolicitationPolicy::kStratifiedSample;
  solicitation.fanout = 16;

  std::vector<int> shard_counts = args.shards > 0
                                      ? std::vector<int>{args.shards}
                                      : std::vector<int>{1, 2, 4, 8};
  // The 1-shard reference always runs: it anchors speedup_vs_1shard and
  // the determinism cross-check even when --shards pins the sweep.
  if (shard_counts.front() != 1) shard_counts.insert(shard_counts.begin(), 1);

  bench::Telemetry telemetry(args, "Shard");
  telemetry.ReportField("nodes", static_cast<int64_t>(num_nodes));
  telemetry.ReportField("threads", static_cast<int64_t>(threads));
  util::TableWriter table({"Shards", "Wall (s)", "Events/sec", "Msgs/query",
                           "Completed", "Mean (ms)", "Speedup vs 1",
                           "Drain (ms)", "Merge (ms)", "Disp (ms)",
                           "Imbal"});

  std::vector<Cell> cells;
  for (int shards : shard_counts) {
    exec::ThreadPool pool(threads);
    exec::PoolRunner runner(&pool);
    exec::RunSpec spec =
        bench::MakeSpec(*model, "QA-NT", trace, period, seed);
    spec.config.solicitation = solicitation;
    spec.config.shards = shards;
    if (shards > 1 || threads > 1) spec.config.runner = &runner;
    // A collect-only collector per cell: phase wall-time attribution with
    // no sink I/O in the timed region. Attached to every cell — including
    // the 1-shard reference — so the determinism cross-check below also
    // certifies that profiling never perturbs results.
    obs::metrics::Collector collector;
    spec.config.metrics = &collector;
    int64_t start = util::MonotonicClock::NowNanos();
    Cell cell;
    cell.shards = shards;
    cell.metrics = exec::RunSpecOnce(spec).metrics;
    cell.wall_s =
        util::MonotonicClock::SecondsSince(start);
    cell.drain_ms = PhaseMs(collector, obs::metrics::kPhaseLaneDrain);
    cell.merge_ms = PhaseMs(collector, obs::metrics::kPhaseMerge);
    cell.dispatch_ms =
        PhaseMs(collector, obs::metrics::kPhaseMediatorDispatch);
    cell.tick_ms = PhaseMs(collector, obs::metrics::kPhaseMarketTick);
    cell.allocate_ms = PhaseMs(collector, obs::metrics::kPhaseAllocate);
    cell.lane_imbalance =
        collector.PerfJson().GetDouble("lane_imbalance", 0.0);
    cell.events_per_sec =
        cell.wall_s > 0
            ? static_cast<double>(cell.metrics.events_dispatched) /
                  cell.wall_s
            : 0.0;
    cells.push_back(cell);
  }

  // Determinism cross-check, doubling as the CI smoke: every shard count
  // must reproduce the 1-shard run exactly. events/sec is the only column
  // allowed to differ.
  const sim::SimMetrics& ref = cells.front().metrics;
  bool identical = true;
  for (const Cell& cell : cells) {
    if (cell.metrics.completed != ref.completed ||
        cell.metrics.dropped != ref.dropped ||
        cell.metrics.messages != ref.messages ||
        cell.metrics.retries != ref.retries ||
        cell.metrics.end_time != ref.end_time ||
        cell.metrics.events_dispatched != ref.events_dispatched) {
      std::cerr << "FATAL: shards=" << cell.shards
                << " diverged from the 1-shard reference (completed "
                << cell.metrics.completed << " vs " << ref.completed
                << ", events " << cell.metrics.events_dispatched << " vs "
                << ref.events_dispatched << ")\n";
      identical = false;
    }
  }

  double queries = static_cast<double>(trace.size());
  double base_eps = cells.front().events_per_sec;
  for (const Cell& cell : cells) {
    double msgs_per_query =
        queries > 0 ? static_cast<double>(cell.metrics.messages) / queries
                    : 0.0;
    double speedup = base_eps > 0 ? cell.events_per_sec / base_eps : 0.0;
    table.AddRow(cell.shards, cell.wall_s, cell.events_per_sec,
                 msgs_per_query, cell.metrics.completed,
                 cell.metrics.MeanResponseMs(), speedup, cell.drain_ms,
                 cell.merge_ms, cell.dispatch_ms, cell.lane_imbalance);
    obs::Json row = sim::MetricsToJson(cell.metrics);
    row.Set("shards", static_cast<int64_t>(cell.shards));
    row.Set("threads", static_cast<int64_t>(threads));
    row.Set("wall_s", cell.wall_s);
    row.Set("events_per_sec", cell.events_per_sec);
    row.Set("msgs_per_query", msgs_per_query);
    row.Set("speedup_vs_1shard", speedup);
    row.Set("phase_lane_drain_ms", cell.drain_ms);
    row.Set("phase_merge_ms", cell.merge_ms);
    row.Set("phase_mediator_dispatch_ms", cell.dispatch_ms);
    row.Set("phase_market_tick_ms", cell.tick_ms);
    row.Set("phase_allocate_ms", cell.allocate_ms);
    row.Set("lane_imbalance", cell.lane_imbalance);
    telemetry.ReportField("S" + std::to_string(cell.shards),
                          std::move(row));
  }

  table.Print(std::cout);
  if (!identical) {
    std::cout << "\nDETERMINISM CHECK FAILED: see stderr.\n";
    return 1;
  }
  std::cout << "\nDeterminism check OK: every shard count reproduced the "
               "1-shard metrics exactly; only wall-clock moved.\n";
  return 0;
}
