// Reproduces Fig. 6: the heterogeneous Zipf workload on the full Table 3
// scenario (100 nodes, 1000 relations, 100 query classes with 0-49 joins,
// mean best execution time 2000 ms). The per-class mean inter-arrival time
// is swept; Greedy's mean response time is reported normalized by QA-NT's.
// Paper's shape: 13-24% gains under heavy load, ~26% at moderate overload,
// shrinking to nothing once the system stops being overloaded.

#include <iostream>

#include "bench/bench_common.h"
#include "workload/zipf_workload.h"

int main(int argc, char** argv) {
  using namespace qa;
  using util::kMillisecond;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Fig. 6",
                "Zipf workload on the Table 3 federation: Greedy/QA-NT "
                "ratio vs per-class mean inter-arrival time",
                seed);

  sim::Table3Config scenario;
  if (quick) {
    scenario.catalog.num_relations = 200;
    scenario.catalog.num_nodes = 30;
    scenario.profiles.num_nodes = 30;
    scenario.templates.num_classes = 30;
  }
  util::Rng rng(seed);
  sim::Scenario built = sim::BuildTable3Scenario(scenario, rng);
  const query::CostModel& model = *built.cost_model;
  std::cout << "Table 3 scenario: " << model.num_nodes() << " nodes, "
            << scenario.catalog.num_relations << " relations, "
            << model.num_classes() << " query classes\n\n";

  int num_queries = quick ? 1500 : 10000;
  std::vector<int64_t> interarrivals_ms =
      quick ? std::vector<int64_t>{1000, 10000, 20000}
            : std::vector<int64_t>{10,    100,   1000,  3000, 5000,
                                   10000, 14000, 17000, 20000};

  util::VDuration period = 500 * kMillisecond;
  // Traces first (they must outlive the runner), then the whole
  // (inter-arrival x mechanism) grid concurrently.
  std::vector<workload::Trace> traces;
  traces.reserve(interarrivals_ms.size());
  for (int64_t t_ms : interarrivals_ms) {
    workload::ZipfWorkloadConfig workload;
    workload.num_queries = num_queries;
    workload.num_classes = model.num_classes();
    workload.mean_interarrival = t_ms * kMillisecond;
    workload.num_origin_nodes = model.num_nodes();
    util::Rng wl_rng(seed + 1);
    traces.push_back(workload::GenerateZipfWorkload(workload, wl_rng));
  }
  bench::Telemetry telemetry(args, "Fig. 6");
  std::vector<exec::RunSpec> specs;
  for (const workload::Trace& trace : traces) {
    specs.push_back(bench::MakeSpec(model, "QA-NT", trace, period, seed));
    specs.push_back(bench::MakeSpec(model, "Greedy", trace, period, seed));
  }
  // Trace the first QA-NT cell (single-writer recorder, one traced run).
  if (!specs.empty()) telemetry.Trace(specs.front());
  std::vector<exec::RunResult> cells = args.MakeRunner().Run(specs);
  for (size_t i = 0; i < interarrivals_ms.size(); ++i) {
    std::string suffix = "@" + std::to_string(interarrivals_ms[i]) + "ms";
    telemetry.Report("QA-NT" + suffix, cells[2 * i].metrics);
    telemetry.Report("Greedy" + suffix, cells[2 * i + 1].metrics);
  }

  util::TableWriter table({"Per-class inter-arrival (ms)",
                           "QA-NT mean (ms)", "Greedy mean (ms)",
                           "Greedy / QA-NT", "QA-NT dropped",
                           "Greedy dropped"});
  for (size_t i = 0; i < interarrivals_ms.size(); ++i) {
    const sim::SimMetrics& qa_nt = cells[2 * i].metrics;
    const sim::SimMetrics& greedy = cells[2 * i + 1].metrics;
    table.AddRow(interarrivals_ms[i], qa_nt.MeanResponseMs(),
                 greedy.MeanResponseMs(),
                 qa_nt.MeanResponseMs() > 0
                     ? greedy.MeanResponseMs() / qa_nt.MeanResponseMs()
                     : 0.0,
                 qa_nt.dropped, greedy.dropped);
  }
  table.Print(std::cout);
  std::cout << "\nPaper's Fig. 6 shape: gains of 1.13-1.26x through the "
               "overloaded regime, largest near moderate overload, "
               "converging to ~1.0 once inter-arrival exceeds ~17 s and "
               "the system stops being overloaded.\n";
  return 0;
}
