// Flash-crowd overload sweep — the robustness counterpart to the fault
// chaos matrix. One 85-second sinusoid at 70% of capacity is hit by a
// global arrival-rate surge ([40s,60s), factor 1x..10x) and replayed under
// three protection stacks — no protection (the pre-overload behavior),
// static bounds (bounded node queues + a fixed admitted-in-flight
// threshold), and price-signaled admission (the same bounds, but the
// market's own scarcity signal drives a brownout that sheds expensive
// classes first) — for QA-NT and the two blind mechanisms. Clients keep
// the 12 s response SLA of the fault bench, so unprotected overload shows
// up as capacity wasted on queries that expire before finishing, while
// admission-controlled runs shed excess work at the door and keep goodput
// near the 1x level.
//
// The QA-NT price-signal run at the top factor is traced in memory; its
// surge-edge price-reconvergence report (log-price variance back below the
// pre-surge level) and a shards {1,4} x threads {1,8} byte-identity check
// of that same cell land in BENCH_overload.json.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "exec/thread_pool.h"
#include "obs/analysis.h"
#include "obs/trace_reader.h"

namespace {

using namespace qa;
using util::kMillisecond;
using util::kSecond;

/// Client response deadline, same as the fault bench: overload protection
/// is only worth measuring against give-up semantics — without an SLA
/// every queueing strategy eventually completes everything.
constexpr util::VDuration kQueryDeadline = 12 * kSecond;

constexpr util::VTime kSurgeFrom = 40 * kSecond;
constexpr util::VTime kSurgeUntil = 60 * kSecond;

/// One protection stack, applied verbatim to every mechanism's config.
struct Protection {
  std::string name;
  std::string blurb;
  void Apply(sim::FederationConfig& config, int num_nodes) const {
    if (name == "none") return;
    config.max_node_queue = 12;
    config.max_retry_backlog = 50 * num_nodes;
    if (name == "static") {
      config.shed_policy = sim::ShedPolicy::kNewestFirst;
      config.admission.policy = sim::AdmissionPolicy::kStatic;
    } else {
      config.shed_policy = sim::ShedPolicy::kLowestPriorityFirst;
      config.admission.policy = sim::AdmissionPolicy::kPriceSignal;
      // The baseline is seeded from the back half of a 35 s warmup (70
      // periods of 500 ms, t = 17.5-35 s — past the cold-start
      // price-discovery ramp, which takes ~25 s at 60 nodes) and then
      // tracks slowly, so QA-NT's gradual price drift at steady load
      // reads as a ratio near 1 while a flash crowd, which outruns the
      // tracking, pushes it into the hundreds. The band sits comfortably
      // between the two.
      config.admission.enter_ratio = 8.0;
      config.admission.exit_ratio = 2.0;
      config.admission.warmup_periods = 70;
      config.admission.baseline_alpha = 0.05;
    }
    // Admitted-in-flight threshold (kStatic's gate, kPriceSignal's
    // fallback for mechanisms that expose no prices): roughly what the
    // bounded node queues can hold.
    config.admission.max_outstanding = 6 * num_nodes;
  }
};

struct Cell {
  int factor = 1;
  std::string protection;
  std::string mechanism;
  sim::SimMetrics metrics;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  // Always emit the structured report (the acceptance artifact); --trace
  // additionally streams the traced cell to a file for qa_trace --shed.
  if (args.report_path.empty()) args.report_path = "BENCH_overload.json";
  const std::string trace_path = args.trace_path;
  args.trace_path.clear();
  bench::Banner("Flash-crowd overload sweep",
                "surge factor x protection x mechanism grid, 85 s sinusoid",
                seed);

  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = quick ? 20 : 60;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

  workload::SinusoidConfig wave;
  wave.frequency_hz = 0.05;
  wave.duration = 85 * kSecond;
  wave.num_origin_nodes = scenario.num_nodes;
  wave.q1_peak_rate = 0.7 * capacity / 0.75;
  util::Rng wl_rng(seed + 1);
  workload::Trace trace = workload::GenerateSinusoidWorkload(wave, wl_rng);

  std::vector<int> factors = quick ? std::vector<int>{1, 10}
                                   : std::vector<int>{1, 2, 5, 10};
  std::vector<Protection> protections = {
      {"none", "unbounded queues, no admission gate"},
      {"static", "node queues <= 12, fixed admitted-in-flight threshold"},
      {"price", "same bounds + price-signaled brownout (expensive first)"},
  };
  std::vector<std::string> mechanisms = {"QA-NT", "Random", "RoundRobin"};
  const int max_factor = factors.back();
  std::cout << "Workload: " << trace.size() << " queries over "
            << scenario.num_nodes << " nodes; surge [" << kSurgeFrom / kSecond
            << "s," << kSurgeUntil / kSecond << "s) x {";
  for (size_t i = 0; i < factors.size(); ++i) {
    std::cout << (i ? "," : "") << factors[i] << "x";
  }
  std::cout << "}; " << protections.size() << " protections x "
            << mechanisms.size() << " mechanisms.\n\n";

  bench::Telemetry telemetry(args, "Flash-crowd overload sweep");
  telemetry.ReportField("capacity_qps", capacity);
  telemetry.ReportField("num_nodes", scenario.num_nodes);
  telemetry.ReportField("surge_from_s", kSurgeFrom / kSecond);
  telemetry.ReportField("surge_until_s", kSurgeUntil / kSecond);

  // The QA-NT price-signal run at the top factor is the specimen: traced
  // in memory (single writer, one grid cell), analyzed for price
  // reconvergence across the surge edges.
  std::ostringstream traced;
  obs::Recorder surge_recorder(&traced);

  std::vector<exec::RunSpec> specs;
  for (int factor : factors) {
    for (const Protection& protection : protections) {
      for (const std::string& name : mechanisms) {
        exec::RunSpec spec =
            bench::MakeSpec(*model, name, trace, period, seed);
        spec.config.query_deadline = kQueryDeadline;
        spec.config.seed = static_cast<int64_t>(seed);
        protection.Apply(spec.config, scenario.num_nodes);
        if (factor > 1) {
          spec.config.faults.surges.push_back(
              {sim::faults::SurgeFault::kAllClasses, kSurgeFrom, kSurgeUntil,
               static_cast<double>(factor)});
        }
        if (factor == max_factor && protection.name == "price" &&
            name == "QA-NT") {
          spec.config.recorder = &surge_recorder;
        }
        specs.push_back(std::move(spec));
      }
    }
  }

  exec::ExperimentRunner runner = args.MakeRunner();
  std::cout << "Running " << specs.size() << " cells on " << runner.threads()
            << " thread(s)...\n\n";
  std::vector<exec::RunResult> results = runner.Run(specs);
  surge_recorder.Finish();

  double duration_s = static_cast<double>(wave.duration) / kSecond;
  std::vector<Cell> cells;
  size_t i = 0;
  for (int factor : factors) {
    for (const Protection& protection : protections) {
      for (const std::string& name : mechanisms) {
        cells.push_back(
            {factor, protection.name, name, results[i++].metrics});
      }
    }
  }
  auto goodput = [&](const sim::SimMetrics& m) {
    return static_cast<double>(m.completed) / duration_s;
  };
  auto baseline = [&](const Cell& cell) -> const sim::SimMetrics& {
    for (const Cell& ref : cells) {
      if (ref.factor == 1 && ref.protection == cell.protection &&
          ref.mechanism == cell.mechanism) {
        return ref.metrics;
      }
    }
    return cell.metrics;  // factor 1 rows anchor themselves
  };

  util::TableWriter table({"Surge", "Protection", "Mechanism", "Goodput",
                           "vs 1x", "Mean (ms)", "p95 (ms)", "Shed",
                           "AdmRej", "Expired", "Completed"});
  bool acceptance_ok = true;
  for (const Cell& cell : cells) {
    double vs_1x = goodput(cell.metrics) / goodput(baseline(cell));
    telemetry.Report("f" + std::to_string(cell.factor) + "/" +
                         cell.protection + "/" + cell.mechanism,
                     cell.metrics);
    table.AddRow(std::to_string(cell.factor) + "x", cell.protection,
                 cell.mechanism, goodput(cell.metrics), vs_1x,
                 cell.metrics.MeanResponseMs(),
                 cell.metrics.response_time_ms.Percentile(95),
                 cell.metrics.shed, cell.metrics.admission_rejects,
                 cell.metrics.expired, cell.metrics.completed);
    // The acceptance gate: at the top surge factor, price-signaled
    // admission keeps QA-NT's goodput within 25% of its own 1x level.
    if (cell.factor == max_factor && cell.protection == "price" &&
        cell.mechanism == "QA-NT" && vs_1x < 0.75) {
      acceptance_ok = false;
      std::cerr << "FATAL: price/QA-NT goodput at " << max_factor
                << "x fell to " << vs_1x << " of the 1x level (floor 0.75)\n";
    }
  }
  table.Print(std::cout);
  std::cout << "\nProtection stacks:\n";
  for (const Protection& protection : protections) {
    std::cout << "  " << protection.name << ": " << protection.blurb << "\n";
  }

  // Price-reconvergence report of the traced QA-NT price-signal run: the
  // surge edges are trace transitions exactly like degrade edges, so the
  // fault-recovery analysis applies unchanged.
  std::istringstream replay(traced.str());
  util::StatusOr<obs::ParsedTrace> parsed = obs::ParsedTrace::Parse(replay);
  if (!parsed.ok()) {
    std::cerr << "warning: surge-run trace unparsable: " << parsed.status()
              << "\n";
  } else {
    std::vector<obs::FaultRecovery> recovery =
        obs::FaultRecoveryReport(parsed.value());
    obs::Json rows = obs::Json::MakeArray();
    std::cout << "\nQA-NT price-signal surge recovery ("
              << max_factor << "x):\n";
    for (const obs::FaultRecovery& row : recovery) {
      obs::Json json = obs::Json::MakeObject();
      json.Set("kind", std::string(obs::EventKindName(row.kind)));
      json.Set("t_ms", static_cast<double>(row.t_us) / kMillisecond);
      if (row.has_factor()) json.Set("factor", row.factor);
      json.Set("pre_fault_variance", row.pre_fault_variance);
      json.Set("peak_variance", row.peak_variance);
      json.Set("reconverged", row.reconverged);
      if (row.reconverged) json.Set("recovery_ms", row.recovery_ms);
      rows.Append(std::move(json));
      std::cout << "  " << obs::EventKindName(row.kind) << " @ "
                << row.t_us / kMillisecond << " ms: "
                << (row.reconverged
                        ? "log-price variance reconverged"
                        : "not reconverged within the run")
                << " (peak " << row.peak_variance << " vs pre "
                << row.pre_fault_variance << ")\n";
    }
    telemetry.ReportField("surge_recovery", std::move(rows));
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary);
    if (out) {
      out << traced.str();
      std::cout << "\nQA-NT surge-run trace written to " << trace_path
                << " (analyze with tools/qa_trace --shed).\n";
    } else {
      std::cerr << "warning: --trace: cannot open " << trace_path << "\n";
    }
  }

  // Byte-identity check of the traced cell across execution layouts:
  // overload protection is simulation behavior, so shedding and admission
  // decisions must not depend on how the run is scheduled.
  std::cout << "\nDeterminism check (price/QA-NT @ " << max_factor
            << "x): shards {1,4} x threads {1,8}... " << std::flush;
  bool identical = true;
  std::string reference;
  for (int shards : {1, 4}) {
    for (int threads : {1, 8}) {
      exec::ThreadPool pool(threads);
      exec::PoolRunner pool_runner(&pool);
      std::ostringstream bytes;
      obs::Recorder recorder(&bytes);
      exec::RunSpec spec = bench::MakeSpec(*model, "QA-NT", trace, period,
                                           seed);
      spec.config.query_deadline = kQueryDeadline;
      spec.config.seed = static_cast<int64_t>(seed);
      protections.back().Apply(spec.config, scenario.num_nodes);
      if (max_factor > 1) {
        spec.config.faults.surges.push_back(
            {sim::faults::SurgeFault::kAllClasses, kSurgeFrom, kSurgeUntil,
             static_cast<double>(max_factor)});
      }
      spec.config.recorder = &recorder;
      spec.config.shards = shards;
      if (shards > 1 || threads > 1) spec.config.runner = &pool_runner;
      exec::RunSpecOnce(spec);
      recorder.Finish();
      if (reference.empty()) {
        reference = bytes.str();
      } else if (bytes.str() != reference) {
        identical = false;
        std::cerr << "FATAL: shards=" << shards << " threads=" << threads
                  << " produced different trace bytes\n";
      }
    }
  }
  std::cout << (identical ? "OK\n" : "FAILED\n");
  telemetry.ReportField("layout_identical", identical);
  telemetry.ReportField("acceptance_ok", acceptance_ok);

  std::cout << "\nExpected: without protection the surge converts capacity "
               "into queries that expire past the 12 s SLA; bounded queues "
               "plus admission shed the excess at the door, and the "
               "price-signaled stack does it mechanism-agnostically — the "
               "market's own scarcity signal triggers the brownout, "
               "expensive classes go first, and goodput holds near the 1x "
               "level through a 10x flash crowd.\n";
  return identical && acceptance_ok ? 0 : 1;
}
