// Ablation (DESIGN.md §6.1): the market period length T. The paper states
// that larger T helps static loads but hurts flexibility under dynamic
// ones (they used T = 500 ms). We sweep T under (a) a static Poisson load
// and (b) a 0.2 Hz sinusoid, reporting QA-NT's mean response time.

#include <iostream>

#include "bench/bench_common.h"
#include "workload/uniform.h"

int main(int argc, char** argv) {
  using namespace qa;
  using util::kMillisecond;
  using util::kSecond;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Ablation: period T",
                "QA-NT under static vs dynamic load while T varies", seed);

  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = quick ? 20 : 50;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0},
                                             500 * kMillisecond);

  // Static load: Poisson at 85% capacity with the same 2:1 mix.
  workload::PoissonWorkloadConfig static_wl;
  static_wl.num_queries = quick ? 800 : 3000;
  static_wl.mean_interarrival =
      static_cast<util::VDuration>(1.0 / (0.85 * capacity) * util::kSecond);
  static_wl.classes = {0, 0, 1};  // 2:1 mix
  static_wl.num_origin_nodes = scenario.num_nodes;
  util::Rng rng_s(seed + 1);
  workload::Trace static_trace =
      workload::GeneratePoissonWorkload(static_wl, rng_s);

  // Dynamic load: fast sinusoid at 85% average capacity.
  workload::SinusoidConfig dynamic_wl;
  dynamic_wl.frequency_hz = 0.2;
  dynamic_wl.duration = (quick ? 20 : 40) * kSecond;
  dynamic_wl.num_origin_nodes = scenario.num_nodes;
  dynamic_wl.q1_peak_rate = 0.85 * capacity / 0.75;
  util::Rng rng_d(seed + 2);
  workload::Trace dynamic_trace =
      workload::GenerateSinusoidWorkload(dynamic_wl, rng_d);

  bench::Telemetry telemetry(args, "Ablation: period T");
  telemetry.ReportField("capacity_qps", capacity);
  std::vector<int64_t> periods_ms = {125, 250, 500, 1000, 2000, 4000};
  std::vector<exec::RunSpec> specs;
  for (int64_t t_ms : periods_ms) {
    specs.push_back(bench::MakeSpec(*model, "QA-NT", static_trace,
                                    t_ms * kMillisecond, seed));
    specs.push_back(bench::MakeSpec(*model, "QA-NT", dynamic_trace,
                                    t_ms * kMillisecond, seed));
  }
  // Trace the first cell (single-writer recorder, one traced run).
  if (!specs.empty()) telemetry.Trace(specs.front());
  std::vector<exec::RunResult> cells = args.MakeRunner().Run(specs);
  for (size_t i = 0; i < periods_ms.size(); ++i) {
    std::string suffix = "@T=" + std::to_string(periods_ms[i]) + "ms";
    telemetry.Report("static" + suffix, cells[2 * i].metrics);
    telemetry.Report("dynamic" + suffix, cells[2 * i + 1].metrics);
  }

  util::TableWriter table({"T (ms)", "Static load mean (ms)",
                           "Dynamic load mean (ms)"});
  for (size_t i = 0; i < periods_ms.size(); ++i) {
    table.AddRow(periods_ms[i], cells[2 * i].metrics.MeanResponseMs(),
                 cells[2 * i + 1].metrics.MeanResponseMs());
  }
  table.Print(std::cout);
  std::cout << "\nExpected: static load tolerates (or prefers) larger T; "
               "dynamic load degrades as T grows past the workload's time "
               "scale. The paper used T = 500 ms.\n";
  return 0;
}
