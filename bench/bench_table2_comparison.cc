// Reproduces Table 2: qualitative comparison of query-allocation
// mechanisms, with the "Performance" column measured by running each
// mechanism on the same dynamic two-class workload (instead of quoting the
// paper's adjectives blindly).

#include <iostream>

#include "bench/bench_common.h"

namespace qa {
namespace {

using util::kMillisecond;
using util::kSecond;

std::string YesNo(bool v) { return v ? "X" : "-"; }

std::string PerfBucket(double normalized) {
  if (normalized <= 1.1) return "Very Good";
  if (normalized <= 1.6) return "Good";
  return "Poor";
}

}  // namespace
}  // namespace qa

int main(int argc, char** argv) {
  using namespace qa;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Table 2", "Comparison of query allocation mechanisms",
                seed);

  // Shared scenario: heterogeneous 100-node two-class federation at ~90%
  // mean load with a 0.05 Hz sinusoid (the Fig. 4 conditions).
  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = quick ? 30 : 100;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);

  util::VDuration period = 500 * kMillisecond;
  double capacity =
      sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

  workload::SinusoidConfig workload;
  workload.frequency_hz = 0.05;
  workload.duration = (quick ? 20 : 60) * kSecond;
  workload.num_origin_nodes = scenario.num_nodes;
  workload.q1_peak_rate = 0.9 * capacity / 0.75;
  util::Rng wl_rng(seed + 1);
  workload::Trace trace = workload::GenerateSinusoidWorkload(workload,
                                                             wl_rng);

  // Measure each mechanism.
  double qa_nt_response = 0.0;
  struct Row {
    std::string name;
    allocation::MechanismProperties props;
    double mean_response;
    int64_t messages;
  };
  bench::Telemetry telemetry(args, "Table 2");
  telemetry.ReportField("capacity_qps", capacity);
  std::vector<Row> rows;
  for (const std::string& name : allocation::AllMechanismNames()) {
    exec::RunSpec spec = bench::MakeSpec(*model, name, trace, period, seed);
    // Trace the market mechanism's run (single-writer: QA-NT only).
    if (name == "QA-NT") telemetry.Trace(spec);
    sim::SimMetrics metrics = exec::RunSpecOnce(spec).metrics;
    telemetry.Report(name, metrics);
    allocation::AllocatorParams params;
    params.cost_model = model.get();
    auto alloc = allocation::CreateAllocator(name, params);
    rows.push_back(
        {name, alloc->properties(), metrics.MeanResponseMs(),
         metrics.messages});
    if (name == "QA-NT") qa_nt_response = metrics.MeanResponseMs();
  }

  util::TableWriter table({"Mechanism", "Distributed", "Workload",
                           "Conflict w/ query opt.", "Autonomy",
                           "Performance (measured)", "Messages/query"});
  for (const Row& row : rows) {
    double normalized =
        qa_nt_response > 0.0 ? row.mean_response / qa_nt_response : 0.0;
    table.AddRow(
        row.name, YesNo(row.props.distributed),
        row.props.handles_dynamic_workload ? "Dynamic" : "Static",
        YesNo(row.props.conflicts_with_query_optimization),
        YesNo(row.props.respects_autonomy),
        PerfBucket(normalized) + " (" + std::to_string(normalized).substr(0, 4) +
            "x QA-NT)",
        static_cast<double>(row.messages) /
            static_cast<double>(trace.size()));
  }
  table.Print(std::cout);
  std::cout
      << "\nPaper's Table 2: QA-NT/Greedy Very Good; Random, Round-robin, "
         "BNQRD Poor; only QA-NT is distributed AND autonomy-respecting "
         "AND compatible with distributed query optimization.\n"
      << "(Markov [4] is omitted like in the paper's simulator: it cannot "
         "handle dynamic workloads.)\n";
  return 0;
}
