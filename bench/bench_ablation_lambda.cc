// Ablation (DESIGN.md §6.2): the price-adjustment step lambda.
// (a) In the centralized tâtonnement reference, larger lambda converges in
//     fewer iterations but estimates the equilibrium prices less
//     accurately (§3.3).
// (b) In the full QA-NT simulation, lambda trades reaction speed against
//     stability under a dynamic load.

#include <iostream>

#include "bench/bench_common.h"
#include "market/tatonnement.h"

int main(int argc, char** argv) {
  using namespace qa;
  using util::kMillisecond;
  using util::kSecond;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Ablation: lambda",
                "Price-adjustment step in tatonnement and in QA-NT", seed);

  // ---- (a) Centralized tatonnement on the Fig. 1 instance.
  market::CapacitySupplySet n1({400 * kMillisecond, 100 * kMillisecond},
                               1000 * kMillisecond);
  market::CapacitySupplySet n2({450 * kMillisecond, 500 * kMillisecond},
                               1000 * kMillisecond);
  std::vector<const market::SupplySet*> sets{&n1, &n2};

  bench::Telemetry telemetry(args, "Ablation: lambda");
  std::cout << "(a) Tatonnement iterations to clear demand (4, 2):\n";
  util::TableWriter conv({"lambda", "iterations", "converged",
                          "final prices"});
  for (double lambda : {0.002, 0.01, 0.05, 0.2, 1.0}) {
    market::TatonnementConfig config;
    config.lambda = lambda;
    config.max_iterations = 100000;
    market::TatonnementResult r = market::RunTatonnement(
        market::QuantityVector({4, 2}), sets, config);
    conv.AddRow(lambda, r.iterations, r.converged ? "yes" : "no",
                r.prices.ToString());
    // Traced runs also log the umpire's final prices/excess demand per
    // lambda (stamped with the iteration count it took).
    QA_OBS(telemetry.recorder()) {
      telemetry.recorder()->RecordSnapshot(
          r.iterations, obs::SnapshotFromTatonnement(r));
    }
  }
  conv.Print(std::cout);

  // ---- (b) QA-NT under a dynamic load for several lambdas.
  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = quick ? 20 : 50;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

  workload::SinusoidConfig workload;
  workload.frequency_hz = 0.05;
  workload.duration = (quick ? 20 : 40) * kSecond;
  workload.num_origin_nodes = scenario.num_nodes;
  workload.q1_peak_rate = 1.2 * capacity / 0.75;  // mild overload
  util::Rng wl_rng(seed + 1);
  workload::Trace trace =
      workload::GenerateSinusoidWorkload(workload, wl_rng);

  std::cout << "\n(b) QA-NT mean response under a 120% overload sinusoid:\n";
  std::vector<double> lambdas = {0.01, 0.05, 0.1, 0.25, 0.5};
  std::vector<exec::RunSpec> specs;
  for (double lambda : lambdas) {
    exec::RunSpec spec;
    spec.cost_model = model.get();
    spec.trace = &trace;
    spec.period = period;
    spec.seed = seed;
    spec.make_allocator = [&model, period, seed, lambda]() {
      allocation::AllocatorParams params;
      params.cost_model = model.get();
      params.period = period;
      params.seed = seed;
      params.qa_nt.lambda = lambda;
      return allocation::CreateAllocator("QA-NT", params);
    };
    specs.push_back(std::move(spec));
  }
  std::vector<exec::RunResult> cells = args.MakeRunner().Run(specs);

  util::TableWriter table({"lambda", "QA-NT mean (ms)", "retries"});
  for (size_t i = 0; i < lambdas.size(); ++i) {
    telemetry.Report("QA-NT@lambda=" + std::to_string(lambdas[i]),
                     cells[i].metrics);
    table.AddRow(lambdas[i], cells[i].metrics.MeanResponseMs(),
                 cells[i].metrics.retries);
  }
  table.Print(std::cout);
  std::cout << "\nExpected: convergence iterations fall as lambda grows "
               "(a); the full system favors a moderate lambda — too small "
               "reacts slowly, too large oscillates (b).\n";
  return 0;
}
