// Reproduces Fig. 7: the real-deployment experiment over five DBMS nodes
// (here: five minidb instances with simulated heterogeneous hardware, one
// behind a slow wireless link). Two runs of 300 queries with uniform
// inter-arrival averages of 300 ms and 400 ms; for Greedy and QA-NT we
// report the time to assign a query to a node and the total time
// (assign + queue + execute). Both mechanisms wait for all nodes' EXPLAIN
// replies before deciding, which is why assignment takes a visible
// fraction of the total (the paper's slowest PC needed up to 3 s per
// EXPLAIN).

#include <iostream>

#include "bench/bench_common.h"
#include "dbms/dbms_federation.h"

int main(int argc, char** argv) {
  using namespace qa;
  using util::kMillisecond;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Fig. 7",
                "minidb federation of 5 nodes: assign time and total time "
                "for Greedy and QA-NT",
                seed);

  dbms::DbmsFederationConfig config;
  config.seed = seed;
  if (quick) {
    config.dataset.num_tables = 8;
    config.dataset.num_views = 16;
    config.dataset.num_templates = 12;
    config.dataset.min_rows = 100;
    config.dataset.max_rows = 400;
  }
  dbms::DbmsFederation fed(config);
  std::cout << "Dataset: " << config.dataset.num_tables << " tables, "
            << config.dataset.num_views << " views, "
            << fed.num_templates()
            << " star-query templates; data_scale=" << fed.data_scale()
            << "\n\n";

  int num_queries = quick ? 60 : 300;
  util::TableWriter table({"Inter-arrival (ms)", "Mechanism",
                           "Assign (ms)", "Exec (ms)", "Total (ms)",
                           "Completed", "Retries"});
  for (int64_t gap_ms : {300, 400}) {
    for (const std::string& mech : {std::string("GreedyBlind"),
                                    std::string("Greedy"),
                                    std::string("QA-NT")}) {
      dbms::DbmsRunResult r =
          fed.Run(mech, num_queries, gap_ms * kMillisecond, seed + 7);
      table.AddRow(gap_ms, mech, r.assign_ms.Mean(), r.exec_ms.Mean(),
                   r.total_ms.Mean(), r.completed, r.retries);
    }
  }
  table.Print(std::cout);
  std::cout << "\nPaper's Fig. 7 shape: QA-NT's total time below Greedy's "
               "in both runs; assignment time is a substantial fraction "
               "for both because they wait for every node's EXPLAIN "
               "reply.\nGreedyBlind is the paper's information set "
               "(estimates only, no remote queues); Greedy additionally "
               "sees queues — an upper reference our deployment could not "
               "have had.\n";
  return 0;
}
