// Reproduces Fig. 5a: Greedy's response time normalized by QA-NT's while
// the average workload of a 20 s, 0.05 Hz sinusoid is swept from 10% to
// 300% of total system capacity. The paper's shape: Greedy ~5% better
// below ~75% load (QA-NT's integer rounding error), 15-32% worse above.

#include <iostream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace qa;
  using util::kMillisecond;
  using util::kSecond;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Fig. 5a",
                "Greedy vs QA-NT across average load 10%-300% of capacity "
                "(20 s, 0.05 Hz sinusoid)",
                seed);

  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = quick ? 30 : 100;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);
  std::cout << "Estimated capacity: " << capacity << " queries/s\n\n";

  std::vector<double> loads = quick
                                  ? std::vector<double>{0.5, 1.0, 2.0}
                                  : std::vector<double>{0.1, 0.25, 0.5,
                                                        0.75, 1.0, 1.5,
                                                        2.0, 3.0};
  // Generate every load level's trace up front (they must outlive the
  // runner), then run the whole (load x mechanism) grid concurrently.
  std::vector<workload::Trace> traces;
  traces.reserve(loads.size());
  for (double load : loads) {
    workload::SinusoidConfig workload;
    workload.frequency_hz = 0.05;
    workload.duration = 20 * kSecond;
    workload.num_origin_nodes = scenario.num_nodes;
    workload.q1_peak_rate = load * capacity / 0.75;
    util::Rng wl_rng(seed + 1);
    traces.push_back(workload::GenerateSinusoidWorkload(workload, wl_rng));
  }
  bench::Telemetry telemetry(args, "Fig. 5a");
  telemetry.ReportField("capacity_qps", capacity);
  std::vector<exec::RunSpec> specs;
  for (const workload::Trace& trace : traces) {
    specs.push_back(bench::MakeSpec(*model, "QA-NT", trace, period, seed));
    specs.push_back(bench::MakeSpec(*model, "Greedy", trace, period, seed));
  }
  // Trace the first QA-NT cell (single-writer recorder, one traced run).
  if (!specs.empty()) telemetry.Trace(specs.front());
  std::vector<exec::RunResult> cells = args.MakeRunner().Run(specs);
  for (size_t i = 0; i < loads.size(); ++i) {
    std::string suffix = "@" + std::to_string(loads[i]);
    telemetry.Report("QA-NT" + suffix, cells[2 * i].metrics);
    telemetry.Report("Greedy" + suffix, cells[2 * i + 1].metrics);
  }

  util::TableWriter table({"Avg load (% capacity)", "QA-NT mean (ms)",
                           "Greedy mean (ms)", "Greedy / QA-NT"});
  for (size_t i = 0; i < loads.size(); ++i) {
    const sim::SimMetrics& qa_nt = cells[2 * i].metrics;
    const sim::SimMetrics& greedy = cells[2 * i + 1].metrics;
    table.AddRow(loads[i] * 100.0, qa_nt.MeanResponseMs(),
                 greedy.MeanResponseMs(),
                 qa_nt.MeanResponseMs() > 0
                     ? greedy.MeanResponseMs() / qa_nt.MeanResponseMs()
                     : 0.0);
  }
  table.Print(std::cout);
  std::cout << "\nPaper's Fig. 5a shape: ratio slightly below 1 under "
               "light load (integer rounding penalizes QA-NT), rising to "
               "1.15-1.32 beyond ~75% of capacity.\n";
  return 0;
}
