// Perf tracking for the execution layer, from this PR onward:
//   (1) events/sec through the discrete-event queue — the tagged-event
//       EventQueue<SimEvent> versus the previous std::function-callback
//       design (reproduced locally below), isolating the win from removing
//       the per-event heap allocation + indirect call;
//   (2) wall-clock of a fig4-style experiment grid, serial versus the
//       parallel ExperimentRunner, with a cell-by-cell determinism check.
// Results are printed and appended-to-file as BENCH_runner.json so the
// perf trajectory is machine-readable across PRs.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <vector>

#include "bench/bench_common.h"
#include "exec/experiment_runner.h"
#include "exec/thread_pool.h"
#include "sim/event_queue.h"

namespace qa {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The seed's event queue, reproduced verbatim as the baseline: a
/// priority_queue of std::function callbacks, one heap allocation per
/// event (the captured SimEvent-sized payload exceeds every std::function
/// small-buffer) and one indirect call per dispatch.
class CallbackEventQueue {
 public:
  // This bench deliberately rebuilds the pre-PR-1 callback queue to have
  // something to beat; the allocation it measures is the point.
  // qa-lint: allow(QA-HOT-001)
  using Callback = std::function<void()>;

  void Schedule(util::VTime when, Callback fn) {
    events_.push(Event{when, next_seq_++, std::move(fn)});
  }
  util::VTime now() const { return now_; }

  bool RunOne() {
    if (events_.empty()) return false;
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = event.time;
    event.fn();
    return true;
  }
  uint64_t RunAll() {
    uint64_t ran = 0;
    while (RunOne()) ++ran;
    return ran;
  }

 private:
  struct Event {
    util::VTime time;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  util::VTime now_ = 0;
  uint64_t next_seq_ = 0;
};

/// Both queue variants run the same synthetic workload: `width` live
/// arrival->deliver->complete chains cycling until `total` events have
/// fired — the event mix of a federation run. The callback baseline uses
/// three distinct closure shapes (like the seed's HandleQuery /
/// DeliverTask / completion lambdas did), so it pays what the old design
/// really paid per event: a heap allocation for the >16-byte capture plus
/// an indirect call whose target alternates between lambda types.
struct PendingLike {
  workload::Arrival arrival;
  query::QueryId id = 0;
  int attempts = 0;
};

double MeasureCallbackQueue(uint64_t total, int width) {
  CallbackEventQueue q;
  uint64_t fired = 0;
  // qa-lint: allow(QA-HOT-001) — baseline half of the A/B measurement
  std::function<void(const PendingLike&)> on_arrival;
  // qa-lint: allow(QA-HOT-001)
  std::function<void(catalog::NodeId, const sim::QueryTask&)> on_deliver;
  // qa-lint: allow(QA-HOT-001)
  std::function<void(catalog::NodeId, const sim::QueryTask&)> on_complete;
  on_arrival = [&](const PendingLike& pending) {
    ++fired;
    if (fired + static_cast<uint64_t>(width) > total) return;
    sim::QueryTask task;
    task.query_id = pending.id;
    task.class_id = pending.arrival.class_id;
    q.Schedule(q.now() + 7, [&on_deliver, task]() { on_deliver(3, task); });
  };
  on_deliver = [&](catalog::NodeId node, const sim::QueryTask& task) {
    ++fired;
    sim::QueryTask done = task;
    done.exec_time += 1;
    q.Schedule(q.now() + 9,
               [&on_complete, node, done]() { on_complete(node, done); });
  };
  on_complete = [&](catalog::NodeId node, const sim::QueryTask& task) {
    ++fired;
    (void)node;
    PendingLike next;
    next.id = task.query_id;
    q.Schedule(q.now() + 5, [&on_arrival, next]() { on_arrival(next); });
  };
  Clock::time_point start = Clock::now();
  for (int i = 0; i < width; ++i) {
    PendingLike pending;
    pending.id = i;
    q.Schedule(i, [&on_arrival, pending]() { on_arrival(pending); });
  }
  q.RunAll();
  double seconds = SecondsSince(start);
  return static_cast<double>(fired) / seconds;
}

double MeasureTaggedQueue(uint64_t total, int width) {
  sim::EventQueue<sim::SimEvent> q;
  q.Reserve(static_cast<size_t>(width) + 1);
  uint64_t fired = 0;
  Clock::time_point start = Clock::now();
  for (int i = 0; i < width; ++i) {
    sim::SimEvent::Pending pending{};
    pending.id = i;
    q.Schedule(i, sim::SimEvent::MakeArrival(pending));
  }
  q.RunAll([&](const sim::SimEvent& event) {
    ++fired;
    switch (event.kind) {
      case sim::SimEvent::Kind::kArrival: {
        if (fired + static_cast<uint64_t>(width) > total) return;
        sim::QueryTask task;
        task.query_id = event.pending.id;
        task.class_id = event.pending.arrival.class_id;
        q.Schedule(q.now() + 7, sim::SimEvent::MakeDeliver(3, task));
        break;
      }
      case sim::SimEvent::Kind::kDeliver: {
        sim::QueryTask done = event.task;
        done.exec_time += 1;
        q.Schedule(q.now() + 9,
                   sim::SimEvent::MakeComplete(event.node, done));
        break;
      }
      case sim::SimEvent::Kind::kComplete: {
        sim::SimEvent::Pending next{};
        next.id = event.task.query_id;
        q.Schedule(q.now() + 5, sim::SimEvent::MakeArrival(next));
        break;
      }
      default:
        break;
    }
  });
  double seconds = SecondsSince(start);
  return static_cast<double>(fired) / seconds;
}

/// A fig4-style grid: every registered mechanism over a sinusoid trace at
/// a handful of seeds.
std::vector<exec::RunSpec> BuildGrid(const query::CostModel& model,
                                     const workload::Trace& trace,
                                     util::VDuration period,
                                     uint64_t base_seed, int num_seeds) {
  std::vector<exec::RunSpec> specs;
  for (int s = 0; s < num_seeds; ++s) {
    for (const std::string& name : allocation::AllMechanismNames()) {
      specs.push_back(
          bench::MakeSpec(model, name, trace, period, base_seed + s));
    }
  }
  return specs;
}

bool SameMetrics(const sim::SimMetrics& a, const sim::SimMetrics& b) {
  return a.completed == b.completed && a.dropped == b.dropped &&
         a.retries == b.retries && a.messages == b.messages &&
         a.assigned == b.assigned && a.end_time == b.end_time &&
         a.MeanResponseMs() == b.MeanResponseMs() &&
         a.response_time_ms.Percentile(95) ==
             b.response_time_ms.Percentile(95);
}

}  // namespace
}  // namespace qa

int main(int argc, char** argv) {
  using namespace qa;
  using util::kMillisecond;
  using util::kSecond;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner("Perf: runner + event queue",
                "events/sec (callback vs tagged queue) and grid wall-clock "
                "(serial vs parallel)",
                args.seed);

  // ---- (1) Event-queue throughput.
  const uint64_t total_events = args.quick ? 400000 : 2000000;
  const int width = 512;
  // Warm both paths once so first-touch page faults don't skew either,
  // then interleave several trials and keep the best of each: on a shared
  // machine the max is the least-interference estimate.
  MeasureCallbackQueue(total_events / 10, width);
  MeasureTaggedQueue(total_events / 10, width);
  const int trials = args.quick ? 3 : 5;
  double callback_eps = 0.0;
  double tagged_eps = 0.0;
  for (int t = 0; t < trials; ++t) {
    callback_eps =
        std::max(callback_eps, MeasureCallbackQueue(total_events, width));
    tagged_eps = std::max(tagged_eps, MeasureTaggedQueue(total_events, width));
  }
  double queue_speedup = callback_eps > 0 ? tagged_eps / callback_eps : 0.0;
  std::cout << "Event queue, " << total_events << " events:\n"
            << "  std::function callbacks : " << callback_eps << " ev/s\n"
            << "  tagged SimEvent structs : " << tagged_eps << " ev/s\n"
            << "  speedup                 : " << queue_speedup << "x\n\n";

  // ---- (2) Grid wall-clock, serial vs parallel.
  util::Rng rng(args.seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = args.quick ? 20 : 30;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

  workload::SinusoidConfig workload;
  workload.frequency_hz = 0.05;
  workload.duration = (args.quick ? 20 : 40) * kSecond;
  workload.num_origin_nodes = scenario.num_nodes;
  workload.q1_peak_rate = 0.95 * capacity;
  util::Rng wl_rng(args.seed + 1);
  workload::Trace trace =
      workload::GenerateSinusoidWorkload(workload, wl_rng);

  int num_seeds = args.quick ? 2 : 3;
  std::vector<exec::RunSpec> specs =
      BuildGrid(*model, trace, period, args.seed, num_seeds);
  int parallel_threads = exec::ExperimentRunner(args.threads).threads();

  // Warm run (untimed) so the serial measurement isn't penalized for
  // first-touch page faults and cold caches relative to the parallel one.
  exec::ExperimentRunner(1).Run(specs);

  Clock::time_point start = Clock::now();
  std::vector<exec::RunResult> serial =
      exec::ExperimentRunner(1).Run(specs);
  double serial_s = SecondsSince(start);

  start = Clock::now();
  std::vector<exec::RunResult> parallel =
      exec::ExperimentRunner(parallel_threads).Run(specs);
  double parallel_s = SecondsSince(start);

  bool identical = serial.size() == parallel.size();
  for (size_t i = 0; identical && i < serial.size(); ++i) {
    identical = SameMetrics(serial[i].metrics, parallel[i].metrics);
  }
  double grid_speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
  std::cout << "Grid of " << specs.size() << " cells ("
            << allocation::AllMechanismNames().size() << " mechanisms x "
            << num_seeds << " seeds):\n"
            << "  serial (1 thread)       : " << serial_s << " s\n"
            << "  parallel (" << parallel_threads
            << " threads)    : " << parallel_s << " s\n"
            << "  speedup                 : " << grid_speedup << "x\n"
            << "  results identical       : " << (identical ? "yes" : "NO")
            << "\n";

  // Optional structured run report (--report=FILE): the serial grid's
  // SimMetrics per cell. The timed loops above never see a recorder, so
  // --report does not perturb the measurements.
  {
    bench::Telemetry telemetry(args, "Perf: runner + event queue");
    telemetry.ReportField("events_per_sec_tagged", tagged_eps);
    telemetry.ReportField("events_per_sec_callback", callback_eps);
    std::vector<std::string> names = allocation::AllMechanismNames();
    for (size_t i = 0; i < serial.size(); ++i) {
      const std::string& name = names[i % names.size()];
      telemetry.Report(
          name + "@seed" +
              std::to_string(args.seed + static_cast<uint64_t>(
                                             i / names.size())),
          serial[i].metrics);
    }
  }

  std::ofstream json("BENCH_runner.json");
  json << "{\n"
       << "  \"events_total\": " << total_events << ",\n"
       << "  \"events_per_sec_callback\": " << callback_eps << ",\n"
       << "  \"events_per_sec_tagged\": " << tagged_eps << ",\n"
       << "  \"event_queue_speedup\": " << queue_speedup << ",\n"
       << "  \"grid_cells\": " << specs.size() << ",\n"
       << "  \"grid_serial_seconds\": " << serial_s << ",\n"
       << "  \"grid_parallel_seconds\": " << parallel_s << ",\n"
       << "  \"grid_threads\": " << parallel_threads << ",\n"
       << "  \"grid_speedup\": " << grid_speedup << ",\n"
       << "  \"hardware_threads\": "
       << exec::ThreadPool::ResolveThreadCount(0) << ",\n"
       << "  \"deterministic\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "\nWrote BENCH_runner.json\n";
  return identical ? 0 : 1;
}
