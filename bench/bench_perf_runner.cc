// Perf tracking for the execution layer, from this PR onward:
//   (1) events/sec through the discrete-event queue — the tagged-event
//       EventQueue<SimEvent> versus the previous std::function-callback
//       design (reproduced locally below), isolating the win from removing
//       the per-event heap allocation + indirect call;
//   (2) wall-clock of a fig4-style experiment grid, serial versus the
//       parallel ExperimentRunner, with a cell-by-cell determinism check;
//   (3) metrics-collection overhead: the same federation run with and
//       without an attached metrics Collector, gating the observability
//       layer's ≤5% events/sec budget (and byte-identical results).
// Results are printed and written to BENCH_runner.json in the working
// directory so the perf trajectory is machine-readable across PRs (the
// committed repo-root copy is the baseline tools/check_perf.sh gates
// against).

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <vector>

#include "bench/bench_common.h"
#include "util/monotonic_clock.h"
#include "exec/experiment_runner.h"
#include "exec/thread_pool.h"
#include "sim/event_queue.h"

namespace qa {
namespace {

double SecondsSince(int64_t start_nanos) {
  return util::MonotonicClock::SecondsSince(start_nanos);
}

/// The seed's event queue, reproduced verbatim as the baseline: a
/// priority_queue of std::function callbacks, one heap allocation per
/// event (the captured SimEvent-sized payload exceeds every std::function
/// small-buffer) and one indirect call per dispatch.
class CallbackEventQueue {
 public:
  // This bench deliberately rebuilds the pre-PR-1 callback queue to have
  // something to beat; the allocation it measures is the point.
  // qa-lint: allow(QA-HOT-001)
  using Callback = std::function<void()>;

  void Schedule(util::VTime when, Callback fn) {
    events_.push(Event{when, next_seq_++, std::move(fn)});
  }
  util::VTime now() const { return now_; }

  bool RunOne() {
    if (events_.empty()) return false;
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = event.time;
    event.fn();
    return true;
  }
  uint64_t RunAll() {
    uint64_t ran = 0;
    while (RunOne()) ++ran;
    return ran;
  }

 private:
  struct Event {
    util::VTime time;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  util::VTime now_ = 0;
  uint64_t next_seq_ = 0;
};

/// Both queue variants run the same synthetic workload: `width` live
/// arrival->deliver->complete chains cycling until `total` events have
/// fired — the event mix of a federation run. The callback baseline uses
/// three distinct closure shapes (like the seed's HandleQuery /
/// DeliverTask / completion lambdas did), so it pays what the old design
/// really paid per event: a heap allocation for the >16-byte capture plus
/// an indirect call whose target alternates between lambda types.
struct PendingLike {
  workload::Arrival arrival;
  query::QueryId id = 0;
  int attempts = 0;
};

double MeasureCallbackQueue(uint64_t total, int width) {
  CallbackEventQueue q;
  uint64_t fired = 0;
  // qa-lint: allow(QA-HOT-001) — baseline half of the A/B measurement
  std::function<void(const PendingLike&)> on_arrival;
  // qa-lint: allow(QA-HOT-001)
  std::function<void(catalog::NodeId, const sim::QueryTask&)> on_deliver;
  // qa-lint: allow(QA-HOT-001)
  std::function<void(catalog::NodeId, const sim::QueryTask&)> on_complete;
  on_arrival = [&](const PendingLike& pending) {
    ++fired;
    if (fired + static_cast<uint64_t>(width) > total) return;
    sim::QueryTask task;
    task.query_id = pending.id;
    task.class_id = pending.arrival.class_id;
    q.Schedule(q.now() + 7, [&on_deliver, task]() { on_deliver(3, task); });
  };
  on_deliver = [&](catalog::NodeId node, const sim::QueryTask& task) {
    ++fired;
    sim::QueryTask done = task;
    done.exec_time += 1;
    q.Schedule(q.now() + 9,
               [&on_complete, node, done]() { on_complete(node, done); });
  };
  on_complete = [&](catalog::NodeId node, const sim::QueryTask& task) {
    ++fired;
    (void)node;
    PendingLike next;
    next.id = task.query_id;
    q.Schedule(q.now() + 5, [&on_arrival, next]() { on_arrival(next); });
  };
  int64_t start = util::MonotonicClock::NowNanos();
  for (int i = 0; i < width; ++i) {
    PendingLike pending;
    pending.id = i;
    q.Schedule(i, [&on_arrival, pending]() { on_arrival(pending); });
  }
  q.RunAll();
  double seconds = SecondsSince(start);
  return static_cast<double>(fired) / seconds;
}

double MeasureTaggedQueue(uint64_t total, int width) {
  sim::EventQueue<sim::SimEvent> q;
  q.Reserve(static_cast<size_t>(width) + 1);
  uint64_t fired = 0;
  int64_t start = util::MonotonicClock::NowNanos();
  for (int i = 0; i < width; ++i) {
    sim::SimEvent::Pending pending{};
    pending.id = i;
    q.Schedule(i, sim::SimEvent::MakeArrival(pending));
  }
  q.RunAll([&](const sim::SimEvent& event) {
    ++fired;
    switch (event.kind) {
      case sim::SimEvent::Kind::kArrival: {
        if (fired + static_cast<uint64_t>(width) > total) return;
        sim::QueryTask task;
        task.query_id = event.pending.id;
        task.class_id = event.pending.arrival.class_id;
        q.Schedule(q.now() + 7, sim::SimEvent::MakeDeliver(3, task));
        break;
      }
      case sim::SimEvent::Kind::kDeliver: {
        sim::QueryTask done = event.task;
        done.exec_time += 1;
        q.Schedule(q.now() + 9,
                   sim::SimEvent::MakeComplete(event.node, done));
        break;
      }
      case sim::SimEvent::Kind::kComplete: {
        sim::SimEvent::Pending next{};
        next.id = event.task.query_id;
        q.Schedule(q.now() + 5, sim::SimEvent::MakeArrival(next));
        break;
      }
      default:
        break;
    }
  });
  double seconds = SecondsSince(start);
  return static_cast<double>(fired) / seconds;
}

/// A fig4-style grid: every registered mechanism over a sinusoid trace at
/// a handful of seeds.
std::vector<exec::RunSpec> BuildGrid(const query::CostModel& model,
                                     const workload::Trace& trace,
                                     util::VDuration period,
                                     uint64_t base_seed, int num_seeds) {
  std::vector<exec::RunSpec> specs;
  for (int s = 0; s < num_seeds; ++s) {
    for (const std::string& name : allocation::AllMechanismNames()) {
      specs.push_back(
          bench::MakeSpec(model, name, trace, period, base_seed + s));
    }
  }
  return specs;
}

bool SameMetrics(const sim::SimMetrics& a, const sim::SimMetrics& b) {
  return a.completed == b.completed && a.dropped == b.dropped &&
         a.retries == b.retries && a.messages == b.messages &&
         a.assigned == b.assigned && a.end_time == b.end_time &&
         a.MeanResponseMs() == b.MeanResponseMs() &&
         a.response_time_ms.Percentile(95) ==
             b.response_time_ms.Percentile(95);
}

}  // namespace
}  // namespace qa

int main(int argc, char** argv) {
  using namespace qa;
  using util::kMillisecond;
  using util::kSecond;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner("Perf: runner + event queue",
                "events/sec (callback vs tagged queue) and grid wall-clock "
                "(serial vs parallel)",
                args.seed);

  // ---- (1) Event-queue throughput.
  const uint64_t total_events = args.quick ? 400000 : 2000000;
  const int width = 512;
  // Warm both paths once so first-touch page faults don't skew either,
  // then interleave several trials and keep the best of each: on a shared
  // machine the max is the least-interference estimate.
  MeasureCallbackQueue(total_events / 10, width);
  MeasureTaggedQueue(total_events / 10, width);
  const int trials = args.quick ? 3 : 5;
  double callback_eps = 0.0;
  double tagged_eps = 0.0;
  for (int t = 0; t < trials; ++t) {
    callback_eps =
        std::max(callback_eps, MeasureCallbackQueue(total_events, width));
    tagged_eps = std::max(tagged_eps, MeasureTaggedQueue(total_events, width));
  }
  double queue_speedup = callback_eps > 0 ? tagged_eps / callback_eps : 0.0;
  std::cout << "Event queue, " << total_events << " events:\n"
            << "  std::function callbacks : " << callback_eps << " ev/s\n"
            << "  tagged SimEvent structs : " << tagged_eps << " ev/s\n"
            << "  speedup                 : " << queue_speedup << "x\n\n";

  // ---- (2) Grid wall-clock, serial vs parallel.
  util::Rng rng(args.seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = args.quick ? 20 : 30;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

  workload::SinusoidConfig workload;
  workload.frequency_hz = 0.05;
  workload.duration = (args.quick ? 20 : 40) * kSecond;
  workload.num_origin_nodes = scenario.num_nodes;
  workload.q1_peak_rate = 0.95 * capacity;
  util::Rng wl_rng(args.seed + 1);
  workload::Trace trace =
      workload::GenerateSinusoidWorkload(workload, wl_rng);

  int num_seeds = args.quick ? 2 : 3;
  std::vector<exec::RunSpec> specs =
      BuildGrid(*model, trace, period, args.seed, num_seeds);
  int parallel_threads = exec::ExperimentRunner(args.threads).threads();

  // Warm run (untimed) so the serial measurement isn't penalized for
  // first-touch page faults and cold caches relative to the parallel one.
  exec::ExperimentRunner(1).Run(specs);

  int64_t start = util::MonotonicClock::NowNanos();
  std::vector<exec::RunResult> serial =
      exec::ExperimentRunner(1).Run(specs);
  double serial_s = SecondsSince(start);

  start = util::MonotonicClock::NowNanos();
  std::vector<exec::RunResult> parallel =
      exec::ExperimentRunner(parallel_threads).Run(specs);
  double parallel_s = SecondsSince(start);

  bool identical = serial.size() == parallel.size();
  for (size_t i = 0; identical && i < serial.size(); ++i) {
    identical = SameMetrics(serial[i].metrics, parallel[i].metrics);
  }
  double grid_speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
  std::cout << "Grid of " << specs.size() << " cells ("
            << allocation::AllMechanismNames().size() << " mechanisms x "
            << num_seeds << " seeds):\n"
            << "  serial (1 thread)       : " << serial_s << " s\n"
            << "  parallel (" << parallel_threads
            << " threads)    : " << parallel_s << " s\n"
            << "  speedup                 : " << grid_speedup << "x\n"
            << "  results identical       : " << (identical ? "yes" : "NO")
            << "\n";

  // ---- (3) Metrics-collection overhead on the federation hot path.
  // A/B on one spec: no collector vs a collect-only collector (no sink
  // I/O, so this isolates the probe cost — clock reads, histogram
  // records, per-period watchdog evaluation). Overhead comes from the
  // median of back-to-back pair ratios (see the trial loop); the results
  // must stay byte-identical (wall time is a side channel, never an
  // input).
  //
  // The cell is deliberately denser than the grid's: a large federation
  // near saturation, so each market tick carries a realistic batch of
  // allocations. The tiny grid trace (~1 query per tick) would measure
  // the per-tick fixed cost of sampling and watchdog evaluation against
  // almost no simulation work — a degenerate ratio no real experiment
  // operates at.
  sim::TwoClassConfig fed_scenario;
  fed_scenario.num_nodes = args.quick ? 100 : 200;
  util::Rng fed_rng(args.seed + 7);
  auto fed_model = sim::BuildTwoClassCostModel(fed_scenario, fed_rng);
  double fed_capacity =
      sim::EstimateCapacityQps(*fed_model, {2.0, 1.0}, period);
  workload::SinusoidConfig fed_workload;
  fed_workload.frequency_hz = 0.05;
  // Long enough that one run is tens of wall-milliseconds: a few-ms run
  // can be wholly swallowed by one scheduler preemption on a busy box,
  // which is exactly the noise this A/B comparison must see through.
  fed_workload.duration = (args.quick ? 60 : 120) * kSecond;
  fed_workload.num_origin_nodes = fed_scenario.num_nodes;
  fed_workload.q1_peak_rate = 0.9 * fed_capacity;
  util::Rng fed_wl_rng(args.seed + 8);
  workload::Trace fed_trace =
      workload::GenerateSinusoidWorkload(fed_workload, fed_wl_rng);
  struct FedMeasure {
    double wall_eps = 0.0;  // events per wall-clock second (headline)
    double cpu_eps = 0.0;   // events per CPU second (overhead ratios)
  };
  auto measure_fed = [&](obs::metrics::Collector* collector,
                         sim::SimMetrics* out) {
    exec::RunSpec spec =
        bench::MakeSpec(*fed_model, "QA-NT", fed_trace, period, args.seed);
    spec.config.metrics = collector;
    int64_t c0 = util::MonotonicClock::ProcessCpuNanos();
    int64_t t0 = util::MonotonicClock::NowNanos();
    *out = exec::RunSpecOnce(spec).metrics;
    double wall_s = SecondsSince(t0);
    double cpu_s = static_cast<double>(
                       util::MonotonicClock::ProcessCpuNanos() - c0) *
                   1e-9;
    FedMeasure m;
    double events = static_cast<double>(out->events_dispatched);
    if (wall_s > 0) m.wall_eps = events / wall_s;
    if (cpu_s > 0) m.cpu_eps = events / cpu_s;
    return m;
  };
  sim::SimMetrics fed_plain, fed_metered;
  measure_fed(nullptr, &fed_plain);  // warm
  double plain_eps = 0.0;
  double metered_eps = 0.0;
  // Kept past the loop so the bench can print the last trial's phase
  // profile (collectors are pinned by address — not movable).
  auto fed_collector = std::make_unique<obs::metrics::Collector>();
  // The overhead is a few percent, well under the wall-clock noise floor
  // of a shared machine (scheduler preemption swings even the median of
  // paired wall ratios by more than the gate). So the A/B ratio is taken
  // on process CPU time, which does not see time stolen by other
  // processes: each trial is a back-to-back pair whose order alternates
  // (cancels any systematic first-runner advantage), and the estimate is
  // the median of per-pair CPU-time ratios (discards pairs hit by
  // frequency shifts, the residual noise CPU time does see). Wall-clock
  // best-of is still what the headline events/sec figures report.
  const int fed_trials = 15;  // odd: the median is a real element
  std::vector<double> fed_ratios;
  for (int t = 0; t < fed_trials; ++t) {
    auto collector = std::make_unique<obs::metrics::Collector>();
    FedMeasure pair_plain, pair_metered;
    if (t % 2 == 0) {
      pair_plain = measure_fed(nullptr, &fed_plain);
      pair_metered = measure_fed(collector.get(), &fed_metered);
    } else {
      pair_metered = measure_fed(collector.get(), &fed_metered);
      pair_plain = measure_fed(nullptr, &fed_plain);
    }
    plain_eps = std::max(plain_eps, pair_plain.wall_eps);
    metered_eps = std::max(metered_eps, pair_metered.wall_eps);
    if (pair_plain.cpu_eps > 0 && pair_metered.cpu_eps > 0) {
      fed_ratios.push_back(pair_metered.cpu_eps / pair_plain.cpu_eps);
    }
    if (t == fed_trials - 1) fed_collector = std::move(collector);
  }
  bool metrics_identical = SameMetrics(fed_plain, fed_metered);
  identical = identical && metrics_identical;
  std::sort(fed_ratios.begin(), fed_ratios.end());
  const double median_ratio =
      fed_ratios.empty() ? 1.0 : fed_ratios[fed_ratios.size() / 2];
  double overhead_pct = (1.0 - median_ratio) * 100.0;
  std::cout << "\nFederation run (" << fed_scenario.num_nodes
            << " nodes), metrics collector attached vs not:\n"
            << "  plain                   : " << plain_eps << " ev/s\n"
            << "  with collector          : " << metered_eps << " ev/s\n"
            << "  overhead (median pair,\n"
            << "   CPU time)              : " << overhead_pct << " %\n"
            << "  results identical       : "
            << (metrics_identical ? "yes" : "NO") << "\n"
            << "  phase profile (collect-only, last trial):\n"
            << "  " << fed_collector->PerfJson().Dump() << "\n";

  // Optional structured run report (--report=FILE): the serial grid's
  // SimMetrics per cell. The timed loops above never see a recorder, so
  // --report does not perturb the measurements.
  {
    bench::Telemetry telemetry(args, "Perf: runner + event queue");
    telemetry.ReportField("events_per_sec_tagged", tagged_eps);
    telemetry.ReportField("events_per_sec_callback", callback_eps);
    // With --metrics/--prom/--trace, replay the federation cell once more
    // with the sink-backed collector and/or trace recorder attached
    // (untimed — the measurements above are already done) so the sidecars
    // carry a real phase profile and event stream for tools/qa_perf and
    // `tools/qa_trace --alarms=`.
    if (telemetry.collector() != nullptr || telemetry.recorder() != nullptr) {
      exec::RunSpec spec =
          bench::MakeSpec(*fed_model, "QA-NT", fed_trace, period, args.seed);
      telemetry.Metrics(spec);
      telemetry.Trace(spec);
      exec::RunSpecOnce(spec);
    }
    std::vector<std::string> names = allocation::AllMechanismNames();
    for (size_t i = 0; i < serial.size(); ++i) {
      const std::string& name = names[i % names.size()];
      telemetry.Report(
          name + "@seed" +
              std::to_string(args.seed + static_cast<uint64_t>(
                                             i / names.size())),
          serial[i].metrics);
    }
  }

  std::ofstream json("BENCH_runner.json");
  json << "{\n"
       << "  \"events_total\": " << total_events << ",\n"
       << "  \"events_per_sec_callback\": " << callback_eps << ",\n"
       << "  \"events_per_sec_tagged\": " << tagged_eps << ",\n"
       << "  \"event_queue_speedup\": " << queue_speedup << ",\n"
       << "  \"grid_cells\": " << specs.size() << ",\n"
       << "  \"grid_serial_seconds\": " << serial_s << ",\n"
       << "  \"grid_parallel_seconds\": " << parallel_s << ",\n"
       << "  \"grid_threads\": " << parallel_threads << ",\n"
       << "  \"grid_speedup\": " << grid_speedup << ",\n"
       << "  \"fed_events_per_sec_plain\": " << plain_eps << ",\n"
       << "  \"fed_events_per_sec_metrics\": " << metered_eps << ",\n"
       << "  \"metrics_overhead_pct\": " << overhead_pct << ",\n"
       << "  \"hardware_threads\": "
       << exec::ThreadPool::ResolveThreadCount(0) << ",\n"
       << "  \"deterministic\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "\nWrote BENCH_runner.json\n";
  return identical ? 0 : 1;
}
