// Reproduces Fig. 5c: how QA-NT and Greedy track a near-capacity load.
// Prints the number of Q1 queries arriving per half second and the number
// of Q1 queries executed by each mechanism in the same window over the
// first 15 s. The paper's shape: QA-NT follows the arrival curve closely
// (it parks Q2 on the slow nodes), Greedy saturates and falls behind.

#include <iostream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace qa;
  using util::kMillisecond;
  using util::kSecond;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Fig. 5c",
                "Q1 arrivals vs Q1 completions per half second "
                "(near-capacity sinusoid)",
                seed);

  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = quick ? 30 : 100;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

  workload::SinusoidConfig workload;
  workload.frequency_hz = 0.05;
  workload.duration = 20 * kSecond;
  workload.num_origin_nodes = scenario.num_nodes;
  // "Temporary loads close to the total capacity": the Q1 peak pushes the
  // system briefly past capacity so the allocation of Q2 decides whether
  // Q1 can be followed (positioned above our QA-NT/Greedy crossover, see
  // EXPERIMENTS.md).
  workload.q1_peak_rate = 1.5 * capacity;
  util::Rng wl_rng(seed + 1);
  workload::Trace trace =
      workload::GenerateSinusoidWorkload(workload, wl_rng);

  bench::Telemetry telemetry(args, "Fig. 5c");
  telemetry.ReportField("capacity_qps", capacity);
  QA_OBS(telemetry.recorder()) {
    telemetry.recorder()->Gauge("capacity_qps", capacity);
  }

  // The trace (when requested) follows the QA-NT run: its per-period
  // price/supply snapshots are what tools/qa_trace turns into the
  // convergence diagnostics.
  exec::RunSpec qa_spec = bench::MakeSpec(*model, "QA-NT", trace, period,
                                          seed);
  telemetry.Trace(qa_spec);
  sim::SimMetrics qa_nt = exec::RunSpecOnce(qa_spec).metrics;
  sim::SimMetrics greedy =
      bench::RunMechanism(*model, "Greedy", trace, period, seed);
  telemetry.Report("QA-NT", qa_nt);
  telemetry.Report("Greedy", greedy);

  util::VTime horizon = 15 * kSecond;
  std::vector<int> arrivals =
      trace.ArrivalCounts(0, 500 * kMillisecond, horizon);
  std::vector<size_t> qa_done =
      qa_nt.completions_per_class[0].BucketCounts(500 * kMillisecond,
                                                  horizon);
  std::vector<size_t> greedy_done =
      greedy.completions_per_class[0].BucketCounts(500 * kMillisecond,
                                                   horizon);

  util::TableWriter table({"t (ms)", "Q1 arriving", "Q1 done (QA-NT)",
                           "Q1 done (Greedy)"});
  for (size_t b = 0; b < arrivals.size(); ++b) {
    table.AddRow(static_cast<int64_t>(b) * 500, arrivals[b],
                 static_cast<int64_t>(qa_done[b]),
                 static_cast<int64_t>(greedy_done[b]));
  }
  table.Print(std::cout);

  // Tracking error: total |arrivals - completions| over the window.
  auto tracking_error = [&](const std::vector<size_t>& done) {
    int64_t err = 0;
    for (size_t b = 0; b < arrivals.size(); ++b) {
      err += std::abs(static_cast<int64_t>(arrivals[b]) -
                      static_cast<int64_t>(done[b]));
    }
    return err;
  };
  std::cout << "\nCumulative Q1 tracking error (lower = follows load "
               "better): QA-NT="
            << tracking_error(qa_done)
            << " Greedy=" << tracking_error(greedy_done) << "\n"
            << "Paper's Fig. 5c: QA-NT closely follows the Q1 curve while "
               "Greedy overloads the system and cannot serve all Q1.\n";
  return 0;
}
