// Reproduces Fig. 4: average normalized query response time of QA-NT,
// Greedy, Random, Round-Robin, BNQRD and two-random-probes on the
// heterogeneous 100-node federation under a 0.05 Hz sinusoid workload with
// peak load slightly below total system capacity. Response times are
// normalized by QA-NT's (as in the paper).

#include <iostream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace qa;
  using util::kMillisecond;
  using util::kSecond;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Fig. 4",
                "Normalized mean response time, 0.05 Hz sinusoid, peak "
                "slightly below capacity, 100 heterogeneous nodes",
                seed);

  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = quick ? 30 : 100;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);

  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);
  std::cout << "Estimated system capacity for the 2:1 Q1:Q2 mix: "
            << capacity << " queries/s\n";

  workload::SinusoidConfig workload;
  workload.frequency_hz = 0.05;
  workload.duration = (quick ? 40 : 100) * kSecond;
  workload.num_origin_nodes = scenario.num_nodes;
  // Mean rate = 0.75 * q1_peak; peak instantaneous ~ q1_peak (the classes
  // are anti-phased); "peak slightly below capacity" => q1_peak ~ 0.95 C.
  workload.q1_peak_rate = 0.95 * capacity;
  util::Rng wl_rng(seed + 1);
  workload::Trace trace =
      workload::GenerateSinusoidWorkload(workload, wl_rng);
  std::cout << "Workload: " << trace.size() << " queries over "
            << util::ToSeconds(workload.duration) << " s\n\n";

  // One grid cell per mechanism, run concurrently; results come back in
  // submission order, so the table below is byte-identical at any
  // --threads value.
  bench::Telemetry telemetry(args, "Fig. 4");
  telemetry.ReportField("capacity_qps", capacity);
  std::vector<std::string> names = allocation::AllMechanismNames();
  std::vector<exec::RunSpec> specs;
  for (const std::string& name : names) {
    specs.push_back(bench::MakeSpec(*model, name, trace, period, seed));
    // Trace the market mechanism's run (single-writer: QA-NT only).
    if (name == "QA-NT") telemetry.Trace(specs.back());
  }
  std::vector<exec::RunResult> cells = args.MakeRunner().Run(specs);

  double qa_nt_ms = 0.0;
  std::vector<std::pair<std::string, sim::SimMetrics>> results;
  for (size_t i = 0; i < names.size(); ++i) {
    sim::SimMetrics m = std::move(cells[i].metrics);
    if (names[i] == "QA-NT") qa_nt_ms = m.MeanResponseMs();
    telemetry.Report(names[i], m);
    results.emplace_back(names[i], std::move(m));
  }

  util::TableWriter table({"Mechanism", "Mean response (ms)",
                           "Normalized (QA-NT=1)", "p95 (ms)", "Completed",
                           "Dropped"});
  for (auto& [name, m] : results) {
    table.AddRow(name, m.MeanResponseMs(),
                 qa_nt_ms > 0 ? m.MeanResponseMs() / qa_nt_ms : 0.0,
                 m.response_time_ms.Percentile(95), m.completed, m.dropped);
  }
  table.Print(std::cout);
  std::cout << "\nPaper's Fig. 4 shape: QA-NT and Greedy far ahead; "
               "Random and Round-Robin worst (they ignore node speed); "
               "BNQRD balances load but equalizes fast and slow nodes; "
               "two-probes between Round-Robin and BNQRD.\n";
  return 0;
}
