// Scale-out sweep: the hierarchical two-tier market against flat
// bounded-fanout QA-NT as the federation grows from 10,000 to 1,000,000
// nodes.
//
// The paper's own Table 2 flags QA-NT's broadcast solicitation as its main
// liability; bounded fanout (power-of-d-choices) fixed msgs/query up to
// 10k nodes in earlier revisions of this bench. This revision asks the
// next question: does a *two-tier* market — sqrt(N) clusters, each running
// its own QA-NT sub-market and publishing its aggregate eq.-4 supply as a
// top-tier commodity — hold the same message budget and response quality
// at 100k-1M nodes?
//
// Cells per node count, all at the same 33 msgs/query budget:
//   QA-NT/flat-16    flat market, uniform-sample(16)    (2*16+1 msgs)
//   QA-NT/hier-8x8   sqrt(N) clusters, top uniform-8,
//                    member uniform-8                   (2*8+2*8+1 msgs)
//   Random           no-information baseline
//
// The workload is the two-class sinusoid at a fixed query count and a
// fixed 6 s horizon (12 market periods), so msgs/query and
// time-to-equilibrium are comparable across node counts; per-node load
// thins as N grows (running 1M nodes at saturation is neither tractable
// on one machine nor what a scaling study needs — the message and routing
// costs are per-query, not per-idle-node). Capacity context comes from a
// 2,000-node reference model scaled linearly — EstimateCapacityQps is
// never run on the big models.
//
// Headline gates (exit non-zero on violation):
//   * hier completes >= 90% of flat-16's queries at every N (equal budget);
//   * hier msgs/query stays near-flat across the sweep (<= 1.2x spread).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "allocation/cluster_plan.h"
#include "bench/bench_common.h"
#include "obs/metrics/metrics_reader.h"
#include "util/monotonic_clock.h"

namespace {

using namespace qa;
using util::kMillisecond;

/// Time-to-equilibrium from a cell's metrics stream: per-period excess
/// demand (retry share of allocation attempts, from msample diffs) must
/// stay inside `band` for `window` consecutive periods. Returns the first
/// such period, or -1 when the market never settles.
struct Equilibrium {
  int period = -1;
  double time_ms = -1.0;
};

Equilibrium TimeToEquilibrium(const std::string& metrics_jsonl,
                              double band, int window) {
  Equilibrium eq;
  util::StatusOr<obs::metrics::ParsedMetrics> parsed =
      obs::metrics::ParsedMetrics::Parse(metrics_jsonl);
  if (!parsed.ok()) return eq;
  const std::vector<obs::Json>& samples = parsed.value().samples;
  int64_t prev_assigned = 0, prev_retries = 0;
  std::vector<double> ratio;
  std::vector<double> t_ms;
  for (const obs::Json& sample : samples) {
    int64_t assigned = sample.GetInt("assigned");
    int64_t retries = sample.GetInt("retries");
    int64_t d_assigned = assigned - prev_assigned;
    int64_t d_retries = retries - prev_retries;
    prev_assigned = assigned;
    prev_retries = retries;
    int64_t attempts = d_assigned + d_retries;
    ratio.push_back(attempts > 0 ? static_cast<double>(d_retries) /
                                       static_cast<double>(attempts)
                                 : 0.0);
    t_ms.push_back(static_cast<double>(sample.GetInt("t_us")) / 1000.0);
  }
  int in_band = 0;
  for (size_t p = 0; p < ratio.size(); ++p) {
    in_band = ratio[p] <= band ? in_band + 1 : 0;
    if (in_band >= window) {
      eq.period = static_cast<int>(p) - window + 1;
      eq.time_ms = t_ms[static_cast<size_t>(eq.period)];
      return eq;
    }
  }
  return eq;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  if (args.report_path.empty()) args.report_path = "BENCH_scale.json";
  const uint64_t seed = args.seed;
  bench::Banner("Scale",
                "Hierarchical two-tier market vs flat QA-NT, "
                "10k -> 1M nodes at equal message budget",
                seed);

  // 500k/1M are smoke cells: fewer queries, same fixed horizon — they
  // prove the hierarchy builds and routes at that scale without making a
  // one-core sweep take hours.
  std::vector<int> node_counts = args.quick
                                     ? std::vector<int>{1000, 10000}
                                     : std::vector<int>{10000, 100000,
                                                        500000, 1000000};
  auto queries_for = [&](int num_nodes) {
    if (args.quick) return 2000.0;
    return num_nodes > 100000 ? 4000.0 : 12000.0;
  };
  const double duration_s = 6.0;  // 12 periods of 500 ms at every N
  const util::VDuration period = 500 * kMillisecond;
  const double band = 0.1;
  const int window = 3;

  // Capacity context from a small reference federation, scaled linearly.
  // The reference uses the same per-node cost distribution, so capacity
  // is ~proportional to N; the big models are never market-simulated.
  const int ref_nodes = args.quick ? 200 : 2000;
  double ref_capacity;
  {
    util::Rng rng(seed);
    sim::TwoClassConfig ref;
    ref.num_nodes = ref_nodes;
    auto ref_model = sim::BuildTwoClassCostModel(ref, rng);
    ref_capacity = sim::EstimateCapacityQps(*ref_model, {2.0, 1.0}, period);
  }

  bench::Telemetry telemetry(args, "Scale");
  telemetry.ReportField("ref_nodes", obs::Json(ref_nodes));
  telemetry.ReportField("ref_capacity_qps", obs::Json(ref_capacity));
  util::TableWriter table({"Nodes", "Mechanism", "Msgs/query", "Completed",
                           "Quality", "Mean (ms)", "TTEq (period)",
                           "Events/sec (wall)"});

  bool traced = false;
  double hier_msgs_min = 0.0, hier_msgs_max = 0.0;
  bool hier_seen = false;
  int gate_failures = 0;

  for (int num_nodes : node_counts) {
    util::Rng rng(seed);
    sim::TwoClassConfig scenario;
    scenario.num_nodes = num_nodes;
    auto model = sim::BuildTwoClassCostModel(scenario, rng);

    double target_queries = queries_for(num_nodes);
    workload::SinusoidConfig workload;
    workload.q1_peak_rate = target_queries / (1.125 * duration_s);
    workload.duration = util::FromSeconds(duration_s);
    workload.frequency_hz = 1.0 / duration_s;
    workload.num_origin_nodes = num_nodes;
    util::Rng wl_rng(seed + 1);
    workload::Trace trace =
        workload::GenerateSinusoidWorkload(workload, wl_rng);

    int num_clusters = static_cast<int>(
        std::lround(std::sqrt(static_cast<double>(num_nodes))));
    double scaled_capacity =
        ref_capacity * static_cast<double>(num_nodes) /
        static_cast<double>(ref_nodes);
    std::cout << "N=" << num_nodes << ": " << trace.size()
              << " queries over " << duration_s << " s ("
              << 100.0 * 1.125 * workload.q1_peak_rate / scaled_capacity
              << "% of est. capacity), " << num_clusters << " clusters\n";

    // One cell at a time, timed individually: events/sec is a per-cell
    // wall-clock rate, so cells must not share the CPU. Each cell gets
    // its own metrics collector so time-to-equilibrium comes from the
    // msample stream (one line per period at any N).
    auto run_cell = [&](const std::string& label, exec::RunSpec spec) {
      std::ostringstream metrics_stream;
      obs::metrics::Collector collector(&metrics_stream);
      spec.config.metrics = &collector;
      int64_t start = util::MonotonicClock::NowNanos();
      sim::SimMetrics m = exec::RunSpecOnce(spec).metrics;
      double wall_s = util::MonotonicClock::SecondsSince(start);
      collector.Finish();
      Equilibrium eq = TimeToEquilibrium(metrics_stream.str(), band, window);
      double queries = static_cast<double>(trace.size());
      double msgs_per_query =
          queries > 0 ? static_cast<double>(m.messages) / queries : 0.0;
      double events_per_sec =
          wall_s > 0 ? static_cast<double>(m.events_dispatched) / wall_s
                     : 0.0;
      obs::Json row = sim::MetricsToJson(m);
      row.Set("nodes", num_nodes);
      row.Set("queries", static_cast<int64_t>(trace.size()));
      row.Set("msgs_per_query", msgs_per_query);
      row.Set("tteq_period", eq.period);
      row.Set("tteq_ms", eq.time_ms);
      row.Set("wall_s", wall_s);
      row.Set("events_per_sec", events_per_sec);
      struct Cell {
        sim::SimMetrics metrics;
        double msgs_per_query;
        int tteq_period;
        obs::Json row;
        std::string label;
        double events_per_sec;
      };
      return Cell{m, msgs_per_query, eq.period, std::move(row), label,
                  events_per_sec};
    };
    auto finish_cell = [&](auto cell, double quality) {
      char quality_buf[32];
      std::snprintf(quality_buf, sizeof(quality_buf), "%.3f", quality);
      table.AddRow(num_nodes, cell.label, cell.msgs_per_query,
                   cell.metrics.completed,
                   quality > 0.0 ? std::string(quality_buf)
                                 : std::string("-"),
                   cell.metrics.MeanResponseMs(),
                   cell.tteq_period >= 0 ? std::to_string(cell.tteq_period)
                                         : std::string("-"),
                   cell.events_per_sec);
      if (quality > 0.0) cell.row.Set("quality_vs_flat16", quality);
      telemetry.ReportField(
          "N" + std::to_string(num_nodes) + "/" + cell.label,
          std::move(cell.row));
    };

    // Flat reference: uniform-sample(16), 2*16+1 = 33 msgs/query.
    exec::RunSpec flat_spec =
        bench::MakeSpec(*model, "QA-NT", trace, period, seed);
    flat_spec.config.solicitation.policy =
        allocation::SolicitationPolicy::kUniformSample;
    flat_spec.config.solicitation.fanout = 16;
    auto flat = run_cell("QA-NT/flat-16", flat_spec);

    // Two-tier market at the same budget: sqrt(N) clusters, top tier
    // uniform-8 over cluster aggregates, member tier uniform-8 inside the
    // routed cluster — 2*8 + 2*8 + 1 = 33 msgs/query.
    exec::RunSpec hier_spec =
        bench::MakeSpec(*model, "QA-NT", trace, period, seed);
    hier_spec.config.solicitation.policy =
        allocation::SolicitationPolicy::kUniformSample;
    hier_spec.config.solicitation.fanout = 8;
    hier_spec.config.cluster_plan = allocation::ClusterPlan::Uniform(
        num_nodes, num_clusters, /*top_fanout=*/8);
    if (!traced && telemetry.recorder() != nullptr) {
      // Trace the smallest hierarchical cell only: one traced run per
      // binary (single-writer recorder), and the small cell keeps the
      // file tractable.
      telemetry.Trace(hier_spec);
      traced = true;
    }
    auto hier = run_cell("QA-NT/hier-8x8", hier_spec);

    auto random = run_cell(
        "Random", bench::MakeSpec(*model, "Random", trace, period, seed));

    double quality =
        flat.metrics.completed > 0
            ? static_cast<double>(hier.metrics.completed) /
                  static_cast<double>(flat.metrics.completed)
            : 0.0;
    double hier_msgs = hier.msgs_per_query;
    finish_cell(std::move(flat), 0.0);
    finish_cell(std::move(hier), quality);
    finish_cell(std::move(random), 0.0);

    if (quality < 0.9) {
      std::cerr << "GATE: N=" << num_nodes << " hier completed only "
                << quality * 100.0 << "% of flat-16 (floor 90%)\n";
      ++gate_failures;
    }
    hier_msgs_min = hier_seen ? std::min(hier_msgs_min, hier_msgs) : hier_msgs;
    hier_msgs_max = std::max(hier_msgs_max, hier_msgs);
    hier_seen = true;
    std::cout << "  hier quality " << quality * 100.0
              << "% of flat-16 at equal 33 msgs/query budget\n\n";
  }

  table.Print(std::cout);
  if (hier_seen && hier_msgs_max > 1.2 * hier_msgs_min) {
    std::cerr << "GATE: hier msgs/query spread " << hier_msgs_min << " -> "
              << hier_msgs_max << " exceeds 1.2x across the sweep\n";
    ++gate_failures;
  }
  telemetry.ReportField("gate_failures", obs::Json(gate_failures));
  std::cout << "\nBoth markets spend the same 33 msgs/query budget; the "
               "two-tier market splits it 8 cluster aggregates + 8 member "
               "probes, so the budget — and the routing quality it buys — "
               "stays flat from 10k to 1M nodes while per-arrival work "
               "drops from O(N) candidate scans to O(sqrt(N)) tiers.\n";
  return gate_failures == 0 ? 0 : 1;
}
