// Scale-out sweep: message cost and throughput of bounded-fanout QA-NT
// solicitation as the federation grows from 100 to 10,000 nodes.
//
// The paper's own Table 2 flags QA-NT's broadcast solicitation as its main
// liability (~500 msgs/query at 100 nodes); this bench shows the
// power-of-d-choices fix. Each node count runs the Fig. 4 operating point
// (two-class sinusoid, peak ~0.95 of estimated capacity, one full cycle)
// under QA-NT x {broadcast, uniform-sample(4), uniform-sample(16),
// stratified-sample(16)} plus the TwoProbes and Random baselines. The
// workload duration shrinks as capacity grows so every cell places the
// same ~12k queries — msgs/query is then comparable across node counts.
//
// Headline: msgs/query under broadcast grows ~linearly with N (~100x from
// 100 to 10,000 nodes) while d=16 stays near-flat (<= 1.2x), with
// completed queries within 10% of broadcast.

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/monotonic_clock.h"

namespace {


struct Policy {
  std::string label;
  qa::allocation::SolicitationConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace qa;
  using util::kMillisecond;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  if (args.report_path.empty()) args.report_path = "BENCH_scale.json";
  const uint64_t seed = args.seed;
  bench::Banner("Scale",
                "Bounded-fanout QA-NT solicitation, 100 -> 10,000 nodes, "
                "Fig. 4 operating point",
                seed);

  std::vector<int> node_counts =
      args.quick ? std::vector<int>{100, 300, 1000}
                 : std::vector<int>{100, 1000, 10000};
  // ~12k queries per cell regardless of node count: msgs/query comparable
  // across the sweep, and the 10k-node broadcast cell stays tractable.
  const double target_queries = args.quick ? 4000.0 : 12000.0;

  std::vector<Policy> policies;
  policies.push_back({"broadcast", {}});
  allocation::SolicitationConfig uniform4;
  uniform4.policy = allocation::SolicitationPolicy::kUniformSample;
  uniform4.fanout = 4;
  policies.push_back({"uniform-4", uniform4});
  allocation::SolicitationConfig uniform16 = uniform4;
  uniform16.fanout = 16;
  policies.push_back({"uniform-16", uniform16});
  allocation::SolicitationConfig stratified16;
  stratified16.policy = allocation::SolicitationPolicy::kStratifiedSample;
  stratified16.fanout = 16;
  policies.push_back({"stratified-16", stratified16});

  bench::Telemetry telemetry(args, "Scale");
  util::TableWriter table({"Nodes", "Mechanism", "Msgs/query", "Solicited/q",
                           "Completed", "Dropped", "Mean (ms)",
                           "Events/sec (wall)"});

  for (int num_nodes : node_counts) {
    util::Rng rng(seed);
    sim::TwoClassConfig scenario;
    scenario.num_nodes = num_nodes;
    auto model = sim::BuildTwoClassCostModel(scenario, rng);

    util::VDuration period = 500 * kMillisecond;
    double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

    // Same Fig. 4 shape at every scale: peak ~0.95 capacity, one full
    // sinusoid cycle — but the cycle shortens as capacity grows so the
    // query count stays ~constant (mean rate of the two anti-phased
    // classes is ~0.75 * q1_peak + 0.375 * q1_peak).
    workload::SinusoidConfig workload;
    workload.q1_peak_rate = 0.95 * capacity;
    double mean_rate = 1.125 * workload.q1_peak_rate;
    double duration_s =
        mean_rate > 0.0 ? target_queries / mean_rate : 1.0;
    workload.duration = util::FromSeconds(duration_s);
    workload.frequency_hz = 1.0 / duration_s;
    workload.num_origin_nodes = num_nodes;
    util::Rng wl_rng(seed + 1);
    workload::Trace trace =
        workload::GenerateSinusoidWorkload(workload, wl_rng);
    std::cout << "N=" << num_nodes << ": capacity " << capacity
              << " q/s, " << trace.size() << " queries over " << duration_s
              << " s\n";

    // One cell at a time, timed individually: events/sec is a per-cell
    // wall-clock rate, so cells must not share the CPU.
    auto run_cell = [&](const std::string& label,
                        const exec::RunSpec& spec) {
      int64_t start = util::MonotonicClock::NowNanos();
      sim::SimMetrics m = exec::RunSpecOnce(spec).metrics;
      double wall_s =
          util::MonotonicClock::SecondsSince(start);
      double queries = static_cast<double>(trace.size());
      double msgs_per_query =
          queries > 0 ? static_cast<double>(m.messages) / queries : 0.0;
      double solicited_per_query =
          queries > 0 ? static_cast<double>(m.solicited) / queries : 0.0;
      double events_per_sec =
          wall_s > 0 ? static_cast<double>(m.events_dispatched) / wall_s
                     : 0.0;
      table.AddRow(num_nodes, label, msgs_per_query, solicited_per_query,
                   m.completed, m.dropped, m.MeanResponseMs(),
                   events_per_sec);
      obs::Json row = sim::MetricsToJson(m);
      row.Set("nodes", num_nodes);
      row.Set("queries", static_cast<int64_t>(trace.size()));
      row.Set("msgs_per_query", msgs_per_query);
      row.Set("solicited_per_query", solicited_per_query);
      row.Set("wall_s", wall_s);
      row.Set("events_per_sec", events_per_sec);
      telemetry.ReportField(
          "N" + std::to_string(num_nodes) + "/" + label, std::move(row));
      return m;
    };

    int64_t broadcast_completed = 0;
    for (const Policy& policy : policies) {
      exec::RunSpec spec =
          bench::MakeSpec(*model, "QA-NT", trace, period, seed);
      spec.config.solicitation = policy.config;
      sim::SimMetrics m = run_cell("QA-NT/" + policy.label, spec);
      if (policy.label == "broadcast") {
        broadcast_completed = m.completed;
      } else if (broadcast_completed > 0) {
        double quality = static_cast<double>(m.completed) /
                         static_cast<double>(broadcast_completed);
        std::cout << "  QA-NT/" << policy.label << " completed "
                  << quality * 100.0 << "% of broadcast\n";
      }
    }
    for (const std::string name : {"TwoProbes", "Random"}) {
      run_cell(name, bench::MakeSpec(*model, name, trace, period, seed));
    }
    std::cout << "\n";
  }

  table.Print(std::cout);
  std::cout << "\nBroadcast solicits every feasible node, so msgs/query "
               "tracks N; a fanout of 16 (power-of-d-choices) keeps "
               "msgs/query near-flat from 100 to 10,000 nodes while "
               "completing within a few percent of broadcast.\n";
  return 0;
}
