// Future-work extension (paper §6): "the constraint of equitable
// allocation, in which the utility (satisfaction) of all nodes is
// equalized". The client-side offer selection is switched from "cheapest
// offering node" to "offering node with the least cumulative earnings" and
// we measure what the fairness costs: response time (efficiency) vs the
// dispersion of node earnings (equity).

#include <algorithm>
#include <cmath>
#include <iostream>

#include "allocation/qa_nt_allocator.h"
#include "bench/bench_common.h"
#include "util/mathutil.h"

namespace qa {
namespace {

using util::kMillisecond;
using util::kSecond;

/// Coefficient of variation of the agents' earnings (0 = perfectly equal).
double EarningsCv(const allocation::QaNtAllocator& alloc) {
  std::vector<double> earnings;
  for (int i = 0; i < alloc.num_nodes(); ++i) {
    earnings.push_back(alloc.agent(i).earnings());
  }
  double mean = util::Mean(earnings);
  return mean > 0.0 ? util::StdDev(earnings) / mean : 0.0;
}

}  // namespace
}  // namespace qa

int main(int argc, char** argv) {
  using namespace qa;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Ablation: equitable allocation (paper future work)",
                "Cheapest-offer vs equal-utility offer selection", seed);

  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = quick ? 20 : 50;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

  workload::SinusoidConfig wave;
  wave.frequency_hz = 0.05;
  wave.duration = (quick ? 30 : 60) * kSecond;
  wave.num_origin_nodes = scenario.num_nodes;
  wave.q1_peak_rate = 0.9 * capacity / 0.75;
  util::Rng wl_rng(seed + 1);
  workload::Trace trace = workload::GenerateSinusoidWorkload(wave, wl_rng);

  using Selection = allocation::QaNtAllocator::OfferSelection;
  std::vector<Selection> selections = {Selection::kCheapest,
                                       Selection::kEquitable};
  std::vector<exec::RunSpec> specs;
  for (Selection selection : selections) {
    exec::RunSpec spec = bench::MakeSpec(*model, "", trace, period, seed);
    spec.make_allocator = [&model, period, selection]() {
      return std::make_unique<allocation::QaNtAllocator>(
          model.get(), period, market::QaNtConfig{}, selection);
    };
    // The fairness readout lives in the allocator's agents, which only the
    // worker ever sees: the probe extracts it before the allocator dies.
    spec.probe = [](const allocation::Allocator& alloc) {
      return EarningsCv(
          static_cast<const allocation::QaNtAllocator&>(alloc));
    };
    specs.push_back(std::move(spec));
  }
  bench::Telemetry telemetry(args, "Ablation: equitable allocation");
  telemetry.ReportField("capacity_qps", capacity);
  // Trace the cheapest-offer (paper) run.
  if (!specs.empty()) telemetry.Trace(specs.front());
  std::vector<exec::RunResult> cells = args.MakeRunner().Run(specs);

  util::TableWriter table({"Offer selection", "Mean (ms)", "p95 (ms)",
                           "Earnings CV (lower = fairer)"});
  for (size_t i = 0; i < selections.size(); ++i) {
    const sim::SimMetrics& m = cells[i].metrics;
    telemetry.Report(selections[i] == Selection::kCheapest ? "cheapest"
                                                           : "equitable",
                     m);
    table.AddRow(selections[i] == Selection::kCheapest
                     ? "cheapest (paper)"
                     : "equitable (future work)",
                 m.MeanResponseMs(), m.response_time_ms.Percentile(95),
                 cells[i].probe);
  }
  table.Print(std::cout);
  std::cout << "\nReading: the equitable rule flattens the earnings "
               "distribution; interestingly, in this configuration the "
               "fairness constraint also spreads load and *improves* "
               "response time — equalizing utility doubles as a "
               "load-balancing prior.\n";
  return 0;
}
