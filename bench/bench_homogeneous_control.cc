// Control experiment from §5.1: "We run experiments with both homogeneous
// nodes ... and heterogeneous ones ... In the former case, all algorithms
// tested performed similar[ly]". A federation of identical nodes removes
// the speed differences the smarter mechanisms exploit, so the whole
// comparison compresses; the heterogeneous column (the Fig. 4 setup) is
// printed alongside for contrast.

#include <algorithm>
#include <iostream>
#include <limits>

#include "bench/bench_common.h"

namespace qa {
namespace {

using util::kMillisecond;
using util::kSecond;

double RunMean(const query::CostModel& model, const std::string& name,
               const workload::Trace& trace, util::VDuration period,
               uint64_t seed, bench::Telemetry& telemetry,
               const std::string& label) {
  sim::SimMetrics metrics =
      bench::RunMechanism(model, name, trace, period, seed);
  telemetry.Report(label, metrics);
  return metrics.MeanResponseMs();
}

}  // namespace
}  // namespace qa

int main(int argc, char** argv) {
  using namespace qa;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Homogeneous control (§5.1)",
                "Identical nodes compress the mechanism comparison", seed);

  int num_nodes = quick ? 30 : 100;
  util::VDuration period = 500 * kMillisecond;

  // Homogeneous: every node identical (spread 0); heterogeneous: the
  // usual +/-50% speed spread.
  sim::TwoClassConfig homogeneous;
  homogeneous.num_nodes = num_nodes;
  homogeneous.node_speed_spread = 0.0;
  sim::TwoClassConfig heterogeneous;
  heterogeneous.num_nodes = num_nodes;

  util::Rng rng1(seed);
  auto homo_model = sim::BuildTwoClassCostModel(homogeneous, rng1);
  util::Rng rng2(seed);
  auto hetero_model = sim::BuildTwoClassCostModel(heterogeneous, rng2);

  auto make_trace = [&](const query::CostModel& model, util::Rng& rng) {
    double capacity = sim::EstimateCapacityQps(model, {2.0, 1.0}, period);
    workload::SinusoidConfig wave;
    wave.frequency_hz = 0.05;
    wave.duration = (quick ? 40 : 80) * kSecond;
    wave.num_origin_nodes = num_nodes;
    wave.q1_peak_rate = 0.9 * capacity;
    return workload::GenerateSinusoidWorkload(wave, rng);
  };
  util::Rng wl1(seed + 1);
  workload::Trace homo_trace = make_trace(*homo_model, wl1);
  util::Rng wl2(seed + 1);
  workload::Trace hetero_trace = make_trace(*hetero_model, wl2);

  bench::Telemetry telemetry(args, "Homogeneous control");
  util::TableWriter table({"Mechanism", "Homogeneous mean (ms)",
                           "Heterogeneous mean (ms)"});
  double homo_best = std::numeric_limits<double>::infinity();
  double homo_worst = 0.0;
  for (const std::string& name : allocation::AllMechanismNames()) {
    double homo = RunMean(*homo_model, name, homo_trace, period, seed,
                          telemetry, name + "@homogeneous");
    double hetero = RunMean(*hetero_model, name, hetero_trace, period, seed,
                            telemetry, name + "@heterogeneous");
    table.AddRow(name, homo, hetero);
    homo_best = std::min(homo_best, homo);
    homo_worst = std::max(homo_worst, homo);
  }
  table.Print(std::cout);
  std::cout << "\nHomogeneous worst/best spread: "
            << (homo_best > 0 ? homo_worst / homo_best : 0.0)
            << "x — the paper reports all algorithms performing similarly "
               "on identical nodes; the heterogeneous column shows where "
               "the spread (and this paper's problem) comes from.\n";
  return 0;
}
