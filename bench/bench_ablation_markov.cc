// The Markov-based allocator of [4] (Table 2's last row), measured. The
// paper excludes it from the dynamic simulation because it cannot handle
// dynamic workloads; here we show both halves of that claim: on the static
// workload it was solved for, it is excellent ("QA-NT ... comes close to
// the Markov-based algorithm under static ones"), and on a dynamic
// workload (for which its routing matrix is stale) it falls apart.

#include <iostream>

#include "allocation/markov.h"
#include "bench/bench_common.h"
#include "workload/uniform.h"

namespace qa {
namespace {

using util::kMillisecond;
using util::kSecond;

}  // namespace
}  // namespace qa

int main(int argc, char** argv) {
  using namespace qa;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Ablation: Markov [4]",
                "Static-optimal routing vs QA-NT/Greedy on static and "
                "dynamic loads",
                seed);

  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = quick ? 20 : 50;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

  // ---- Static: Poisson at 85% capacity with a 2:1 class mix. The Markov
  // solver receives the true rates.
  double rate = 0.85 * capacity;
  workload::PoissonWorkloadConfig static_wl;
  static_wl.num_queries = quick ? 1500 : 6000;
  static_wl.mean_interarrival =
      static_cast<util::VDuration>(util::kSecond / rate);
  static_wl.classes = {0, 0, 1};
  static_wl.num_origin_nodes = scenario.num_nodes;
  util::Rng rng_s(seed + 1);
  workload::Trace static_trace =
      workload::GeneratePoissonWorkload(static_wl, rng_s);

  // ---- Dynamic: 0.05 Hz sinusoid with the same *average* rates — the
  // matrix is "right on average" but wrong at every instant.
  workload::SinusoidConfig wave;
  wave.frequency_hz = 0.05;
  wave.duration = (quick ? 40 : 80) * kSecond;
  wave.num_origin_nodes = scenario.num_nodes;
  wave.q1_peak_rate = 1.1 * capacity / 0.75;
  util::Rng rng_d(seed + 2);
  workload::Trace dynamic_trace = workload::GenerateSinusoidWorkload(wave,
                                                                     rng_d);

  std::vector<double> true_rates = {rate * 2.0 / 3.0, rate / 3.0};

  std::vector<std::string> names = {"Markov", "QA-NT", "Greedy", "Random"};
  std::vector<exec::RunSpec> specs;
  for (const std::string& name : names) {
    for (const workload::Trace* trace : {&static_trace, &dynamic_trace}) {
      exec::RunSpec spec =
          bench::MakeSpec(*model, name, *trace, period, seed);
      if (name == "Markov") {
        // Markov is not in the factory registry: the solver needs the true
        // arrival rates. A fresh allocator per run (built on the worker):
        // mechanisms carry state (prices, period clocks, routing RNG) that
        // must not leak across experiments.
        spec.make_allocator = [&model, &true_rates, seed]() {
          return std::make_unique<allocation::MarkovAllocator>(
              model.get(), true_rates, seed);
        };
      }
      specs.push_back(std::move(spec));
    }
  }
  bench::Telemetry telemetry(args, "Ablation: Markov");
  telemetry.ReportField("capacity_qps", capacity);
  // Trace the first QA-NT cell (single-writer recorder, one traced run).
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "QA-NT") telemetry.Trace(specs[2 * i]);
  }
  std::vector<exec::RunResult> cells = args.MakeRunner().Run(specs);

  util::TableWriter table({"Mechanism", "Static mean (ms)",
                           "Dynamic mean (ms)"});
  for (size_t i = 0; i < names.size(); ++i) {
    telemetry.Report(names[i] + "@static", cells[2 * i].metrics);
    telemetry.Report(names[i] + "@dynamic", cells[2 * i + 1].metrics);
    table.AddRow(names[i], cells[2 * i].metrics.MeanResponseMs(),
                 cells[2 * i + 1].metrics.MeanResponseMs());
  }
  table.Print(std::cout);
  std::cout << "\nExpected (paper §4): Markov excellent on the static load "
               "it was solved for, with QA-NT close behind; on the dynamic "
               "load the static matrix misroutes and Markov degrades "
               "toward the blind mechanisms.\n";
  return 0;
}
