// Google-benchmark microbenchmarks of the market core: the per-period
// supply optimization (eq. 4), the QA-NT request path, one tatonnement
// iteration, and the discrete-event queue. These bound the runtime
// overhead a node pays for running the query economy (the paper argues it
// is negligible next to query execution).

#include <benchmark/benchmark.h>

#include "market/qa_nt.h"
#include "market/tatonnement.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/vtime.h"

namespace qa {
namespace {

using util::kMillisecond;

std::vector<util::VDuration> RandomCosts(int num_classes, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<util::VDuration> costs;
  for (int k = 0; k < num_classes; ++k) {
    costs.push_back(rng.UniformInt(50, 4000) * kMillisecond);
  }
  return costs;
}

void BM_SupplyMaximize(benchmark::State& state) {
  int num_classes = static_cast<int>(state.range(0));
  market::CapacitySupplySet set(RandomCosts(num_classes, 42),
                                500 * kMillisecond);
  util::Rng rng(7);
  market::PriceVector prices(num_classes);
  for (int k = 0; k < num_classes; ++k) {
    prices[k] = rng.UniformReal(0.1, 10.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.MaximizeValue(prices));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SupplyMaximize)->Arg(10)->Arg(100)->Arg(1000);

void BM_QaNtRequestPath(benchmark::State& state) {
  int num_classes = static_cast<int>(state.range(0));
  market::QaNtAgent agent(0, RandomCosts(num_classes, 42),
                          500 * kMillisecond);
  agent.BeginPeriod();
  util::Rng rng(7);
  for (auto _ : state) {
    int k = static_cast<int>(rng.UniformInt(0, num_classes - 1));
    if (agent.OnRequest(k)) agent.OnOfferAccepted(k);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QaNtRequestPath)->Arg(100)->Arg(1000);

void BM_QaNtPeriodRollover(benchmark::State& state) {
  int num_classes = static_cast<int>(state.range(0));
  market::QaNtAgent agent(0, RandomCosts(num_classes, 42),
                          500 * kMillisecond);
  for (auto _ : state) {
    agent.BeginPeriod();
    agent.EndPeriod();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QaNtPeriodRollover)->Arg(100)->Arg(1000);

void BM_TatonnementIteration(benchmark::State& state) {
  int num_nodes = static_cast<int>(state.range(0));
  std::vector<market::CapacitySupplySet> sets;
  sets.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    sets.emplace_back(RandomCosts(100, 42 + static_cast<uint64_t>(i)),
                      500 * kMillisecond);
  }
  std::vector<const market::SupplySet*> set_ptrs;
  for (const auto& s : sets) set_ptrs.push_back(&s);
  market::QuantityVector demand(100);
  util::Rng rng(7);
  for (int k = 0; k < 100; ++k) demand[k] = rng.UniformInt(0, 50);
  market::TatonnementConfig config;
  config.max_iterations = 1;  // time a single price-adjustment round
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        market::RunTatonnement(demand, set_ptrs, config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TatonnementIteration)->Arg(10)->Arg(100);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue<int> q;
    q.Reserve(1000);
    int64_t fired = 0;
    for (int i = 0; i < 1000; ++i) {
      q.Schedule(i, i);
    }
    q.RunAll([&fired](int) { ++fired; });
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

}  // namespace
}  // namespace qa

BENCHMARK_MAIN();
