// Reproduces Fig. 5b: behavior of QA-NT as the sinusoid frequency varies
// from 0.05 Hz to 2 Hz. The paper's shape: QA-NT beats Greedy everywhere,
// with the improvement shrinking as the workload oscillates faster than
// the market can track.
//
// Operating point: the paper runs at 80% of capacity, just above the load
// where its Greedy starts losing to QA-NT (~75%, Fig. 5a). Our calibrated
// crossover sits at ~120% of capacity (EXPERIMENTS.md), so we evaluate at
// the same *relative* position: 150% of capacity.

#include <iostream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace qa;
  using util::kMillisecond;
  using util::kSecond;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Fig. 5b",
                "Greedy/QA-NT response-time ratio vs sinusoid frequency "
                "(just above the Greedy crossover load)",
                seed);

  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = quick ? 30 : 100;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

  std::vector<double> freqs =
      quick ? std::vector<double>{0.05, 0.5, 2.0}
            : std::vector<double>{0.05, 0.1, 0.25, 0.5, 1.0, 2.0};
  // Per-frequency traces first (they must outlive the runner), then the
  // whole (frequency x mechanism) grid concurrently.
  std::vector<workload::Trace> traces;
  traces.reserve(freqs.size());
  for (double freq : freqs) {
    workload::SinusoidConfig workload;
    workload.frequency_hz = freq;
    workload.duration = (quick ? 20 : 40) * kSecond;
    workload.num_origin_nodes = scenario.num_nodes;
    workload.q1_peak_rate = 1.5 * capacity / 0.75;
    util::Rng wl_rng(seed + 1);
    traces.push_back(workload::GenerateSinusoidWorkload(workload, wl_rng));
  }
  bench::Telemetry telemetry(args, "Fig. 5b");
  telemetry.ReportField("capacity_qps", capacity);
  std::vector<exec::RunSpec> specs;
  for (const workload::Trace& trace : traces) {
    specs.push_back(bench::MakeSpec(*model, "QA-NT", trace, period, seed));
    specs.push_back(bench::MakeSpec(*model, "Greedy", trace, period, seed));
  }
  // Trace the first QA-NT cell (single-writer recorder, one traced run).
  if (!specs.empty()) telemetry.Trace(specs.front());
  std::vector<exec::RunResult> cells = args.MakeRunner().Run(specs);
  for (size_t i = 0; i < freqs.size(); ++i) {
    std::string suffix = "@" + std::to_string(freqs[i]) + "Hz";
    telemetry.Report("QA-NT" + suffix, cells[2 * i].metrics);
    telemetry.Report("Greedy" + suffix, cells[2 * i + 1].metrics);
  }

  util::TableWriter table({"Frequency (Hz)", "QA-NT mean (ms)",
                           "Greedy mean (ms)", "Greedy / QA-NT"});
  for (size_t i = 0; i < freqs.size(); ++i) {
    const sim::SimMetrics& qa_nt = cells[2 * i].metrics;
    const sim::SimMetrics& greedy = cells[2 * i + 1].metrics;
    table.AddRow(freqs[i], qa_nt.MeanResponseMs(), greedy.MeanResponseMs(),
                 qa_nt.MeanResponseMs() > 0
                     ? greedy.MeanResponseMs() / qa_nt.MeanResponseMs()
                     : 0.0);
  }
  table.Print(std::cout);
  std::cout << "\nPaper's Fig. 5b shape: QA-NT ahead at every frequency; "
               "the advantage decays as frequency grows (a 0.05 Hz wave "
               "already means 0->80% load in 10 s).\n";
  return 0;
}
