#ifndef QAMARKET_BENCH_BENCH_COMMON_H_
#define QAMARKET_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "allocation/factory.h"
#include "exec/experiment_runner.h"
#include "obs/metrics/collector.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "sim/federation.h"
#include "sim/metrics_json.h"
#include "sim/scenario.h"
#include "util/table_writer.h"
#include "workload/sinusoid.h"

namespace qa::bench {

/// The flags every experiment binary shares, parsed in one place instead
/// of ad-hoc per-binary argv scans:
///   --quick        smaller grids/workloads for smoke runs
///   --threads=N    experiment-runner parallelism (N<1 = all hardware
///                  threads; 1 reproduces the serial behavior exactly)
///   --shards=N     simulator-core shard count for benches that run the
///                  sharded federation (0 = the bench's own default sweep;
///                  results are byte-identical at every count)
///   --seed=S       master RNG seed
///   --trace=FILE   stream a JSONL telemetry trace of the binary's traced
///                  run into FILE (analyze with tools/qa_trace)
///   --report=FILE  write a structured JSON run report (SimMetrics per run)
///   --metrics=FILE stream a JSONL metrics timeseries (per-period samples,
///                  watchdog alarms, phase wall-time stats) into FILE
///                  (analyze with tools/qa_perf)
///   --prom=FILE    write a Prometheus-style text exposition snapshot of
///                  the final metric values into FILE
struct BenchArgs {
  bool quick = false;
  int threads = 0;  // 0 => hardware_concurrency
  int shards = 0;   // 0 => bench-defined sweep
  uint64_t seed = 42;
  std::string trace_path;
  std::string report_path;
  std::string metrics_path;
  std::string prom_path;

  static BenchArgs Parse(int argc, char** argv, uint64_t default_seed = 42) {
    BenchArgs args;
    args.seed = default_seed;
    for (int i = 1; i < argc; ++i) {
      std::string arg(argv[i]);
      if (arg == "--quick") {
        args.quick = true;
      } else if (arg.rfind("--threads=", 0) == 0) {
        args.threads = std::atoi(arg.c_str() + 10);
      } else if (arg.rfind("--shards=", 0) == 0) {
        args.shards = std::atoi(arg.c_str() + 9);
      } else if (arg.rfind("--seed=", 0) == 0) {
        args.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
      } else if (arg.rfind("--trace=", 0) == 0) {
        args.trace_path = arg.substr(8);
      } else if (arg.rfind("--report=", 0) == 0) {
        args.report_path = arg.substr(9);
      } else if (arg.rfind("--metrics=", 0) == 0) {
        args.metrics_path = arg.substr(10);
      } else if (arg.rfind("--prom=", 0) == 0) {
        args.prom_path = arg.substr(7);
      } else {
        std::cerr << "warning: ignoring unknown flag '" << arg
                  << "' (known: --quick --threads=N --shards=N --seed=S "
                     "--trace=FILE --report=FILE --metrics=FILE "
                     "--prom=FILE)\n";
      }
    }
    return args;
  }

  /// The runner this invocation asked for.
  exec::ExperimentRunner MakeRunner() const {
    return exec::ExperimentRunner(threads);
  }
};

/// The telemetry outputs of one experiment binary: the optional JSONL
/// trace recorder (--trace) and the optional JSON run report (--report).
/// Construct it once near the top of main(); it writes everything out on
/// destruction. With neither flag set every call is a cheap no-op.
class Telemetry {
 public:
  Telemetry(const BenchArgs& args, const std::string& bench_name)
      : report_path_(args.report_path), report_(bench_name) {
    report_.SetField("seed", static_cast<int64_t>(args.seed));
    if (!args.trace_path.empty()) {
      util::StatusOr<std::unique_ptr<obs::Recorder>> opened =
          obs::Recorder::OpenFile(args.trace_path);
      if (opened.ok()) {
        recorder_ = std::move(opened).value();
      } else {
        std::cerr << "warning: --trace: " << opened.status()
                  << "; tracing disabled\n";
      }
    }
    if (!args.metrics_path.empty()) {
      util::StatusOr<std::unique_ptr<obs::metrics::Collector>> opened =
          obs::metrics::Collector::OpenFile(args.metrics_path);
      if (opened.ok()) {
        collector_ = std::move(opened).value();
      } else {
        std::cerr << "warning: --metrics: " << opened.status()
                  << "; metrics disabled\n";
      }
    } else if (!args.prom_path.empty()) {
      // --prom without --metrics still needs a collector; collect-only
      // (no JSONL sink).
      collector_ = std::make_unique<obs::metrics::Collector>();
    }
    prom_path_ = args.prom_path;
  }

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  ~Telemetry() {
    if (recorder_ != nullptr) recorder_->Finish();
    if (collector_ != nullptr) {
      collector_->Finish();
      if (!prom_path_.empty()) {
        std::ofstream prom(prom_path_);
        if (prom.is_open()) {
          prom << collector_->ExpositionText();
        } else {
          std::cerr << "warning: --prom: cannot open " << prom_path_ << "\n";
        }
      }
      // Embed the phase/lane wall-time summary in the run report.
      has_fields_ = true;
      report_.SetField("perf", collector_->PerfJson());
    }
    // Write when the bench reported anything at all — labeled runs OR
    // top-level fields. Benches that key per-cell rows by field name
    // (bench_scale_nodes, bench_shard_scale) never call Add, and gating on
    // runs alone silently discarded their --report output.
    if (!report_path_.empty() && (!report_.empty() || has_fields_)) {
      util::Status status = report_.WriteFile(report_path_);
      if (!status.ok()) {
        std::cerr << "warning: --report: " << status << "\n";
      }
    }
  }

  /// Null when --trace was not given (probes compile to one branch).
  obs::Recorder* recorder() { return recorder_.get(); }

  /// Attaches the trace recorder to `spec`. The recorder is single-writer:
  /// attach it to exactly one spec per binary (benches trace their QA-NT
  /// run) so parallel grid execution stays race-free.
  void Trace(exec::RunSpec& spec) { spec.config.recorder = recorder_.get(); }

  /// Null when neither --metrics nor --prom was given.
  obs::metrics::Collector* collector() { return collector_.get(); }

  /// Attaches the metrics collector to `spec`. Same single-writer contract
  /// as Trace: one spec per binary.
  void Metrics(exec::RunSpec& spec) {
    spec.config.metrics = collector_.get();
  }

  /// Adds one labeled SimMetrics row to the run report.
  void Report(const std::string& label, const sim::SimMetrics& metrics) {
    report_.Add(label, sim::MetricsToJson(metrics));
  }

  /// Top-level report extras (capacity estimates, grid shape...) — also
  /// how the sweep benches key their per-cell rows.
  void ReportField(const std::string& key, obs::Json value) {
    has_fields_ = true;
    report_.SetField(key, std::move(value));
  }

 private:
  std::string report_path_;
  std::string prom_path_;
  obs::RunReport report_;
  bool has_fields_ = false;
  std::unique_ptr<obs::Recorder> recorder_;
  std::unique_ptr<obs::metrics::Collector> collector_;
};

/// Builds the standard grid cell shared by the figure benches.
inline exec::RunSpec MakeSpec(const query::CostModel& cost_model,
                              const std::string& mechanism,
                              const workload::Trace& trace,
                              util::VDuration period, uint64_t seed,
                              int max_retries = 5000) {
  exec::RunSpec spec;
  spec.cost_model = &cost_model;
  spec.mechanism = mechanism;
  spec.trace = &trace;
  spec.period = period;
  spec.seed = seed;
  spec.config.max_retries = max_retries;
  return spec;
}

/// Runs one mechanism over one trace on one cost model and returns the
/// metrics. Every experiment binary funnels through this (or through
/// exec::ExperimentRunner, which uses the same RunSpecOnce path) so
/// mechanisms are compared under identical conditions. Aborts on an
/// unknown mechanism name.
inline sim::SimMetrics RunMechanism(const query::CostModel& cost_model,
                                    const std::string& mechanism,
                                    const workload::Trace& trace,
                                    util::VDuration period, uint64_t seed,
                                    int max_retries = 5000) {
  return exec::RunSpecOnce(
             MakeSpec(cost_model, mechanism, trace, period, seed,
                      max_retries))
      .metrics;
}

/// Prints the experiment banner: id, description, seed.
inline void Banner(const std::string& experiment,
                   const std::string& description, uint64_t seed) {
  std::cout << "==================================================\n"
            << experiment << ": " << description << "\n"
            << "(seed=" << seed << ", deterministic)\n"
            << "==================================================\n";
}

}  // namespace qa::bench

#endif  // QAMARKET_BENCH_BENCH_COMMON_H_
