#ifndef QAMARKET_BENCH_BENCH_COMMON_H_
#define QAMARKET_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "allocation/factory.h"
#include "exec/experiment_runner.h"
#include "sim/federation.h"
#include "sim/scenario.h"
#include "util/table_writer.h"
#include "workload/sinusoid.h"

namespace qa::bench {

/// The flags every experiment binary shares, parsed in one place instead
/// of ad-hoc per-binary argv scans:
///   --quick       smaller grids/workloads for smoke runs
///   --threads=N   experiment-runner parallelism (N<1 = all hardware
///                 threads; 1 reproduces the serial behavior exactly)
///   --seed=S      master RNG seed
struct BenchArgs {
  bool quick = false;
  int threads = 0;  // 0 => hardware_concurrency
  uint64_t seed = 42;

  static BenchArgs Parse(int argc, char** argv, uint64_t default_seed = 42) {
    BenchArgs args;
    args.seed = default_seed;
    for (int i = 1; i < argc; ++i) {
      std::string arg(argv[i]);
      if (arg == "--quick") {
        args.quick = true;
      } else if (arg.rfind("--threads=", 0) == 0) {
        args.threads = std::atoi(arg.c_str() + 10);
      } else if (arg.rfind("--seed=", 0) == 0) {
        args.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
      } else {
        std::cerr << "warning: ignoring unknown flag '" << arg
                  << "' (known: --quick --threads=N --seed=S)\n";
      }
    }
    return args;
  }

  /// The runner this invocation asked for.
  exec::ExperimentRunner MakeRunner() const {
    return exec::ExperimentRunner(threads);
  }
};

/// Builds the standard grid cell shared by the figure benches.
inline exec::RunSpec MakeSpec(const query::CostModel& cost_model,
                              const std::string& mechanism,
                              const workload::Trace& trace,
                              util::VDuration period, uint64_t seed,
                              int max_retries = 5000) {
  exec::RunSpec spec;
  spec.cost_model = &cost_model;
  spec.mechanism = mechanism;
  spec.trace = &trace;
  spec.period = period;
  spec.seed = seed;
  spec.config.max_retries = max_retries;
  return spec;
}

/// Runs one mechanism over one trace on one cost model and returns the
/// metrics. Every experiment binary funnels through this (or through
/// exec::ExperimentRunner, which uses the same RunSpecOnce path) so
/// mechanisms are compared under identical conditions. Aborts on an
/// unknown mechanism name.
inline sim::SimMetrics RunMechanism(const query::CostModel& cost_model,
                                    const std::string& mechanism,
                                    const workload::Trace& trace,
                                    util::VDuration period, uint64_t seed,
                                    int max_retries = 5000) {
  return exec::RunSpecOnce(
             MakeSpec(cost_model, mechanism, trace, period, seed,
                      max_retries))
      .metrics;
}

/// Prints the experiment banner: id, description, seed.
inline void Banner(const std::string& experiment,
                   const std::string& description, uint64_t seed) {
  std::cout << "==================================================\n"
            << experiment << ": " << description << "\n"
            << "(seed=" << seed << ", deterministic)\n"
            << "==================================================\n";
}

}  // namespace qa::bench

#endif  // QAMARKET_BENCH_BENCH_COMMON_H_
