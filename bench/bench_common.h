#ifndef QAMARKET_BENCH_BENCH_COMMON_H_
#define QAMARKET_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <memory>
#include <string>

#include "allocation/factory.h"
#include "sim/federation.h"
#include "sim/scenario.h"
#include "util/table_writer.h"
#include "workload/sinusoid.h"

namespace qa::bench {

/// Runs one mechanism over one trace on one cost model and returns the
/// metrics. Every experiment binary funnels through this so mechanisms are
/// compared under identical conditions.
inline sim::SimMetrics RunMechanism(const query::CostModel& cost_model,
                                    const std::string& mechanism,
                                    const workload::Trace& trace,
                                    util::VDuration period, uint64_t seed,
                                    int max_retries = 5000) {
  allocation::AllocatorParams params;
  params.cost_model = &cost_model;
  params.period = period;
  params.seed = seed;
  std::unique_ptr<allocation::Allocator> alloc =
      allocation::CreateAllocator(mechanism, params);
  if (alloc == nullptr) {
    std::cerr << "unknown mechanism " << mechanism << "\n";
    return sim::SimMetrics();
  }
  sim::FederationConfig config;
  config.period = period;
  config.max_retries = max_retries;
  sim::Federation fed(&cost_model, alloc.get(), config);
  return fed.Run(trace);
}

/// Prints the experiment banner: id, description, seed.
inline void Banner(const std::string& experiment,
                   const std::string& description, uint64_t seed) {
  std::cout << "==================================================\n"
            << experiment << ": " << description << "\n"
            << "(seed=" << seed << ", deterministic)\n"
            << "==================================================\n";
}

/// True when argv contains --quick (smaller workloads for smoke runs).
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  return false;
}

}  // namespace qa::bench

#endif  // QAMARKET_BENCH_BENCH_COMMON_H_
