// Reproduces Fig. 1 and Fig. 2 of the paper: the two-node motivating
// example where greedy least-imbalance load balancing (LB) yields a 662 ms
// average response time while the throughput-optimal allocation (QA)
// yields 431 ms and ends the overload 300 ms earlier.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "market/pareto.h"
#include "market/vectors.h"
#include "sim/scenario.h"
#include "workload/trace.h"

namespace qa {
namespace {

using util::kMillisecond;

/// The Fig. 1 demand: N1 poses one q1 and six q2; N2 poses one q1. All
/// arrive at t = 0, q1 requests before q2 (paper's ordering).
workload::Trace Fig1Trace() {
  workload::Trace trace;
  trace.Add({0, 0, 0, 1.0});  // q1 from N1
  trace.Add({0, 0, 1, 1.0});  // q1 from N2
  for (int i = 0; i < 6; ++i) trace.Add({0, 1, 0, 1.0});  // six q2 from N1
  return trace;
}

/// Serial per-node completion times under a fixed assignment; returns the
/// average response time in ms and the per-node busy horizons.
struct AssignmentOutcome {
  double avg_response_ms = 0.0;
  double n1_busy_ms = 0.0;
  double n2_busy_ms = 0.0;
};

AssignmentOutcome Evaluate(const std::vector<int>& assignment,
                           const workload::Trace& trace,
                           const query::CostModel& model) {
  std::vector<double> busy(2, 0.0);
  double total_response = 0.0;
  for (size_t i = 0; i < trace.size(); ++i) {
    int node = assignment[i];
    double cost =
        util::ToMillis(model.Cost(trace[i].class_id, node));
    busy[static_cast<size_t>(node)] += cost;
    total_response += busy[static_cast<size_t>(node)];
  }
  AssignmentOutcome out;
  out.avg_response_ms = total_response / static_cast<double>(trace.size());
  out.n1_busy_ms = busy[0];
  out.n2_busy_ms = busy[1];
  return out;
}

/// The greedy least-imbalance LB walk the paper narrates: each query goes
/// to the node that minimizes the resulting load imbalance.
std::vector<int> LbAssignment(const workload::Trace& trace,
                              const query::CostModel& model) {
  std::vector<double> busy(2, 0.0);
  std::vector<int> assignment;
  for (size_t i = 0; i < trace.size(); ++i) {
    int best = 0;
    double best_imbalance = 0.0;
    for (int node = 0; node < 2; ++node) {
      std::vector<double> hypo = busy;
      hypo[static_cast<size_t>(node)] +=
          util::ToMillis(model.Cost(trace[i].class_id, node));
      double imbalance = std::abs(hypo[0] - hypo[1]);
      if (node == 0 || imbalance < best_imbalance) {
        best = node;
        best_imbalance = imbalance;
      }
    }
    busy[static_cast<size_t>(best)] +=
        util::ToMillis(model.Cost(trace[i].class_id, best));
    assignment.push_back(best);
  }
  return assignment;
}

void PrintFig2Vectors(const std::vector<int>& assignment,
                      const workload::Trace& trace,
                      const std::string& label) {
  market::QuantityVector supply_n1(2);
  market::QuantityVector supply_n2(2);
  for (size_t i = 0; i < trace.size(); ++i) {
    if (assignment[i] == 0) {
      supply_n1[trace[i].class_id] += 1;
    } else {
      supply_n2[trace[i].class_id] += 1;
    }
  }
  market::QuantityVector aggregate = supply_n1 + supply_n2;
  std::cout << "  " << label << ": s_N1=" << supply_n1.ToString()
            << " s_N2=" << supply_n2.ToString()
            << " aggregate s=c=" << aggregate.ToString() << "\n";
}

}  // namespace
}  // namespace qa

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  using namespace qa;

  bench::Banner("Fig. 1 + Fig. 2",
                "Performance optimization vs load balancing "
                "(2 nodes, q1/q2 costs 400/100 and 450/500 ms)",
                0);

  auto model = sim::BuildFig1CostModel();
  workload::Trace trace = Fig1Trace();

  // LB: the greedy least-imbalance walk of the introduction.
  std::vector<int> lb = LbAssignment(trace, *model);
  AssignmentOutcome lb_out = Evaluate(lb, trace, *model);

  // QA: N1 accepts only q2, N2 only q1 (the paper's allocation).
  std::vector<int> qa_assignment;
  for (size_t i = 0; i < trace.size(); ++i) {
    qa_assignment.push_back(trace[i].class_id == 0 ? 1 : 0);
  }
  AssignmentOutcome qa_out = Evaluate(qa_assignment, trace, *model);

  util::TableWriter table({"Mechanism", "Avg response (ms)",
                           "N1 busy (ms)", "N2 busy (ms)",
                           "Overload ends (ms)"});
  table.AddRow("LB (least imbalance)", lb_out.avg_response_ms,
               lb_out.n1_busy_ms, lb_out.n2_busy_ms,
               std::min(lb_out.n1_busy_ms, lb_out.n2_busy_ms));
  table.AddRow("QA (query allocation)", qa_out.avg_response_ms,
               qa_out.n1_busy_ms, qa_out.n2_busy_ms,
               std::min(qa_out.n1_busy_ms, qa_out.n2_busy_ms));
  table.Print(std::cout);
  std::cout << "Paper reports: LB 662 ms vs QA 431 ms (LB 54% slower); "
               "LB keeps both nodes busy 900/950 ms, QA frees N1 at 600 "
               "ms.\n\n";

  std::cout << "Fig. 2 aggregate demand/supply/consumption vectors "
               "(d = (2, 6)):\n";
  PrintFig2Vectors(lb, trace, "LB");
  PrintFig2Vectors(qa_assignment, trace, "QA");

  // Pareto check via the exhaustive oracle (1-second horizon as in the
  // paper's single evaluation window).
  market::CapacitySupplySet n1({400 * kMillisecond, 100 * kMillisecond},
                               1000 * kMillisecond);
  market::CapacitySupplySet n2({450 * kMillisecond, 500 * kMillisecond},
                               1000 * kMillisecond);
  std::vector<const market::SupplySet*> sets{&n1, &n2};
  std::vector<market::QuantityVector> demands = {
      market::QuantityVector({1, 6}), market::QuantityVector({1, 0})};

  market::Solution qa_solution;
  qa_solution.supplies = {market::QuantityVector({0, 6}),
                          market::QuantityVector({2, 0})};
  qa_solution.consumptions = demands;
  std::cout << "\nQA solution Pareto-optimal within 1s horizon: "
            << (market::IsParetoOptimal(qa_solution, demands, sets)
                    ? "YES"
                    : "NO")
            << " (paper: QA Pareto-dominates LB)\n";
  return 0;
}
