// Failure injection — the paper's motivating scenario ("load temporarily
// exceeds total system capacity ... due, for example, to multiple node
// failures", §1). A 100-node federation runs at 70% of capacity; at t=20 s
// a third of the nodes become unreachable for 20 s, pushing effective load
// beyond the surviving capacity. Mechanisms that negotiate or probe route
// around the dead nodes; Random/RoundRobin keep shooting at them and their
// queries bounce.

#include <iostream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace qa;
  using util::kMillisecond;
  using util::kSecond;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  bench::Banner("Failure injection",
                "30% of nodes unreachable during [20 s, 40 s) at 70% load",
                seed);

  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = quick ? 30 : 100;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

  workload::SinusoidConfig wave;
  wave.frequency_hz = 0.05;
  wave.duration = 60 * kSecond;
  wave.num_origin_nodes = scenario.num_nodes;
  wave.q1_peak_rate = 0.7 * capacity / 0.75;
  util::Rng wl_rng(seed + 1);
  workload::Trace trace = workload::GenerateSinusoidWorkload(wave, wl_rng);

  // Fail every third node during [20 s, 40 s).
  std::vector<sim::Outage> outages;
  for (catalog::NodeId j = 0; j < scenario.num_nodes; j += 3) {
    outages.push_back({j, 20 * kSecond, 40 * kSecond});
  }
  std::cout << "Workload: " << trace.size() << " queries; " << outages.size()
            << " of " << scenario.num_nodes << " nodes fail.\n\n";

  bench::Telemetry telemetry(args, "Failure injection");
  telemetry.ReportField("capacity_qps", capacity);
  util::TableWriter table({"Mechanism", "Mean (ms)", "p95 (ms)", "Bounced",
                           "Retries", "Dropped"});
  for (const std::string& name : allocation::AllMechanismNames()) {
    allocation::AllocatorParams params;
    params.cost_model = model.get();
    params.period = period;
    params.seed = seed;
    auto alloc = allocation::CreateAllocator(name, params);
    sim::FederationConfig config;
    config.period = period;
    config.max_retries = 5000;
    config.outages = outages;
    config.seed = static_cast<int64_t>(seed);
    // Trace the market mechanism's run (single-writer: QA-NT only) — its
    // bounce/reject spans show the outage window directly.
    if (name == "QA-NT") config.recorder = telemetry.recorder();
    sim::Federation fed(model.get(), alloc.get(), config);
    sim::SimMetrics m = fed.Run(trace);
    telemetry.Report(name, m);
    table.AddRow(name, m.MeanResponseMs(),
                 m.response_time_ms.Percentile(95), m.bounced, m.retries,
                 m.dropped);
  }
  table.Print(std::cout);
  std::cout << "\nExpected: QA-NT and the probing mechanisms ride out the "
               "outage (offers/probes just stop coming from dead nodes); "
               "Random/RoundRobin bounce a third of their assignments and "
               "pay for it in queueing and retries.\n";
  return 0;
}
