// Fault chaos matrix — the paper's motivating scenario ("load temporarily
// exceeds total system capacity ... due, for example, to multiple node
// failures", §1), generalized into a fault-type x mechanism grid. One
// 60-second sinusoid workload at 70% of capacity is replayed under seven
// fault plans — none, a legacy partition-style outage, crashes with state
// loss + restart, degraded capacity, a lossy/delayed network, a hard
// partition, and a chaos mix — for every allocation mechanism. Clients
// enforce a 12 s response SLA, so the Completed column directly contrasts
// mechanisms that route around faults with mechanisms whose fault-bloated
// latency tails expire. The QA-NT run under the chaos plan is traced in
// memory and its price-reconvergence report (time until log-price variance
// drops back below the pre-fault level) is embedded into BENCH_faults.json.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/analysis.h"
#include "obs/trace_reader.h"

namespace {

using namespace qa;
using util::kMillisecond;
using util::kSecond;

/// Client response deadline. Unlike the figure benches (where every query
/// eventually completes and only response times differ), a fault bench
/// needs give-up semantics: clients abandon queries 12 s after submission,
/// so a result delayed past the SLA — by bounces off dead nodes, lost
/// shipments, or fault-bloated queues — counts as expired, and the
/// Completed column separates mechanisms that route around faults from
/// mechanisms that let faults eat their latency budget.
constexpr util::VDuration kQueryDeadline = 12 * util::kSecond;

/// One row of the chaos matrix: a named fault schedule applied verbatim to
/// every mechanism's FederationConfig.
struct PlanCase {
  std::string name;
  std::string blurb;
  std::vector<sim::Outage> outages;
  sim::faults::FaultPlan faults;
};

std::vector<PlanCase> BuildPlans(int num_nodes) {
  std::vector<PlanCase> plans;

  plans.push_back({"baseline", "no faults (control row)", {}, {}});

  PlanCase outage{"outage", "every 3rd node unreachable [20s,40s), state intact",
                  {}, {}};
  for (catalog::NodeId j = 0; j < num_nodes; j += 3) {
    outage.outages.push_back({j, 20 * kSecond, 40 * kSecond});
  }
  plans.push_back(outage);

  PlanCase crash{"crash",
                 "every 5th node crashes at 20s (state loss), restarts at 30s",
                 {}, {}};
  for (catalog::NodeId j = 0; j < num_nodes; j += 5) {
    crash.faults.crashes.push_back({j, 20 * kSecond, 30 * kSecond});
  }
  plans.push_back(crash);

  PlanCase degrade{"degrade", "every 4th node at 40% speed during [15s,45s)",
                   {}, {}};
  for (catalog::NodeId j = 0; j < num_nodes; j += 4) {
    degrade.faults.degrades.push_back({j, 15 * kSecond, 45 * kSecond, 0.4});
  }
  plans.push_back(degrade);

  PlanCase lossy{"lossy", "all links drop 10% of hops, +2ms during [20s,40s)",
                 {}, {}};
  lossy.faults.links.push_back({sim::faults::LinkFault::kAllNodes,
                                20 * kSecond, 40 * kSecond, 0.10,
                                2 * kMillisecond});
  plans.push_back(lossy);

  PlanCase partition{"partition", "first quarter of nodes cut off [20s,35s)",
                     {}, {}};
  sim::faults::PartitionFault cut;
  for (catalog::NodeId j = 0; j < num_nodes / 4; ++j) cut.nodes.push_back(j);
  cut.from = 20 * kSecond;
  cut.until = 35 * kSecond;
  partition.faults.partitions.push_back(cut);
  plans.push_back(partition);

  // The survey's dominant failure mode for decentralized markets: churn
  // (crash + restart with state loss) followed by a badly lossy network.
  // Both windows straddle the sinusoid's troughs (t = 15 s and 35 s, ~47%
  // of capacity), where the federation *has* the spare capacity to route
  // around the faults — what separates the mechanisms here is whether they
  // find it. This is the acceptance specimen: the QA-NT run under this
  // plan is traced and its price-reconvergence report lands in the JSON.
  PlanCase chaos{"chaos",
                 "1/4 of nodes crash [14s,22s), 50% link loss [30s,40s)",
                 {}, {}};
  for (catalog::NodeId j = 0; j < num_nodes; j += 4) {
    chaos.faults.crashes.push_back({j, 14 * kSecond, 22 * kSecond});
  }
  chaos.faults.links.push_back({sim::faults::LinkFault::kAllNodes,
                                30 * kSecond, 40 * kSecond, 0.50,
                                1 * kMillisecond});
  plans.push_back(chaos);

  return plans;
}

/// Renders one FaultRecovery row as a report JSON object.
obs::Json RecoveryToJson(const obs::FaultRecovery& row) {
  obs::Json json = obs::Json::MakeObject();
  json.Set("kind", std::string(obs::EventKindName(row.kind)));
  json.Set("node", row.node);
  json.Set("t_ms", static_cast<double>(row.t_us) / kMillisecond);
  if (row.has_factor()) json.Set("factor", row.factor);
  json.Set("pre_fault_variance", row.pre_fault_variance);
  json.Set("peak_variance", row.peak_variance);
  json.Set("reconverged", row.reconverged);
  if (row.reconverged) {
    json.Set("recovery_period", row.recovery_period);
    json.Set("recovery_ms", row.recovery_ms);
  }
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const uint64_t seed = args.seed;
  bool quick = args.quick;
  // This bench always emits its structured report (the acceptance artifact)
  // and traces its QA-NT crash run in memory; --trace streams that same
  // trace to a file for tools/qa_trace --faults.
  if (args.report_path.empty()) args.report_path = "BENCH_faults.json";
  const std::string trace_path = args.trace_path;
  args.trace_path.clear();
  bench::Banner("Fault chaos matrix",
                "fault type x mechanism grid at 70% load, 60 s sinusoid",
                seed);

  util::Rng rng(seed);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = quick ? 30 : 100;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  util::VDuration period = 500 * kMillisecond;
  double capacity = sim::EstimateCapacityQps(*model, {2.0, 1.0}, period);

  workload::SinusoidConfig wave;
  wave.frequency_hz = 0.05;
  wave.duration = 60 * kSecond;
  wave.num_origin_nodes = scenario.num_nodes;
  wave.q1_peak_rate = 0.7 * capacity / 0.75;
  util::Rng wl_rng(seed + 1);
  workload::Trace trace = workload::GenerateSinusoidWorkload(wave, wl_rng);

  std::vector<PlanCase> plans = BuildPlans(scenario.num_nodes);
  std::vector<std::string> mechanisms = allocation::AllMechanismNames();
  std::cout << "Workload: " << trace.size() << " queries over "
            << scenario.num_nodes << " nodes; " << plans.size()
            << " fault plans x " << mechanisms.size() << " mechanisms.\n\n";

  bench::Telemetry telemetry(args, "Fault chaos matrix");
  telemetry.ReportField("capacity_qps", capacity);
  telemetry.ReportField("num_nodes", scenario.num_nodes);

  // The QA-NT run under the chaos plan is the recovery specimen: its trace
  // is recorded in memory (single writer, one grid cell) and analyzed for
  // price reconvergence after the mass crash/restart.
  std::ostringstream traced;
  obs::Recorder crash_recorder(&traced);

  std::vector<exec::RunSpec> specs;
  for (const PlanCase& plan : plans) {
    for (const std::string& name : mechanisms) {
      exec::RunSpec spec =
          bench::MakeSpec(*model, name, trace, period, seed);
      spec.config.query_deadline = kQueryDeadline;
      spec.config.seed = static_cast<int64_t>(seed);
      spec.config.outages = plan.outages;
      spec.config.faults = plan.faults;
      if (plan.name == "chaos" && name == "QA-NT") {
        spec.config.recorder = &crash_recorder;
      }
      specs.push_back(std::move(spec));
    }
  }

  exec::ExperimentRunner runner = args.MakeRunner();
  std::cout << "Running " << specs.size() << " cells on " << runner.threads()
            << " thread(s)...\n\n";
  std::vector<exec::RunResult> results = runner.Run(specs);
  crash_recorder.Finish();

  util::TableWriter table({"Plan", "Mechanism", "Mean (ms)", "p95 (ms)",
                           "Bounced", "Retries", "Lost", "Expired",
                           "Completed"});
  size_t cell = 0;
  for (const PlanCase& plan : plans) {
    for (const std::string& name : mechanisms) {
      const sim::SimMetrics& m = results[cell++].metrics;
      telemetry.Report(plan.name + "/" + name, m);
      table.AddRow(plan.name, name, m.MeanResponseMs(),
                   m.response_time_ms.Percentile(95), m.bounced, m.retries,
                   m.lost, m.expired, m.completed);
    }
  }
  table.Print(std::cout);

  std::cout << "\nFault plans:\n";
  for (const PlanCase& plan : plans) {
    std::cout << "  " << plan.name << ": " << plan.blurb << "\n";
  }

  // Recovery analysis of the traced QA-NT crash run.
  std::istringstream replay(traced.str());
  util::StatusOr<obs::ParsedTrace> parsed = obs::ParsedTrace::Parse(replay);
  if (!parsed.ok()) {
    std::cerr << "warning: chaos-run trace unparsable: " << parsed.status()
              << "\n";
  } else {
    std::vector<obs::FaultRecovery> recovery =
        obs::FaultRecoveryReport(parsed.value());
    int reconverged = 0;
    obs::Json rows = obs::Json::MakeArray();
    for (const obs::FaultRecovery& row : recovery) {
      if (row.reconverged) ++reconverged;
      rows.Append(RecoveryToJson(row));
    }
    telemetry.ReportField("crash_recovery", std::move(rows));
    std::cout << "\nQA-NT chaos-plan recovery: " << recovery.size()
              << " fault transitions traced, " << reconverged
              << " with log-price variance back below the pre-fault level.\n";
    for (const obs::FaultRecovery& row : recovery) {
      std::cout << "  " << obs::EventKindName(row.kind) << " node "
                << row.node << " @ " << row.t_us / kMillisecond << " ms: ";
      if (row.reconverged) {
        std::cout << "reconverged after " << row.recovery_ms << " ms (peak "
                  << row.peak_variance << " vs pre " << row.pre_fault_variance
                  << ")\n";
      } else {
        std::cout << "not reconverged within the run (peak "
                  << row.peak_variance << ")\n";
      }
    }
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary);
    if (out) {
      out << traced.str();
      std::cout << "\nQA-NT chaos-run trace written to " << trace_path
                << " (analyze with tools/qa_trace --faults).\n";
    } else {
      std::cerr << "warning: --trace: cannot open " << trace_path << "\n";
    }
  }

  std::cout << "\nExpected: the negotiating/probing mechanisms route around "
               "every fault class and keep their response tails inside the "
               "12 s client SLA; blind mechanisms bounce work off dead nodes "
               "until queries expire. Crashes cost QA-NT its learned prices, "
               "which re-converge within a few market periods.\n";
  return 0;
}
