#!/usr/bin/env bash
# Line-coverage floor for the paper-core layers, computed with plain gcov.
#
# Usage: tools/check_coverage.sh [BUILD_DIR]
#
# BUILD_DIR must have been configured with -DQA_COVERAGE=ON and the test
# suite must have run (ctest) so the .gcda counters exist. The script
# aggregates gcov line coverage per layer and fails if src/market or
# src/allocation drops below its floor. Floors sit a few points under the
# measured baseline (see .github/workflows/ci.yml) so genuine regressions
# fail while unrelated refactors don't flap.
set -eu

build_dir=${1:-build-cov}
repo_root=$(cd "$(dirname "$0")/.." && pwd)

# Measured baseline (full ctest pass, GCC 12): market 90.7%, allocation 85.1%.
floor_market=85
floor_allocation=80

if [ ! -d "$repo_root/$build_dir" ] && [ ! -d "$build_dir" ]; then
  echo "error: build dir '$build_dir' not found" >&2
  exit 2
fi
case "$build_dir" in
  /*) : ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac

status=0
for layer in market allocation; do
  obj_dir="$build_dir/src/$layer/CMakeFiles"
  gcda_count=$(find "$obj_dir" -name '*.gcda' 2>/dev/null | wc -l)
  if [ "$gcda_count" -eq 0 ]; then
    echo "error: no .gcda files under $obj_dir — configure with" \
         "-DQA_COVERAGE=ON and run ctest first" >&2
    exit 2
  fi

  # gcov -n prints, per instrumented source reached from these objects:
  #   File '<path>'
  #   Lines executed:<pct>% of <total>
  # Keep only this layer's own sources (not headers pulled in elsewhere)
  # and aggregate executed/total line counts.
  summary=$(cd "$build_dir" && find "$obj_dir" -name '*.gcda' \
      -exec gcov -n -o {} {} \; 2>/dev/null \
    | awk -v layer="src/$layer/" '
        /^File / { f = $0; keep = index($0, layer) > 0 }
        /^Lines executed:/ && keep {
          pct = $0; sub(/^Lines executed:/, "", pct); sub(/%.*/, "", pct)
          total = $NF
          exec_lines += pct / 100.0 * total
          total_lines += total
          keep = 0
        }
        END {
          if (total_lines == 0) { print "0 0"; exit }
          printf "%.1f %d\n", 100.0 * exec_lines / total_lines, total_lines
        }')
  pct=${summary% *}
  total=${summary#* }
  floor=$(eval echo "\$floor_$layer")
  if [ "$total" = "0" ]; then
    echo "error: gcov found no lines for src/$layer" >&2
    exit 2
  fi
  printf 'src/%-11s %6s%% of %5s lines (floor %s%%)\n' \
         "$layer" "$pct" "$total" "$floor"
  if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
    echo "FAIL: src/$layer line coverage $pct% is below the $floor% floor" >&2
    status=1
  fi
done

# The hierarchical-market sources (cluster_plan, cluster_market,
# cluster_supply) get their own aggregate floor: they are new enough that
# the per-layer averages above could mask an untested two-tier path.
floor_cluster=80
summary=$(cd "$build_dir" && \
    find "$build_dir/src/market/CMakeFiles" \
         "$build_dir/src/allocation/CMakeFiles" -name '*.gcda' \
      -exec gcov -n -o {} {} \; 2>/dev/null \
  | awk '
      /^File / {
        keep = (index($0, "src/market/cluster_") > 0 ||
                index($0, "src/allocation/cluster_") > 0)
      }
      /^Lines executed:/ && keep {
        pct = $0; sub(/^Lines executed:/, "", pct); sub(/%.*/, "", pct)
        total = $NF
        exec_lines += pct / 100.0 * total
        total_lines += total
        keep = 0
      }
      END {
        if (total_lines == 0) { print "0 0"; exit }
        printf "%.1f %d\n", 100.0 * exec_lines / total_lines, total_lines
      }')
pct=${summary% *}
total=${summary#* }
if [ "$total" = "0" ]; then
  echo "error: gcov found no lines for the cluster_* sources" >&2
  exit 2
fi
printf 'cluster_*       %6s%% of %5s lines (floor %s%%)\n' \
       "$pct" "$total" "$floor_cluster"
if awk -v p="$pct" -v f="$floor_cluster" 'BEGIN { exit !(p < f) }'; then
  echo "FAIL: cluster_* line coverage $pct% is below the" \
       "$floor_cluster% floor" >&2
  status=1
fi
exit $status
