// minidb interactive shell: an in-memory SQL REPL over the engine that
// backs the paper's §5.2 reproduction.
//
//   ./build/tools/minidb_shell          # interactive
//   ./build/tools/minidb_shell < f.sql  # batch
//
// Statements end with ';'. Supported SQL: CREATE TABLE, INSERT INTO ...
// VALUES, SELECT (joins, WHERE conjunctions, GROUP BY, ORDER BY [DESC],
// LIMIT). Dot commands: .tables, .schema <t>, .explain <select>, .help,
// .quit.

#include <iostream>
#include <sstream>
#include <string>

#include <fstream>

#include "dbms/csv.h"
#include "dbms/database.h"
#include "dbms/ddl.h"
#include "dbms/engine.h"
#include "dbms/parser.h"
#include "util/table_writer.h"

namespace {

using namespace qa;
using namespace qa::dbms;

void PrintResult(const Table& table) {
  std::vector<std::string> header;
  for (const Column& c : table.schema().columns()) header.push_back(c.name);
  util::TableWriter writer(std::move(header));
  for (const Row& row : table.rows()) {
    writer.BeginRow();
    for (const Value& v : row) writer.AddCell(v.ToString());
  }
  writer.Print(std::cout);
  std::cout << "(" << table.num_rows() << " row"
            << (table.num_rows() == 1 ? "" : "s") << ")\n";
}

void RunDotCommand(Database& db, const std::string& line) {
  std::istringstream in(line);
  std::string command;
  in >> command;
  if (command == ".help") {
    std::cout << "statements end with ';'\n"
              << "  CREATE TABLE t (c INT|DOUBLE|STRING, ...);\n"
              << "  INSERT INTO t VALUES (...), (...);\n"
              << "  SELECT ... FROM ... [JOIN ... ON ...] [WHERE ...]\n"
              << "         [GROUP BY ...] [ORDER BY ... [DESC]] [LIMIT n];\n"
              << "dot commands: .tables  .schema <t>  .explain <select>\n"
              << "              .import <file.csv> <table>  "
                 ".export <table> <file.csv>  .help  .quit\n";
    return;
  }
  if (command == ".tables") {
    for (const std::string& name : db.TableNames()) {
      std::cout << name << "  (" << db.GetTable(name)->num_rows()
                << " rows)\n";
    }
    for (const std::string& name : db.ViewNames()) {
      std::cout << name << "  (view)\n";
    }
    return;
  }
  if (command == ".schema") {
    std::string name;
    in >> name;
    auto schema = db.RelationSchema(name);
    if (!schema.ok()) {
      std::cout << schema.status() << "\n";
      return;
    }
    std::cout << name << " " << schema->ToString() << "\n";
    return;
  }
  if (command == ".explain") {
    std::string rest;
    std::getline(in, rest);
    auto stmt = ParseSelect(rest);
    if (!stmt.ok()) {
      std::cout << stmt.status() << "\n";
      return;
    }
    Planner planner(&db);
    auto explained = planner.Explain(*stmt);
    if (!explained.ok()) {
      std::cout << explained.status() << "\n";
      return;
    }
    std::cout << explained->text << "signature: " << explained->signature
              << "\nest I/O bytes: " << explained->estimate.io_bytes
              << "  est CPU tuples: " << explained->estimate.cpu_tuples
              << "\n";
    return;
  }
  if (command == ".import") {
    std::string path;
    std::string table;
    in >> path >> table;
    std::ifstream file(path);
    if (!file) {
      std::cout << "cannot open " << path << "\n";
      return;
    }
    auto loaded = ReadCsv(table, file);
    if (!loaded.ok()) {
      std::cout << loaded.status() << "\n";
      return;
    }
    int64_t rows = loaded->num_rows();
    auto status = db.CreateTable(std::move(loaded).value());
    if (!status.ok()) {
      std::cout << status << "\n";
      return;
    }
    std::cout << "imported " << rows << " rows into " << table << "\n";
    return;
  }
  if (command == ".export") {
    std::string table;
    std::string path;
    in >> table >> path;
    const Table* t = db.GetTable(table);
    if (t == nullptr) {
      std::cout << "no table named " << table << "\n";
      return;
    }
    std::ofstream file(path);
    if (!file) {
      std::cout << "cannot open " << path << "\n";
      return;
    }
    WriteCsv(*t, file);
    std::cout << "exported " << t->num_rows() << " rows to " << path << "\n";
    return;
  }
  std::cout << "unknown command " << command << " (try .help)\n";
}

void RunStatement(Database& db, const std::string& sql) {
  auto parsed = ParseStatement(sql);
  if (!parsed.ok()) {
    std::cout << parsed.status() << "\n";
    return;
  }
  if (const auto* select = std::get_if<SelectStatement>(&*parsed)) {
    auto result = ExecuteStatement(db, *select);
    if (!result.ok()) {
      std::cout << result.status() << "\n";
      return;
    }
    PrintResult(result->table);
    return;
  }
  auto applied = ApplyStatement(&db, *parsed);
  if (!applied.ok()) {
    std::cout << applied.status() << "\n";
    return;
  }
  if (std::holds_alternative<CreateTableStatement>(*parsed)) {
    std::cout << "ok\n";
  } else {
    std::cout << *applied << " row" << (*applied == 1 ? "" : "s")
              << " inserted\n";
  }
}

}  // namespace

int main() {
  Database db;
  bool interactive = true;
  std::cout << "minidb shell — .help for help, .quit to exit\n";

  std::string buffer;
  std::string line;
  auto buffer_blank = [&buffer]() {
    return buffer.find_first_not_of(" \t\r\n") == std::string::npos;
  };
  while (true) {
    if (buffer_blank()) buffer.clear();
    if (interactive) std::cout << (buffer.empty() ? "minidb> " : "   ...> ");
    if (!std::getline(std::cin, line)) break;

    // Dot commands act on a full line, outside any pending statement.
    if (buffer.empty() && !line.empty() && line[0] == '.') {
      if (line.rfind(".quit", 0) == 0 || line.rfind(".exit", 0) == 0) break;
      RunDotCommand(db, line);
      continue;
    }

    buffer += line;
    buffer += " ";
    size_t semi;
    while ((semi = buffer.find(';')) != std::string::npos) {
      std::string sql = buffer.substr(0, semi);
      buffer.erase(0, semi + 1);
      // Skip empty statements.
      if (sql.find_first_not_of(" \t\r\n") == std::string::npos) continue;
      RunStatement(db, sql);
    }
  }
  return 0;
}
