// qa_perf: wall-clock and market-health summary of a metrics JSONL file.
//
// Reads the sidecar stream produced by any bench's --metrics=FILE flag
// (see src/obs/SCHEMA.md) and reports where the run's wall time went and
// how healthy the market looked:
//
//   * a phase table: count / total / mean per instrumented phase
//     (lane drain, cross-shard merge, mediator dispatch, market tick,
//     allocate, QA-NT rollover + bid scan, snapshot) and each phase's
//     share of the measured run total;
//   * per-lane drain time and the lane-imbalance factor (max/mean) for
//     sharded runs;
//   * final deterministic counters and market-health gauges;
//   * the watchdog alarm table (price oscillation, starvation,
//     non-convergence), when any alarm latched.
//
// All parsing goes through obs::metrics::ParsedMetrics — the same reader
// the tests use — so anything this tool prints is schema-checked.
//
// Usage:
//   qa_perf METRICS.jsonl [--csv]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "obs/metrics/catalog.h"
#include "obs/metrics/metrics_reader.h"
#include "util/table_writer.h"
#include "util/vtime.h"

namespace qa {
namespace {

struct Options {
  std::string metrics_path;
  bool csv = false;
};

void Usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " METRICS.jsonl [--csv]\n";
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--csv") {
      opts->csv = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return false;
    } else if (opts->metrics_path.empty()) {
      opts->metrics_path = arg;
    } else {
      std::cerr << "extra positional argument: " << arg << "\n";
      return false;
    }
  }
  return !opts->metrics_path.empty();
}

void Emit(const util::TableWriter& table, bool csv) {
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "\n";
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

int Run(const Options& opts) {
  using obs::metrics::ParsedMetrics;
  util::StatusOr<ParsedMetrics> loaded =
      ParsedMetrics::Load(opts.metrics_path);
  if (!loaded.ok()) {
    std::cerr << "error: " << loaded.status() << "\n";
    return 1;
  }
  const ParsedMetrics& metrics = loaded.value();

  // ---- Header: what this run was.
  std::cout << "metrics: " << opts.metrics_path << "\n";
  if (!metrics.meta.is_null()) {
    std::cout << "mechanism: " << metrics.meta.GetString("mechanism", "?")
              << "  nodes: " << metrics.meta.GetInt("nodes", 0)
              << "  shards: " << metrics.meta.GetInt("shards", 1)
              << "  threads: " << metrics.meta.GetInt("threads", 1)
              << "  seed: " << metrics.meta.GetInt("seed", 0) << "\n";
  }
  std::cout << metrics.samples.size() << " sample(s), "
            << metrics.alarms.size() << " alarm(s), " << metrics.stats.size()
            << " final stat(s)\n\n";

  // ---- Phase wall-time table, in catalog order, with share of run total.
  const obs::metrics::MetricStat* run_total =
      metrics.FindStat("qa_phase_run_total_ns");
  double total_ns =
      run_total != nullptr ? static_cast<double>(run_total->sum) : 0.0;
  util::TableWriter phase_table(
      {"Phase", "Count", "Total (ms)", "Mean (us)", "% of run"});
  bool any_phase = false;
  for (const obs::metrics::MetricDef& def : obs::metrics::Catalog()) {
    if (def.kind != obs::metrics::Kind::kHistogram) continue;
    const obs::metrics::MetricStat* stat =
        metrics.FindStat(std::string(def.name));
    if (stat == nullptr || stat->count == 0) continue;
    any_phase = true;
    double ns = static_cast<double>(stat->sum);
    phase_table.BeginRow();
    phase_table.AddCell(std::string(def.name));
    phase_table.AddCell(static_cast<int64_t>(stat->count));
    phase_table.AddCell(Fmt(ns * 1e-6));
    phase_table.AddCell(
        Fmt(ns * 1e-3 / static_cast<double>(stat->count)));
    phase_table.AddCell(total_ns > 0.0 ? Fmt(100.0 * ns / total_ns)
                                       : std::string("-"));
  }
  if (any_phase) {
    Emit(phase_table, opts.csv);
  } else {
    std::cout << "no phase timings recorded (metrics disabled build, or no "
                 "final mstat block)\n\n";
  }

  // ---- Per-lane drain (sharded runs).
  if (metrics.lane_drain_ns.size() > 1) {
    util::TableWriter lane_table({"Lane", "Drain (ms)", "Events"});
    int64_t max_ns = 0, sum_ns = 0;
    for (size_t lane = 0; lane < metrics.lane_drain_ns.size(); ++lane) {
      int64_t ns = metrics.lane_drain_ns[lane];
      max_ns = std::max(max_ns, ns);
      sum_ns += ns;
      lane_table.AddRow(static_cast<int64_t>(lane),
                        Fmt(static_cast<double>(ns) * 1e-6),
                        lane < metrics.lane_events.size()
                            ? metrics.lane_events[lane]
                            : 0);
    }
    Emit(lane_table, opts.csv);
    double mean_ns = static_cast<double>(sum_ns) /
                     static_cast<double>(metrics.lane_drain_ns.size());
    if (mean_ns > 0.0) {
      std::cout << "lane imbalance (max/mean drain): "
                << Fmt(static_cast<double>(max_ns) / mean_ns) << "\n\n";
    }
  }

  // ---- Final deterministic counters and market-health gauges.
  util::TableWriter stat_table({"Metric", "Kind", "Value"});
  for (const obs::metrics::MetricStat& stat : metrics.stats) {
    if (stat.kind == "histogram") continue;
    stat_table.BeginRow();
    stat_table.AddCell(stat.name);
    stat_table.AddCell(stat.kind);
    stat_table.AddCell(stat.kind == "counter" ? std::to_string(stat.value)
                                              : Fmt(stat.gauge));
  }
  Emit(stat_table, opts.csv);

  // ---- Watchdog alarms.
  if (!metrics.alarms.empty()) {
    std::cout << "alarms: " << metrics.alarms.size()
              << " watchdog alarm(s)\n";
    util::TableWriter alarm_table({"Watchdog", "Class", "t (ms)", "Period",
                                   "Value", "Threshold", "Detail"});
    for (const obs::metrics::AlarmRecord& alarm : metrics.alarms) {
      alarm_table.BeginRow();
      alarm_table.AddCell(alarm.watchdog);
      alarm_table.AddCell(alarm.class_id >= 0
                              ? std::to_string(alarm.class_id)
                              : std::string("-"));
      alarm_table.AddCell(alarm.t_us / util::kMillisecond);
      alarm_table.AddCell(alarm.period);
      alarm_table.AddCell(Fmt(alarm.value));
      alarm_table.AddCell(Fmt(alarm.threshold));
      alarm_table.AddCell(alarm.detail);
    }
    Emit(alarm_table, opts.csv);
  } else {
    std::cout << "alarms: none — no watchdog tripped\n";
  }
  return 0;
}

}  // namespace
}  // namespace qa

int main(int argc, char** argv) {
  qa::Options opts;
  if (!qa::ParseArgs(argc, argv, &opts)) {
    qa::Usage(argv[0]);
    return 2;
  }
  return qa::Run(opts);
}
