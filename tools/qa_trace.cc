// qa_trace: convergence diagnostics for a JSONL market trace.
//
// Reads a trace produced by any bench's --trace=FILE flag (schema v1, see
// src/obs/SCHEMA.md) and reports how the market behaved over time:
//
//   * per-class price variance across nodes, period by period — the paper's
//     §3.3 convergence claim made measurable;
//   * time-to-equilibrium: the first period from which the observable
//     excess demand (reject ratio) stays inside a band;
//   * message overhead and event-loop activity per period;
//   * Fig. 5c-style tracking error (arrivals vs completions per bucket);
//   * with --faults: a per-fault recovery table (crash/restart/degrade
//     transitions, price dispersion before/after, reconvergence time) plus
//     the observed fault damage (bounces, lost shipments, drops);
//   * with --shed: a per-period overload table (sheds against arrivals and
//     completions, schema v4 shed records) plus the trace's surge windows
//     — the shedding-side companion to bench_overload's goodput grid;
//   * with --clusters: the hierarchical market's per-cluster table
//     (schema v5 cluster ledger records and per-event routing fields) —
//     how the top tier spread work over the cluster sub-markets;
//   * with --alarms=METRICS.jsonl: the watchdog alarm table from a
//     --metrics run of the same experiment (see src/obs/SCHEMA.md), so the
//     trace's period rows and the health alarms line up side by side.
//
// Usage:
//   qa_trace TRACE.jsonl [--band=0.1] [--window=4] [--bucket-ms=2000]
//            [--periods=N] [--csv] [--faults] [--shed] [--clusters]
//            [--alarms=METRICS.jsonl]
//
// All analysis goes through the same parser the tests use
// (obs::ParsedTrace), so anything this tool prints is covered by the
// round-trip tests in tests/obs_test.cc.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/analysis.h"
#include "obs/metrics/metrics_reader.h"
#include "obs/trace_reader.h"
#include "util/table_writer.h"
#include "util/vtime.h"

namespace qa {
namespace {

struct Options {
  std::string trace_path;
  double band = 0.1;        // equilibrium band on the reject ratio
  int window = 4;           // consecutive in-band periods required
  int64_t bucket_ms = 2000; // tracking-error bucket width
  int max_periods = 0;      // 0 = print all period rows
  bool csv = false;
  bool faults = false;      // fault-recovery summary
  bool shed = false;        // per-period overload/shedding table
  bool clusters = false;    // hierarchical-market per-cluster table
  std::string alarms_path;  // metrics JSONL to read watchdog alarms from
};

void Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " TRACE.jsonl [--band=B] [--window=W] [--bucket-ms=MS]"
               " [--periods=N] [--csv] [--faults] [--shed] [--clusters]"
               " [--alarms=METRICS.jsonl]\n";
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--band=", 0) == 0) {
      opts->band = std::atof(arg.c_str() + 7);
    } else if (arg.rfind("--window=", 0) == 0) {
      opts->window = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--bucket-ms=", 0) == 0) {
      opts->bucket_ms = std::atoll(arg.c_str() + 12);
    } else if (arg.rfind("--periods=", 0) == 0) {
      opts->max_periods = std::atoi(arg.c_str() + 10);
    } else if (arg == "--csv") {
      opts->csv = true;
    } else if (arg == "--faults") {
      opts->faults = true;
    } else if (arg == "--shed") {
      opts->shed = true;
    } else if (arg == "--clusters") {
      opts->clusters = true;
    } else if (arg.rfind("--alarms=", 0) == 0) {
      opts->alarms_path = arg.substr(9);
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return false;
    } else if (opts->trace_path.empty()) {
      opts->trace_path = arg;
    } else {
      std::cerr << "extra positional argument: " << arg << "\n";
      return false;
    }
  }
  return !opts->trace_path.empty();
}

void Emit(const util::TableWriter& table, bool csv) {
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "\n";
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

int Run(const Options& opts) {
  using obs::ParsedTrace;
  util::StatusOr<ParsedTrace> loaded = ParsedTrace::Load(opts.trace_path);
  if (!loaded.ok()) {
    std::cerr << "error: " << loaded.status() << "\n";
    return 1;
  }
  const ParsedTrace& trace = loaded.value();

  // ---- Header: what this trace is.
  if (!trace.has_meta) {
    std::cerr << "warning: trace has no meta record; period bucketing "
                 "assumes 500ms periods\n";
  }
  const obs::MetaRecord& meta = trace.meta;
  std::cout << "trace: " << opts.trace_path << "\n"
            << "mechanism: " << meta.mechanism << "  nodes: " << meta.nodes
            << "  classes: " << meta.classes
            << "  period: " << meta.period_us / util::kMillisecond << "ms"
            << "  seed: " << meta.seed << "\n";
  if (!meta.solicitation.empty()) {
    std::cout << "solicitation: " << meta.solicitation;
    if (meta.fanout > 0) std::cout << "  fanout: " << meta.fanout;
    std::cout << "\n";
  }
  std::cout << "records: " << trace.NumRecords() << " ("
            << trace.events.size() << " events, " << trace.prices.size()
            << " prices, " << trace.agents.size() << " agents, "
            << trace.umpire.size() << " umpire, " << trace.stats.size()
            << " stats)\n\n";

  // ---- Per-period activity and message overhead.
  std::vector<obs::PeriodLoad> loads = obs::LoadByPeriod(trace);
  std::vector<obs::PriceDispersion> dispersion =
      obs::PriceVarianceByPeriod(trace);

  // Price variance rows keyed by (period, class) for the merged table.
  std::map<std::pair<int, int>, const obs::PriceDispersion*> by_cell;
  int num_classes = std::max(meta.classes, 1);
  for (const obs::PriceDispersion& d : dispersion) {
    by_cell[{d.period, d.class_id}] = &d;
    num_classes = std::max(num_classes, d.class_id + 1);
  }

  std::vector<std::string> header = {"Period",   "Arrivals", "Assigns",
                                     "Rejects",  "Drops",    "Messages",
                                     "Solicited", "Excess"};
  // Log-variance is the scale-free dispersion (see PriceDispersion in
  // obs/analysis.h): 0 = all nodes quote the same price.
  for (int c = 0; c < num_classes; ++c) {
    header.push_back("LogPriceVar(c" + std::to_string(c) + ")");
  }
  util::TableWriter period_table(std::move(header));
  int printed = 0;
  for (const obs::PeriodLoad& load : loads) {
    if (opts.max_periods > 0 && printed >= opts.max_periods) break;
    ++printed;
    period_table.BeginRow();
    period_table.AddCell(load.period);
    period_table.AddCell(load.arrivals);
    period_table.AddCell(load.assigns);
    period_table.AddCell(load.rejects);
    period_table.AddCell(load.drops);
    period_table.AddCell(load.messages);
    period_table.AddCell(load.solicited);
    period_table.AddCell(Fmt(load.ExcessRatio()));
    for (int c = 0; c < num_classes; ++c) {
      auto it = by_cell.find({load.period, c});
      period_table.AddCell(it != by_cell.end()
                               ? Fmt(it->second->log_variance)
                               : std::string("-"));
    }
  }
  Emit(period_table, opts.csv);
  if (opts.max_periods > 0 &&
      loads.size() > static_cast<size_t>(opts.max_periods)) {
    std::cout << "(" << loads.size() - opts.max_periods
              << " more periods; pass --periods=0 for all)\n\n";
  }

  // ---- Time-to-equilibrium.
  obs::EquilibriumResult eq =
      obs::TimeToEquilibrium(loads, meta, opts.band, opts.window);
  if (eq.found) {
    std::cout << "time-to-equilibrium: period " << eq.period << " (t="
              << Fmt(eq.time_ms) << "ms): excess demand stayed within "
              << Fmt(opts.band) << " for " << opts.window
              << " consecutive periods\n";
  } else {
    std::cout << "time-to-equilibrium: not reached (excess demand never "
                 "stayed within "
              << Fmt(opts.band) << " for " << opts.window
              << " consecutive periods)\n";
  }
  // Recovery: the same question asked after the *last* out-of-band period
  // — how long after the final workload shift the market needed to settle.
  size_t last_hot = loads.size();
  for (size_t i = 0; i < loads.size(); ++i) {
    if (loads[i].ExcessRatio() > opts.band) last_hot = i;
  }
  if (last_hot != loads.size()) {
    std::vector<obs::PeriodLoad> tail(loads.begin() + last_hot + 1,
                                      loads.end());
    obs::EquilibriumResult recovery =
        obs::TimeToEquilibrium(tail, meta, opts.band, opts.window);
    if (recovery.found) {
      std::cout << "recovery after last shift: period " << recovery.period
                << " (t=" << Fmt(recovery.time_ms) << "ms), "
                << recovery.period - static_cast<int>(last_hot) - 1
                << " period(s) after the last out-of-band period\n";
    } else {
      std::cout << "recovery after last shift: not reached within the "
                   "trace\n";
    }
  }

  // ---- Message overhead summary.
  int64_t total_messages = 0, total_assigns = 0, total_rejects = 0;
  for (const obs::PeriodLoad& load : loads) {
    total_messages += load.messages;
    total_assigns += load.assigns;
    total_rejects += load.rejects;
  }
  int64_t attempts = total_assigns + total_rejects;
  int64_t total_solicited = 0;
  for (const obs::EventRecord& event : trace.events) {
    total_solicited += event.solicited;
  }
  std::cout << "message overhead: " << total_messages << " messages over "
            << loads.size() << " periods";
  if (!loads.empty()) {
    std::cout << " (" << Fmt(static_cast<double>(total_messages) /
                             static_cast<double>(loads.size()))
              << "/period";
    if (attempts > 0) {
      std::cout << ", " << Fmt(static_cast<double>(total_messages) /
                               static_cast<double>(attempts))
                << "/allocation attempt";
      if (total_solicited > 0) {
        std::cout << ", " << Fmt(static_cast<double>(total_solicited) /
                                 static_cast<double>(attempts))
                  << " nodes solicited/attempt";
      }
    }
    std::cout << ")";
  }
  std::cout << "\n";

  // ---- Convergence: peak dispersion (the worst disagreement, normally
  // right after a workload shift) versus where the market ended up.
  for (int c = 0; c < num_classes; ++c) {
    const obs::PriceDispersion* peak = nullptr;
    const obs::PriceDispersion* last = nullptr;
    for (const obs::PriceDispersion& d : dispersion) {
      if (d.class_id != c) continue;
      if (peak == nullptr || d.log_variance > peak->log_variance) peak = &d;
      last = &d;
    }
    if (peak == nullptr || last == nullptr || peak == last) continue;
    std::cout << "log-price variance (class " << c << "): peak "
              << Fmt(peak->log_variance) << " @period " << peak->period
              << " -> " << Fmt(last->log_variance) << " @period "
              << last->period
              << (last->log_variance <= 0.5 * peak->log_variance
                      ? " (re-converged)"
                      : " (still dispersed)")
              << "\n";
  }

  // ---- Fault-recovery summary (--faults; schema v2 fault records).
  if (opts.faults) {
    std::vector<obs::FaultRecovery> recovery = obs::FaultRecoveryReport(trace);
    std::cout << "\nfaults: " << recovery.size()
              << " crash/restart/degrade transition(s) in the trace\n";
    if (!recovery.empty()) {
      util::TableWriter fault_table({"Kind", "Node", "t (ms)", "Factor",
                                     "PreVar", "PeakVar", "Reconverged",
                                     "Recovery (ms)"});
      int reconverged = 0;
      for (const obs::FaultRecovery& row : recovery) {
        if (row.reconverged) ++reconverged;
        fault_table.BeginRow();
        fault_table.AddCell(std::string(obs::EventKindName(row.kind)));
        fault_table.AddCell(row.node);
        fault_table.AddCell(row.t_us / util::kMillisecond);
        fault_table.AddCell(row.has_factor() ? Fmt(row.factor)
                                             : std::string("-"));
        fault_table.AddCell(Fmt(row.pre_fault_variance));
        fault_table.AddCell(Fmt(row.peak_variance));
        fault_table.AddCell(row.reconverged ? "yes" : "no");
        fault_table.AddCell(row.reconverged ? Fmt(row.recovery_ms)
                                            : std::string("-"));
      }
      Emit(fault_table, opts.csv);
      std::cout << reconverged << "/" << recovery.size()
                << " transition(s) with log-price variance back at or below "
                   "the pre-fault level\n";
    }
    // Observed fault damage, summed over the whole trace: how often the
    // mechanism bounced work off unreachable nodes and how many shipments
    // the faulty network ate.
    int64_t bounces = 0, losses = 0, drops = 0;
    for (const obs::PeriodLoad& load : loads) {
      bounces += load.bounces;
      losses += load.losses;
      drops += load.drops;
    }
    std::cout << "fault damage: " << bounces << " bounce(s), " << losses
              << " lost shipment(s), " << drops << " abandoned queries\n";
  }

  // ---- Overload summary (--shed; schema v4 shed/surge records).
  if (opts.shed) {
    int64_t total_sheds = 0, total_arrivals = 0;
    for (const obs::PeriodLoad& load : loads) {
      total_sheds += load.sheds;
      total_arrivals += load.arrivals;
    }
    std::cout << "\nshedding: " << total_sheds << " shed of "
              << total_arrivals << " arrival(s)";
    if (total_arrivals > 0) {
      std::cout << " ("
                << Fmt(static_cast<double>(total_sheds) /
                       static_cast<double>(total_arrivals))
                << " of offered load turned away)";
    }
    std::cout << "\n";
    // Only periods that shed anything make the table: at healthy load it
    // is empty, and under a flash crowd it shows exactly when the gate
    // leaned in and how hard.
    util::TableWriter shed_table({"Period", "Arrivals", "Completes", "Sheds",
                                  "Drops", "Shed/Arr"});
    int shed_periods = 0;
    for (const obs::PeriodLoad& load : loads) {
      if (load.sheds == 0) continue;
      ++shed_periods;
      if (opts.max_periods > 0 && shed_periods > opts.max_periods) continue;
      shed_table.BeginRow();
      shed_table.AddCell(load.period);
      shed_table.AddCell(load.arrivals);
      shed_table.AddCell(load.completes);
      shed_table.AddCell(load.sheds);
      shed_table.AddCell(load.drops);
      shed_table.AddCell(load.arrivals > 0
                             ? Fmt(static_cast<double>(load.sheds) /
                                   static_cast<double>(load.arrivals))
                             : std::string("-"));
    }
    if (shed_periods > 0) {
      Emit(shed_table, opts.csv);
      std::cout << shed_periods << " period(s) shed work\n";
    }
    // The surge windows that provoked it, straight from the trace.
    for (const obs::EventRecord& event : trace.events) {
      if (event.kind != obs::EventRecord::Kind::kSurge) continue;
      std::cout << "surge edge @ " << event.t_us / util::kMillisecond
                << "ms: factor " << Fmt(event.factor) << " (class "
                << (event.class_id < 0 ? std::string("all")
                                       : std::to_string(event.class_id))
                << ")\n";
    }
  }

  // ---- Hierarchical market (--clusters; schema v5 cluster records).
  if (opts.clusters) {
    // The trace carries the cluster count on the meta line for
    // hierarchical runs; fall back to the largest id the records mention
    // so pre-meta or hand-edited traces still tabulate.
    int num_clusters = meta.clusters;
    for (const obs::ClusterRecord& rec : trace.clusters) {
      num_clusters = std::max(num_clusters, rec.cluster + 1);
    }
    for (const obs::EventRecord& event : trace.events) {
      num_clusters = std::max(num_clusters, event.cluster + 1);
    }
    if (num_clusters == 0) {
      std::cout << "\nclusters: none (flat run — no hierarchical records "
                   "in the trace)\n";
    } else {
      // Routing side, from the events: where assigns landed and how many
      // clusters each attempt solicited.
      std::vector<int64_t> assigns(static_cast<size_t>(num_clusters), 0);
      std::vector<int64_t> rejects(static_cast<size_t>(num_clusters), 0);
      int64_t routed_attempts = 0, clusters_asked = 0;
      for (const obs::EventRecord& event : trace.events) {
        if (event.clusters_asked > 0) {
          ++routed_attempts;
          clusters_asked += event.clusters_asked;
        }
        if (event.cluster < 0) continue;
        size_t c = static_cast<size_t>(event.cluster);
        if (event.kind == obs::EventRecord::Kind::kAssign) ++assigns[c];
        if (event.kind == obs::EventRecord::Kind::kReject) ++rejects[c];
      }
      // Ledger side, from the periodic cluster records: the final
      // published/remaining/sold state per cluster (summed over classes)
      // and how many snapshots each cluster appeared in.
      std::vector<int64_t> published(static_cast<size_t>(num_clusters), 0);
      std::vector<int64_t> remaining(static_cast<size_t>(num_clusters), 0);
      std::vector<int64_t> sold(static_cast<size_t>(num_clusters), 0);
      std::vector<int64_t> samples(static_cast<size_t>(num_clusters), 0);
      int64_t last_t =
          trace.clusters.empty() ? -1 : trace.clusters.back().t_us;
      for (const obs::ClusterRecord& rec : trace.clusters) {
        size_t c = static_cast<size_t>(rec.cluster);
        ++samples[c];
        if (rec.t_us == last_t) {
          published[c] += rec.published;
          remaining[c] += rec.remaining;
          sold[c] += rec.sold;
        }
      }
      std::cout << "\nclusters: " << num_clusters << " (top fanout "
                << (meta.top_fanout > 0 ? std::to_string(meta.top_fanout)
                                        : std::string("broadcast"))
                << ", " << trace.clusters.size() << " ledger records)\n";
      if (routed_attempts > 0) {
        std::cout << "top tier: " << Fmt(static_cast<double>(clusters_asked) /
                                         static_cast<double>(routed_attempts))
                  << " cluster(s) solicited per routed attempt\n";
      }
      util::TableWriter cluster_table({"Cluster", "Samples", "Assigns",
                                       "Rejects", "Published", "Remaining",
                                       "Sold"});
      for (int c = 0; c < num_clusters; ++c) {
        size_t i = static_cast<size_t>(c);
        cluster_table.BeginRow();
        cluster_table.AddCell(c);
        cluster_table.AddCell(samples[i]);
        cluster_table.AddCell(assigns[i]);
        cluster_table.AddCell(rejects[i]);
        cluster_table.AddCell(published[i]);
        cluster_table.AddCell(remaining[i]);
        cluster_table.AddCell(sold[i]);
      }
      Emit(cluster_table, opts.csv);
    }
  }

  // ---- Watchdog alarms (--alarms=METRICS.jsonl; metrics sidecar file).
  if (!opts.alarms_path.empty()) {
    util::StatusOr<obs::metrics::ParsedMetrics> metrics =
        obs::metrics::ParsedMetrics::Load(opts.alarms_path);
    if (!metrics.ok()) {
      std::cerr << "error: --alarms: " << metrics.status() << "\n";
      return 1;
    }
    const std::vector<obs::metrics::AlarmRecord>& alarms =
        metrics.value().alarms;
    std::cout << "\nalarms: " << alarms.size()
              << " watchdog alarm(s) in " << opts.alarms_path << "\n";
    if (!alarms.empty()) {
      util::TableWriter alarm_table({"Watchdog", "Class", "t (ms)", "Period",
                                     "Value", "Threshold", "Detail"});
      for (const obs::metrics::AlarmRecord& alarm : alarms) {
        alarm_table.BeginRow();
        alarm_table.AddCell(alarm.watchdog);
        alarm_table.AddCell(alarm.class_id >= 0
                                ? std::to_string(alarm.class_id)
                                : std::string("-"));
        alarm_table.AddCell(alarm.t_us / util::kMillisecond);
        alarm_table.AddCell(alarm.period);
        alarm_table.AddCell(Fmt(alarm.value));
        alarm_table.AddCell(Fmt(alarm.threshold));
        alarm_table.AddCell(alarm.detail);
      }
      Emit(alarm_table, opts.csv);
    }
  }

  // ---- Umpire iterations (tatonnement traces only).
  if (!trace.umpire.empty()) {
    std::cout << "umpire: " << trace.umpire.size()
              << " price-adjustment records";
    const obs::UmpireRecord& last = trace.umpire.back();
    std::cout << "; final iter " << last.iter << " class " << last.class_id
              << " price " << Fmt(last.price) << " excess "
              << Fmt(last.excess) << "\n";
  }

  // ---- Fig. 5c-style tracking error.
  std::vector<obs::TrackingSeries> tracking = obs::ComputeTracking(
      trace, opts.bucket_ms * util::kMillisecond);
  if (!tracking.empty()) {
    std::cout << "\ntracking (bucket " << opts.bucket_ms << "ms):\n";
    util::TableWriter track_table(
        {"Class", "Buckets", "Arrivals", "Completions", "TrackingError"});
    for (const obs::TrackingSeries& series : tracking) {
      int64_t arrivals = 0, completions = 0;
      for (int64_t a : series.arrivals) arrivals += a;
      for (int64_t d : series.completions) completions += d;
      track_table.AddRow(series.class_id,
                         static_cast<int64_t>(series.arrivals.size()),
                         arrivals, completions, series.total_error);
    }
    Emit(track_table, opts.csv);
  }
  return 0;
}

}  // namespace
}  // namespace qa

int main(int argc, char** argv) {
  qa::Options opts;
  if (!qa::ParseArgs(argc, argv, &opts)) {
    qa::Usage(argv[0]);
    return 2;
  }
  return qa::Run(opts);
}
