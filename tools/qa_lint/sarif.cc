// SARIF 2.1.0 rendering of qa_lint findings, for GitHub code-scanning
// upload. One run, one tool ("qa_lint"), the full rule catalog in
// tool.driver.rules so findings annotate PRs with the rationale text.

#include <string>
#include <vector>

#include "qa_lint/internal.h"
#include "qa_lint/lint.h"

namespace qa::lint {

namespace {

using internal::Cat;
using internal::JsonEscape;

}  // namespace

std::string FormatSarif(const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"qa_lint\",\n"
      "          \"informationUri\": \"LINT.md\",\n"
      "          \"rules\": [\n";
  const std::vector<Rule>& rules = AllRules();
  for (size_t i = 0; i < rules.size(); ++i) {
    const Rule& r = rules[i];
    out += Cat({"            {\"id\": \"", JsonEscape(r.id),
                "\", \"shortDescription\": {\"text\": \"",
                JsonEscape(r.summary),
                "\"}, \"fullDescription\": {\"text\": \"",
                JsonEscape(r.rationale), "\"}, \"helpUri\": \"LINT.md\"}",
                i + 1 < rules.size() ? ",\n" : "\n"});
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += Cat({"        {\"ruleId\": \"", JsonEscape(f.rule),
                "\", \"level\": \"error\", \"message\": {\"text\": \"",
                JsonEscape(f.message),
                "\"}, \"locations\": [{\"physicalLocation\": "
                "{\"artifactLocation\": {\"uri\": \"",
                JsonEscape(f.file), "\"}, \"region\": {\"startLine\": ",
                std::to_string(f.line),
                ", \"startColumn\": ", std::to_string(f.column)});
    if (!f.snippet.empty()) {
      out += Cat({", \"snippet\": {\"text\": \"", JsonEscape(f.snippet),
                  "\"}"});
    }
    out += Cat({"}}}]}", i + 1 < findings.size() ? ",\n" : "\n"});
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace qa::lint
