#ifndef QAMARKET_TOOLS_QA_LINT_INTERNAL_H_
#define QAMARKET_TOOLS_QA_LINT_INTERNAL_H_

// Shared internals of qa_lint: the tokenizer and path helpers used by
// both the per-file rule engine (lint.cc) and the cross-file analyzer
// (project.cc). Not part of the public API in lint.h — tests and tools
// should not depend on token-level details.

#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "qa_lint/lint.h"

namespace qa::lint::internal {

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind;
  std::string text;   // Punct/ident spelling; literals keep their quotes.
  std::string value;  // Unquoted contents, string literals only.
  int line = 0;
  int column = 0;
};

/// One `#include` directive, with the line it sits on so cross-layer
/// findings land on the exact edge.
struct IncludeDirective {
  std::string target;  // as written inside "" or <>
  int line = 0;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::map<int, std::set<std::string>> allow;  // line -> suppressed rule IDs
  /// Every `allow(ID)` directive at its own comment line, one entry per
  /// ID — the unit the stale-suppression audit (QA-SUP-001) reasons
  /// about. `allow` above is the same data spread over the covered
  /// lines (directive line and the line below).
  std::vector<std::pair<int, std::string>> allow_sites;
};

LexedFile Lex(std::string_view src);

/// Concatenation without std::string operator+: GCC 12's -Wrestrict
/// false-positives (PR105651) on `"lit" + std::string&&` under -O2+,
/// which -Werror would turn fatal.
std::string Cat(std::initializer_list<std::string_view> parts);

std::string NormalizePath(std::string_view path);

/// True if `path` lies under directory `dir` (given repo-relative, e.g.
/// "src/sim"), whether `path` itself is repo-relative or absolute.
bool PathInDir(const std::string& path, std::string_view dir);

/// True if `path` names exactly the repo-relative file `rel`.
bool PathIs(const std::string& path, std::string_view rel);

bool InSimPaths(const std::string& path);

/// Repo-relative key for a possibly absolute path: the suffix starting
/// at the last top-level project directory (src/tools/bench/tests/
/// examples) found in it, or the normalized path unchanged. All
/// cross-file graphs are keyed on this so absolute and relative
/// invocations resolve identically.
std::string RelKey(const std::string& path);

std::string JsonEscape(const std::string& s);

/// (finding line, rule ID) pairs whose suppression was actually
/// consulted — the raw material of the stale-suppression audit.
using UsedAllows = std::map<std::string, std::set<std::pair<int, std::string>>>;

/// Runs every per-file rule over an already-lexed file. When a finding
/// is swallowed by an allow() directive, the (line, rule) pair — and
/// the line above, where a directive-on-its-own-line would sit — is
/// recorded in `used` under `path` (if non-null).
std::vector<Finding> LintLexed(const std::string& path, const LexedFile& lexed,
                               const Options& options, UsedAllows* used);

/// True when `rule` passes the Options::only_rules filter.
bool RuleSelected(const Options& options, std::string_view rule);

/// True when a finding for `rule` at `line` is suppressed by an allow()
/// directive; records the consultation in `used` (if non-null).
bool Suppressed(const LexedFile& lexed, const std::string& path, int line,
                const std::string& rule, UsedAllows* used);

/// Attaches the offending source line to each finding (assumed to all
/// belong to the file whose text is `content`); findings that already
/// carry a snippet are left alone.
void FillSnippets(std::string_view content, std::vector<Finding>* findings);

}  // namespace qa::lint::internal

#endif  // QAMARKET_TOOLS_QA_LINT_INTERNAL_H_
