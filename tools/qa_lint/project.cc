// Cross-file passes of qa_lint: the project include graph and layer DAG
// (QA-ARCH-001/002), a function/lambda index with an approximate call
// graph, wall-clock taint tracking into sim state (QA-DET-004),
// shard-lane safety (QA-SHD-002), and the stale-suppression audit
// (QA-SUP-001). Everything works on the same token stream as the
// per-file rules — no libclang; name+scope resolution is conservative
// on overloads (all same-name candidates are considered reachable).

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "qa_lint/internal.h"
#include "qa_lint/lint.h"

namespace qa::lint {
namespace {

using internal::Cat;
using internal::LexedFile;
using internal::TokKind;
using internal::Token;

constexpr size_t kNoFunc = static_cast<size_t>(-1);

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string JoinChain(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kSet = {
      "if",     "for",    "while",  "switch",        "catch",
      "return", "sizeof", "alignof", "static_assert", "assert",
      "do",     "else",   "new",    "delete",        "throw"};
  return kSet;
}

// ---------------------------------------------------------------------------
// Layer manifest (tools/arch_layers.txt)
// ---------------------------------------------------------------------------

struct Manifest {
  std::vector<std::string> order;                        // declaration order
  std::map<std::string, std::vector<std::string>> dirs;  // layer -> owned dirs
  std::map<std::string, std::set<std::string>> deps;     // layer -> may include
};

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool ParseManifest(const std::string& text, const std::string& origin,
                   Manifest* out, std::vector<std::string>* errors) {
  bool ok = true;
  auto fail = [&](int line, std::string_view what) {
    ok = false;
    if (errors != nullptr) {
      errors->push_back(
          Cat({origin, ":", std::to_string(line), ": ", what}));
    }
  };
  size_t pos = 0;
  int lineno = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::vector<std::string> words = SplitWords(line);
    if (words.empty()) continue;
    if (words.size() < 2 || (words[0] != "layer" && words[0] != "dep")) {
      fail(lineno, "expected 'layer NAME: DIR...' or 'dep NAME: LAYER...'");
      continue;
    }
    std::string name = words[1];
    size_t rest = 2;
    if (!name.empty() && name.back() == ':') {
      name.pop_back();
    } else if (rest < words.size() && words[rest] == ":") {
      ++rest;
    } else {
      fail(lineno, "missing ':' after the layer name");
      continue;
    }
    std::vector<std::string> operands(words.begin() + static_cast<long>(rest),
                                      words.end());
    if (name.empty() || operands.empty()) {
      fail(lineno, "empty layer name or operand list");
      continue;
    }
    if (words[0] == "layer") {
      if (out->dirs.count(name) > 0) {
        fail(lineno, Cat({"layer '", name, "' declared twice"}));
        continue;
      }
      out->order.push_back(name);
      for (std::string& d : operands) {
        while (!d.empty() && d.back() == '/') d.pop_back();
      }
      out->dirs[name] = std::move(operands);
    } else {
      for (const std::string& dep : operands) {
        out->deps[name].insert(dep);
      }
    }
  }
  // Every dep line must reference declared layers on both sides.
  for (const auto& [name, targets] : out->deps) {
    if (out->dirs.count(name) == 0) {
      fail(0, Cat({"dep line for undeclared layer '", name, "'"}));
    }
    for (const std::string& dep : targets) {
      if (out->dirs.count(dep) == 0) {
        fail(0, Cat({"layer '", name, "' depends on undeclared layer '", dep,
                     "'"}));
      }
    }
  }
  return ok;
}

/// The layer owning `key` (repo-relative path), by longest directory
/// prefix, or nullptr when no layer claims it.
const std::string* LayerOf(const Manifest& mf, const std::string& key) {
  const std::string* best = nullptr;
  size_t best_len = 0;
  for (const std::string& name : mf.order) {
    for (const std::string& dir : mf.dirs.at(name)) {
      bool owns = key.size() > dir.size() + 1 &&
                  key.compare(0, dir.size(), dir) == 0 &&
                  key[dir.size()] == '/';
      if (owns && dir.size() >= best_len) {
        best = &name;
        best_len = dir.size();
      }
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Include resolution
// ---------------------------------------------------------------------------

std::string DirName(const std::string& key) {
  size_t pos = key.rfind('/');
  return pos == std::string::npos ? std::string() : key.substr(0, pos);
}

/// Collapses "./" and "a/.." segments lexically.
std::string LexicalNormalize(const std::string& p) {
  std::vector<std::string> parts;
  std::string cur;
  for (size_t i = 0; i <= p.size(); ++i) {
    if (i == p.size() || p[i] == '/') {
      if (cur == "..") {
        if (!parts.empty()) parts.pop_back();
      } else if (!cur.empty() && cur != ".") {
        parts.push_back(cur);
      }
      cur.clear();
    } else {
      cur.push_back(p[i]);
    }
  }
  return JoinChain(parts, "/");
}

/// Resolves an include target against the project file set the way the
/// build does: sibling-relative first, then the src/ and tools/ include
/// roots, then verbatim from the repo root. Empty when the target is a
/// system header or otherwise outside the linted set.
std::string ResolveInclude(const std::set<std::string>& keys,
                           const std::string& includer,
                           const std::string& target) {
  std::vector<std::string> cands;
  std::string dir = DirName(includer);
  if (!dir.empty()) cands.push_back(Cat({dir, "/", target}));
  cands.push_back(Cat({"src/", target}));
  cands.push_back(Cat({"tools/", target}));
  cands.push_back(target);
  for (const std::string& c : cands) {
    std::string n = LexicalNormalize(c);
    if (keys.count(n) > 0) return n;
  }
  return std::string();
}

// ---------------------------------------------------------------------------
// Per-file model: bracket matching, function/lambda index, call sites
// ---------------------------------------------------------------------------

/// One call site inside a function body.
struct CallSite {
  std::vector<std::string> chain;     // qualified name, e.g. util,Mono...,Now
  std::vector<std::string> receiver;  // idents left of the . / -> chain
  size_t name_tok = 0;                // token index of the final name
  size_t paren = 0;                   // token index of the '('
};

struct FuncInfo {
  std::string name;              // last name component
  std::string cls;               // qualifying or enclosing class ("" = free)
  std::string qual;              // display name for messages
  int line = 0;
  size_t body_begin = 0;         // token index of the body '{'
  size_t body_end = 0;           // token index of the matching '}'
  bool is_lambda = false;
  std::string lambda_var;        // `auto NAME = [...]` name, lambdas only
  std::string lambda_passed_to;  // callee when written directly as an arg
  size_t owner = kNoFunc;        // enclosing function, lambdas only
  std::vector<CallSite> calls;   // own body only (nested lambdas excluded)
};

struct FileModel {
  std::string path;            // as handed in (used on findings)
  std::string key;             // repo-relative key (used on graphs)
  const std::string* content = nullptr;
  LexedFile lexed;
  std::vector<int> match;      // bracket partner per token, -1 = none
  std::vector<size_t> encl;    // innermost enclosing '(' idx + 1, 0 = none
  std::vector<FuncInfo> funcs;
};

std::vector<int> MatchBrackets(const std::vector<Token>& t) {
  std::vector<int> match(t.size(), -1);
  std::vector<size_t> stack;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct || t[i].text.size() != 1) continue;
    char c = t[i].text[0];
    if (c == '(' || c == '[' || c == '{') {
      stack.push_back(i);
    } else if (c == ')' || c == ']' || c == '}') {
      char want = c == ')' ? '(' : (c == ']' ? '[' : '{');
      if (!stack.empty() && t[stack.back()].text[0] == want) {
        match[stack.back()] = static_cast<int>(i);
        match[i] = static_cast<int>(stack.back());
        stack.pop_back();
      }
    }
  }
  return match;
}

std::vector<size_t> ComputeEnclParen(const std::vector<Token>& t,
                                     const std::vector<int>& match) {
  std::vector<size_t> encl(t.size(), 0);
  std::vector<size_t> stack;
  for (size_t i = 0; i < t.size(); ++i) {
    encl[i] = stack.empty() ? 0 : stack.back() + 1;
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text == "(" && match[i] > 0) {
      stack.push_back(i);
    } else if (t[i].text == ")" && !stack.empty() &&
               match[i] == static_cast<int>(stack.back())) {
      stack.pop_back();
    }
  }
  return encl;
}

/// Recursive-descent function/method/lambda indexer over the token
/// stream. Heuristic but deliberately conservative: anything it cannot
/// classify (operator bodies, exotic declarators) is skipped opaquely
/// rather than misattributed.
class Indexer {
 public:
  explicit Indexer(FileModel* fm)
      : fm_(*fm), t_(fm->lexed.tokens), match_(fm->match) {}

  void Run() { Walk(0, t_.size(), std::string()); }

 private:
  bool Ident(size_t i, const char* s) const {
    return i < t_.size() && t_[i].kind == TokKind::kIdent && t_[i].text == s;
  }
  bool Punct(size_t i, const char* s) const {
    return i < t_.size() && t_[i].kind == TokKind::kPunct && t_[i].text == s;
  }
  size_t Match(size_t i) const {
    return match_[i] > 0 ? static_cast<size_t>(match_[i]) : 0;
  }

  /// `i` at '<': returns the index past the matching '>', or the index
  /// of a ';'/'{'/'}' bail-out when this was not a template head.
  size_t SkipAngles(size_t i) const {
    int depth = 0;
    while (i < t_.size()) {
      const std::string& x = t_[i].text;
      if (t_[i].kind == TokKind::kPunct) {
        if (x == "<") {
          ++depth;
        } else if (x == ">") {
          if (--depth == 0) return i + 1;
        } else if (x == ";" || x == "{" || x == "}") {
          return i;
        }
      }
      ++i;
    }
    return i;
  }

  void Walk(size_t b, size_t e, const std::string& cls) {
    size_t i = b;
    while (i < e) {
      const Token& tok = t_[i];
      if (tok.kind == TokKind::kIdent) {
        if (tok.text == "template" && Punct(i + 1, "<")) {
          i = SkipAngles(i + 1);
          continue;
        }
        if (tok.text == "namespace") {
          size_t j = i + 1;
          while (j < e && (t_[j].kind == TokKind::kIdent || Punct(j, "::"))) ++j;
          if (j < e && Punct(j, "{") && Match(j) != 0) {
            Walk(j + 1, Match(j), cls);
            i = Match(j) + 1;
            continue;
          }
          i = j + 1;  // namespace alias
          continue;
        }
        if ((tok.text == "class" || tok.text == "struct") &&
            !(i > b && Ident(i - 1, "enum"))) {
          std::string name;
          size_t j = i + 1;
          while (j < e) {
            if (t_[j].kind == TokKind::kIdent && name.empty() &&
                t_[j].text != "final" && t_[j].text != "alignas") {
              name = t_[j].text;
            }
            if (Punct(j, "<")) { j = SkipAngles(j); continue; }
            if ((Punct(j, "(") || Punct(j, "[")) && Match(j) != 0) {
              j = Match(j) + 1;
              continue;
            }
            if (Punct(j, ";") || Punct(j, "{") || Punct(j, "=")) break;
            ++j;
          }
          if (j < e && Punct(j, "{") && Match(j) != 0) {
            Walk(j + 1, Match(j), name.empty() ? cls : name);
            i = Match(j) + 1;
            continue;
          }
          i = j + 1;  // forward declaration
          continue;
        }
        if (tok.text == "enum") {
          size_t j = i + 1;
          while (j < e && !Punct(j, "{") && !Punct(j, ";")) ++j;
          if (j < e && Punct(j, "{") && Match(j) != 0) j = Match(j);
          i = j + 1;
          continue;
        }
        if (Punct(i + 1, "(") && ControlKeywords().count(tok.text) == 0 &&
            Match(i + 1) != 0) {
          size_t close = Match(i + 1);
          size_t k = close + 1;
          while (k < e) {
            if (Ident(k, "const") || Ident(k, "override") ||
                Ident(k, "final") || Ident(k, "mutable") || Ident(k, "try")) {
              ++k;
              continue;
            }
            if (Ident(k, "noexcept")) {
              ++k;
              if (Punct(k, "(") && Match(k) != 0) k = Match(k) + 1;
              continue;
            }
            if (Punct(k, "->")) {  // trailing return type
              ++k;
              while (k < e && !Punct(k, "{") && !Punct(k, ";") &&
                     !Punct(k, "=")) {
                if (Punct(k, "<")) { k = SkipAngles(k); continue; }
                ++k;
              }
              continue;
            }
            if (Punct(k, ":")) {  // constructor initializers
              ++k;
              while (k < e) {
                while (k < e &&
                       (t_[k].kind == TokKind::kIdent || Punct(k, "::"))) {
                  ++k;
                }
                if (Punct(k, "<")) k = SkipAngles(k);
                if ((Punct(k, "(") || Punct(k, "{")) && Match(k) != 0) {
                  k = Match(k) + 1;
                } else {
                  break;
                }
                if (Punct(k, ",")) { ++k; continue; }
                break;
              }
              continue;
            }
            break;
          }
          if (k < e && Punct(k, "{") && Match(k) != 0) {
            AddFunction(i, k, cls);
            i = Match(k) + 1;
            continue;
          }
          i = close + 1;  // declaration or namespace-scope expression
          continue;
        }
      }
      if (Punct(i, "{") && Match(i) != 0) {  // opaque block
        i = Match(i) + 1;
        continue;
      }
      ++i;
    }
  }

  void AddFunction(size_t name_tok, size_t brace, const std::string& cls) {
    std::vector<std::string> chain = {t_[name_tok].text};
    size_t j = name_tok;
    while (j >= 2 && Punct(j - 1, "::") && t_[j - 2].kind == TokKind::kIdent) {
      chain.insert(chain.begin(), t_[j - 2].text);
      j -= 2;
    }
    FuncInfo fn;
    fn.name = t_[name_tok].text;
    fn.cls = chain.size() >= 2 ? chain[chain.size() - 2] : cls;
    fn.qual = chain.size() >= 2
                  ? JoinChain(chain, "::")
                  : (cls.empty() ? fn.name : Cat({cls, "::", fn.name}));
    fn.line = t_[name_tok].line;
    fn.body_begin = brace;
    fn.body_end = Match(brace);
    fm_.funcs.push_back(std::move(fn));
    IndexBody(fm_.funcs.size() - 1);
  }

  bool IsLambdaIntro(size_t i) const {
    if (i == 0) return true;
    const Token& p = t_[i - 1];
    if (p.kind == TokKind::kIdent || p.kind == TokKind::kNumber ||
        p.kind == TokKind::kString) {
      return false;
    }
    if (p.kind == TokKind::kPunct && (p.text == ")" || p.text == "]")) {
      return false;
    }
    return true;
  }

  /// `i` at a lambda-intro '[': token index of the body '{', 0 if this
  /// is not actually a lambda (e.g. an attribute).
  size_t LambdaBody(size_t i) const {
    if (Match(i) == 0) return 0;
    size_t k = Match(i) + 1;
    if (Punct(k, "(") && Match(k) != 0) k = Match(k) + 1;
    while (k < t_.size()) {
      if (Ident(k, "mutable") || Ident(k, "constexpr")) { ++k; continue; }
      if (Ident(k, "noexcept")) {
        ++k;
        if (Punct(k, "(") && Match(k) != 0) k = Match(k) + 1;
        continue;
      }
      if (Punct(k, "->")) {
        ++k;
        while (k < t_.size() && !Punct(k, "{") && !Punct(k, ";") &&
               !Punct(k, ",") && !Punct(k, ")")) {
          if (Punct(k, "<")) { k = SkipAngles(k); continue; }
          ++k;
        }
        continue;
      }
      break;
    }
    return (k < t_.size() && Punct(k, "{") && Match(k) != 0) ? k : 0;
  }

  void IndexBody(size_t fi) {
    const size_t b = fm_.funcs[fi].body_begin;
    const size_t e = fm_.funcs[fi].body_end;
    size_t i = b + 1;
    while (i < e) {
      const Token& tok = t_[i];
      if (tok.kind == TokKind::kPunct && tok.text == "[" && IsLambdaIntro(i)) {
        size_t body = LambdaBody(i);
        if (body != 0) {
          size_t body_end = Match(body);
          FuncInfo lam;
          lam.is_lambda = true;
          lam.owner = fi;
          lam.name = "(lambda)";
          lam.cls = fm_.funcs[fi].cls;
          lam.line = tok.line;
          lam.body_begin = body;
          lam.body_end = body_end;
          if (i >= 2 && Punct(i - 1, "=") &&
              t_[i - 2].kind == TokKind::kIdent) {
            lam.lambda_var = t_[i - 2].text;
          }
          size_t p = fm_.encl[i];
          if (p != 0 && p >= 2 && t_[p - 2].kind == TokKind::kIdent) {
            lam.lambda_passed_to = t_[p - 2].text;
          }
          lam.qual = Cat({fm_.funcs[fi].qual, "::(lambda@",
                          std::to_string(tok.line), ")"});
          fm_.funcs.push_back(std::move(lam));
          IndexBody(fm_.funcs.size() - 1);
          i = body_end + 1;
          continue;
        }
      }
      if (tok.kind == TokKind::kIdent && Punct(i + 1, "(") &&
          ControlKeywords().count(tok.text) == 0) {
        CallSite c;
        c.chain = {tok.text};
        size_t j = i;
        while (j >= 2 && Punct(j - 1, "::") &&
               t_[j - 2].kind == TokKind::kIdent) {
          c.chain.insert(c.chain.begin(), t_[j - 2].text);
          j -= 2;
        }
        size_t r = j;
        while (r >= 2 && (Punct(r - 1, ".") || Punct(r - 1, "->")) &&
               t_[r - 2].kind == TokKind::kIdent) {
          c.receiver.insert(c.receiver.begin(), t_[r - 2].text);
          r -= 2;
        }
        c.name_tok = i;
        c.paren = i + 1;
        fm_.funcs[fi].calls.push_back(std::move(c));
      }
      ++i;
    }
  }

  FileModel& fm_;
  const std::vector<Token>& t_;
  const std::vector<int>& match_;
};

/// Body sub-ranges owned by nested lambdas of `fi` — scans of the outer
/// body skip them so every token is attributed to exactly one function.
std::vector<std::pair<size_t, size_t>> LambdaHoles(const FileModel& fm,
                                                   size_t fi) {
  std::vector<std::pair<size_t, size_t>> holes;
  for (const FuncInfo& g : fm.funcs) {
    if (g.is_lambda && g.owner == fi) holes.push_back({g.body_begin, g.body_end});
  }
  return holes;
}

bool InHoles(const std::vector<std::pair<size_t, size_t>>& holes, size_t i) {
  for (const auto& [b, e] : holes) {
    if (i >= b && i <= e) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Shared finding emission (rule filter + suppression + used-allow record)
// ---------------------------------------------------------------------------

class Reporter {
 public:
  Reporter(const Options& options, internal::UsedAllows* used,
           std::vector<Finding>* out)
      : options_(options), used_(used), out_(out) {}

  void Report(const FileModel& fm, int line, int column, const char* rule,
              std::string message) {
    if (!internal::RuleSelected(options_, rule)) return;
    if (internal::Suppressed(fm.lexed, fm.path, line, rule, used_)) return;
    out_->push_back({fm.path, line, column, rule, std::move(message), ""});
  }

 private:
  const Options& options_;
  internal::UsedAllows* used_;
  std::vector<Finding>* out_;
};

// ---------------------------------------------------------------------------
// Pass 1: include graph + layer DAG (QA-ARCH-001 / QA-ARCH-002)
// ---------------------------------------------------------------------------

void RunArchPass(const std::vector<FileModel>& models, const Manifest& mf,
                 const std::string& origin, Reporter* rep,
                 std::vector<std::string>* errors) {
  std::set<std::string> keys;
  std::map<std::string, size_t> by_key;
  for (size_t i = 0; i < models.size(); ++i) {
    keys.insert(models[i].key);
    by_key[models[i].key] = i;
  }
  std::vector<const std::string*> layer(models.size(), nullptr);
  for (size_t i = 0; i < models.size(); ++i) {
    layer[i] = LayerOf(mf, models[i].key);
    if (layer[i] == nullptr && models[i].key.rfind("src/", 0) == 0 &&
        errors != nullptr) {
      errors->push_back(Cat({origin, ": no layer owns '", models[i].key,
                             "' — add its directory to the manifest"}));
    }
  }
  struct Edge {
    size_t to;
    int line;
  };
  std::vector<std::vector<Edge>> adj(models.size());
  for (size_t i = 0; i < models.size(); ++i) {
    const FileModel& fm = models[i];
    for (const internal::IncludeDirective& inc : fm.lexed.includes) {
      std::string r = ResolveInclude(keys, fm.key, inc.target);
      if (r.empty()) continue;  // system or out-of-set header
      size_t to = by_key[r];
      adj[i].push_back({to, inc.line});
      const std::string* l1 = layer[i];
      const std::string* l2 = layer[to];
      if (l1 == nullptr || l2 == nullptr || *l1 == *l2) continue;
      auto it = mf.deps.find(*l1);
      if (it == mf.deps.end() || it->second.count(*l2) == 0) {
        rep->Report(fm, inc.line, 1, "QA-ARCH-001",
                    Cat({"illegal cross-layer include: layer '", *l1,
                         "' may not depend on layer '", *l2, "' (", r,
                         ") — declare the edge in ", origin,
                         " or break the dependency"}));
      }
    }
  }
  // Include cycles: iterative DFS; each distinct cycle reported once, at
  // the back edge that closes it.
  std::vector<int> color(models.size(), 0);  // 0 white, 1 gray, 2 black
  std::vector<size_t> path;
  std::set<std::set<size_t>> reported;
  struct Frame {
    size_t node;
    size_t edge = 0;
  };
  for (size_t start = 0; start < models.size(); ++start) {
    if (color[start] != 0) continue;
    std::vector<Frame> stack = {{start, 0}};
    color[start] = 1;
    path.push_back(start);
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.edge < adj[f.node].size()) {
        Edge e = adj[f.node][f.edge++];
        if (color[e.to] == 0) {
          color[e.to] = 1;
          path.push_back(e.to);
          stack.push_back({e.to, 0});
        } else if (color[e.to] == 1) {
          size_t at = 0;
          while (at < path.size() && path[at] != e.to) ++at;
          std::set<size_t> members(path.begin() + static_cast<long>(at),
                                   path.end());
          if (reported.insert(members).second) {
            std::string desc;
            for (size_t p = at; p < path.size(); ++p) {
              desc += models[path[p]].key;
              desc += " -> ";
            }
            desc += models[e.to].key;
            rep->Report(models[f.node], e.line, 1, "QA-ARCH-002",
                        Cat({"include cycle: ", desc}));
          }
        }
      } else {
        color[f.node] = 2;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 3a: wall-clock taint into sim state (QA-DET-004)
// ---------------------------------------------------------------------------

class ClockPass {
 public:
  ClockPass(const std::vector<FileModel>& files, Reporter* rep)
      : files_(files), rep_(*rep) {
    clock_names_ = {"NowNanos", "ProcessCpuNanos", "SecondsSince",
                    "ChronoNanos", "TakePhaseMark"};
    for (const FileModel& fm : files_) {
      for (const FuncInfo& fn : fm.funcs) {
        if (!fn.is_lambda) def_files_[fn.name].insert(fm.key);
      }
    }
  }

  void Run() {
    GrowClockReturning();
    for (const FileModel& fm : files_) {
      if (!internal::InSimPaths(fm.key)) continue;
      for (size_t i = 0; i < fm.funcs.size(); ++i) AnalyzeBody(fm, i);
    }
  }

 private:
  bool IsClockCall(const CallSite& c) const {
    for (const std::string& part : c.chain) {
      if (part == "MonotonicClock") return true;
    }
    return clock_names_.count(c.chain.back()) > 0;
  }

  /// A call is "sidecar" when it hands the value to the metrics
  /// collector (or stays inside the clock itself): by receiver name, by
  /// the collector's recording API, or because every definition of the
  /// callee lives under the whitelisted sidecar paths.
  bool IsSidecarCall(const CallSite& c) const {
    static const std::set<std::string> kSidecarNames = {
        "RecordPhase", "RecordLaneDrain", "MarkPhaseStart", "TakePhaseMark"};
    for (const std::string& part : c.chain) {
      if (part == "MonotonicClock") return true;
    }
    if (kSidecarNames.count(c.chain.back()) > 0) return true;
    for (const std::string& r : c.receiver) {
      std::string low = Lower(r);
      if (low.find("metrics") != std::string::npos ||
          low.find("collector") != std::string::npos) {
        return true;
      }
    }
    auto it = def_files_.find(c.chain.back());
    if (it != def_files_.end() && !it->second.empty()) {
      bool all_sidecar = true;
      for (const std::string& key : it->second) {
        if (!internal::PathInDir(key, "src/obs/metrics") &&
            key.rfind("src/util/monotonic_clock", 0) != 0) {
          all_sidecar = false;
          break;
        }
      }
      if (all_sidecar) return true;
    }
    return false;
  }

  /// Fixpoint: a function whose return statement contains a clock call
  /// becomes a clock source itself (callers see `Mark()` like NowNanos).
  void GrowClockReturning() {
    for (int round = 0; round < 10; ++round) {
      bool changed = false;
      for (const FileModel& fm : files_) {
        for (const FuncInfo& fn : fm.funcs) {
          if (fn.is_lambda || clock_names_.count(fn.name) > 0) continue;
          if (ReturnsClock(fm, fn)) {
            clock_names_.insert(fn.name);
            changed = true;
          }
        }
      }
      if (!changed) break;
    }
  }

  bool ReturnsClock(const FileModel& fm, const FuncInfo& fn) const {
    const auto& t = fm.lexed.tokens;
    for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (t[i].kind != TokKind::kIdent || t[i].text != "return") continue;
      size_t end = i + 1;
      while (end < fn.body_end && t[end].text != ";") ++end;
      for (const CallSite& c : fn.calls) {
        if (c.name_tok > i && c.name_tok < end && IsClockCall(c)) return true;
      }
    }
    return false;
  }

  /// Per-token QA_METRICS gate state over one body: a token is gated
  /// when the statement carrying it started with QA_METRICS(...) or it
  /// sits inside a brace block opened by such a statement (the same
  /// lexical algorithm QA-OBS-002 uses).
  std::vector<char> GateStates(const FileModel& fm, const FuncInfo& fn) const {
    const auto& t = fm.lexed.tokens;
    std::vector<char> g(fn.body_end + 1, 0);
    bool pending = false;
    int guard_count = 0;
    std::vector<char> brace_guard;
    for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (t[i].kind == TokKind::kIdent && t[i].text == "QA_METRICS") {
        pending = true;
      }
      g[i] = (pending || guard_count > 0) ? 1 : 0;
      if (t[i].kind == TokKind::kPunct && t[i].text.size() == 1) {
        char c = t[i].text[0];
        if (c == '{') {
          brace_guard.push_back(pending ? 1 : 0);
          if (pending) ++guard_count;
          pending = false;
        } else if (c == '}') {
          if (!brace_guard.empty()) {
            if (brace_guard.back() != 0) --guard_count;
            brace_guard.pop_back();
          }
        } else if (c == ';') {
          pending = false;
        }
      }
    }
    return g;
  }

  void AnalyzeBody(const FileModel& fm, size_t fi) {
    const FuncInfo& fn = fm.funcs[fi];
    const auto& t = fm.lexed.tokens;
    if (fn.body_end <= fn.body_begin) return;
    const std::vector<std::pair<size_t, size_t>> holes = LambdaHoles(fm, fi);
    const std::vector<char> gated = GateStates(fm, fn);

    // Two-pass forward taint over local assignments: anything computed
    // from a clock read (or an already-tainted local) is tainted.
    std::set<std::string> tainted;
    std::vector<std::pair<size_t, std::string>> member_writes;
    for (int pass = 0; pass < 2; ++pass) {
      member_writes.clear();
      for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
        if (InHoles(holes, i)) continue;
        if (!(t[i].kind == TokKind::kPunct && t[i].text == "=")) continue;
        size_t lhs;
        if (t[i - 1].kind == TokKind::kIdent) {
          lhs = i - 1;
        } else if (t[i - 1].kind == TokKind::kPunct &&
                   t[i - 1].text.size() == 1 &&
                   std::strchr("+-*/%&|^", t[i - 1].text[0]) != nullptr &&
                   i >= 2 && t[i - 2].kind == TokKind::kIdent) {
          lhs = i - 2;  // compound assignment: '+' '=' etc.
        } else {
          continue;
        }
        size_t end = i + 1;
        while (end < fn.body_end && t[end].text != ";") ++end;
        bool rhs_tainted = false;
        for (size_t j = i + 1; j < end && !rhs_tainted; ++j) {
          if (t[j].kind == TokKind::kIdent && tainted.count(t[j].text) > 0) {
            rhs_tainted = true;
          }
        }
        if (!rhs_tainted) {
          for (const CallSite& c : fn.calls) {
            if (c.name_tok > i && c.name_tok < end && IsClockCall(c)) {
              rhs_tainted = true;
              break;
            }
          }
        }
        if (!rhs_tainted) continue;
        bool member = !t[lhs].text.empty() && t[lhs].text.back() == '_';
        if (lhs >= 1 && t[lhs - 1].kind == TokKind::kPunct &&
            (t[lhs - 1].text == "." || t[lhs - 1].text == "->")) {
          member = true;
        }
        if (member) {
          member_writes.push_back({lhs, t[lhs].text});
        } else {
          tainted.insert(t[lhs].text);
        }
      }
    }

    // Where does a gated wall-clock value flow? Walk the enclosing call
    // groups outward (transparent math helpers and casts pass through):
    // a non-sidecar callee is a leak; a control-flow condition or no
    // call at all is a bare read handled by the taint pass.
    auto leak_callee = [&](size_t tok) -> std::optional<std::string> {
      static const std::set<std::string> kTransparent = {
          "max",      "min",      "abs",    "llabs",   "clamp",
          "QA_METRICS", "int64_t", "uint64_t", "double", "size_t"};
      size_t p = fm.encl[tok];
      while (p != 0 && p - 1 > fn.body_begin) {
        size_t open = p - 1;
        if (open >= 1 && t[open - 1].kind == TokKind::kIdent) {
          const std::string& callee = t[open - 1].text;
          if (ControlKeywords().count(callee) > 0) return std::nullopt;
          if (kTransparent.count(callee) > 0) {
            p = fm.encl[open];
            continue;
          }
          for (const CallSite& c : fn.calls) {
            if (c.paren == open) {
              if (IsSidecarCall(c)) return std::nullopt;
              return JoinChain(c.chain, "::");
            }
          }
          return callee;  // unrecorded callee: conservative leak
        }
        p = fm.encl[open];  // grouping or cast parens: transparent
      }
      return std::nullopt;
    };

    const char* kRule = "QA-DET-004";
    for (const CallSite& c : fn.calls) {
      if (!IsClockCall(c)) continue;
      const Token& at = t[c.name_tok];
      if (gated[c.name_tok] == 0) {
        rep_.Report(fm, at.line, at.column, kRule,
                    Cat({"wall-clock read '", JoinChain(c.chain, "::"),
                         "' outside a QA_METRICS gate in '", fn.qual,
                         "' — sim state must never observe wall time "
                         "(DESIGN.md §9)"}));
        continue;
      }
      if (std::optional<std::string> callee = leak_callee(c.name_tok)) {
        rep_.Report(fm, at.line, at.column, kRule,
                    Cat({"wall-clock read '", JoinChain(c.chain, "::"),
                         "' feeds non-sidecar call '", *callee, "' in '",
                         fn.qual,
                         "' — only the metrics sidecar may consume wall "
                         "time (DESIGN.md §9)"}));
      }
    }
    for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (InHoles(holes, i)) continue;
      if (t[i].kind != TokKind::kIdent || tainted.count(t[i].text) == 0) {
        continue;
      }
      // Skip the write target of an assignment (plain or compound).
      if (i + 1 < fn.body_end && t[i + 1].kind == TokKind::kPunct) {
        const std::string& nx = t[i + 1].text;
        if (nx == "=" ||
            (nx.size() == 1 && std::strchr("+-*/%&|^", nx[0]) != nullptr &&
             i + 2 < fn.body_end && t[i + 2].text == "=")) {
          continue;
        }
      }
      const Token& at = t[i];
      if (gated[i] == 0) {
        rep_.Report(fm, at.line, at.column, kRule,
                    Cat({"wall-clock-derived value '", at.text,
                         "' used outside a QA_METRICS gate in '", fn.qual,
                         "' — sim state must never observe wall time "
                         "(DESIGN.md §9)"}));
        continue;
      }
      if (std::optional<std::string> callee = leak_callee(i)) {
        rep_.Report(fm, at.line, at.column, kRule,
                    Cat({"wall-clock-derived value '", at.text,
                         "' feeds non-sidecar call '", *callee, "' in '",
                         fn.qual,
                         "' — only the metrics sidecar may consume wall "
                         "time (DESIGN.md §9)"}));
      }
    }
    for (const auto& [lhs, name] : member_writes) {
      const Token& at = t[lhs];
      rep_.Report(fm, at.line, at.column, kRule,
                  Cat({"wall-clock-derived value stored into member '", name,
                       "' in '", fn.qual,
                       "' — sim state must never absorb wall time "
                       "(DESIGN.md §9)"}));
    }
  }

  const std::vector<FileModel>& files_;
  Reporter& rep_;
  std::set<std::string> clock_names_;
  std::map<std::string, std::set<std::string>> def_files_;
};

// ---------------------------------------------------------------------------
// Pass 3b: shard-lane safety (QA-SHD-002)
// ---------------------------------------------------------------------------

class ShardPass {
 public:
  ShardPass(const std::vector<FileModel>& files, Reporter* rep)
      : files_(files), rep_(*rep) {
    for (size_t f = 0; f < files_.size(); ++f) {
      if (!internal::InSimPaths(files_[f].key)) continue;
      for (size_t i = 0; i < files_[f].funcs.size(); ++i) {
        const FuncInfo& fn = files_[f].funcs[i];
        if (fn.is_lambda) {
          if (!fn.lambda_var.empty()) {
            by_name_[fn.lambda_var].push_back({f, i});
          }
        } else {
          by_name_[fn.name].push_back({f, i});
        }
      }
    }
  }

  void Run() {
    CollectEntries();
    Propagate();
    for (const auto& [node, mask] : kind_) Check(node, mask);
  }

 private:
  static constexpr int kLane = 1;
  static constexpr int kChunk = 2;
  using Node = std::pair<size_t, size_t>;  // (file, func)

  void AddEntry(size_t f, size_t i, int mask, const std::string& label) {
    int& have = kind_[{f, i}];
    if ((have | mask) == have) return;
    have |= mask;
    if (entry_of_.count({f, i}) == 0) entry_of_[{f, i}] = label;
    queue_.push_back({f, i});
  }

  void CollectEntries() {
    for (size_t f = 0; f < files_.size(); ++f) {
      const FileModel& fm = files_[f];
      const bool in_sim = internal::PathInDir(fm.key, "src/sim");
      const bool in_alloc = internal::PathInDir(fm.key, "src/allocation");
      if (!in_sim && !in_alloc) continue;
      for (size_t i = 0; i < fm.funcs.size(); ++i) {
        const FuncInfo& fn = fm.funcs[i];
        if (!fn.is_lambda) {
          if (fn.cls == "Federation" && fn.name == "DispatchShard") {
            AddEntry(f, i, kLane, fn.qual);
          }
          continue;
        }
        if (fn.lambda_passed_to == "RunWhileBefore" && in_sim) {
          AddEntry(f, i, kLane, fn.qual);
        } else if (fn.lambda_passed_to == "ParallelFor") {
          AddEntry(f, i, in_sim ? kLane : kChunk, fn.qual);
        }
      }
      // Named lambdas handed to the runner by variable:
      //   auto drain = [...]; runner->ParallelFor(n, drain);
      for (const FuncInfo& fn : fm.funcs) {
        for (const CallSite& c : fn.calls) {
          const std::string& callee = c.chain.back();
          if (callee != "ParallelFor" && callee != "RunWhileBefore") continue;
          if (fm.match[c.paren] <= 0) continue;
          const size_t close = static_cast<size_t>(fm.match[c.paren]);
          for (size_t a = c.paren + 1; a < close; ++a) {
            if (fm.lexed.tokens[a].kind != TokKind::kIdent) continue;
            for (size_t i = 0; i < fm.funcs.size(); ++i) {
              const FuncInfo& lam = fm.funcs[i];
              if (!lam.is_lambda || lam.lambda_var.empty() ||
                  lam.lambda_var != fm.lexed.tokens[a].text) {
                continue;
              }
              const int mask = (callee == "RunWhileBefore" || in_sim)
                                   ? kLane
                                   : kChunk;
              AddEntry(f, i, mask, lam.qual);
            }
          }
        }
      }
    }
  }

  void Propagate() {
    while (!queue_.empty()) {
      Node n = queue_.front();
      queue_.pop_front();
      const int mask = kind_[n];
      const std::string& label = entry_of_[n];
      const FileModel& fm = files_[n.first];
      const FuncInfo& fn = fm.funcs[n.second];
      // Lambdas created on the lane path run on the lane path.
      for (size_t i = 0; i < fm.funcs.size(); ++i) {
        if (fm.funcs[i].is_lambda && fm.funcs[i].owner == n.second) {
          AddEntry(n.first, i, mask, label);
        }
      }
      for (const CallSite& c : fn.calls) {
        const std::string& name = c.chain.back();
        // The two merge fences are the sanctioned way out of a lane;
        // the traversal stops there by design.
        if (name == "Emit" || name == "ScheduleNodeEvent") continue;
        auto it = by_name_.find(name);
        if (it == by_name_.end()) continue;
        for (const Node& cand : it->second) {
          const FuncInfo& g = files_[cand.first].funcs[cand.second];
          if (c.chain.size() >= 2 && !g.is_lambda &&
              g.cls != c.chain[c.chain.size() - 2]) {
            continue;  // explicit Class::fn qualifier mismatch
          }
          AddEntry(cand.first, cand.second, mask, label);
        }
      }
    }
  }

  void Check(const Node& n, int mask) {
    static const std::set<std::string> kFedLaneBanned = {
        "events_",         "med_items_",       "mediator_seq_",
        "current_time_",   "current_stamp_",   "metrics_",
        "link_down_",      "link_mask_active_", "tick_assigns_",
        "tick_rejects_",   "consecutive_decline_rounds_",
        "outstanding_",    "retry_backlog_",   "admitted_in_flight_",
        "admission_load_", "admission_",       "admission_probe_",
        "next_query_id_",  "ticks_",           "watchdogs_",
        "market_probe_",   "alloc_probe_seq_", "tick_probe_seq_",
        "cost_cache_",     "allocator_"};
    static const std::set<std::string> kQaNtChunkBanned = {
        "total_messages_", "arrival_seq_", "metrics_"};
    const FileModel& fm = files_[n.first];
    const FuncInfo& fn = fm.funcs[n.second];
    const auto& t = fm.lexed.tokens;
    const std::string& entry = entry_of_[n];
    const char* kRule = "QA-SHD-002";

    const std::set<std::string>* banned = nullptr;
    const char* lane_kind = "shard-lane";
    if ((mask & kLane) != 0 && fn.cls == "Federation") {
      banned = &kFedLaneBanned;
    } else if ((mask & kChunk) != 0 && fn.cls == "QaNtAllocator") {
      banned = &kQaNtChunkBanned;
      lane_kind = "chunked-callback";
    }
    if (banned != nullptr) {
      const std::vector<std::pair<size_t, size_t>> holes =
          LambdaHoles(fm, n.second);
      for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
        if (InHoles(holes, i)) continue;
        if (t[i].kind != TokKind::kIdent || banned->count(t[i].text) == 0) {
          continue;
        }
        rep_.Report(fm, t[i].line, t[i].column, kRule,
                    Cat({"mediator-lane member '", t[i].text, "' touched in '",
                         fn.qual, "' on the ", lane_kind,
                         " path (reached from entry '", entry,
                         "') — lane code may only touch shard-local state; "
                         "route effects through the merge fences "
                         "(DESIGN.md §8)"}));
      }
    }
    for (const CallSite& c : fn.calls) {
      const Token& at = t[c.name_tok];
      for (const std::string& r : c.receiver) {
        if (Lower(r).find("recorder") != std::string::npos) {
          rep_.Report(fm, at.line, at.column, kRule,
                      Cat({"trace recorder call '", JoinChain(c.chain, "::"),
                           "' in '", fn.qual, "' on the ", lane_kind,
                           " path (reached from entry '", entry,
                           "') — lane outcomes must buffer through "
                           "Federation::Emit (DESIGN.md §8)"}));
          break;
        }
      }
      if (c.chain.back() == "Init" && !c.receiver.empty() &&
          Lower(c.receiver.back()).find("pool") != std::string::npos) {
        rep_.Report(fm, at.line, at.column, kRule,
                    Cat({"cross-shard NodePool operation '",
                         JoinChain(c.chain, "::"), "' in '", fn.qual,
                         "' on the ", lane_kind, " path (reached from entry '",
                         entry, "') — pool re-initialisation belongs to the "
                         "mediator lane (DESIGN.md §8)"}));
      }
    }
  }

  const std::vector<FileModel>& files_;
  Reporter& rep_;
  std::map<std::string, std::vector<Node>> by_name_;
  std::map<Node, int> kind_;
  std::map<Node, std::string> entry_of_;
  std::deque<Node> queue_;
};

// ---------------------------------------------------------------------------
// Stale-suppression audit (QA-SUP-001)
// ---------------------------------------------------------------------------

void RunStaleAudit(const std::vector<FileModel>& models,
                   const Options& options, const internal::UsedAllows& used,
                   std::vector<Finding>* out) {
  const char* kRule = "QA-SUP-001";
  if (!internal::RuleSelected(options, kRule)) return;
  for (const FileModel& fm : models) {
    auto it = used.find(fm.path);
    for (const auto& [line, id] : fm.lexed.allow_sites) {
      if (it != used.end() && it->second.count({line, id}) > 0) continue;
      out->push_back(
          {fm.path, line, 1, kRule,
           Cat({"stale suppression: allow(", id, ") no longer matches any ",
                id, " finding here — remove the directive"}),
           ""});
    }
  }
}

std::vector<FileModel> BuildModels(const std::vector<SourceFile>& files) {
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const SourceFile& sf : files) {
    FileModel fm;
    fm.path = sf.path;
    fm.key = internal::RelKey(sf.path);
    fm.content = &sf.content;
    fm.lexed = internal::Lex(sf.content);
    fm.match = MatchBrackets(fm.lexed.tokens);
    fm.encl = ComputeEnclParen(fm.lexed.tokens, fm.match);
    Indexer(&fm).Run();
    models.push_back(std::move(fm));
  }
  return models;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

std::vector<Finding> AnalyzeProject(const std::vector<SourceFile>& files,
                                    const Options& options,
                                    const ProjectOptions& project,
                                    std::vector<std::string>* errors) {
  std::vector<FileModel> models = BuildModels(files);
  internal::UsedAllows used;
  std::vector<Finding> out;
  for (const FileModel& fm : models) {
    std::vector<Finding> per =
        internal::LintLexed(fm.path, fm.lexed, options, &used);
    out.insert(out.end(), per.begin(), per.end());
  }
  Reporter rep(options, &used, &out);
  if (project.layer_manifest.has_value()) {
    Manifest mf;
    if (ParseManifest(*project.layer_manifest, project.manifest_path, &mf,
                      errors)) {
      RunArchPass(models, mf, project.manifest_path, &rep, errors);
    }
  }
  ClockPass(models, &rep).Run();
  ShardPass(models, &rep).Run();
  if (project.stale_suppressions) RunStaleAudit(models, options, used, &out);

  // Attach source snippets, grouping findings by file.
  std::map<std::string, const std::string*> content_by_path;
  for (const FileModel& fm : models) content_by_path[fm.path] = fm.content;
  std::map<std::string, std::vector<size_t>> grouped;
  for (size_t i = 0; i < out.size(); ++i) grouped[out[i].file].push_back(i);
  for (const auto& [path, indices] : grouped) {
    auto it = content_by_path.find(path);
    if (it == content_by_path.end()) continue;
    std::vector<Finding> bucket;
    bucket.reserve(indices.size());
    for (size_t i : indices) bucket.push_back(out[i]);
    internal::FillSnippets(*it->second, &bucket);
    for (size_t j = 0; j < indices.size(); ++j) out[indices[j]] = bucket[j];
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.column, a.rule, a.message) <
           std::tie(b.file, b.line, b.column, b.rule, b.message);
  });
  return out;
}

std::string DumpIncludeGraph(const std::vector<SourceFile>& files,
                             const ProjectOptions& project) {
  std::vector<FileModel> models = BuildModels(files);
  Manifest mf;
  bool have_manifest =
      project.layer_manifest.has_value() &&
      ParseManifest(*project.layer_manifest, project.manifest_path, &mf,
                    nullptr);
  std::set<std::string> keys;
  for (const FileModel& fm : models) keys.insert(fm.key);
  std::string out = "{\n  \"files\": [\n";
  for (size_t i = 0; i < models.size(); ++i) {
    const FileModel& fm = models[i];
    const std::string* layer = have_manifest ? LayerOf(mf, fm.key) : nullptr;
    out += Cat({"    {\"path\": \"", internal::JsonEscape(fm.key),
                "\", \"layer\": \"",
                layer != nullptr ? internal::JsonEscape(*layer) : "",
                "\", \"includes\": ["});
    std::vector<std::string> resolved;
    for (const internal::IncludeDirective& inc : fm.lexed.includes) {
      std::string r = ResolveInclude(keys, fm.key, inc.target);
      if (!r.empty()) resolved.push_back(r);
    }
    std::sort(resolved.begin(), resolved.end());
    resolved.erase(std::unique(resolved.begin(), resolved.end()),
                   resolved.end());
    for (size_t j = 0; j < resolved.size(); ++j) {
      if (j > 0) out += ", ";
      out += Cat({"\"", internal::JsonEscape(resolved[j]), "\""});
    }
    out += i + 1 < models.size() ? "]},\n" : "]}\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace qa::lint
