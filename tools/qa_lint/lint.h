#ifndef QAMARKET_TOOLS_QA_LINT_LINT_H_
#define QAMARKET_TOOLS_QA_LINT_LINT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace qa::lint {

/// One violation of a project invariant.
struct Finding {
  std::string file;     ///< Path as given to the linter.
  int line = 0;         ///< 1-based line of the offending token.
  int column = 0;       ///< 1-based column of the offending token.
  std::string rule;     ///< Rule ID, e.g. "QA-DET-001".
  std::string message;  ///< What was found, specific to the site.
  std::string snippet;  ///< Source text of the offending line (may be
                        ///< empty when the content was unavailable);
                        ///< drives the caret rendering in FormatText.
};

/// A named, suppressible invariant. The catalog is the contract between
/// the linter, LINT.md, and tests/lint_test.cc: every entry here must be
/// documented and covered by a fixture.
struct Rule {
  const char* id;         ///< Stable ID printed with findings.
  const char* summary;    ///< Short name, e.g. "banned RNG call".
  const char* rationale;  ///< One-line why, printed with each finding.
};

/// Every rule the linter ships, in ID order.
const std::vector<Rule>& AllRules();

/// Returns the rationale for `rule_id`, or nullptr if unknown.
const char* RuleRationale(std::string_view rule_id);

struct Options {
  /// Contents of src/obs/SCHEMA.md for the QA-OBS-001 cross-check.
  /// AnalyzePaths/LintPaths fill this in automatically (they read the
  /// SCHEMA.md that sits next to trace_schema.cc); LintFile callers that
  /// want the rule must supply it. Unset => QA-OBS-001 is skipped.
  std::optional<std::string> schema_doc;

  /// Contents of src/obs/metrics/catalog.cc for the QA-OBS-003
  /// cross-check: a metric-name string literal at a MetricId() call site
  /// must appear (quoted) in the catalog. Filled in automatically when
  /// catalog.cc is among the linted files; LintFile callers that want
  /// the rule must supply it. Unset => QA-OBS-003 is skipped.
  std::optional<std::string> metrics_catalog;

  /// When non-empty, only these rule IDs fire.
  std::vector<std::string> only_rules;
};

/// A source file handed to the cross-file analyzer. `path` should be
/// repo-relative with forward slashes ("src/sim/federation.cc") so
/// path-scoped rules and include resolution work; absolute paths are
/// reduced to their repo-relative suffix internally.
struct SourceFile {
  std::string path;
  std::string content;
};

/// Options for the cross-file passes (QA-ARCH-001/002, QA-DET-004,
/// QA-SHD-002) and the stale-suppression audit.
struct ProjectOptions {
  /// Text of the architecture layer manifest (tools/arch_layers.txt).
  /// Unset => the QA-ARCH-* layering pass is skipped. A manifest that
  /// fails to parse, or a linted src/ file no layer owns, is reported
  /// through `errors` (exit 2 in the CLI), not as a finding.
  std::optional<std::string> layer_manifest;

  /// Where the manifest came from, for messages only.
  std::string manifest_path = "tools/arch_layers.txt";

  /// Audit mode: additionally emit QA-SUP-001 for every
  /// `// qa-lint: allow(...)` directive that no longer suppresses
  /// anything. Only meaningful over the full tree with every rule
  /// enabled — a subset run starves rules of their side inputs and
  /// makes live suppressions look stale.
  bool stale_suppressions = false;
};

/// Lints one translation unit with the per-file rules only. `path`
/// should be repo-relative with forward slashes so path-scoped rules
/// resolve; `content` is the full file text.
std::vector<Finding> LintFile(std::string_view path, std::string_view content,
                              const Options& options = {});

/// Collects every C++ source (.cc/.cpp/.cxx/.h/.hpp) under each path (a
/// file or a directory; "build*" and hidden directories are skipped)
/// into memory, sorted by path. I/O problems are appended to `errors`
/// (if non-null) instead of throwing.
std::vector<SourceFile> LoadFiles(const std::vector<std::string>& paths,
                                  std::vector<std::string>* errors = nullptr);

/// The full analysis: every per-file rule plus the cross-file passes —
/// include-graph layering (QA-ARCH-001/002, when a manifest is set),
/// wall-clock taint tracking (QA-DET-004), shard-lane safety
/// (QA-SHD-002) — and the stale-suppression audit when requested.
/// Findings come back sorted by file/line/column with source snippets
/// attached.
std::vector<Finding> AnalyzeProject(const std::vector<SourceFile>& files,
                                    const Options& options = {},
                                    const ProjectOptions& project = {},
                                    std::vector<std::string>* errors = nullptr);

/// LoadFiles + side-input discovery (SCHEMA.md, metrics catalog, the
/// default tools/arch_layers.txt when none was supplied) + AnalyzeProject.
std::vector<Finding> AnalyzePaths(const std::vector<std::string>& paths,
                                  const Options& options = {},
                                  const ProjectOptions& project = {},
                                  std::vector<std::string>* errors = nullptr);

/// Walks the same file set as LoadFiles and runs the per-file rules
/// only (no cross-file passes) — the pre-PR-9 behaviour, kept for
/// callers that lint subtrees where cross-file context is unavailable.
std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const Options& options = {},
                               std::vector<std::string>* errors = nullptr);

/// Renders findings for humans (finding line, indented rationale, then
/// the offending source line with a caret), as a machine-readable JSON
/// array, or as a SARIF 2.1.0 log for code-scanning upload.
std::string FormatText(const std::vector<Finding>& findings);
std::string FormatJson(const std::vector<Finding>& findings);
std::string FormatSarif(const std::vector<Finding>& findings);

/// Renders the resolved include graph (file -> layer, resolved project
/// includes) as JSON — the cacheable artifact CI keeps between steps.
/// Only project-resolvable edges appear; system headers are omitted.
std::string DumpIncludeGraph(const std::vector<SourceFile>& files,
                             const ProjectOptions& project);

}  // namespace qa::lint

#endif  // QAMARKET_TOOLS_QA_LINT_LINT_H_
