#ifndef QAMARKET_TOOLS_QA_LINT_LINT_H_
#define QAMARKET_TOOLS_QA_LINT_LINT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace qa::lint {

/// One violation of a project invariant.
struct Finding {
  std::string file;     ///< Path as given to the linter.
  int line = 0;         ///< 1-based line of the offending token.
  int column = 0;       ///< 1-based column of the offending token.
  std::string rule;     ///< Rule ID, e.g. "QA-DET-001".
  std::string message;  ///< What was found, specific to the site.
};

/// A named, suppressible invariant. The catalog is the contract between
/// the linter, LINT.md, and tests/lint_test.cc: every entry here must be
/// documented and covered by a fixture.
struct Rule {
  const char* id;         ///< Stable ID printed with findings.
  const char* summary;    ///< Short name, e.g. "banned RNG call".
  const char* rationale;  ///< One-line why, printed with each finding.
};

/// Every rule the linter ships, in ID order.
const std::vector<Rule>& AllRules();

/// Returns the rationale for `rule_id`, or nullptr if unknown.
const char* RuleRationale(std::string_view rule_id);

struct Options {
  /// Contents of src/obs/SCHEMA.md for the QA-OBS-001 cross-check.
  /// LintPaths fills this in automatically (it reads the SCHEMA.md that
  /// sits next to trace_schema.cc); LintFile callers that want the rule
  /// must supply it. Unset => QA-OBS-001 is skipped.
  std::optional<std::string> schema_doc;

  /// Contents of src/obs/metrics/catalog.cc for the QA-OBS-003
  /// cross-check: a metric-name string literal at a MetricId() call site
  /// must appear (quoted) in the catalog. LintPaths fills this in
  /// automatically when catalog.cc is among the linted files; LintFile
  /// callers that want the rule must supply it. Unset => QA-OBS-003 is
  /// skipped.
  std::optional<std::string> metrics_catalog;

  /// When non-empty, only these rule IDs fire.
  std::vector<std::string> only_rules;
};

/// Lints one translation unit. `path` should be repo-relative with
/// forward slashes ("src/sim/federation.cc") so path-scoped rules
/// resolve; `content` is the full file text.
std::vector<Finding> LintFile(std::string_view path, std::string_view content,
                              const Options& options = {});

/// Walks every C++ source (.cc/.cpp/.cxx/.h/.hpp) under each path (a file
/// or a directory; "build*" and hidden directories are skipped), lints
/// each, and returns the findings sorted by file/line/column. I/O
/// problems are appended to `errors` (if non-null) instead of throwing.
std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const Options& options = {},
                               std::vector<std::string>* errors = nullptr);

/// Renders findings for humans (one line per finding plus an indented
/// rationale line) or as a machine-readable JSON array.
std::string FormatText(const std::vector<Finding>& findings);
std::string FormatJson(const std::vector<Finding>& findings);

}  // namespace qa::lint

#endif  // QAMARKET_TOOLS_QA_LINT_LINT_H_
