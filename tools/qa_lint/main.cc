// qa_lint — project invariant linter (see LINT.md for the rule catalog).
//
// Usage: qa_lint [--json] [--rule=QA-XXX-NNN]... [--list-rules] PATH...
//
// Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "qa_lint/lint.h"

namespace {

int Usage(std::ostream& out, int code) {
  out << "usage: qa_lint [--json] [--rule=ID]... [--list-rules] PATH...\n"
         "Scans C++ sources under each PATH for violations of the project\n"
         "invariants catalogued in LINT.md. Suppress a single finding with\n"
         "  // qa-lint: allow(QA-XXX-NNN)\n"
         "on the offending line or the line above it.\n"
         "  --json        machine-readable findings on stdout\n"
         "  --rule=ID     only run the named rule (repeatable)\n"
         "  --list-rules  print the rule catalog and exit\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  qa::lint::Options options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const qa::lint::Rule& rule : qa::lint::AllRules()) {
        std::cout << rule.id << "  " << rule.summary << "\n    "
                  << rule.rationale << "\n";
      }
      return 0;
    } else if (arg.rfind("--rule=", 0) == 0) {
      options.only_rules.push_back(arg.substr(std::strlen("--rule=")));
    } else if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "qa_lint: unknown flag '" << arg << "'\n";
      return Usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage(std::cerr, 2);

  std::vector<std::string> errors;
  std::vector<qa::lint::Finding> findings =
      qa::lint::LintPaths(paths, options, &errors);
  for (const std::string& error : errors) {
    std::cerr << "qa_lint: " << error << "\n";
  }
  if (json) {
    std::cout << qa::lint::FormatJson(findings);
  } else {
    std::cout << qa::lint::FormatText(findings);
    if (!findings.empty()) {
      std::cout << findings.size() << " finding"
                << (findings.size() == 1 ? "" : "s") << "\n";
    }
  }
  if (!errors.empty()) return 2;
  return findings.empty() ? 0 : 1;
}
