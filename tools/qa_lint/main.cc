// qa_lint — project invariant linter (see LINT.md for the rule catalog).
//
// Usage: qa_lint [FLAGS] PATH...
//
// Exit codes: 0 = clean, 1 = findings, 2 = usage, I/O, or manifest error.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "qa_lint/lint.h"

namespace {

int Usage(std::ostream& out, int code) {
  out << "usage: qa_lint [FLAGS] PATH...\n"
         "Scans C++ sources under each PATH for violations of the project\n"
         "invariants catalogued in LINT.md: the per-file rules plus the\n"
         "cross-file passes (layer DAG, wall-clock taint, shard-lane\n"
         "safety). Suppress a single finding with\n"
         "  // qa-lint: allow(QA-XXX-NNN)\n"
         "on the offending line or the line above it.\n"
         "  --json                machine-readable findings on stdout\n"
         "  --sarif=FILE          additionally write SARIF 2.1.0 to FILE\n"
         "  --dump-graph=FILE     write the resolved include graph (JSON)\n"
         "  --rule=ID             only run the named rule (repeatable)\n"
         "  --layers=FILE         layer manifest (default "
         "tools/arch_layers.txt,\n"
         "                        resolved against the first PATH's repo)\n"
         "  --per-file-only       skip the cross-file passes\n"
         "  --stale-suppressions  audit mode: also flag allow() directives\n"
         "                        that no longer suppress anything "
         "(QA-SUP-001)\n"
         "  --list-rules          print the rule catalog and exit\n";
  return code;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool per_file_only = false;
  std::string sarif_path;
  std::string graph_path;
  std::string layers_path;
  qa::lint::Options options;
  qa::lint::ProjectOptions project;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--per-file-only") {
      per_file_only = true;
    } else if (arg == "--stale-suppressions") {
      project.stale_suppressions = true;
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(std::strlen("--sarif="));
    } else if (arg.rfind("--dump-graph=", 0) == 0) {
      graph_path = arg.substr(std::strlen("--dump-graph="));
    } else if (arg.rfind("--layers=", 0) == 0) {
      layers_path = arg.substr(std::strlen("--layers="));
    } else if (arg == "--list-rules") {
      for (const qa::lint::Rule& rule : qa::lint::AllRules()) {
        std::cout << rule.id << "  " << rule.summary << "\n    "
                  << rule.rationale << "\n";
      }
      return 0;
    } else if (arg.rfind("--rule=", 0) == 0) {
      options.only_rules.push_back(arg.substr(std::strlen("--rule=")));
    } else if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "qa_lint: unknown flag '" << arg << "'\n";
      return Usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage(std::cerr, 2);

  std::vector<std::string> errors;
  if (!layers_path.empty()) {
    std::ifstream in(layers_path, std::ios::binary);
    if (!in) {
      std::cerr << "qa_lint: cannot read layer manifest '" << layers_path
                << "'\n";
      return 2;
    }
    project.layer_manifest.emplace(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
    project.manifest_path = layers_path;
  }

  std::vector<qa::lint::Finding> findings;
  if (per_file_only) {
    findings = qa::lint::LintPaths(paths, options, &errors);
  } else {
    findings = qa::lint::AnalyzePaths(paths, options, project, &errors);
  }
  if (!graph_path.empty()) {
    if (!project.layer_manifest.has_value()) {
      // Same default AnalyzePaths applies, so the dumped graph carries
      // the layer labels the layering pass used.
      std::ifstream in(project.manifest_path, std::ios::binary);
      if (in) {
        project.layer_manifest.emplace(std::istreambuf_iterator<char>(in),
                                       std::istreambuf_iterator<char>());
      }
    }
    std::vector<qa::lint::SourceFile> files =
        qa::lint::LoadFiles(paths, &errors);
    if (!WriteFile(graph_path, qa::lint::DumpIncludeGraph(files, project))) {
      errors.push_back("cannot write include graph to " + graph_path);
    }
  }
  if (!sarif_path.empty() &&
      !WriteFile(sarif_path, qa::lint::FormatSarif(findings))) {
    errors.push_back("cannot write SARIF log to " + sarif_path);
  }
  for (const std::string& error : errors) {
    std::cerr << "qa_lint: " << error << "\n";
  }
  if (json) {
    std::cout << qa::lint::FormatJson(findings);
  } else {
    std::cout << qa::lint::FormatText(findings);
    if (!findings.empty()) {
      std::cout << findings.size() << " finding"
                << (findings.size() == 1 ? "" : "s") << "\n";
    }
  }
  if (!errors.empty()) return 2;
  return findings.empty() ? 0 : 1;
}
