#include "qa_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "qa_lint/internal.h"

namespace qa::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------------

const Rule kRules[] = {
    {"QA-ARCH-001", "illegal cross-layer include",
     "the dependency DAG in tools/arch_layers.txt is the architecture; an "
     "include edge the manifest does not allow couples layers that must "
     "stay separable (the market-protocol extraction depends on the "
     "market/allocation -> sim cut staying clean)"},
    {"QA-ARCH-002", "include cycle",
     "a cycle in the include graph means no layer order exists at all; "
     "every file in the cycle is one layer de facto and none of them can "
     "be built, tested or extracted alone"},
    {"QA-DET-001", "banned wall-clock / libc RNG call",
     "rand()/srand()/time()/clock() and the std::chrono clocks are "
     "nondeterministic global state; seeded runs draw randomness from "
     "util::Rng, and wall-clock reads go through util::MonotonicClock — the "
     "project's only whitelisted clock call site"},
    {"QA-DET-002", "RNG engine constructed outside src/util/rng.*",
     "std::mt19937 / std::random_device outside util::Rng forks the seed "
     "discipline and breaks byte-identical reruns"},
    {"QA-DET-003", "iteration over unordered container in a sim path",
     "unordered_map/set iteration order is implementation-defined; iterating "
     "one in src/sim, src/market or src/allocation breaks seeded "
     "reproducibility — use std::map or a sorted snapshot"},
    {"QA-DET-004", "wall-clock value reaches simulation state",
     "wall time is an observability side channel (DESIGN.md §9): a "
     "MonotonicClock reading may flow only into the QA_METRICS sidecar; "
     "any path into Federation/NodePool/allocator state or a non-sidecar "
     "call makes byte-identical seeded runs layout-dependent"},
    {"QA-HOT-001", "std::function in an event-queue consumer",
     "type-erased callbacks heap-allocate per event; the PR 1 hot-path "
     "rewrite exists precisely to keep EventQueue users allocation-free"},
    {"QA-NUM-001", "exact ==/!= on floating-point values",
     "bitwise float equality hides accumulated rounding; route the check "
     "through util::Near/RelDiff (src/util/mathutil.h) or suppress with a "
     "written reason"},
    {"QA-NUM-002", "float declaration in market/price code",
     "the paper's price dynamics are all double; a stray float silently "
     "halves the mantissa in the tatonnement update"},
    {"QA-OBS-001", "trace kind missing from src/obs/SCHEMA.md",
     "every kind EventKindName() can emit must be documented, or trace "
     "consumers cannot rely on the schema"},
    {"QA-OBS-002", "Recorder probe not gated by QA_OBS",
     "a bare recorder call keeps costing when telemetry is off and does not "
     "compile away under -DQA_OBS_DISABLED"},
    {"QA-OBS-003", "unregistered metric name at a MetricId() call site",
     "every metric a run can emit is declared once in "
     "src/obs/metrics/catalog.cc; a name looked up anywhere else that is "
     "not in the catalog is a typo the registry can only report at runtime"},
    {"QA-SHD-001", "mutable namespace-scope / static state in sharded code",
     "src/sim and src/allocation run on the sharded core's worker threads; "
     "a mutable global or static is shared across shards — a data race "
     "under threads and hidden cross-run state under any layout. Thread "
     "state through Federation/Allocator members instead"},
    {"QA-SHD-002", "mediator-lane state touched from shard-lane code",
     "code reachable from a shard-lane entry point (a RunWhileBefore drain "
     "callback, a chunked ParallelFor callback, DispatchShard) runs on "
     "worker threads between merge fences (DESIGN.md §8); touching "
     "mediator-lane members, shared accumulators or cross-shard NodePool "
     "state there is a data race under threads and a determinism leak "
     "single-threaded — route effects through Emit()/ScheduleNodeEvent()"},
    {"QA-SUP-001", "stale qa-lint suppression",
     "an allow() directive whose rule no longer fires on its line is dead "
     "weight that will silently swallow the next real finding there; "
     "delete it (emitted only under --stale-suppressions)"},
};

}  // namespace

namespace internal {

std::string Cat(std::initializer_list<std::string_view> parts) {
  size_t total = 0;
  for (std::string_view part : parts) total += part.size();
  std::string out;
  out.reserve(total);
  for (std::string_view part : parts) out.append(part);
  return out;
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Registers `// qa-lint: allow(QA-XXX-123[, ...])` directives. The
/// suppression covers the comment's own line and the line below it, so it
/// works both trailing a statement and on its own line above one. The
/// directive must open the comment (only '/', '*' and whitespace before
/// it) — a doc comment *mentioning* the syntax mid-sentence is not a
/// suppression, and must not look stale to the QA-SUP-001 audit.
void ParseAllowDirective(std::string_view comment, int line, LexedFile* out) {
  size_t at = comment.find("qa-lint:");
  if (at == std::string_view::npos) return;
  for (size_t i = 0; i < at; ++i) {
    char c = comment[i];
    if (c != '/' && c != '*' && c != ' ' && c != '\t') return;
  }
  size_t open = comment.find("allow(", at);
  if (open == std::string_view::npos) return;
  size_t close = comment.find(')', open);
  if (close == std::string_view::npos) return;
  std::string_view list = comment.substr(open + 6, close - open - 6);
  std::string id;
  auto flush = [&] {
    if (!id.empty()) {
      out->allow[line].insert(id);
      out->allow[line + 1].insert(id);
      out->allow_sites.emplace_back(line, id);
      id.clear();
    }
  };
  for (char c : list) {
    if (c == ',' || c == ' ' || c == '\t') {
      flush();
    } else {
      id.push_back(c);
    }
  }
  flush();
}

}  // namespace

LexedFile Lex(std::string_view src) {
  LexedFile out;
  size_t i = 0;
  int line = 1;
  int col = 1;
  const size_t n = src.size();

  auto advance = [&](size_t count) {
    for (size_t j = 0; j < count && i < n; ++j) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto peek = [&](size_t off) -> char {
    return i + off < n ? src[i + off] : '\0';
  };

  bool at_line_start = true;  // only whitespace seen since the last newline
  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      at_line_start = true;
      advance(1);
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      advance(1);
      continue;
    }

    // Preprocessor directive: consumed whole (with \-continuations), only
    // #include targets are kept. Macro bodies therefore cannot trip rules.
    if (c == '#' && at_line_start) {
      int directive_line = line;
      std::string text;
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          advance(2);
          continue;
        }
        if (src[i] == '\n') break;
        text.push_back(src[i]);
        advance(1);
      }
      size_t inc = text.find("include");
      if (inc != std::string::npos) {
        size_t q1 = text.find_first_of("\"<", inc);
        if (q1 != std::string::npos) {
          char closer = text[q1] == '<' ? '>' : '"';
          size_t q2 = text.find(closer, q1 + 1);
          if (q2 != std::string::npos) {
            out.includes.push_back(
                {text.substr(q1 + 1, q2 - q1 - 1), directive_line});
          }
        }
      }
      continue;
    }
    at_line_start = false;

    // Comments.
    if (c == '/' && peek(1) == '/') {
      int comment_line = line;
      std::string text;
      while (i < n && src[i] != '\n') {
        text.push_back(src[i]);
        advance(1);
      }
      ParseAllowDirective(text, comment_line, &out);
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      std::string text;
      advance(2);
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        text.push_back(src[i]);
        advance(1);
      }
      int comment_end_line = line;
      advance(2);
      ParseAllowDirective(text, comment_end_line, &out);
      continue;
    }

    // String literal (with prefix and raw-string support): if the previous
    // token was an adjacent encoding prefix (R, u8, LR, ...), fold it in.
    if (c == '"') {
      bool raw = false;
      int tok_line = line;
      int tok_col = col;
      if (!out.tokens.empty()) {
        const Token& prev = out.tokens.back();
        static const std::set<std::string> kPrefixes = {
            "R", "u8", "u", "U", "L", "u8R", "uR", "UR", "LR"};
        if (prev.kind == TokKind::kIdent && prev.line == line &&
            prev.column + static_cast<int>(prev.text.size()) == col &&
            kPrefixes.count(prev.text) > 0) {
          raw = prev.text.back() == 'R';
          tok_line = prev.line;
          tok_col = prev.column;
          out.tokens.pop_back();
        }
      }
      std::string value;
      if (raw) {
        advance(1);  // opening quote
        std::string delim;
        while (i < n && src[i] != '(') {
          delim.push_back(src[i]);
          advance(1);
        }
        advance(1);  // '('
        std::string closer = Cat({")", delim, "\""});
        while (i < n && src.substr(i, closer.size()) != closer) {
          value.push_back(src[i]);
          advance(1);
        }
        advance(closer.size());
      } else {
        advance(1);
        while (i < n && src[i] != '"') {
          if (src[i] == '\\' && i + 1 < n) {
            value.push_back(src[i]);
            advance(1);
          }
          value.push_back(src[i]);
          advance(1);
        }
        advance(1);
      }
      out.tokens.push_back(
          {TokKind::kString, Cat({"\"", value, "\""}), value, tok_line, tok_col});
      continue;
    }
    if (c == '\'') {
      int tok_line = line;
      int tok_col = col;
      std::string text = "'";
      advance(1);
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) {
          text.push_back(src[i]);
          advance(1);
        }
        text.push_back(src[i]);
        advance(1);
      }
      text.push_back('\'');
      advance(1);
      out.tokens.push_back({TokKind::kChar, text, "", tok_line, tok_col});
      continue;
    }

    if (IsIdentStart(c)) {
      int tok_line = line;
      int tok_col = col;
      std::string text;
      while (i < n && IsIdentChar(src[i])) {
        text.push_back(src[i]);
        advance(1);
      }
      out.tokens.push_back({TokKind::kIdent, text, "", tok_line, tok_col});
      continue;
    }

    // pp-number: digits, digit separators, '.', exponents with signs.
    if (IsDigit(c) || (c == '.' && IsDigit(peek(1)))) {
      int tok_line = line;
      int tok_col = col;
      std::string text;
      while (i < n) {
        char d = src[i];
        if (IsIdentChar(d) || d == '.') {
          text.push_back(d);
          advance(1);
          char last = text.back();
          if ((last == 'e' || last == 'E' || last == 'p' || last == 'P') &&
              (peek(0) == '+' || peek(0) == '-') &&
              !(text.size() >= 2 && text[1] == 'x')) {
            text.push_back(src[i]);
            advance(1);
          }
          continue;
        }
        if (d == '\'' && IsIdentChar(peek(1))) {  // digit separator
          text.push_back(d);
          advance(1);
          continue;
        }
        break;
      }
      out.tokens.push_back({TokKind::kNumber, text, "", tok_line, tok_col});
      continue;
    }

    // Punctuation: keep the few multi-char operators the rules look at as
    // single tokens; everything else is emitted one character at a time.
    {
      int tok_line = line;
      int tok_col = col;
      std::string text(1, c);
      char next = peek(1);
      if ((c == '=' && next == '=') || (c == '!' && next == '=') ||
          (c == '-' && next == '>') || (c == ':' && next == ':') ||
          (c == '&' && next == '&') || (c == '|' && next == '|') ||
          (c == '<' && next == '<')) {
        text.push_back(next);
        advance(2);
      } else {
        advance(1);
      }
      out.tokens.push_back({TokKind::kPunct, text, "", tok_line, tok_col});
      continue;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

std::string NormalizePath(std::string_view path) {
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  while (p.rfind("./", 0) == 0) p.erase(0, 2);
  return p;
}

bool PathInDir(const std::string& path, std::string_view dir) {
  std::string prefix = Cat({dir, "/"});
  if (path.rfind(prefix, 0) == 0) return true;
  return path.find(Cat({"/", prefix})) != std::string::npos;
}

bool PathIs(const std::string& path, std::string_view rel) {
  if (path == rel) return true;
  std::string suffix = Cat({"/", rel});
  return path.size() > suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool InSimPaths(const std::string& path) {
  return PathInDir(path, "src/sim") || PathInDir(path, "src/market") ||
         PathInDir(path, "src/allocation");
}

std::string RelKey(const std::string& path) {
  std::string p = NormalizePath(path);
  static const char* kRoots[] = {"src", "tools", "bench", "tests", "examples"};
  for (const char* root : kRoots) {
    std::string prefix = Cat({root, "/"});
    if (p.rfind(prefix, 0) == 0) return p;
  }
  size_t best = std::string::npos;
  for (const char* root : kRoots) {
    size_t at = p.rfind(Cat({"/", root, "/"}));
    if (at != std::string::npos && (best == std::string::npos || at > best)) {
      best = at;
    }
  }
  return best == std::string::npos ? p : p.substr(best + 1);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool RuleSelected(const Options& options, std::string_view rule) {
  return options.only_rules.empty() ||
         std::find(options.only_rules.begin(), options.only_rules.end(),
                   rule) != options.only_rules.end();
}

bool Suppressed(const LexedFile& lexed, const std::string& path, int line,
                const std::string& rule, UsedAllows* used) {
  auto it = lexed.allow.find(line);
  if (it == lexed.allow.end() || it->second.count(rule) == 0) return false;
  if (used != nullptr) {
    // The directive granting this sits either on the finding's own line
    // or on the line above; mark both candidate sites live.
    (*used)[path].insert({line, rule});
    (*used)[path].insert({line - 1, rule});
  }
  return true;
}

}  // namespace internal

namespace {

using internal::Cat;
using internal::LexedFile;
using internal::PathInDir;
using internal::PathIs;
using internal::InSimPaths;
using internal::TokKind;
using internal::Token;

bool IsFloatLiteral(const std::string& text) {
  bool hex = text.size() > 1 && text[0] == '0' &&
             (text[1] == 'x' || text[1] == 'X');
  if (hex) return text.find('p') != std::string::npos ||
                  text.find('P') != std::string::npos;
  return text.find('.') != std::string::npos ||
         text.find('e') != std::string::npos ||
         text.find('E') != std::string::npos ||
         text.back() == 'f' || text.back() == 'F';
}

// ---------------------------------------------------------------------------
// Rule engine (per-file rules; the cross-file passes live in project.cc)
// ---------------------------------------------------------------------------

class Linter {
 public:
  Linter(std::string path, const LexedFile& lexed, const Options& options,
         internal::UsedAllows* used)
      : path_(std::move(path)), lexed_(lexed), options_(options), used_(used) {}

  std::vector<Finding> Run() {
    CollectDeclarations();
    RuleBannedCalls();
    RuleRngOutsideUtil();
    RuleUnorderedIteration();
    RuleFloatEquality();
    RuleFloatDeclaration();
    RuleSchemaDoc();
    RuleUngatedProbe();
    RuleMetricCatalog();
    RuleStdFunctionInQueueConsumer();
    RuleMutableSharedState();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.column, a.rule) <
                       std::tie(b.line, b.column, b.rule);
              });
    return std::move(findings_);
  }

 private:
  const std::vector<Token>& toks() const { return lexed_.tokens; }

  const Token* At(size_t i) const {
    return i < toks().size() ? &toks()[i] : nullptr;
  }
  bool TextAt(size_t i, std::string_view text) const {
    const Token* t = At(i);
    return t != nullptr && t->text == text;
  }

  void Report(const Token& at, std::string_view rule, std::string message) {
    if (!internal::RuleSelected(options_, rule)) return;
    if (internal::Suppressed(lexed_, path_, at.line, std::string(rule),
                             used_)) {
      return;
    }
    findings_.push_back(
        {path_, at.line, at.column, std::string(rule), std::move(message), ""});
  }

  /// One pass collecting (a) identifiers declared with an unordered
  /// container type and (b) identifiers declared double/float. Lexical
  /// heuristics: `TYPE [<...>] [const|*|&|&&] NAME` within this file.
  void CollectDeclarations() {
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    for (size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind != TokKind::kIdent) continue;
      if (kUnordered.count(t.text) > 0) {
        size_t j = i + 1;
        if (TextAt(j, "<")) {
          int depth = 0;
          for (; j < toks().size(); ++j) {
            if (toks()[j].text == "<") ++depth;
            if (toks()[j].text == ">" && --depth == 0) {
              ++j;
              break;
            }
          }
        }
        while (j < toks().size() &&
               (toks()[j].text == "const" || toks()[j].text == "*" ||
                toks()[j].text == "&" || toks()[j].text == "&&")) {
          ++j;
        }
        const Token* name = At(j);
        if (name != nullptr && name->kind == TokKind::kIdent) {
          unordered_names_.insert(name->text);
        }
      }
      if (t.text == "double" || t.text == "float") {
        // Ignore casts / template arguments: `static_cast<double>(x)`.
        size_t j = i + 1;
        while (j < toks().size() &&
               (toks()[j].text == "const" || toks()[j].text == "*" ||
                toks()[j].text == "&" || toks()[j].text == "&&")) {
          ++j;
        }
        const Token* name = At(j);
        // `double operator[](...)` declares an operator, not a variable
        // named "operator" — letting it in would flag every `operator==`.
        if (name != nullptr && name->kind == TokKind::kIdent &&
            name->text != "operator") {
          double_names_.insert(name->text);
        }
      }
    }
  }

  // QA-DET-001 — calls into libc randomness / wall clocks.
  void RuleBannedCalls() {
    // The whitelisted call site itself: MonotonicClock wraps the chrono
    // clocks and (for CPU-time A/B ratios) clock_gettime.
    if (PathIs(path_, "src/util/monotonic_clock.h") ||
        PathIs(path_, "src/util/monotonic_clock.cc")) {
      return;
    }
    static const std::set<std::string> kBanned = {
        "rand",   "srand", "drand48", "lrand48",      "mrand48",
        "random", "time",  "clock",   "gettimeofday", "clock_gettime"};
    for (size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind != TokKind::kIdent || kBanned.count(t.text) == 0) continue;
      if (!TextAt(i + 1, "(")) continue;
      const Token* prev = i > 0 ? At(i - 1) : nullptr;
      if (prev != nullptr) {
        // Member access (`x.time(...)`) is someone else's method; an
        // identifier before it (`VTime time(...)`) is a declaration —
        // unless that "identifier" is a statement keyword (`return
        // rand()`), which cannot introduce a declarator.
        static const std::set<std::string> kStmtKeywords = {
            "return", "co_return", "co_yield", "co_await",
            "throw",  "else",      "do",       "case"};
        if (prev->text == "." || prev->text == "->" ||
            (prev->kind == TokKind::kIdent &&
             kStmtKeywords.count(prev->text) == 0)) {
          continue;
        }
        // Qualified call: only the std:: / :: spellings are the libc ones.
        if (prev->text == "::" && i >= 2) {
          const Token* qual = At(i - 2);
          if (qual != nullptr && qual->kind == TokKind::kIdent &&
              qual->text != "std") {
            continue;
          }
        }
      }
      Report(t, "QA-DET-001",
             Cat({"call to '", t.text,
                  "(' — unseeded global randomness/clock"}));
    }
    // std::chrono clock types: any mention outside util::MonotonicClock's
    // own implementation (excluded above) is a wall-clock read bypassing
    // the whitelisted call site (DESIGN.md §9 — wall time is a side
    // channel, never sim input).
    static const std::set<std::string> kChronoClocks = {
        "steady_clock", "high_resolution_clock", "system_clock"};
    for (const Token& t : toks()) {
      if (t.kind == TokKind::kIdent && kChronoClocks.count(t.text) > 0) {
        Report(t, "QA-DET-001",
               Cat({"'", t.text,
                    "' outside src/util/monotonic_clock.* — wall-clock "
                    "reads go through util::MonotonicClock"}));
      }
    }
  }

  // QA-DET-002 — RNG engine types outside src/util/rng.*.
  void RuleRngOutsideUtil() {
    if (PathIs(path_, "src/util/rng.h") || PathIs(path_, "src/util/rng.cc")) {
      return;
    }
    static const std::set<std::string> kEngines = {
        "mt19937",      "mt19937_64",           "minstd_rand",
        "minstd_rand0", "default_random_engine", "random_device",
        "knuth_b",      "ranlux24",             "ranlux48"};
    for (const Token& t : toks()) {
      if (t.kind == TokKind::kIdent && kEngines.count(t.text) > 0) {
        Report(t, "QA-DET-002",
               Cat({"'", t.text, "' outside src/util/rng.* — use util::Rng"}));
      }
    }
  }

  // QA-DET-003 — iterating an unordered container in a sim path.
  void RuleUnorderedIteration() {
    if (!InSimPaths(path_)) return;
    for (size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      // Range-for whose range expression mentions an unordered name.
      if (t.kind == TokKind::kIdent && t.text == "for" && TextAt(i + 1, "(")) {
        int depth = 0;
        bool past_colon = false;
        for (size_t j = i + 1; j < toks().size(); ++j) {
          const Token& u = toks()[j];
          if (u.text == "(") ++depth;
          if (u.text == ")" && --depth == 0) break;
          if (depth == 1 && u.text == ":") past_colon = true;
          if (past_colon && u.kind == TokKind::kIdent &&
              unordered_names_.count(u.text) > 0) {
            Report(t, "QA-DET-003",
                   Cat({"range-for over unordered container '", u.text,
                        "'"}));
            break;
          }
        }
      }
      // Explicit iterator walk: NAME.begin() / NAME.cbegin().
      if (t.kind == TokKind::kIdent && unordered_names_.count(t.text) > 0 &&
          (TextAt(i + 1, ".") || TextAt(i + 1, "->")) && At(i + 2) != nullptr &&
          (toks()[i + 2].text == "begin" || toks()[i + 2].text == "cbegin" ||
           toks()[i + 2].text == "rbegin") &&
          TextAt(i + 3, "(")) {
        Report(t, "QA-DET-003",
               Cat({"iterator walk over unordered container '", t.text,
                    "'"}));
      }
    }
  }

  /// Resolves the operand token adjacent to a comparison: skips a unary
  /// sign forward, or a balanced )/] group backward to the identifier
  /// before it (`prices_[k] == x` resolves to `prices_`).
  const Token* OperandRight(size_t op) const {
    const Token* t = At(op + 1);
    if (t != nullptr && (t->text == "-" || t->text == "+")) t = At(op + 2);
    return t;
  }
  const Token* OperandLeft(size_t op) const {
    if (op == 0) return nullptr;
    size_t j = op - 1;
    const Token& t = toks()[j];
    if (t.text == ")" || t.text == "]") {
      const std::string closer = t.text;
      const std::string opener = closer == ")" ? "(" : "[";
      int depth = 0;
      while (true) {
        if (toks()[j].text == closer) ++depth;
        if (toks()[j].text == opener && --depth == 0) break;
        if (j == 0) return nullptr;
        --j;
      }
      if (j == 0) return nullptr;
      --j;
    }
    return &toks()[j];
  }

  bool IsFloatyOperand(const Token* t) const {
    if (t == nullptr) return false;
    if (t->kind == TokKind::kNumber) return IsFloatLiteral(t->text);
    return t->kind == TokKind::kIdent && double_names_.count(t->text) > 0;
  }

  // QA-NUM-001 — exact float equality outside mathutil and tests.
  void RuleFloatEquality() {
    if (PathInDir(path_, "tests") || PathIs(path_, "src/util/mathutil.h") ||
        PathIs(path_, "src/util/mathutil.cc")) {
      return;
    }
    for (size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.text != "==" && t.text != "!=") continue;
      if (IsFloatyOperand(OperandLeft(i)) ||
          IsFloatyOperand(OperandRight(i))) {
        Report(t, "QA-NUM-001",
               Cat({"'", t.text, "' between floating-point values"}));
      }
    }
  }

  // QA-NUM-002 — `float` in market/price code.
  void RuleFloatDeclaration() {
    if (!InSimPaths(path_)) return;
    for (const Token& t : toks()) {
      if (t.kind == TokKind::kIdent && t.text == "float") {
        Report(t, "QA-NUM-002", "'float' in price code — use double");
      }
    }
  }

  // QA-OBS-001 — every EventKindName() kind is documented in SCHEMA.md.
  void RuleSchemaDoc() {
    if (!PathIs(path_, "src/obs/trace_schema.cc") || !options_.schema_doc) {
      return;
    }
    const std::string& doc = *options_.schema_doc;
    size_t body_start = 0;
    for (size_t i = 0; i + 1 < toks().size(); ++i) {
      if (toks()[i].kind == TokKind::kIdent &&
          toks()[i].text == "EventKindName" && TextAt(i + 1, "(")) {
        body_start = i;
        break;
      }
    }
    if (body_start == 0) return;
    int brace_depth = 0;
    bool entered = false;
    for (size_t i = body_start; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.text == "{") {
        ++brace_depth;
        entered = true;
      }
      if (t.text == "}" && --brace_depth == 0 && entered) break;
      if (entered && t.kind == TokKind::kIdent && t.text == "return" &&
          At(i + 1) != nullptr && toks()[i + 1].kind == TokKind::kString) {
        const std::string& kind = toks()[i + 1].value;
        if (kind == "?") continue;
        if (doc.find(Cat({"`", kind, "`"})) == std::string::npos) {
          Report(toks()[i + 1], "QA-OBS-001",
                 Cat({"trace kind \"", kind,
                      "\" is not documented in SCHEMA.md"}));
        }
      }
    }
  }

  // QA-OBS-002 — recorder probes must sit inside a QA_OBS(...) gate.
  void RuleUngatedProbe() {
    if (!InSimPaths(path_) && !PathInDir(path_, "src/exec")) return;
    static const std::set<std::string> kProbeMethods = {
        "Record", "RecordSnapshot", "Count", "Gauge"};
    std::vector<bool> guarded = {false};
    bool stmt_has_gate = false;
    for (size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind == TokKind::kIdent && t.text == "QA_OBS") {
        stmt_has_gate = true;
        continue;
      }
      if (t.text == "{") {
        guarded.push_back(guarded.back() || stmt_has_gate);
        stmt_has_gate = false;
        continue;
      }
      if (t.text == "}") {
        if (guarded.size() > 1) guarded.pop_back();
        stmt_has_gate = false;
        continue;
      }
      if (t.text == ";") {
        stmt_has_gate = false;
        continue;
      }
      if (t.kind == TokKind::kIdent && (TextAt(i + 1, "->") ||
                                        TextAt(i + 1, ".")) &&
          At(i + 2) != nullptr && kProbeMethods.count(toks()[i + 2].text) > 0 &&
          TextAt(i + 3, "(")) {
        std::string lowered = t.text;
        std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        if (lowered.find("recorder") == std::string::npos) continue;
        if (!guarded.back() && !stmt_has_gate) {
          Report(toks()[i + 2], "QA-OBS-002",
                 Cat({"'", t.text, toks()[i + 1].text, toks()[i + 2].text,
                      "(' outside a QA_OBS(...) gate"}));
        }
      }
    }
  }

  // QA-OBS-003 — a metric-name string literal passed to MetricId() must be
  // registered in src/obs/metrics/catalog.cc (whose full text arrives via
  // Options::metrics_catalog; every registered name appears there quoted).
  void RuleMetricCatalog() {
    if (!options_.metrics_catalog) return;
    if (PathIs(path_, "src/obs/metrics/catalog.cc")) return;
    const std::string& catalog = *options_.metrics_catalog;
    for (size_t i = 0; i + 2 < toks().size(); ++i) {
      if (toks()[i].kind != TokKind::kIdent ||
          toks()[i].text != "MetricId" || !TextAt(i + 1, "(")) {
        continue;
      }
      const Token& arg = toks()[i + 2];
      if (arg.kind != TokKind::kString) continue;  // variable names resolve
                                                   // at runtime; only
                                                   // literals are checkable
      if (catalog.find(Cat({"\"", arg.value, "\""})) == std::string::npos) {
        Report(arg, "QA-OBS-003",
               Cat({"metric name \"", arg.value,
                    "\" is not registered in src/obs/metrics/catalog.cc"}));
      }
    }
  }

  // QA-HOT-001 — std::function in files that include sim/event_queue.h.
  void RuleStdFunctionInQueueConsumer() {
    bool consumer = false;
    for (const internal::IncludeDirective& inc : lexed_.includes) {
      if (inc.target.size() >= 13 &&
          inc.target.compare(inc.target.size() - 13, 13, "event_queue.h") ==
              0) {
        consumer = true;
        break;
      }
    }
    if (!consumer || PathIs(path_, "src/sim/event_queue.h")) return;
    for (size_t i = 0; i + 2 < toks().size(); ++i) {
      if (toks()[i].kind == TokKind::kIdent && toks()[i].text == "std" &&
          TextAt(i + 1, "::") && toks()[i + 2].text == "function") {
        Report(toks()[i + 2], "QA-HOT-001",
               "std::function in an event-queue consumer (heap-allocating "
               "callback on the hot path)");
      }
    }
  }

  // QA-SHD-001 — mutable namespace-scope or static state in the paths the
  // sharded simulator core runs on worker threads. Lexical heuristics, one
  // statement at a time:
  //  - a `static` / `thread_local` declaration anywhere (function-local and
  //    class statics included) that is not const/constexpr/constinit and
  //    not a function (a '(' before the initializer marks a declarator);
  //  - any declaration at pure namespace scope (every enclosing brace is a
  //    namespace) under the same mutability test.
  // `static_cast` & co. are single identifier tokens, so they never match
  // the `static` keyword. Suppress genuinely-safe sites inline with
  // `// qa-lint: allow(QA-SHD-001)`.
  void RuleMutableSharedState() {
    if (!PathInDir(path_, "src/sim") && !PathInDir(path_, "src/allocation")) {
      return;
    }
    enum class Scope { kNamespace, kClass, kBlock };
    std::vector<Scope> scopes;  // empty == file scope, itself namespace-like
    auto all_namespace = [&scopes] {
      for (Scope s : scopes) {
        if (s != Scope::kNamespace) return false;
      }
      return true;
    };
    static const std::set<std::string> kImmutable = {"const", "constexpr",
                                                     "constinit"};
    static const std::set<std::string> kNotADeclaration = {
        "using", "typedef", "template", "friend", "operator",
        "extern", "namespace", "static_assert", "return", "goto"};
    static const std::set<std::string> kClassKeys = {"class", "struct",
                                                     "union", "enum"};

    size_t head = 0;  // first token of the current statement
    for (size_t i = 0; i < toks().size(); ++i) {
      const std::string& text = toks()[i].text;
      if (text != ";" && text != "{" && text != "}") continue;

      if (text == "}") {
        if (!scopes.empty()) scopes.pop_back();
        head = i + 1;
        continue;
      }

      // Examine the statement head..i-1, up to its `=` initializer if any
      // (a '(' inside an initializer expression must not read as a
      // function declarator).
      const bool at_namespace_scope = all_namespace();
      size_t limit = i;
      for (size_t j = head; j < i; ++j) {
        if (toks()[j].text == "=") {
          limit = j;
          break;
        }
      }
      bool is_function = false, has_static = false, is_immutable = false;
      bool skip = false;
      Scope brace_kind = Scope::kBlock;
      const Token* name = nullptr;
      size_t ident_count = 0;
      for (size_t j = head; j < limit; ++j) {
        const Token& t = toks()[j];
        if (t.text == "(") {
          is_function = true;  // declarator or control flow, not a variable
          break;
        }
        if (t.kind != TokKind::kIdent) continue;
        if (t.text == "namespace") brace_kind = Scope::kNamespace;
        if (kClassKeys.count(t.text) > 0) brace_kind = Scope::kClass;
        if (t.text == "static" || t.text == "thread_local") has_static = true;
        if (kImmutable.count(t.text) > 0) is_immutable = true;
        if (kNotADeclaration.count(t.text) > 0 ||
            brace_kind != Scope::kBlock) {
          skip = true;
          break;
        }
        ++ident_count;
        name = &t;
      }

      if (text == "{") {
        scopes.push_back(is_function ? Scope::kBlock : brace_kind);
      }
      head = i + 1;

      if (skip || is_function || is_immutable || name == nullptr) continue;
      if (has_static) {
        // Function-local and class statics included: any mutable static
        // is cross-shard shared state.
        Report(*name, "QA-SHD-001",
               Cat({"mutable static state '", name->text,
                    "' — shared across shards/threads"}));
      } else if (at_namespace_scope && ident_count >= 2) {
        // A declaration needs a type before the name; a lone identifier is
        // an expression statement or macro invocation, not a variable.
        Report(*name, "QA-SHD-001",
               Cat({"mutable namespace-scope state '", name->text,
                    "' — shared across shards/threads"}));
      }
    }
  }

  std::string path_;
  const LexedFile& lexed_;
  const Options& options_;
  internal::UsedAllows* used_;
  std::set<std::string> unordered_names_;
  std::set<std::string> double_names_;
  std::vector<Finding> findings_;
};

bool IsCxxSource(const std::filesystem::path& p) {
  std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".cpp" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp";
}

bool SkipDirectory(const std::filesystem::path& p) {
  std::string name = p.filename().string();
  return name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.') ||
         name == "third_party";
}

}  // namespace

namespace internal {

void FillSnippets(std::string_view content, std::vector<Finding>* findings) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string_view::npos) end = content.size();
    lines.push_back(content.substr(start, end - start));
    if (end == content.size()) break;
    start = end + 1;
  }
  for (Finding& f : *findings) {
    if (!f.snippet.empty()) continue;
    if (f.line >= 1 && static_cast<size_t>(f.line) <= lines.size()) {
      std::string_view text = lines[static_cast<size_t>(f.line) - 1];
      while (!text.empty() && (text.back() == '\r' || text.back() == ' ' ||
                               text.back() == '\t')) {
        text.remove_suffix(1);
      }
      f.snippet = std::string(text);
    }
  }
}

std::vector<Finding> LintLexed(const std::string& path, const LexedFile& lexed,
                               const Options& options, UsedAllows* used) {
  Linter linter(NormalizePath(path), lexed, options, used);
  return linter.Run();
}

}  // namespace internal

const std::vector<Rule>& AllRules() {
  static const std::vector<Rule> rules(std::begin(kRules), std::end(kRules));
  return rules;
}

const char* RuleRationale(std::string_view rule_id) {
  for (const Rule& rule : kRules) {
    if (rule_id == rule.id) return rule.rationale;
  }
  return nullptr;
}

std::vector<Finding> LintFile(std::string_view path, std::string_view content,
                              const Options& options) {
  internal::LexedFile lexed = internal::Lex(content);
  std::vector<Finding> findings = internal::LintLexed(
      internal::NormalizePath(path), lexed, options, nullptr);
  internal::FillSnippets(content, &findings);
  return findings;
}

std::vector<SourceFile> LoadFiles(const std::vector<std::string>& paths,
                                  std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  auto note_error = [&](const std::string& message) {
    if (errors != nullptr) errors->push_back(message);
  };
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    fs::file_status status = fs::status(path, ec);
    if (ec) {
      note_error(Cat({path, ": ", ec.message()}));
      continue;
    }
    if (fs::is_directory(status)) {
      fs::recursive_directory_iterator it(path, ec);
      fs::recursive_directory_iterator end;
      for (; it != end; it.increment(ec)) {
        if (ec) {
          note_error(Cat({path, ": ", ec.message()}));
          break;
        }
        if (it->is_directory() && SkipDirectory(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsCxxSource(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(status)) {
      files.push_back(path);
    } else {
      note_error(Cat({path, ": not a file or directory"}));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<SourceFile> out;
  out.reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      note_error(Cat({file, ": cannot open"}));
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out.push_back({file, buffer.str()});
  }
  return out;
}

namespace {

/// Fills Options side inputs (metrics catalog from the in-memory file
/// set; SCHEMA.md from disk next to trace_schema.cc) when unset.
void FillSideInputs(const std::vector<SourceFile>& files, Options* options,
                    std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  for (const SourceFile& file : files) {
    std::string norm = internal::NormalizePath(file.path);
    if (!options->metrics_catalog &&
        PathIs(norm, "src/obs/metrics/catalog.cc")) {
      options->metrics_catalog = file.content;
    }
    if (!options->schema_doc && PathIs(norm, "src/obs/trace_schema.cc")) {
      fs::path doc = fs::path(file.path).parent_path() / "SCHEMA.md";
      std::ifstream doc_in(doc, std::ios::binary);
      if (doc_in) {
        std::ostringstream doc_buffer;
        doc_buffer << doc_in.rdbuf();
        options->schema_doc = doc_buffer.str();
      } else if (errors != nullptr) {
        errors->push_back(doc.generic_string() +
                          ": cannot open (needed for QA-OBS-001)");
      }
    }
  }
}

}  // namespace

std::vector<Finding> AnalyzePaths(const std::vector<std::string>& paths,
                                  const Options& options,
                                  const ProjectOptions& project,
                                  std::vector<std::string>* errors) {
  std::vector<SourceFile> files = LoadFiles(paths, errors);
  Options shared = options;
  FillSideInputs(files, &shared, errors);
  ProjectOptions proj = project;
  if (!proj.layer_manifest) {
    std::ifstream manifest_in(proj.manifest_path, std::ios::binary);
    if (manifest_in) {
      std::ostringstream buffer;
      buffer << manifest_in.rdbuf();
      proj.layer_manifest = buffer.str();
    }
    // No manifest on disk => the layering pass is skipped, same as an
    // unset schema_doc skips QA-OBS-001. CI always has one.
  }
  return AnalyzeProject(files, shared, proj, errors);
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const Options& options,
                               std::vector<std::string>* errors) {
  std::vector<SourceFile> files = LoadFiles(paths, errors);
  Options shared = options;
  FillSideInputs(files, &shared, errors);
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    std::vector<Finding> file_findings =
        LintFile(file.path, file.content, shared);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.column, a.rule) <
                     std::tie(b.file, b.line, b.column, b.rule);
            });
  return findings;
}

std::string FormatText(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ":" << f.column << ": " << f.rule
        << ": " << f.message << "\n";
    const char* why = RuleRationale(f.rule);
    if (why != nullptr) out << "    why: " << why << "\n";
    if (!f.snippet.empty()) {
      std::string text = f.snippet;
      std::replace(text.begin(), text.end(), '\t', ' ');
      std::string num = std::to_string(f.line);
      std::string pad(num.size(), ' ');
      out << "  " << num << " | " << text << "\n";
      if (f.column >= 1 &&
          static_cast<size_t>(f.column) <= text.size() + 1) {
        out << "  " << pad << " | " << std::string(
                   static_cast<size_t>(f.column - 1), ' ')
            << "^\n";
      }
    }
  }
  return out.str();
}

std::string FormatJson(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out << ",";
    out << "\n  {\"file\":\"" << internal::JsonEscape(f.file)
        << "\",\"line\":" << f.line << ",\"column\":" << f.column
        << ",\"rule\":\"" << f.rule << "\",\"message\":\""
        << internal::JsonEscape(f.message) << "\",\"snippet\":\""
        << internal::JsonEscape(f.snippet) << "\"}";
  }
  if (!findings.empty()) out << "\n";
  out << "]\n";
  return out.str();
}

}  // namespace qa::lint
