#!/usr/bin/env bash
# Perf-smoke gate: compare a freshly generated BENCH_runner.json against
# the committed baseline and fail on a real throughput regression.
#
# Usage: tools/check_perf.sh FRESH.json [BASELINE.json]
#
# FRESH.json is the report a just-finished `bench_perf_runner --quick`
# run wrote to its working directory; BASELINE.json defaults to the
# BENCH_runner.json committed at the repo root. Two checks:
#
#   1. Throughput. When both reports ran the same operating point
#      (equal events_total), events_per_sec_tagged must not drop more
#      than 10% below the committed number — the tagged event queue is
#      the simulator's hot loop, and 10% sits well above run-to-run
#      noise (best-of-trials inside the bench already absorbs most
#      jitter). When the modes differ — CI runs --quick against a
#      committed full-run baseline, whose longer runs and extra trials
#      systematically raise its best-of — the absolute numbers are not
#      comparable, so the gate falls back to event_queue_speedup
#      (tagged/callback, measured within one process and one mode): a
#      self-normalized ratio that cancels machine and mode speed, floor
#      85% of baseline.
#   2. metrics_overhead_pct, when present in the fresh report, must stay
#      at or under 5% — the acceptance bound for the metrics subsystem's
#      probe cost on the federation hot path.
#
# The committed baseline and the fresh run may come from different
# hardware; the speedup fallback is also what keeps a cross-machine
# comparison meaningful. Locally, treat a failure as a prompt to look,
# not proof of a regression.
set -eu

if [ $# -lt 1 ]; then
  echo "usage: tools/check_perf.sh FRESH.json [BASELINE.json]" >&2
  exit 2
fi

fresh=$1
repo_root=$(cd "$(dirname "$0")/.." && pwd)
baseline=${2:-$repo_root/BENCH_runner.json}

for f in "$fresh" "$baseline"; do
  if [ ! -f "$f" ]; then
    echo "error: report '$f' not found" >&2
    exit 2
  fi
done

python3 - "$fresh" "$baseline" <<'EOF'
import json
import sys

fresh_path, baseline_path = sys.argv[1], sys.argv[2]
with open(fresh_path) as f:
    fresh = json.load(f)
with open(baseline_path) as f:
    baseline = json.load(f)

status = 0

base_eps = baseline.get("events_per_sec_tagged")
fresh_eps = fresh.get("events_per_sec_tagged")
if not base_eps or not fresh_eps:
    print("error: events_per_sec_tagged missing from a report", file=sys.stderr)
    sys.exit(2)
if fresh.get("events_total") == baseline.get("events_total"):
    # Same operating point: absolute throughput is comparable.
    ratio = fresh_eps / base_eps
    print(f"events_per_sec_tagged: fresh {fresh_eps:.3g} vs baseline "
          f"{base_eps:.3g} ({100.0 * ratio:.1f}% of baseline, floor 90%)")
    if ratio < 0.90:
        print(f"FAIL: tagged event throughput regressed more than 10% "
              f"({100.0 * (1.0 - ratio):.1f}% below baseline)",
              file=sys.stderr)
        status = 1
else:
    # Different operating points (--quick vs full): compare the
    # self-normalized tagged/callback speedup instead.
    base_speedup = baseline.get("event_queue_speedup")
    fresh_speedup = fresh.get("event_queue_speedup")
    if not base_speedup or not fresh_speedup:
        print("error: event_queue_speedup missing from a report",
              file=sys.stderr)
        sys.exit(2)
    ratio = fresh_speedup / base_speedup
    print(f"events_total differs (fresh {fresh.get('events_total')} vs "
          f"baseline {baseline.get('events_total')}); comparing "
          f"event_queue_speedup: fresh {fresh_speedup:.3f}x vs baseline "
          f"{base_speedup:.3f}x ({100.0 * ratio:.1f}% of baseline, "
          f"floor 85%)")
    if ratio < 0.85:
        print(f"FAIL: event-queue speedup regressed more than 15% "
              f"({100.0 * (1.0 - ratio):.1f}% below baseline)",
              file=sys.stderr)
        status = 1

overhead = fresh.get("metrics_overhead_pct")
if overhead is not None:
    print(f"metrics_overhead_pct: {overhead:.2f}% (ceiling 5%)")
    if overhead > 5.0:
        print(f"FAIL: metrics collector overhead {overhead:.2f}% exceeds "
              f"the 5% acceptance bound", file=sys.stderr)
        status = 1
else:
    print("note: fresh report predates metrics_overhead_pct; overhead "
          "check skipped")

if not fresh.get("deterministic", False):
    print("FAIL: fresh report says deterministic=false — the bench saw "
          "diverging results", file=sys.stderr)
    status = 1

sys.exit(status)
EOF
