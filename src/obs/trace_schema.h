#ifndef QAMARKET_OBS_TRACE_SCHEMA_H_
#define QAMARKET_OBS_TRACE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json.h"
#include "util/status.h"

namespace qa::obs {

/// Version of the JSONL trace format. Bump when a record gains, loses or
/// renames a field; readers refuse traces from a newer schema. The format
/// itself is documented in src/obs/SCHEMA.md.
///
/// v2: event records gained the fault-injection kinds `crash`, `restart`,
/// `degrade`, `lost` and the `factor` field (degrade records).
/// v3: meta records gained `solicitation` + `fanout` (the QA-NT
/// offer-solicitation policy of the run); assign/reject event records
/// gained `solicited` (nodes asked for offers on that attempt).
/// v4: event records gained the overload kinds `shed` (a bounded queue or
/// the admission gate dropped the query; shed ⊆ dropped) and `surge` (a
/// fault-plan arrival-rate window opened/closed; `factor` carries the
/// multiplier, `class` the scope, -1 = all classes).
/// v5: hierarchical two-tier market. Meta records gained `clusters` +
/// `top_fanout` (present only when the run used a hierarchical cluster
/// plan); assign/reject event records gained `cluster` (the cluster the
/// top tier routed the attempt to, -1/omitted when flat or unrouted) and
/// `clusters_asked` (sub-mediators solicited on the attempt); snapshots
/// additionally emit `cluster` records (one per activated cluster and
/// query class: published/remaining/sold aggregate supply).
inline constexpr int kTraceSchemaVersion = 5;

/// The typed records of the trace. Every record serializes to one JSON
/// object per line with a "type" discriminator; fields holding their
/// default value are omitted on write and restored on read, so a
/// write -> parse round trip reproduces the records exactly.

/// One per trace (first line): what produced it.
struct MetaRecord {
  int schema = kTraceSchemaVersion;
  std::string mechanism;
  int nodes = 0;
  int classes = 0;
  int64_t period_us = 0;
  /// Market ticks per period (snapshot cadence context).
  int ticks_per_period = 0;
  uint64_t seed = 0;
  /// Offer-solicitation policy name ("broadcast", "uniform-sample",
  /// "stratified-sample"); empty (omitted) in pre-v3 traces.
  std::string solicitation;
  /// Solicitation fanout d (sampled policies only; 0 under broadcast).
  int fanout = 0;
  /// Hierarchical runs only: number of clusters in the plan (0 = flat —
  /// including enabled single-cluster plans, which run the flat market).
  int clusters = 0;
  /// Top-tier solicitation fanout (0 = top-tier broadcast or flat run).
  int top_fanout = 0;

  bool operator==(const MetaRecord&) const = default;
  Json ToJson() const;
  static MetaRecord FromJson(const Json& json);
};

/// A span of the federation's discrete-event loop.
struct EventRecord {
  enum class Kind {
    kArrival,   // a query enters the system (first attempt only)
    kAssign,    // the mechanism placed the query on a node
    kReject,    // every server declined; the client will retry
    kDrop,      // retry budget exhausted
    kBounce,    // assignment hit an unreachable node (failure injection)
    kDeliver,   // the query reached its server after the network delay
    kComplete,  // execution finished
    kTick,      // market tick (allocator period hooks ran)
    kCrash,     // node went down with state loss (fault injection)
    kRestart,   // crashed node came back; its agent re-learns from defaults
    kDegrade,   // node speed changed to `factor` (1.0 = back to full speed)
    kLost,      // a query/message was lost in flight (crash or lossy link)
    kShed,      // overload shedding dropped the query (bounded queue or
                // admission gate); every shed query is also dropped
    kSurge,     // arrival-rate surge window edge; `factor` = multiplier
                // (1.0 on the closing edge), `class` = scope (-1 = all)
  };

  Kind kind = Kind::kTick;
  int64_t t_us = 0;
  int64_t query = -1;
  int class_id = -1;
  int node = -1;
  int origin = -1;
  /// Messages the allocation attempt cost (assign/reject records).
  int messages = 0;
  /// Nodes solicited for offers on this attempt (assign/reject records of
  /// negotiating mechanisms; 0 otherwise).
  int solicited = 0;
  /// Resubmission count of this query so far (assign/reject/drop records).
  int attempts = 0;
  /// Hierarchical runs: cluster the top tier routed this attempt to
  /// (assign/reject records; -1 = flat market or no cluster offered).
  int cluster = -1;
  /// Cluster sub-mediators solicited on this attempt (0 when flat).
  int clusters_asked = 0;
  /// Response time, complete records only.
  double response_ms = 0.0;
  /// Execution speed multiplier (degrade records, 0 < factor <= 1) or
  /// arrival-rate multiplier (surge records, factor > 0).
  double factor = 0.0;

  bool operator==(const EventRecord&) const = default;
  Json ToJson() const;
  static EventRecord FromJson(const Json& json);
};

std::string_view EventKindName(EventRecord::Kind kind);
/// Returns false when `name` is not a known kind.
bool ParseEventKind(std::string_view name, EventRecord::Kind* kind);

/// One (node, query class) sample of an allocator snapshot: the node's
/// private price for the class plus its planned and still-unsold supply.
struct PriceRecord {
  int64_t t_us = 0;
  int node = -1;
  int class_id = -1;
  double price = 0.0;
  int64_t planned = 0;
  int64_t remaining = 0;

  bool operator==(const PriceRecord&) const = default;
  Json ToJson() const;
  static PriceRecord FromJson(const Json& json);
};

/// Per-agent cumulative counters at snapshot time (QA-NT).
struct AgentRecord {
  int64_t t_us = 0;
  int node = -1;
  int64_t requests = 0;
  int64_t offers = 0;
  int64_t accepted = 0;
  int64_t declined = 0;
  int64_t periods = 0;
  int64_t debt_us = 0;
  int64_t budget_us = 0;
  double earnings = 0.0;

  bool operator==(const AgentRecord&) const = default;
  Json ToJson() const;
  static AgentRecord FromJson(const Json& json);
};

/// One (cluster, query class) sample of an allocator snapshot under the
/// hierarchical market: the aggregate supply the cluster's sub-mediator
/// last published to the top tier, the ledger's remaining estimate, and
/// the cumulative units sold through the cluster.
struct ClusterRecord {
  int64_t t_us = 0;
  int cluster = -1;
  int class_id = -1;
  int64_t published = 0;
  int64_t remaining = 0;
  int64_t sold = 0;

  bool operator==(const ClusterRecord&) const = default;
  Json ToJson() const;
  static ClusterRecord FromJson(const Json& json);
};

/// One umpire price/excess-demand pair of the tâtonnement reference.
struct UmpireRecord {
  int iter = 0;
  int class_id = -1;
  double price = 0.0;
  double excess = 0.0;

  bool operator==(const UmpireRecord&) const = default;
  Json ToJson() const;
  static UmpireRecord FromJson(const Json& json);
};

/// A named counter or gauge, flushed when the recorder finishes.
struct StatRecord {
  std::string name;
  double value = 0.0;
  bool gauge = false;

  bool operator==(const StatRecord&) const = default;
  Json ToJson() const;
  static StatRecord FromJson(const Json& json);
};

}  // namespace qa::obs

#endif  // QAMARKET_OBS_TRACE_SCHEMA_H_
