#include "obs/recorder.h"

namespace qa::obs {

util::StatusOr<std::unique_ptr<Recorder>> Recorder::OpenFile(
    const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!file->is_open()) {
    return util::Status::InvalidArgument("cannot open trace file: " + path);
  }
  auto recorder = std::make_unique<Recorder>(file.get());
  recorder->file_ = std::move(file);
  return recorder;
}

void Recorder::Write(const Json& json) {
  if (sink_ == nullptr) return;
  line_buffer_.clear();
  json.DumpTo(line_buffer_);
  line_buffer_.push_back('\n');
  sink_->write(line_buffer_.data(),
               static_cast<std::streamsize>(line_buffer_.size()));
}

void Recorder::RecordSnapshot(util::VTime now,
                              const AllocatorSnapshot& snapshot) {
  if (sink_ == nullptr) return;
  for (const AgentStateSnapshot& agent : snapshot.agents) {
    for (size_t k = 0; k < agent.prices.size(); ++k) {
      PriceRecord price;
      price.t_us = now;
      price.node = agent.node;
      price.class_id = static_cast<int>(k);
      price.price = agent.prices[k];
      price.planned =
          k < agent.planned_supply.size() ? agent.planned_supply[k] : 0;
      price.remaining =
          k < agent.remaining_supply.size() ? agent.remaining_supply[k] : 0;
      Record(price);
    }
    AgentRecord record;
    record.t_us = now;
    record.node = agent.node;
    record.requests = agent.requests_seen;
    record.offers = agent.offers_made;
    record.accepted = agent.offers_accepted;
    record.declined = agent.declines_no_supply;
    record.periods = agent.periods;
    record.debt_us = agent.debt_us;
    record.budget_us = agent.remaining_budget_us;
    record.earnings = agent.earnings;
    Record(record);
  }
  for (const ClusterStateSnapshot& cluster : snapshot.clusters) {
    for (size_t k = 0; k < cluster.published.size(); ++k) {
      ClusterRecord record;
      record.t_us = now;
      record.cluster = cluster.cluster;
      record.class_id = static_cast<int>(k);
      record.published = cluster.published[k];
      record.remaining =
          k < cluster.remaining.size() ? cluster.remaining[k] : 0;
      record.sold = k < cluster.sold.size() ? cluster.sold[k] : 0;
      Record(record);
    }
  }
  for (size_t k = 0; k < snapshot.umpire_prices.size(); ++k) {
    UmpireRecord record;
    record.iter = static_cast<int>(now);
    record.class_id = static_cast<int>(k);
    record.price = snapshot.umpire_prices[k];
    record.excess =
        k < snapshot.excess_demand.size() ? snapshot.excess_demand[k] : 0.0;
    Record(record);
  }
}

StatRecord* Recorder::FindStat(std::string_view name, bool gauge) {
  for (StatRecord& stat : stats_) {
    if (stat.gauge == gauge && stat.name == name) return &stat;
  }
  stats_.push_back(StatRecord{std::string(name), 0.0, gauge});
  return &stats_.back();
}

void Recorder::Count(std::string_view name, int64_t delta) {
  if (sink_ == nullptr) return;
  FindStat(name, /*gauge=*/false)->value += static_cast<double>(delta);
}

void Recorder::Gauge(std::string_view name, double value) {
  if (sink_ == nullptr) return;
  FindStat(name, /*gauge=*/true)->value = value;
}

int64_t Recorder::counter(std::string_view name) const {
  for (const StatRecord& stat : stats_) {
    if (!stat.gauge && stat.name == name) {
      return static_cast<int64_t>(stat.value);
    }
  }
  return 0;
}

void Recorder::Finish() {
  if (sink_ == nullptr || finished_) return;
  for (const StatRecord& stat : stats_) {
    Write(stat.ToJson());
  }
  sink_->flush();
  finished_ = true;
}

}  // namespace qa::obs
