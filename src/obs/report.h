#ifndef QAMARKET_OBS_REPORT_H_
#define QAMARKET_OBS_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "util/status.h"

namespace qa::obs {

/// Version of the JSON run-report format (see src/obs/SCHEMA.md).
inline constexpr int kReportSchemaVersion = 1;

/// Collects one labeled metrics object per run of an experiment binary and
/// writes them as a single structured JSON document:
///   {"schema":1,"bench":"Fig. 4","seed":42,
///    "runs":[{"label":"QA-NT","metrics":{...}}, ...]}
/// The metrics objects come from sim::MetricsToJson (the full SimMetrics
/// plus percentile and per-class breakdowns).
class RunReport {
 public:
  explicit RunReport(std::string bench) : bench_(std::move(bench)) {}

  /// Top-level extras (seed, capacity estimates, grid shape...).
  void SetField(std::string key, Json value) {
    fields_.emplace_back(std::move(key), std::move(value));
  }

  void Add(std::string label, Json metrics) {
    runs_.emplace_back(std::move(label), std::move(metrics));
  }

  bool empty() const { return runs_.empty(); }
  size_t size() const { return runs_.size(); }

  Json ToJson() const;

  /// Writes the report document (pretty enough: one run per line).
  util::Status WriteFile(const std::string& path) const;

 private:
  std::string bench_;
  std::vector<std::pair<std::string, Json>> fields_;
  std::vector<std::pair<std::string, Json>> runs_;
};

}  // namespace qa::obs

#endif  // QAMARKET_OBS_REPORT_H_
