#include "obs/trace_reader.h"

#include <fstream>
#include <istream>

namespace qa::obs {

util::StatusOr<ParsedTrace> ParsedTrace::Parse(std::istream& in) {
  ParsedTrace trace;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    util::StatusOr<Json> parsed = Json::Parse(line);
    if (!parsed.ok()) {
      return util::Status::InvalidArgument(
          "trace line " + std::to_string(line_number) + ": " +
          parsed.status().message());
    }
    const Json& json = *parsed;
    std::string type = json.GetString("type");
    if (type == "meta") {
      trace.meta = MetaRecord::FromJson(json);
      trace.has_meta = true;
      if (trace.meta.schema > kTraceSchemaVersion) {
        return util::Status::InvalidArgument(
            "trace line " + std::to_string(line_number) +
            ": schema version " + std::to_string(trace.meta.schema) +
            " is newer than this reader (" +
            std::to_string(kTraceSchemaVersion) + ")");
      }
    } else if (type == "event") {
      trace.events.push_back(EventRecord::FromJson(json));
    } else if (type == "price") {
      trace.prices.push_back(PriceRecord::FromJson(json));
    } else if (type == "agent") {
      trace.agents.push_back(AgentRecord::FromJson(json));
    } else if (type == "cluster") {
      trace.clusters.push_back(ClusterRecord::FromJson(json));
    } else if (type == "umpire") {
      trace.umpire.push_back(UmpireRecord::FromJson(json));
    } else if (type == "counter" || type == "gauge") {
      trace.stats.push_back(StatRecord::FromJson(json));
    } else if (type.empty()) {
      return util::Status::InvalidArgument(
          "trace line " + std::to_string(line_number) +
          ": record without a \"type\" field");
    }
    // Unknown non-empty types: skipped (same-schema forward compatibility).
  }
  return trace;
}

util::StatusOr<ParsedTrace> ParsedTrace::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return util::Status::NotFound("cannot open trace file: " + path);
  }
  return Parse(in);
}

}  // namespace qa::obs
