#include "obs/report.h"

#include <fstream>

namespace qa::obs {

Json RunReport::ToJson() const {
  Json json = Json::MakeObject();
  json.Set("schema", kReportSchemaVersion);
  json.Set("bench", bench_);
  for (const auto& [key, value] : fields_) {
    json.Set(key, value);
  }
  Json runs = Json::MakeArray();
  for (const auto& [label, metrics] : runs_) {
    Json run = Json::MakeObject();
    run.Set("label", label);
    run.Set("metrics", metrics);
    runs.Append(std::move(run));
  }
  json.Set("runs", std::move(runs));
  return json;
}

util::Status RunReport::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return util::Status::InvalidArgument("cannot open report file: " + path);
  }
  // One run entry per line: diffable and still a single JSON document.
  Json document = ToJson();
  out << "{";
  bool first = true;
  for (const auto& [key, value] : document.object()) {
    if (!first) out << ",";
    first = false;
    if (key == "runs") {
      out << "\n \"runs\": [";
      bool first_run = true;
      for (const Json& run : value.array()) {
        if (!first_run) out << ",";
        first_run = false;
        out << "\n  " << run.Dump();
      }
      out << "\n ]";
    } else {
      out << "\n " << Json(key).Dump() << ": " << value.Dump();
    }
  }
  out << "\n}\n";
  return out.good() ? util::Status::OK()
                    : util::Status::Internal("short write: " + path);
}

}  // namespace qa::obs
