#include "obs/trace_schema.h"

namespace qa::obs {

namespace {

/// Default-valued fields are omitted on write; FromJson falls back to the
/// same defaults, so omission is invisible to a round trip.
void SetIfNot(Json& json, const char* key, int64_t value, int64_t skip) {
  if (value != skip) json.Set(key, value);
}

void SetIfNot(Json& json, const char* key, double value_d, double skip_d) {
  // Exact sentinel compare on purpose: `skip_d` is the untouched field
  // default that FromJson restores, never a computed value, and omitting
  // on "near default" would break the byte-stable write->parse->write.
  // qa-lint: allow(QA-NUM-001)
  if (value_d != skip_d) json.Set(key, value_d);
}

}  // namespace

Json MetaRecord::ToJson() const {
  Json json = Json::MakeObject();
  json.Set("type", "meta");
  json.Set("schema", schema);
  json.Set("mechanism", mechanism);
  json.Set("nodes", nodes);
  json.Set("classes", classes);
  json.Set("period_us", period_us);
  json.Set("ticks_per_period", ticks_per_period);
  json.Set("seed", static_cast<int64_t>(seed));
  if (!solicitation.empty()) json.Set("solicitation", solicitation);
  SetIfNot(json, "fanout", int64_t{fanout}, int64_t{0});
  SetIfNot(json, "clusters", int64_t{clusters}, int64_t{0});
  SetIfNot(json, "top_fanout", int64_t{top_fanout}, int64_t{0});
  return json;
}

MetaRecord MetaRecord::FromJson(const Json& json) {
  MetaRecord r;
  r.schema = static_cast<int>(json.GetInt("schema", kTraceSchemaVersion));
  r.mechanism = json.GetString("mechanism");
  r.nodes = static_cast<int>(json.GetInt("nodes"));
  r.classes = static_cast<int>(json.GetInt("classes"));
  r.period_us = json.GetInt("period_us");
  r.ticks_per_period = static_cast<int>(json.GetInt("ticks_per_period"));
  r.seed = static_cast<uint64_t>(json.GetInt("seed"));
  r.solicitation = json.GetString("solicitation");
  r.fanout = static_cast<int>(json.GetInt("fanout", 0));
  r.clusters = static_cast<int>(json.GetInt("clusters", 0));
  r.top_fanout = static_cast<int>(json.GetInt("top_fanout", 0));
  return r;
}

std::string_view EventKindName(EventRecord::Kind kind) {
  switch (kind) {
    case EventRecord::Kind::kArrival:
      return "arrival";
    case EventRecord::Kind::kAssign:
      return "assign";
    case EventRecord::Kind::kReject:
      return "reject";
    case EventRecord::Kind::kDrop:
      return "drop";
    case EventRecord::Kind::kBounce:
      return "bounce";
    case EventRecord::Kind::kDeliver:
      return "deliver";
    case EventRecord::Kind::kComplete:
      return "complete";
    case EventRecord::Kind::kTick:
      return "tick";
    case EventRecord::Kind::kCrash:
      return "crash";
    case EventRecord::Kind::kRestart:
      return "restart";
    case EventRecord::Kind::kDegrade:
      return "degrade";
    case EventRecord::Kind::kLost:
      return "lost";
    case EventRecord::Kind::kShed:
      return "shed";
    case EventRecord::Kind::kSurge:
      return "surge";
  }
  return "?";
}

bool ParseEventKind(std::string_view name, EventRecord::Kind* kind) {
  for (EventRecord::Kind k :
       {EventRecord::Kind::kArrival, EventRecord::Kind::kAssign,
        EventRecord::Kind::kReject, EventRecord::Kind::kDrop,
        EventRecord::Kind::kBounce, EventRecord::Kind::kDeliver,
        EventRecord::Kind::kComplete, EventRecord::Kind::kTick,
        EventRecord::Kind::kCrash, EventRecord::Kind::kRestart,
        EventRecord::Kind::kDegrade, EventRecord::Kind::kLost,
        EventRecord::Kind::kShed, EventRecord::Kind::kSurge}) {
    if (EventKindName(k) == name) {
      *kind = k;
      return true;
    }
  }
  return false;
}

Json EventRecord::ToJson() const {
  Json json = Json::MakeObject();
  json.Set("type", "event");
  json.Set("kind", std::string(EventKindName(kind)));
  json.Set("t_us", t_us);
  SetIfNot(json, "query", query, int64_t{-1});
  SetIfNot(json, "class", int64_t{class_id}, int64_t{-1});
  SetIfNot(json, "node", int64_t{node}, int64_t{-1});
  SetIfNot(json, "origin", int64_t{origin}, int64_t{-1});
  SetIfNot(json, "messages", int64_t{messages}, int64_t{0});
  SetIfNot(json, "solicited", int64_t{solicited}, int64_t{0});
  SetIfNot(json, "attempts", int64_t{attempts}, int64_t{0});
  SetIfNot(json, "cluster", int64_t{cluster}, int64_t{-1});
  SetIfNot(json, "clusters_asked", int64_t{clusters_asked}, int64_t{0});
  SetIfNot(json, "response_ms", response_ms, 0.0);
  SetIfNot(json, "factor", factor, 0.0);
  return json;
}

EventRecord EventRecord::FromJson(const Json& json) {
  EventRecord r;
  ParseEventKind(json.GetString("kind"), &r.kind);
  r.t_us = json.GetInt("t_us");
  r.query = json.GetInt("query", -1);
  r.class_id = static_cast<int>(json.GetInt("class", -1));
  r.node = static_cast<int>(json.GetInt("node", -1));
  r.origin = static_cast<int>(json.GetInt("origin", -1));
  r.messages = static_cast<int>(json.GetInt("messages", 0));
  r.solicited = static_cast<int>(json.GetInt("solicited", 0));
  r.attempts = static_cast<int>(json.GetInt("attempts", 0));
  r.cluster = static_cast<int>(json.GetInt("cluster", -1));
  r.clusters_asked = static_cast<int>(json.GetInt("clusters_asked", 0));
  r.response_ms = json.GetDouble("response_ms", 0.0);
  r.factor = json.GetDouble("factor", 0.0);
  return r;
}

Json PriceRecord::ToJson() const {
  Json json = Json::MakeObject();
  json.Set("type", "price");
  json.Set("t_us", t_us);
  json.Set("node", node);
  json.Set("class", class_id);
  json.Set("price", price);
  SetIfNot(json, "planned", planned, int64_t{0});
  SetIfNot(json, "remaining", remaining, int64_t{0});
  return json;
}

PriceRecord PriceRecord::FromJson(const Json& json) {
  PriceRecord r;
  r.t_us = json.GetInt("t_us");
  r.node = static_cast<int>(json.GetInt("node", -1));
  r.class_id = static_cast<int>(json.GetInt("class", -1));
  r.price = json.GetDouble("price");
  r.planned = json.GetInt("planned", 0);
  r.remaining = json.GetInt("remaining", 0);
  return r;
}

Json AgentRecord::ToJson() const {
  Json json = Json::MakeObject();
  json.Set("type", "agent");
  json.Set("t_us", t_us);
  json.Set("node", node);
  json.Set("requests", requests);
  json.Set("offers", offers);
  json.Set("accepted", accepted);
  json.Set("declined", declined);
  json.Set("periods", periods);
  SetIfNot(json, "debt_us", debt_us, int64_t{0});
  SetIfNot(json, "budget_us", budget_us, int64_t{0});
  SetIfNot(json, "earnings", earnings, 0.0);
  return json;
}

AgentRecord AgentRecord::FromJson(const Json& json) {
  AgentRecord r;
  r.t_us = json.GetInt("t_us");
  r.node = static_cast<int>(json.GetInt("node", -1));
  r.requests = json.GetInt("requests");
  r.offers = json.GetInt("offers");
  r.accepted = json.GetInt("accepted");
  r.declined = json.GetInt("declined");
  r.periods = json.GetInt("periods");
  r.debt_us = json.GetInt("debt_us", 0);
  r.budget_us = json.GetInt("budget_us", 0);
  r.earnings = json.GetDouble("earnings", 0.0);
  return r;
}

Json ClusterRecord::ToJson() const {
  Json json = Json::MakeObject();
  json.Set("type", "cluster");
  json.Set("t_us", t_us);
  json.Set("cluster", cluster);
  json.Set("class", class_id);
  SetIfNot(json, "published", published, int64_t{0});
  SetIfNot(json, "remaining", remaining, int64_t{0});
  SetIfNot(json, "sold", sold, int64_t{0});
  return json;
}

ClusterRecord ClusterRecord::FromJson(const Json& json) {
  ClusterRecord r;
  r.t_us = json.GetInt("t_us");
  r.cluster = static_cast<int>(json.GetInt("cluster", -1));
  r.class_id = static_cast<int>(json.GetInt("class", -1));
  r.published = json.GetInt("published", 0);
  r.remaining = json.GetInt("remaining", 0);
  r.sold = json.GetInt("sold", 0);
  return r;
}

Json UmpireRecord::ToJson() const {
  Json json = Json::MakeObject();
  json.Set("type", "umpire");
  json.Set("iter", iter);
  json.Set("class", class_id);
  json.Set("price", price);
  json.Set("excess", excess);
  return json;
}

UmpireRecord UmpireRecord::FromJson(const Json& json) {
  UmpireRecord r;
  r.iter = static_cast<int>(json.GetInt("iter"));
  r.class_id = static_cast<int>(json.GetInt("class", -1));
  r.price = json.GetDouble("price");
  r.excess = json.GetDouble("excess");
  return r;
}

Json StatRecord::ToJson() const {
  Json json = Json::MakeObject();
  json.Set("type", gauge ? "gauge" : "counter");
  json.Set("name", name);
  // Counters are integral by construction; serialize them as JSON ints so
  // the trace reads naturally ("value":390, not "value":3.9e+02).
  if (gauge) {
    json.Set("value", value);
  } else {
    json.Set("value", static_cast<int64_t>(value));
  }
  return json;
}

StatRecord StatRecord::FromJson(const Json& json) {
  StatRecord r;
  r.gauge = json.GetString("type") == "gauge";
  r.name = json.GetString("name");
  r.value = json.GetDouble("value");
  return r;
}

}  // namespace qa::obs
