#ifndef QAMARKET_OBS_ANALYSIS_H_
#define QAMARKET_OBS_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "obs/trace_reader.h"
#include "util/vtime.h"

namespace qa::obs {

/// Dispersion of the nodes' private prices for one class in one market
/// period: the paper's convergence claim (§3.3) is that QA-NT's
/// decentralized price adjustments drive this variance down without an
/// umpire, and back down again after each workload shift.
struct PriceDispersion {
  int period = 0;    // t_us / meta.period_us of the snapshot
  int class_id = 0;
  int nodes = 0;     // nodes sampled in this period
  double mean = 0.0;
  double variance = 0.0;  // population variance across nodes
  /// Population variance of ln(price) across nodes. QA-NT's price moves
  /// are multiplicative (a bump per decline, a proportional end-of-period
  /// decay), so absolute variance mostly tracks the price *scale*; the
  /// log-variance is invariant to all nodes re-scaling together and
  /// measures only how much they disagree — the paper's convergence claim.
  double log_variance = 0.0;
};

/// Per-class price variance across nodes, one row per (period, class) with
/// at least one snapshot sample. Rows are ordered by (period, class); each
/// node contributes its last sample within the period.
std::vector<PriceDispersion> PriceVarianceByPeriod(const ParsedTrace& trace);

/// Event-loop activity aggregated per market period.
struct PeriodLoad {
  int period = 0;
  int64_t arrivals = 0;   // first-attempt arrivals
  int64_t assigns = 0;
  int64_t rejects = 0;    // declined by every server (retry scheduled)
  int64_t drops = 0;
  int64_t bounces = 0;
  int64_t losses = 0;     // queries/messages lost in flight (faults)
  int64_t sheds = 0;      // overload drops: bounded queues / admission (v4)
  int64_t completes = 0;
  int64_t messages = 0;   // allocation messages spent this period
  int64_t solicited = 0;  // nodes solicited for offers this period (v3)

  /// Observable excess demand: the fraction of allocation attempts this
  /// period that no server was willing to take.
  double ExcessRatio() const {
    int64_t attempts = assigns + rejects;
    return attempts > 0
               ? static_cast<double>(rejects) / static_cast<double>(attempts)
               : 0.0;
  }
};

/// Buckets the trace's events by market period (empty periods included up
/// to the last event).
std::vector<PeriodLoad> LoadByPeriod(const ParsedTrace& trace);

/// Time-to-equilibrium: the first period from which the observable excess
/// demand stays within `band` for `window` consecutive periods.
struct EquilibriumResult {
  bool found = false;
  int period = -1;
  double time_ms = 0.0;  // start of that period in virtual milliseconds
};

EquilibriumResult TimeToEquilibrium(const std::vector<PeriodLoad>& loads,
                                    const MetaRecord& meta,
                                    double band = 0.1, int window = 4);

/// Fig. 5c-style tracking: per `bucket_us` window, arrivals versus
/// completions of one class, and the cumulative |arrivals - completions|
/// tracking error.
struct TrackingSeries {
  int class_id = 0;
  std::vector<int64_t> arrivals;     // per bucket
  std::vector<int64_t> completions;  // per bucket
  int64_t total_error = 0;
};

std::vector<TrackingSeries> ComputeTracking(const ParsedTrace& trace,
                                            util::VDuration bucket_us);

/// Recovery behaviour around one injected fault transition (a crash,
/// restart, degrade or surge event in the trace): did the market's price
/// dispersion return below its pre-fault level, and how long did that
/// take? This reuses the log-price-variance convergence analysis — the
/// dispersion is collapsed to its max over classes, the scalar "how much
/// do the nodes disagree" signal.
struct FaultRecovery {
  EventRecord::Kind kind = EventRecord::Kind::kCrash;
  int node = -1;
  int64_t t_us = 0;       // when the fault transition fired
  double factor = 0.0;    // degrade (speed) / surge (rate) transitions
  int fault_period = 0;

  /// True when this row carries a degrade factor. 0.0 is the "unset"
  /// default stamped at construction, never a real multiplier, so the
  /// exact compare is the sentinel test, not arithmetic.
  // qa-lint: allow(QA-NUM-001)
  bool has_factor() const { return factor != 0.0; }
  /// Max-over-classes log-price variance in the last sampled period
  /// strictly before the fault (0 when nothing was sampled yet).
  double pre_fault_variance = 0.0;
  /// Worst dispersion observed after the fault.
  double peak_variance = 0.0;
  bool reconverged = false;
  int recovery_period = -1;  // first post-fault period back at/below pre level
  double recovery_ms = 0.0;  // recovery_period start minus fault time
};

/// One row per crash/restart/degrade/surge event in the trace, in trace
/// order. Surge rows measure reconvergence of the price dispersion after a
/// flash crowd the same way degrade rows do after a speed change.
std::vector<FaultRecovery> FaultRecoveryReport(const ParsedTrace& trace);

}  // namespace qa::obs

#endif  // QAMARKET_OBS_ANALYSIS_H_
