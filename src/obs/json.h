#ifndef QAMARKET_OBS_JSON_H_
#define QAMARKET_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.h"

namespace qa::obs {

/// A minimal JSON document model for the telemetry layer: the JSONL trace
/// writer, the run reports and the qa_trace parser all speak through this
/// one type, so what the Recorder writes is exactly what the tools read.
///
/// Integers and doubles are kept distinct (JSON itself does not) so that
/// counters survive a write -> parse round trip bit-exactly; doubles are
/// printed with round-trip precision.
class Json {
 public:
  using Array = std::vector<Json>;
  /// Insertion-ordered object: a trace record has few keys and their order
  /// is part of the written format, which keeps traces diffable.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}  // NOLINT(runtime/explicit)
  Json(bool b) : value_(b) {}                // NOLINT(runtime/explicit)
  Json(int v) : value_(static_cast<int64_t>(v)) {}     // NOLINT
  Json(int64_t v) : value_(v) {}                       // NOLINT
  Json(uint64_t v) : value_(static_cast<int64_t>(v)) {}  // NOLINT
  Json(double v) : value_(v) {}                        // NOLINT
  Json(const char* s) : value_(std::string(s)) {}      // NOLINT
  Json(std::string s) : value_(std::move(s)) {}        // NOLINT
  Json(Array a) : value_(std::move(a)) {}              // NOLINT
  Json(Object o) : value_(std::move(o)) {}             // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Numeric coercions (int <-> double), with a fallback for wrong types.
  int64_t AsInt(int64_t fallback = 0) const;
  double AsDouble(double fallback = 0.0) const;
  bool AsBool(bool fallback = false) const;
  const std::string& AsString(const std::string& fallback = EmptyString()) const;

  const Array& array() const { return std::get<Array>(value_); }
  const Object& object() const { return std::get<Object>(value_); }

  /// Object lookup; nullptr when absent (or when this is not an object).
  const Json* Find(std::string_view key) const;

  /// Typed object getters: Find + coercion + fallback in one step.
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;
  double GetDouble(std::string_view key, double fallback = 0.0) const;
  std::string GetString(std::string_view key,
                        const std::string& fallback = "") const;

  /// Appends (or overwrites) `key` on an object; converts null to object.
  void Set(std::string key, Json value);
  /// Appends to an array; converts null to array.
  void Append(Json value);

  static Json MakeObject() { return Json(Object{}); }
  static Json MakeArray() { return Json(Array{}); }

  bool operator==(const Json& other) const { return value_ == other.value_; }

  /// Compact single-line rendering (what the JSONL sink writes).
  std::string Dump() const;
  void DumpTo(std::string& out) const;

  /// Parses one JSON document; trailing whitespace is permitted, trailing
  /// garbage is an error.
  static util::StatusOr<Json> Parse(std::string_view text);

 private:
  static const std::string& EmptyString();

  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      value_;
};

}  // namespace qa::obs

#endif  // QAMARKET_OBS_JSON_H_
