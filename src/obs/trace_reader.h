#ifndef QAMARKET_OBS_TRACE_READER_H_
#define QAMARKET_OBS_TRACE_READER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace_schema.h"
#include "util/status.h"

namespace qa::obs {

/// A fully parsed JSONL trace, split by record type in file order. This is
/// the one parser for the format: tools/qa_trace, the analysis helpers and
/// the schema round-trip tests all go through it.
struct ParsedTrace {
  MetaRecord meta;
  bool has_meta = false;
  std::vector<EventRecord> events;
  std::vector<PriceRecord> prices;
  std::vector<AgentRecord> agents;
  std::vector<ClusterRecord> clusters;
  std::vector<UmpireRecord> umpire;
  std::vector<StatRecord> stats;

  size_t NumRecords() const {
    return (has_meta ? 1 : 0) + events.size() + prices.size() +
           agents.size() + clusters.size() + umpire.size() + stats.size();
  }

  /// Parses a whole stream of JSONL records. Unknown record types from the
  /// *same* schema version are skipped (forward-compatible additions); a
  /// newer schema version or a malformed line is an error naming the line.
  static util::StatusOr<ParsedTrace> Parse(std::istream& in);

  /// Convenience: opens and parses `path`.
  static util::StatusOr<ParsedTrace> Load(const std::string& path);
};

}  // namespace qa::obs

#endif  // QAMARKET_OBS_TRACE_READER_H_
