#ifndef QAMARKET_OBS_RECORDER_H_
#define QAMARKET_OBS_RECORDER_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/snapshot.h"
#include "obs/trace_schema.h"
#include "util/status.h"
#include "util/vtime.h"

namespace qa::obs {

/// Streams telemetry records as JSONL and accumulates named counters and
/// gauges. One Recorder belongs to one simulation run at a time (single
/// writer, no locking): probes sit on the simulator's hot path, so keeping
/// the recorder thread-confined keeps the enabled path cheap and the
/// disabled path a single pointer test.
///
/// Probe sites use the QA_OBS macro below so that the disabled path is one
/// predictable branch — or no code at all when QA_OBS_DISABLED is defined
/// at build time (the probes compile away entirely).
class Recorder {
 public:
  /// A disabled recorder: every probe is dropped.
  Recorder() = default;

  /// Records into `sink` (not owned; must outlive the recorder).
  explicit Recorder(std::ostream* sink) : sink_(sink) {}

  /// Opens `path` for writing and records into it.
  static util::StatusOr<std::unique_ptr<Recorder>> OpenFile(
      const std::string& path);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  bool enabled() const { return sink_ != nullptr; }

  // ---- Trace records (one JSONL line each) ----
  void Record(const MetaRecord& record) { Write(record.ToJson()); }
  void Record(const EventRecord& record) { Write(record.ToJson()); }
  void Record(const PriceRecord& record) { Write(record.ToJson()); }
  void Record(const AgentRecord& record) { Write(record.ToJson()); }
  void Record(const ClusterRecord& record) { Write(record.ToJson()); }
  void Record(const UmpireRecord& record) { Write(record.ToJson()); }

  /// Expands an allocator snapshot into price/agent/umpire records stamped
  /// with virtual time `now`.
  void RecordSnapshot(util::VTime now, const AllocatorSnapshot& snapshot);

  // ---- Counters and gauges ----
  /// Adds `delta` to the named counter (created at zero on first use).
  void Count(std::string_view name, int64_t delta = 1);
  /// Sets the named gauge to `value` (last write wins).
  void Gauge(std::string_view name, double value);

  int64_t counter(std::string_view name) const;
  const std::vector<StatRecord>& stats() const { return stats_; }

  /// Flushes counters and gauges as trailing records and syncs the sink.
  /// Idempotent per set of stats; called by the owner once the run(s)
  /// being traced are over.
  void Finish();

  ~Recorder() { Finish(); }

 private:
  void Write(const Json& json);
  StatRecord* FindStat(std::string_view name, bool gauge);

  std::ostream* sink_ = nullptr;
  /// Owned sink storage when OpenFile was used.
  std::unique_ptr<std::ofstream> file_;
  std::vector<StatRecord> stats_;
  bool finished_ = false;
  std::string line_buffer_;
};

}  // namespace qa::obs

/// Probe gate: `QA_OBS(recorder) recorder->...;` costs one null test when
/// telemetry is off, and compiles to nothing under -DQA_OBS_DISABLED.
#ifdef QA_OBS_DISABLED
#define QA_OBS(recorder_ptr) if constexpr (false)
#else
#define QA_OBS(recorder_ptr) if ((recorder_ptr) != nullptr)
#endif

#endif  // QAMARKET_OBS_RECORDER_H_
