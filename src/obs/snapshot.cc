#include "obs/snapshot.h"

#include "market/tatonnement.h"

namespace qa::obs {

AllocatorSnapshot SnapshotFromTatonnement(
    const market::TatonnementResult& result) {
  AllocatorSnapshot snap;
  snap.mechanism = "Tatonnement";
  snap.umpire_prices = result.prices.values();
  snap.excess_demand.reserve(
      static_cast<size_t>(result.excess_demand.num_classes()));
  for (market::Quantity z : result.excess_demand.values()) {
    snap.excess_demand.push_back(static_cast<double>(z));
  }
  return snap;
}

}  // namespace qa::obs
