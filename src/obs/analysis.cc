#include "obs/analysis.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace qa::obs {

namespace {

int64_t PeriodOf(int64_t t_us, int64_t period_us) {
  return period_us > 0 ? t_us / period_us : 0;
}

}  // namespace

std::vector<PriceDispersion> PriceVarianceByPeriod(const ParsedTrace& trace) {
  int64_t period_us = trace.meta.period_us;
  // (period, class) -> node -> last price in that period. Snapshots are
  // time-ordered in the file, so overwriting keeps the last sample.
  //
  // Only nodes with planned supply for the class are in that class's
  // market this period: a node that plans zero units quotes no offer, and
  // its price just decays toward the floor — including it would measure
  // the floor/cap spread, not market disagreement. Traces without supply
  // columns (planned == 0 everywhere, e.g. a non-market mechanism) fall
  // back to every sampled node.
  std::map<std::pair<int64_t, int>, std::map<int, double>> cells;
  std::map<std::pair<int64_t, int>, std::map<int, double>> offering;
  for (const PriceRecord& p : trace.prices) {
    std::pair<int64_t, int> key{PeriodOf(p.t_us, period_us), p.class_id};
    cells[key][p.node] = p.price;
    if (p.planned > 0) offering[key][p.node] = p.price;
  }
  for (auto& [key, by_node] : cells) {
    auto it = offering.find(key);
    if (it != offering.end()) by_node = std::move(it->second);
  }
  std::vector<PriceDispersion> out;
  out.reserve(cells.size());
  for (const auto& [key, by_node] : cells) {
    PriceDispersion d;
    d.period = static_cast<int>(key.first);
    d.class_id = key.second;
    d.nodes = static_cast<int>(by_node.size());
    double sum = 0.0;
    for (const auto& [node, price] : by_node) sum += price;
    d.mean = sum / static_cast<double>(d.nodes);
    double log_sum = 0.0;
    for (const auto& [node, price] : by_node) {
      log_sum += std::log(std::max(price, 1e-300));
    }
    double log_mean = log_sum / static_cast<double>(d.nodes);
    double ss = 0.0;
    double log_ss = 0.0;
    for (const auto& [node, price] : by_node) {
      double delta = price - d.mean;
      ss += delta * delta;
      double log_delta = std::log(std::max(price, 1e-300)) - log_mean;
      log_ss += log_delta * log_delta;
    }
    d.variance = ss / static_cast<double>(d.nodes);
    d.log_variance = log_ss / static_cast<double>(d.nodes);
    out.push_back(d);
  }
  return out;
}

std::vector<PeriodLoad> LoadByPeriod(const ParsedTrace& trace) {
  int64_t period_us = trace.meta.period_us;
  int64_t last_period = 0;
  for (const EventRecord& e : trace.events) {
    last_period = std::max(last_period, PeriodOf(e.t_us, period_us));
  }
  std::vector<PeriodLoad> loads(static_cast<size_t>(last_period + 1));
  for (size_t i = 0; i < loads.size(); ++i) {
    loads[i].period = static_cast<int>(i);
  }
  for (const EventRecord& e : trace.events) {
    PeriodLoad& load = loads[static_cast<size_t>(PeriodOf(e.t_us, period_us))];
    switch (e.kind) {
      case EventRecord::Kind::kArrival:
        ++load.arrivals;
        break;
      case EventRecord::Kind::kAssign:
        ++load.assigns;
        load.messages += e.messages;
        load.solicited += e.solicited;
        break;
      case EventRecord::Kind::kReject:
        ++load.rejects;
        load.messages += e.messages;
        load.solicited += e.solicited;
        break;
      case EventRecord::Kind::kDrop:
        ++load.drops;
        break;
      case EventRecord::Kind::kBounce:
        ++load.bounces;
        break;
      case EventRecord::Kind::kLost:
        ++load.losses;
        break;
      case EventRecord::Kind::kShed:
        ++load.sheds;
        break;
      case EventRecord::Kind::kComplete:
        ++load.completes;
        break;
      case EventRecord::Kind::kDeliver:
      case EventRecord::Kind::kTick:
      case EventRecord::Kind::kCrash:
      case EventRecord::Kind::kRestart:
      case EventRecord::Kind::kDegrade:
      case EventRecord::Kind::kSurge:
        break;
    }
  }
  return loads;
}

EquilibriumResult TimeToEquilibrium(const std::vector<PeriodLoad>& loads,
                                    const MetaRecord& meta, double band,
                                    int window) {
  EquilibriumResult result;
  if (window < 1) window = 1;
  if (loads.size() < static_cast<size_t>(window)) return result;
  for (size_t start = 0; start + static_cast<size_t>(window) <= loads.size();
       ++start) {
    bool all_within = true;
    for (int i = 0; i < window; ++i) {
      if (loads[start + static_cast<size_t>(i)].ExcessRatio() > band) {
        all_within = false;
        break;
      }
    }
    if (all_within) {
      result.found = true;
      result.period = loads[start].period;
      result.time_ms = util::ToMillis(static_cast<util::VDuration>(
          result.period * meta.period_us));
      return result;
    }
  }
  return result;
}

std::vector<TrackingSeries> ComputeTracking(const ParsedTrace& trace,
                                            util::VDuration bucket_us) {
  if (bucket_us <= 0) bucket_us = 1;
  int64_t horizon = 0;
  int max_class = -1;
  for (const EventRecord& e : trace.events) {
    if (e.kind == EventRecord::Kind::kArrival ||
        e.kind == EventRecord::Kind::kComplete) {
      horizon = std::max(horizon, e.t_us);
      max_class = std::max(max_class, e.class_id);
    }
  }
  if (max_class < 0) return {};
  size_t buckets = static_cast<size_t>(horizon / bucket_us) + 1;
  std::vector<TrackingSeries> out(static_cast<size_t>(max_class + 1));
  for (size_t k = 0; k < out.size(); ++k) {
    out[k].class_id = static_cast<int>(k);
    out[k].arrivals.assign(buckets, 0);
    out[k].completions.assign(buckets, 0);
  }
  for (const EventRecord& e : trace.events) {
    if (e.class_id < 0) continue;
    size_t bucket = static_cast<size_t>(e.t_us / bucket_us);
    if (e.kind == EventRecord::Kind::kArrival) {
      ++out[static_cast<size_t>(e.class_id)].arrivals[bucket];
    } else if (e.kind == EventRecord::Kind::kComplete) {
      ++out[static_cast<size_t>(e.class_id)].completions[bucket];
    }
  }
  for (TrackingSeries& series : out) {
    for (size_t b = 0; b < series.arrivals.size(); ++b) {
      series.total_error +=
          std::abs(series.arrivals[b] - series.completions[b]);
    }
  }
  return out;
}

std::vector<FaultRecovery> FaultRecoveryReport(const ParsedTrace& trace) {
  int64_t period_us = trace.meta.period_us;
  // Scalar dispersion per period: the worst class's log-price variance.
  std::map<int, double> max_var;
  for (const PriceDispersion& d : PriceVarianceByPeriod(trace)) {
    auto [it, inserted] = max_var.emplace(d.period, d.log_variance);
    if (!inserted) it->second = std::max(it->second, d.log_variance);
  }

  std::vector<FaultRecovery> out;
  for (const EventRecord& e : trace.events) {
    if (e.kind != EventRecord::Kind::kCrash &&
        e.kind != EventRecord::Kind::kRestart &&
        e.kind != EventRecord::Kind::kDegrade &&
        e.kind != EventRecord::Kind::kSurge) {
      continue;
    }
    FaultRecovery r;
    r.kind = e.kind;
    r.node = e.node;
    r.t_us = e.t_us;
    r.factor = e.factor;
    r.fault_period = static_cast<int>(PeriodOf(e.t_us, period_us));
    for (const auto& [period, var] : max_var) {
      if (period < r.fault_period) r.pre_fault_variance = var;
    }
    // A fully converged pre-fault market has variance ~0; allow a small
    // absolute floor so "back to pre-fault level" is reachable at all.
    double threshold = std::max(r.pre_fault_variance + 1e-9, 1e-6);
    for (const auto& [period, var] : max_var) {
      if (period <= r.fault_period) continue;
      r.peak_variance = std::max(r.peak_variance, var);
      if (!r.reconverged && var <= threshold) {
        r.reconverged = true;
        r.recovery_period = period;
        r.recovery_ms = util::ToMillis(static_cast<util::VDuration>(
            period * period_us - e.t_us));
      }
    }
    out.push_back(r);
  }
  return out;
}

}  // namespace qa::obs
