#ifndef QAMARKET_OBS_METRICS_METRICS_READER_H_
#define QAMARKET_OBS_METRICS_METRICS_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics/watchdog.h"
#include "util/status.h"

namespace qa::obs::metrics {

/// One trailing per-metric stat from the `mstat` block.
struct MetricStat {
  std::string name;
  std::string kind;  // counter | gauge | histogram
  int64_t value = 0;     // counters
  double gauge = 0.0;    // gauges
  uint64_t count = 0;    // histograms
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
};

/// A parsed metrics JSONL stream (the Collector's sink format). The tools
/// (qa_perf, qa_trace --alarms) and tests read through this, so the writer
/// and readers cannot drift apart silently.
struct ParsedMetrics {
  Json meta;  // the mmeta line (null when absent)
  std::vector<Json> samples;
  std::vector<AlarmRecord> alarms;
  std::vector<MetricStat> stats;
  std::vector<int64_t> lane_drain_ns;
  std::vector<int64_t> lane_events;

  const MetricStat* FindStat(const std::string& name) const;

  /// Parses a metrics file; unknown record types are an error (catching
  /// schema drift beats skipping it).
  static util::StatusOr<ParsedMetrics> Load(const std::string& path);
  static util::StatusOr<ParsedMetrics> Parse(const std::string& text);
};

}  // namespace qa::obs::metrics

#endif  // QAMARKET_OBS_METRICS_METRICS_READER_H_
