#include "obs/metrics/registry.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace qa::obs::metrics {

int64_t Histogram::BucketLowerBound(int b) {
  if (b <= 0) return 0;
  return int64_t{1} << (b - 1);
}

int64_t Histogram::BucketUpperBound(int b) {
  if (b <= 0) return 0;
  if (b >= kBuckets - 1) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << b) - 1;
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count == 0) return;
  for (int b = 0; b < kBuckets; ++b) {
    buckets[static_cast<size_t>(b)] += other.buckets[static_cast<size_t>(b)];
  }
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

Registry::Registry()
    : counters_(static_cast<size_t>(kMetricCount), 0),
      gauges_(static_cast<size_t>(kMetricCount), 0.0),
      histograms_(static_cast<size_t>(kMetricCount)) {}

void Registry::MergeFrom(const Registry& other) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
    // Exact zero is the never-set sentinel here, not a tolerance check.
    // qa-lint: allow(QA-NUM-001)
    if (other.gauges_[i] != 0.0) gauges_[i] = other.gauges_[i];
    histograms_[i].MergeFrom(other.histograms_[i]);
  }
}

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf);
}

}  // namespace

std::string Registry::ExpositionText() const {
  const std::vector<MetricDef>& catalog = Catalog();
  std::string out;
  out.reserve(4096);
  for (size_t i = 0; i < catalog.size(); ++i) {
    const MetricDef& def = catalog[i];
    out.append("# HELP ").append(def.name).append(" ").append(def.help);
    out.append("\n# TYPE ").append(def.name).append(" ");
    switch (def.kind) {
      case Kind::kCounter: {
        out.append("counter\n").append(def.name).append(" ");
        AppendInt(&out, counters_[i]);
        out.append("\n");
        break;
      }
      case Kind::kGauge: {
        out.append("gauge\n").append(def.name).append(" ");
        AppendDouble(&out, gauges_[i]);
        out.append("\n");
        break;
      }
      case Kind::kHistogram: {
        out.append("histogram\n");
        const Histogram& h = histograms_[i];
        uint64_t cumulative = 0;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          cumulative += h.buckets[static_cast<size_t>(b)];
          // Empty buckets are skipped (except to seed le="0") to keep the
          // exposition readable; the trailing +Inf line restores the total.
          if (h.buckets[static_cast<size_t>(b)] == 0) continue;
          out.append(def.name).append("_bucket{le=\"");
          AppendInt(&out, Histogram::BucketUpperBound(b));
          out.append("\"} ");
          AppendInt(&out, static_cast<int64_t>(cumulative));
          out.append("\n");
        }
        out.append(def.name).append("_bucket{le=\"+Inf\"} ");
        AppendInt(&out, static_cast<int64_t>(h.count));
        out.append("\n");
        out.append(def.name).append("_sum ");
        AppendInt(&out, h.sum);
        out.append("\n");
        out.append(def.name).append("_count ");
        AppendInt(&out, static_cast<int64_t>(h.count));
        out.append("\n");
        break;
      }
    }
  }
  return out;
}

}  // namespace qa::obs::metrics
