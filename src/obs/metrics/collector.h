#ifndef QAMARKET_OBS_METRICS_COLLECTOR_H_
#define QAMARKET_OBS_METRICS_COLLECTOR_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics/catalog.h"
#include "obs/metrics/registry.h"
#include "obs/metrics/watchdog.h"
#include "util/monotonic_clock.h"
#include "util/status.h"
#include "util/vtime.h"

namespace qa::obs::metrics {

/// The wall-clock-timed phases of a run. Each maps 1:1 onto one of the
/// catalog's phase histograms.
enum class Phase : int {
  kRunTotal = 0,
  kLaneDrain,
  kMerge,
  kMarketTick,
  kAllocate,
  kRollover,
  kBidScan,
  kSnapshot,
  kMediatorDispatch,
};

/// Sampling stride for the per-allocation phase probes (kAllocate and the
/// nested kBidScan): one in every kAllocProbeStride allocations is timed,
/// and the measured duration is recorded with this weight. At allocation
/// granularity the probe itself (three clock reads, two histogram
/// records) is a measurable fraction of the work being timed; sampling
/// cuts that to 1/N while the weighted records keep histogram counts and
/// sums unbiased. Which allocations get timed is a pure function of the
/// allocation sequence number, so record counts stay deterministic
/// across shard/thread layouts.
inline constexpr uint64_t kAllocProbeStride = 8;

/// Sampling stride for the per-tick phase probes (kMarketTick and the
/// nested kRollover), same scheme as kAllocProbeStride. Deliberately
/// coprime to the market-tick divisor (a power of two in every shipped
/// scenario): a stride sharing a factor with the divisor would pin the
/// sample to a fixed position inside the global period — e.g. always the
/// rollover-heavy boundary tick — and bias the estimated tick cost.
inline constexpr uint64_t kTickProbeStride = 7;

/// Run metadata for the leading `mmeta` line of the metrics stream.
struct RunMeta {
  std::string mechanism;
  int nodes = 0;
  int shards = 1;
  int threads = 1;
  uint64_t seed = 0;
  util::VTime period_us = 0;
};

/// One deterministic per-period sample: cumulative simulation counters plus
/// the watchdog gauges, all derived from virtual-time state — identical
/// bytes at any shard/thread count.
struct SampleRow {
  util::VTime t_us = 0;
  int64_t period = 0;
  int64_t ticks = 0;
  int64_t events_dispatched = 0;
  int64_t assigned = 0;
  int64_t completed = 0;
  int64_t dropped = 0;
  int64_t expired = 0;
  int64_t bounced = 0;
  int64_t lost = 0;
  int64_t retries = 0;
  int64_t messages = 0;
  int64_t solicited = 0;
  int64_t outstanding = 0;
  int64_t shed = 0;
  int64_t admission_rejects = 0;
  int64_t brownout_level = 0;
  double log_price_variance = 0.0;
  double osc_flip_rate = 0.0;
  double max_reject_age_ms = 0.0;
  double earnings_cv = 0.0;
};

/// Metrics collector: the single owner of a run's Registry, the JSONL
/// metrics sink, and the per-lane wall-time slots. Mirrors the Recorder's
/// threading contract — all methods are mediator-thread-only except
/// RecordLaneDrain, which workers call with distinct lane indices inside a
/// fence's fork-join section (the join publishes the writes).
///
/// Record layout of the sink (one JSON object per line, `type` field):
///   mmeta   — once, run metadata
///   msample — per global period plus one final row (deterministic)
///   alarm   — watchdog alarms (deterministic, rising-edge latched)
///   mstat   — at Finish, one per catalog metric, in catalog order
///   mshards — at Finish, per-lane wall-time and event totals
/// Deterministic record *counts*: everything except the histogram values
/// inside mstat/mshards is byte-identical across shard/thread counts, and
/// even those keep a fixed record count (tests/metrics_test.cc pins this).
///
/// The collector is the *sidecar* side of the determinism boundary:
/// qa_lint's QA-DET-004 taint pass whitelists calls into this class (and
/// anything else defined under src/obs/metrics) as legal consumers of
/// MonotonicClock readings; the same value flowing anywhere else in a sim
/// path is a finding.
class Collector {
 public:
  /// A collect-only collector: no sink; counters, gauges, histograms and
  /// watchdog state still accumulate for ExpositionText()/PerfJson().
  Collector() = default;

  /// Streams metrics records into `sink` (not owned; must outlive this).
  explicit Collector(std::ostream* sink) : sink_(sink) {}

  /// Opens `path` for writing and streams into it.
  static util::StatusOr<std::unique_ptr<Collector>> OpenFile(
      const std::string& path);

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

  /// Starts a run: emits the mmeta line and resets per-lane slots.
  void BeginRun(const RunMeta& meta);

  /// Sizes the per-lane wall-time slots (mediator lane 0 + node shards).
  void SetNumLanes(size_t lanes);

  /// Observes one wall-clock phase duration (nanoseconds). A sampled
  /// probe passes the sampling stride as `weight` so histogram counts and
  /// sums stay unbiased estimates of the full event population.
  void RecordPhase(Phase phase, int64_t nanos, uint64_t weight = 1) {
#ifndef QA_METRICS_DISABLED
    registry_.Observe(PhaseMetric(phase), nanos, weight);
#else
    (void)phase;
    (void)nanos;
    (void)weight;
#endif
  }

  /// Worker-side: accumulates drain wall time and dispatched events for
  /// `lane`. Distinct lanes write distinct slots; the fence join makes the
  /// writes visible to the mediator thread.
  void RecordLaneDrain(size_t lane, int64_t nanos, uint64_t events);

  /// Boundary chaining for nested phases on the per-allocation hot path:
  /// an outer caller that just read the clock deposits the reading here,
  /// and the immediately-nested stage consumes it as its own start
  /// instead of reading the clock again (clock reads are the dominant
  /// probe cost at allocation granularity). TakePhaseMark clears the
  /// slot, so a stage invoked outside a marking caller falls back to its
  /// own read. Mediator-thread-only, like every non-lane method.
  void MarkPhaseStart(int64_t nanos) {
#ifndef QA_METRICS_DISABLED
    phase_mark_ = nanos;
#else
    (void)nanos;
#endif
  }
  int64_t TakePhaseMark() {
#ifndef QA_METRICS_DISABLED
    int64_t mark = phase_mark_;
    phase_mark_ = 0;
    return mark;
#else
    return 0;
#endif
  }

  /// Emits one deterministic msample line and syncs the registry's
  /// counters and gauges to the row.
  void Sample(const SampleRow& row);

  /// Emits one alarm line and bumps the alarm counter.
  void Alarm(const AlarmRecord& alarm);

  /// Writes the trailing mstat block (one line per catalog metric, catalog
  /// order) and the mshards line, then flushes. Idempotent.
  void Finish();

  /// Prometheus-style text exposition of the current registry state.
  std::string ExpositionText() const { return registry_.ExpositionText(); }

  /// Per-phase and per-lane wall-time summary for embedding in a
  /// RunReport (`perf` field) or bench row.
  Json PerfJson() const;

  size_t num_lanes() const { return lane_nanos_.size(); }
  int64_t lane_nanos(size_t lane) const { return lane_nanos_[lane]; }
  uint64_t lane_events(size_t lane) const { return lane_events_[lane]; }

  /// The catalog histogram id for a phase.
  static int PhaseMetric(Phase phase) {
    return static_cast<int>(kPhaseRunTotal) + static_cast<int>(phase);
  }

  ~Collector() { Finish(); }

 private:
  void Write(const Json& json);

  std::ostream* sink_ = nullptr;
  /// Owned sink storage when OpenFile was used.
  std::unique_ptr<std::ofstream> file_;
  Registry registry_;
  std::vector<int64_t> lane_nanos_;
  std::vector<uint64_t> lane_events_;
  int64_t phase_mark_ = 0;
  bool finished_ = false;
  std::string line_buffer_;
};

/// A RAII phase timer; compiles to nothing under -DQA_METRICS_DISABLED.
class ScopedPhaseTimer {
 public:
#ifndef QA_METRICS_DISABLED
  ScopedPhaseTimer(Collector* collector, Phase phase)
      : collector_(collector), phase_(phase) {
    if (collector_ != nullptr) start_ = util::MonotonicClock::NowNanos();
  }
  ~ScopedPhaseTimer() {
    if (collector_ != nullptr) {
      collector_->RecordPhase(phase_,
                              util::MonotonicClock::NowNanos() - start_);
    }
  }

 private:
  Collector* collector_;
  Phase phase_;
  int64_t start_ = 0;
#else
  ScopedPhaseTimer(Collector*, Phase) {}
#endif
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;
};

}  // namespace qa::obs::metrics

/// Probe gate for metrics call sites, mirroring QA_OBS: one null test when
/// metrics are off, no code at all under -DQA_METRICS_DISABLED.
#ifdef QA_METRICS_DISABLED
#define QA_METRICS(collector_ptr) if constexpr (false)
#else
#define QA_METRICS(collector_ptr) if ((collector_ptr) != nullptr)
#endif

#endif  // QAMARKET_OBS_METRICS_COLLECTOR_H_
