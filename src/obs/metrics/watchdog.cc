#include "obs/metrics/watchdog.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace qa::obs::metrics {

namespace {

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

WatchdogSuite::WatchdogSuite(const WatchdogConfig& config, util::VTime period_us)
    : config_(config), period_us_(period_us) {}

void WatchdogSuite::ObserveRejectSojourn(int class_id, util::VTime sojourn_us) {
  for (auto& [cls, worst] : worst_sojourn_us_) {
    if (cls == class_id) {
      worst = std::max(worst, sojourn_us);
      return;
    }
  }
  worst_sojourn_us_.emplace_back(class_id, sojourn_us);
}

const char* WatchdogSuite::WatchdogName(Watchdog watchdog) {
  switch (watchdog) {
    case kStarvation:
      return "starvation";
    case kOscillation:
      return "oscillation";
    case kNonconvergence:
      return "nonconvergence";
    case kOverload:
      return "overload";
    case kWatchdogCount:
      break;
  }
  return "?";
}

bool WatchdogSuite::TryLatch(Watchdog watchdog, int class_id) {
  bool& latched = latched_[class_id][watchdog];
  if (latched) return false;
  latched = true;
  return true;
}

void WatchdogSuite::ClearLatch(Watchdog watchdog, int class_id) {
  auto it = latched_.find(class_id);
  if (it != latched_.end()) it->second[watchdog] = false;
}

std::vector<AlarmRecord> WatchdogSuite::EvaluatePeriod(
    int64_t period, util::VTime now, const MarketProbe& probe) {
  std::vector<AlarmRecord> alarms;

  // --- Starvation: worst reject sojourn this period vs the SLA. ---
  const double sla_us =
      config_.starvation_sla_periods * static_cast<double>(period_us_);
  double worst_ms = 0.0;
  std::sort(worst_sojourn_us_.begin(), worst_sojourn_us_.end());
  for (const auto& [class_id, sojourn] : worst_sojourn_us_) {
    worst_ms = std::max(worst_ms, util::ToMillis(sojourn));
    if (static_cast<double>(sojourn) > sla_us) {
      if (TryLatch(kStarvation, class_id)) {
        AlarmRecord alarm;
        alarm.t_us = now;
        alarm.period = period;
        alarm.watchdog = WatchdogName(kStarvation);
        alarm.class_id = class_id;
        alarm.value = util::ToMillis(sojourn);
        alarm.threshold = sla_us / static_cast<double>(util::kMillisecond);
        alarm.detail = "class " + std::to_string(class_id) +
                       " query waited " + FmtDouble(alarm.value) +
                       "ms, SLA " + FmtDouble(alarm.threshold) + "ms";
        alarms.push_back(std::move(alarm));
      }
    } else {
      ClearLatch(kStarvation, class_id);
    }
  }
  max_reject_age_ms_ = worst_ms;
  worst_sojourn_us_.clear();

  // --- Overload: queries were shed this period, or a brownout is in
  // force. Evaluated before the probe check below — overload is not a
  // price-only phenomenon, so it must fire for probe-less mechanisms
  // (Random, RoundRobin) too. Market-wide (class -1). ---
  const int64_t shed_delta = shed_total_ - prev_shed_total_;
  prev_shed_total_ = shed_total_;
  if (shed_delta >= config_.overload_min_shed || brownout_level_ > 0) {
    if (TryLatch(kOverload, -1)) {
      AlarmRecord alarm;
      alarm.t_us = now;
      alarm.period = period;
      alarm.watchdog = WatchdogName(kOverload);
      alarm.class_id = -1;
      alarm.value = static_cast<double>(shed_delta);
      alarm.threshold = static_cast<double>(config_.overload_min_shed);
      alarm.detail = "shed " + std::to_string(shed_delta) +
                     " queries this period, brownout level " +
                     std::to_string(brownout_level_);
      alarms.push_back(std::move(alarm));
    }
  } else {
    ClearLatch(kOverload, -1);
  }

  // --- Price-based detectors need per-agent market state. ---
  log_price_variance_ = 0.0;
  osc_flip_rate_ = 0.0;
  earnings_cv_ = 0.0;
  if (!probe.has_agents()) return alarms;

  const size_t classes = static_cast<size_t>(probe.num_classes);
  // Deterministic stride sample of the agent population (see
  // WatchdogConfig::max_sampled_agents).
  const size_t cap = config_.max_sampled_agents > 0
                         ? static_cast<size_t>(config_.max_sampled_agents)
                         : probe.num_agents();
  const size_t stride =
      probe.num_agents() > cap ? (probe.num_agents() + cap - 1) / cap : 1;
  for (size_t c = 0; c < classes; ++c) {
    // Cross-node mean and variance of ln(price) for this class.
    double sum = 0.0, sum_sq = 0.0;
    int n = 0;
    for (size_t a = 0; a < probe.num_agents(); a += stride) {
      const double p = probe.price(a, static_cast<int>(c));
      if (p <= 0.0) continue;
      const double lp = std::log(p);
      sum += lp;
      sum_sq += lp * lp;
      ++n;
    }
    if (n == 0) continue;
    const double mean = sum / n;
    const double var = std::max(0.0, sum_sq / n - mean * mean);
    log_price_variance_ = std::max(log_price_variance_, var);

    ClassHistory& hist = history_[static_cast<int>(c)];
    hist.mean_ln_price.push_back(mean);
    if (hist.mean_ln_price.size() >
        static_cast<size_t>(config_.window) + 1) {
      hist.mean_ln_price.pop_front();
    }
    hist.ln_price_var.push_back(var);
    if (hist.ln_price_var.size() > static_cast<size_t>(config_.window)) {
      hist.ln_price_var.pop_front();
    }

    // --- Oscillation: sign-flip rate of consecutive mean-ln(price)
    // deltas. Requires a full window; a high flip rate alone is not
    // enough — tiny jitter around equilibrium also alternates sign, so
    // an amplitude floor gates the alarm. ---
    if (hist.mean_ln_price.size() ==
        static_cast<size_t>(config_.window) + 1) {
      // Consecutive-delta sign flips and mean amplitude, read straight off
      // the history deque (no materialized delta buffer — this runs every
      // period).
      const size_t num_deltas = hist.mean_ln_price.size() - 1;
      int flips = 0;
      double amp = 0.0;
      double prev_delta = 0.0;
      for (size_t i = 1; i < hist.mean_ln_price.size(); ++i) {
        const double delta =
            hist.mean_ln_price[i] - hist.mean_ln_price[i - 1];
        amp += std::fabs(delta);
        if (i > 1 && delta * prev_delta < 0.0) ++flips;
        prev_delta = delta;
      }
      const double flip_rate =
          num_deltas > 1
              ? static_cast<double>(flips) / static_cast<double>(num_deltas - 1)
              : 0.0;
      amp /= static_cast<double>(num_deltas);
      osc_flip_rate_ = std::max(osc_flip_rate_, flip_rate);
      if (flip_rate >= config_.osc_flip_threshold &&
          amp >= config_.osc_min_amplitude) {
        if (TryLatch(kOscillation, static_cast<int>(c))) {
          AlarmRecord alarm;
          alarm.t_us = now;
          alarm.period = period;
          alarm.watchdog = WatchdogName(kOscillation);
          alarm.class_id = static_cast<int>(c);
          alarm.value = flip_rate;
          alarm.threshold = config_.osc_flip_threshold;
          alarm.detail = "class " + std::to_string(c) +
                         " mean-ln(price) flip rate " + FmtDouble(flip_rate) +
                         " amplitude " + FmtDouble(amp);
          alarms.push_back(std::move(alarm));
        }
      } else {
        ClearLatch(kOscillation, static_cast<int>(c));
      }
    }

    // --- Non-convergence: over a full window, log-price variance stayed
    // above the floor and did not decrease. ---
    if (hist.ln_price_var.size() == static_cast<size_t>(config_.window)) {
      const bool all_above = std::all_of(
          hist.ln_price_var.begin(), hist.ln_price_var.end(),
          [&](double v) { return v > config_.nonconv_floor; });
      if (all_above && hist.ln_price_var.back() >= hist.ln_price_var.front()) {
        if (TryLatch(kNonconvergence, static_cast<int>(c))) {
          AlarmRecord alarm;
          alarm.t_us = now;
          alarm.period = period;
          alarm.watchdog = WatchdogName(kNonconvergence);
          alarm.class_id = static_cast<int>(c);
          alarm.value = hist.ln_price_var.back();
          alarm.threshold = config_.nonconv_floor;
          alarm.detail = "class " + std::to_string(c) +
                         " ln(price) variance " +
                         FmtDouble(hist.ln_price_var.back()) +
                         " not converging over " +
                         std::to_string(config_.window) + " periods";
          alarms.push_back(std::move(alarm));
        }
      } else {
        ClearLatch(kNonconvergence, static_cast<int>(c));
      }
    }
  }

  // --- Fairness: coefficient of variation of per-node earnings. A gauge
  // (no alarm) — skew is a signal to read alongside the price detectors,
  // not a failure by itself. ---
  double esum = 0.0, esum_sq = 0.0;
  int en = 0;
  for (double earnings : probe.earnings) {
    esum += earnings;
    esum_sq += earnings * earnings;
    ++en;
  }
  if (en > 0) {
    const double emean = esum / en;
    const double evar = std::max(0.0, esum_sq / en - emean * emean);
    if (emean > 0.0) earnings_cv_ = std::sqrt(evar) / emean;
  }

  return alarms;
}

}  // namespace qa::obs::metrics
