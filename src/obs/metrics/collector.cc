#include "obs/metrics/collector.h"

#include <algorithm>
#include <utility>

namespace qa::obs::metrics {

util::StatusOr<std::unique_ptr<Collector>> Collector::OpenFile(
    const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!file->is_open()) {
    return util::Status::InvalidArgument("cannot open metrics file: " + path);
  }
  auto collector = std::make_unique<Collector>(file.get());
  collector->file_ = std::move(file);
  return collector;
}

void Collector::Write(const Json& json) {
#ifndef QA_METRICS_DISABLED
  if (sink_ == nullptr) return;
  line_buffer_.clear();
  json.DumpTo(line_buffer_);
  line_buffer_.push_back('\n');
  sink_->write(line_buffer_.data(),
               static_cast<std::streamsize>(line_buffer_.size()));
#else
  (void)json;
#endif
}

void Collector::BeginRun(const RunMeta& meta) {
#ifndef QA_METRICS_DISABLED
  finished_ = false;
  if (sink_ == nullptr) return;
  Json line = Json::MakeObject();
  line.Set("type", "mmeta");
  line.Set("mechanism", meta.mechanism);
  line.Set("nodes", meta.nodes);
  line.Set("shards", meta.shards);
  line.Set("threads", meta.threads);
  line.Set("seed", meta.seed);
  line.Set("period_us", meta.period_us);
  Write(line);
#else
  (void)meta;
#endif
}

void Collector::SetNumLanes(size_t lanes) {
#ifndef QA_METRICS_DISABLED
  lane_nanos_.assign(lanes, 0);
  lane_events_.assign(lanes, 0);
#else
  (void)lanes;
#endif
}

void Collector::RecordLaneDrain(size_t lane, int64_t nanos, uint64_t events) {
#ifndef QA_METRICS_DISABLED
  if (lane >= lane_nanos_.size()) return;
  lane_nanos_[lane] += nanos;
  lane_events_[lane] += events;
#else
  (void)lane;
  (void)nanos;
  (void)events;
#endif
}

void Collector::Sample(const SampleRow& row) {
#ifndef QA_METRICS_DISABLED
  registry_.SetCounter(kEventsDispatched, row.events_dispatched);
  registry_.SetCounter(kQueriesAssigned, row.assigned);
  registry_.SetCounter(kQueriesCompleted, row.completed);
  registry_.SetCounter(kQueriesDropped, row.dropped);
  registry_.SetCounter(kQueriesExpired, row.expired);
  registry_.SetCounter(kQueriesBounced, row.bounced);
  registry_.SetCounter(kQueriesLost, row.lost);
  registry_.SetCounter(kRetries, row.retries);
  registry_.SetCounter(kMessages, row.messages);
  registry_.SetCounter(kSolicited, row.solicited);
  registry_.SetCounter(kTicks, row.ticks);
  registry_.SetCounter(kQueriesShed, row.shed);
  registry_.SetCounter(kAdmissionRejects, row.admission_rejects);
  registry_.SetGauge(kLogPriceVariance, row.log_price_variance);
  registry_.SetGauge(kOscFlipRate, row.osc_flip_rate);
  registry_.SetGauge(kMaxRejectAgeMs, row.max_reject_age_ms);
  registry_.SetGauge(kEarningsCv, row.earnings_cv);
  registry_.SetGauge(kOutstanding, static_cast<double>(row.outstanding));
  registry_.SetGauge(kBrownoutLevel,
                     static_cast<double>(row.brownout_level));

  // Collect-only collectors (no sink) stop here: building the Json line
  // costs ~two dozen node allocations per period, which a collector that
  // exists purely for in-memory phase attribution (bench A/B cells, the
  // shard bench) must not pay on the measured path.
  if (sink_ == nullptr) return;
  Json line = Json::MakeObject();
  line.Set("type", "msample");
  line.Set("t_us", row.t_us);
  line.Set("period", row.period);
  line.Set("ticks", row.ticks);
  line.Set("events", row.events_dispatched);
  line.Set("assigned", row.assigned);
  line.Set("completed", row.completed);
  line.Set("dropped", row.dropped);
  line.Set("expired", row.expired);
  line.Set("bounced", row.bounced);
  line.Set("lost", row.lost);
  line.Set("retries", row.retries);
  line.Set("messages", row.messages);
  line.Set("solicited", row.solicited);
  line.Set("outstanding", row.outstanding);
  line.Set("shed", row.shed);
  line.Set("admission_rejects", row.admission_rejects);
  line.Set("brownout", row.brownout_level);
  line.Set("log_price_var", row.log_price_variance);
  line.Set("osc_flip_rate", row.osc_flip_rate);
  line.Set("max_reject_age_ms", row.max_reject_age_ms);
  line.Set("earnings_cv", row.earnings_cv);
  Write(line);
#else
  (void)row;
#endif
}

void Collector::Alarm(const AlarmRecord& alarm) {
#ifndef QA_METRICS_DISABLED
  registry_.Add(kAlarms, 1);
  if (sink_ == nullptr) return;
  Json line = Json::MakeObject();
  line.Set("type", "alarm");
  line.Set("t_us", alarm.t_us);
  line.Set("period", alarm.period);
  line.Set("watchdog", alarm.watchdog);
  line.Set("class", alarm.class_id);
  line.Set("value", alarm.value);
  line.Set("threshold", alarm.threshold);
  line.Set("detail", alarm.detail);
  Write(line);
#else
  (void)alarm;
#endif
}

void Collector::Finish() {
#ifndef QA_METRICS_DISABLED
  if (finished_) return;
  finished_ = true;
  if (sink_ == nullptr) return;
  const std::vector<MetricDef>& catalog = Catalog();
  for (size_t i = 0; i < catalog.size(); ++i) {
    const MetricDef& def = catalog[i];
    Json line = Json::MakeObject();
    line.Set("type", "mstat");
    line.Set("name", std::string(def.name));
    switch (def.kind) {
      case Kind::kCounter:
        line.Set("kind", "counter");
        line.Set("value", registry_.counter(static_cast<int>(i)));
        break;
      case Kind::kGauge:
        line.Set("kind", "gauge");
        line.Set("value", registry_.gauge(static_cast<int>(i)));
        break;
      case Kind::kHistogram: {
        line.Set("kind", "histogram");
        const Histogram& h = registry_.histogram(static_cast<int>(i));
        line.Set("count", h.count);
        line.Set("sum", h.sum);
        line.Set("min", h.count > 0 ? h.min : 0);
        line.Set("max", h.count > 0 ? h.max : 0);
        Json buckets = Json::MakeArray();
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          if (h.buckets[static_cast<size_t>(b)] == 0) continue;
          Json pair = Json::MakeArray();
          pair.Append(Histogram::BucketLowerBound(b));
          pair.Append(h.buckets[static_cast<size_t>(b)]);
          buckets.Append(std::move(pair));
        }
        line.Set("buckets", std::move(buckets));
        break;
      }
    }
    Write(line);
  }
  Json shards = Json::MakeObject();
  shards.Set("type", "mshards");
  Json nanos = Json::MakeArray();
  Json events = Json::MakeArray();
  for (size_t lane = 0; lane < lane_nanos_.size(); ++lane) {
    nanos.Append(lane_nanos_[lane]);
    events.Append(lane_events_[lane]);
  }
  shards.Set("lane_drain_ns", std::move(nanos));
  shards.Set("lane_events", std::move(events));
  Write(shards);
  sink_->flush();
#endif
}

Json Collector::PerfJson() const {
  Json perf = Json::MakeObject();
#ifndef QA_METRICS_DISABLED
  const std::vector<MetricDef>& catalog = Catalog();
  Json phases = Json::MakeObject();
  for (size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].kind != Kind::kHistogram) continue;
    const Histogram& h = registry_.histogram(static_cast<int>(i));
    if (h.count == 0) continue;
    Json phase = Json::MakeObject();
    phase.Set("count", h.count);
    phase.Set("total_ms", static_cast<double>(h.sum) * 1e-6);
    phase.Set("mean_us", h.Mean() * 1e-3);
    phases.Set(std::string(catalog[i].name), std::move(phase));
  }
  perf.Set("phases", std::move(phases));
  if (!lane_nanos_.empty()) {
    Json lanes = Json::MakeArray();
    int64_t max_ns = 0, total_ns = 0;
    for (size_t lane = 0; lane < lane_nanos_.size(); ++lane) {
      Json row = Json::MakeObject();
      row.Set("drain_ms", static_cast<double>(lane_nanos_[lane]) * 1e-6);
      row.Set("events", lane_events_[lane]);
      lanes.Append(std::move(row));
      max_ns = std::max(max_ns, lane_nanos_[lane]);
      total_ns += lane_nanos_[lane];
    }
    perf.Set("lanes", std::move(lanes));
    const double mean_ns = static_cast<double>(total_ns) /
                           static_cast<double>(lane_nanos_.size());
    perf.Set("lane_imbalance",
             mean_ns > 0.0 ? static_cast<double>(max_ns) / mean_ns : 0.0);
  }
  perf.Set("alarms", registry_.counter(kAlarms));
#endif
  return perf;
}

}  // namespace qa::obs::metrics
