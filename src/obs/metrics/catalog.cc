#include "obs/metrics/catalog.h"

namespace qa::obs::metrics {

// The one place metric names exist. Order must match the Metric enum in
// catalog.h (tests/metrics_test.cc pins both); lint rule QA-OBS-003 reads
// this file's string literals as the registered-name set.
const std::vector<MetricDef>& Catalog() {
  static const std::vector<MetricDef> kCatalog = {
      // ---- counters (deterministic) ----
      {"qa_events_dispatched_total", Kind::kCounter,
       "discrete events dispatched by the simulator core"},
      {"qa_queries_assigned_total", Kind::kCounter,
       "allocation attempts that placed the query on a node"},
      {"qa_queries_completed_total", Kind::kCounter,
       "queries whose results reached their client in time"},
      {"qa_queries_dropped_total", Kind::kCounter,
       "queries abandoned (retry budget exhausted or expired)"},
      {"qa_queries_expired_total", Kind::kCounter,
       "queries abandoned because the client deadline passed"},
      {"qa_queries_bounced_total", Kind::kCounter,
       "assignments that bounced off an unreachable node"},
      {"qa_queries_lost_total", Kind::kCounter,
       "queries lost in flight to crashes or link faults"},
      {"qa_retries_total", Kind::kCounter,
       "market rounds where every server declined and the client retried"},
      {"qa_messages_total", Kind::kCounter,
       "network messages charged to allocation decisions"},
      {"qa_solicited_total", Kind::kCounter,
       "nodes solicited for offers across all allocation attempts"},
      {"qa_ticks_total", Kind::kCounter, "market ticks run"},
      {"qa_alarms_total", Kind::kCounter,
       "market-health watchdog alarms raised"},
      {"qa_queries_shed_total", Kind::kCounter,
       "queries shed by bounded queues or admission control (⊆ dropped)"},
      {"qa_admission_rejects_total", Kind::kCounter,
       "queries turned away by the admission gate (⊆ shed)"},
      // ---- gauges (deterministic, per global period) ----
      {"qa_market_log_price_variance", Kind::kGauge,
       "max over classes of the cross-node variance of ln(price)"},
      {"qa_market_osc_flip_rate", Kind::kGauge,
       "max over classes of the sign-flip rate of per-period mean "
       "log-price deltas"},
      {"qa_market_max_reject_age_ms", Kind::kGauge,
       "worst sojourn (ms) among queries rejected this period"},
      {"qa_market_earnings_cv", Kind::kGauge,
       "coefficient of variation of per-node cumulative earnings"},
      {"qa_market_outstanding", Kind::kGauge,
       "queries in flight (arrived, neither completed nor dropped)"},
      {"qa_admission_brownout_level", Kind::kGauge,
       "query classes currently browned out (most expensive first)"},
      // ---- histograms (wall-clock side channel, nanoseconds) ----
      {"qa_phase_run_total_ns", Kind::kHistogram,
       "whole Federation::Run wall time"},
      {"qa_phase_lane_drain_ns", Kind::kHistogram,
       "per-fence shard-lane drain (the parallel fork-join section)"},
      {"qa_phase_merge_ns", Kind::kHistogram,
       "per-fence cross-shard canonical (time, stamp) merge"},
      {"qa_phase_market_tick_ns", Kind::kHistogram,
       "per-tick market driver (allocator period hooks and bookkeeping)"},
      {"qa_phase_allocate_ns", Kind::kHistogram,
       "per-arrival Allocator::Allocate call"},
      {"qa_phase_rollover_ns", Kind::kHistogram,
       "per-tick QA-NT staggered period rollover"},
      {"qa_phase_bid_scan_ns", Kind::kHistogram,
       "per-arrival QA-NT solicitation + solicited-agent bid scan"},
      {"qa_phase_snapshot_ns", Kind::kHistogram,
       "per-period market probe + sample + watchdog evaluation"},
      {"qa_phase_mediator_dispatch_ns", Kind::kHistogram,
       "per-window mediator run-ahead between fences (sharded mode)"},
      {"qa_node_queue_depth", Kind::kHistogram,
       "per-node waiting-queue length observed each global period "
       "(deterministic: virtual state, not wall clock)"},
  };
  return kCatalog;
}

int MetricId(std::string_view name) {
  const std::vector<MetricDef>& catalog = Catalog();
  for (size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace qa::obs::metrics
