#ifndef QAMARKET_OBS_METRICS_REGISTRY_H_
#define QAMARKET_OBS_METRICS_REGISTRY_H_

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics/catalog.h"

namespace qa::obs::metrics {

/// A log-bucketed value/latency histogram: power-of-two buckets, so one
/// `Record` is a bit_width plus an increment — cheap enough for per-event
/// use — and the bucket layout needs no configuration.
///
/// Bucket b (b >= 1) holds values v with 2^(b-1) <= v <= 2^b - 1;
/// bucket 0 holds v <= 0. With 48 buckets the top bucket starts at 2^46 ns
/// (~21 hours), far past any phase this project times.
struct Histogram {
  static constexpr int kBuckets = 48;

  std::array<uint64_t, kBuckets> buckets{};
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  // meaningful only when count > 0
  int64_t max = 0;

  /// The bucket index of `v`: 0 for v <= 0, otherwise bit_width(v)
  /// clamped to the top bucket. Inline: this is the per-event path.
  static int BucketOf(int64_t v) {
    if (v <= 0) return 0;
    int b = static_cast<int>(std::bit_width(static_cast<uint64_t>(v)));
    return b < kBuckets - 1 ? b : kBuckets - 1;
  }
  /// Smallest value bucket `b` holds (0 for bucket 0).
  static int64_t BucketLowerBound(int b);
  /// Largest value bucket `b` holds (2^b - 1; INT64_MAX for the top).
  static int64_t BucketUpperBound(int b);

  /// Records `v` with statistical weight `weight`: a probe that times one
  /// in every N occurrences of an event records the measured duration with
  /// weight N, keeping `count`, `sum` and the bucket mass unbiased
  /// estimates of the full population (min/max describe sampled values
  /// only).
  void Record(int64_t v, uint64_t weight = 1) {
    buckets[static_cast<size_t>(BucketOf(v))] += weight;
    if (count == 0) {
      min = v;
      max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    count += weight;
    sum += v * static_cast<int64_t>(weight);
  }
  void MergeFrom(const Histogram& other);
  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

/// All metric instruments of one collector, dense-indexed by the catalog
/// (obs/metrics/catalog.h). Instantiating one registers every catalog
/// metric up front, so exposition order — and the metrics sink's trailing
/// stats block — is the catalog order regardless of which metrics a run
/// happens to touch. Not thread-safe: per-shard wall-clock attribution
/// goes through the Collector's per-lane slots and is folded in at
/// fences/Finish on the mediator thread.
class Registry {
 public:
  Registry();

  /// Counter increment (id must be a kCounter catalog entry).
  void Add(int id, int64_t delta = 1) {
    counters_[static_cast<size_t>(id)] += delta;
  }
  /// Counter sync: snap the cumulative value mirrored from sim state.
  void SetCounter(int id, int64_t value) {
    counters_[static_cast<size_t>(id)] = value;
  }
  void SetGauge(int id, double value) {
    gauges_[static_cast<size_t>(id)] = value;
  }
  void Observe(int id, int64_t value, uint64_t weight = 1) {
    histograms_[static_cast<size_t>(id)].Record(value, weight);
  }

  int64_t counter(int id) const { return counters_[static_cast<size_t>(id)]; }
  double gauge(int id) const { return gauges_[static_cast<size_t>(id)]; }
  const Histogram& histogram(int id) const {
    return histograms_[static_cast<size_t>(id)];
  }

  /// Folds another registry in (per-shard instances aggregated at fences):
  /// counters and histogram contents add, gauges take the other's value
  /// when it was ever set.
  void MergeFrom(const Registry& other);

  /// Prometheus-style text exposition of every catalog metric, in catalog
  /// order. Histograms render as cumulative `_bucket{le=...}` lines plus
  /// `_sum`/`_count`, the classic exposition shape.
  std::string ExpositionText() const;

 private:
  std::vector<int64_t> counters_;
  std::vector<double> gauges_;
  std::vector<Histogram> histograms_;
};

}  // namespace qa::obs::metrics

#endif  // QAMARKET_OBS_METRICS_REGISTRY_H_
