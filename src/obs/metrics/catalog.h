#ifndef QAMARKET_OBS_METRICS_CATALOG_H_
#define QAMARKET_OBS_METRICS_CATALOG_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace qa::obs::metrics {

enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

/// One registered metric. Every metric a run can ever emit is declared in
/// the catalog (catalog.cc) and nowhere else; registries are built from it
/// at startup so exposition order is deterministic, and lint rule
/// QA-OBS-003 cross-checks name lookups in code against it.
struct MetricDef {
  std::string_view name;
  Kind kind;
  std::string_view help;
};

/// Dense metric ids: the index of each catalog entry. Kept in the exact
/// order of the table in catalog.cc (unit-tested); hot paths use these
/// instead of string lookups.
enum Metric : int {
  // Counters — deterministic, mirrored from the simulation's own state at
  // market-tick fences; byte-identical at any shard/thread count.
  kEventsDispatched = 0,
  kQueriesAssigned,
  kQueriesCompleted,
  kQueriesDropped,
  kQueriesExpired,
  kQueriesBounced,
  kQueriesLost,
  kRetries,
  kMessages,
  kSolicited,
  kTicks,
  kAlarms,
  kQueriesShed,
  kAdmissionRejects,
  // Gauges — deterministic market-health signals the watchdogs evaluate
  // each global period.
  kLogPriceVariance,
  kOscFlipRate,
  kMaxRejectAgeMs,
  kEarningsCv,
  kOutstanding,
  kBrownoutLevel,
  // Histograms — wall-clock phase timings in nanoseconds (log-bucketed).
  // Side channel only: these never feed simulation state or trace bytes.
  // kNodeQueueDepth is the one deterministic histogram: per-node queue
  // lengths observed at every global period fence (virtual state, so it
  // stays byte-identical like the counters and gauges). It sits after the
  // phase block because Collector::PhaseMetric requires the phase
  // histograms contiguous from kPhaseRunTotal.
  kPhaseRunTotal,
  kPhaseLaneDrain,
  kPhaseMerge,
  kPhaseMarketTick,
  kPhaseAllocate,
  kPhaseRollover,
  kPhaseBidScan,
  kPhaseSnapshot,
  kPhaseMediatorDispatch,
  kNodeQueueDepth,
  kMetricCount,
};

/// The full catalog, in Metric id order.
const std::vector<MetricDef>& Catalog();

/// Resolves a metric name to its dense id, or -1 when unregistered.
/// Call sites that pass a string literal are lint-checked (QA-OBS-003):
/// the literal must appear in the catalog.
int MetricId(std::string_view name);

}  // namespace qa::obs::metrics

#endif  // QAMARKET_OBS_METRICS_CATALOG_H_
