#ifndef QAMARKET_OBS_METRICS_WATCHDOG_H_
#define QAMARKET_OBS_METRICS_WATCHDOG_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics/market_probe.h"
#include "util/vtime.h"

namespace qa::obs::metrics {

/// One structured watchdog alarm. Deterministic: every input is virtual-time
/// simulation state, so alarm streams are byte-identical across shard and
/// thread counts.
struct AlarmRecord {
  util::VTime t_us = 0;
  int64_t period = 0;
  std::string watchdog;  // oscillation | starvation | nonconvergence |
                         // overload
  int class_id = -1;     // -1 = market-wide
  double value = 0.0;
  double threshold = 0.0;
  std::string detail;
};

struct WatchdogConfig {
  /// Periods of history each detector keeps before it can fire.
  int window = 6;
  /// Oscillation: alarm when >= this fraction of consecutive per-period
  /// mean-ln(price) deltas flip sign...
  double osc_flip_threshold = 0.6;
  /// ...and the mean |delta| is at least this (filters micro-jitter around
  /// a settled price).
  double osc_min_amplitude = 0.02;
  /// Starvation: alarm when a rejected query's sojourn exceeds this many
  /// global periods.
  double starvation_sla_periods = 4.0;
  /// Non-convergence: log-price variances below this floor never alarm.
  double nonconv_floor = 1e-3;
  /// Price-detector population cap. Above this many agents the detectors
  /// read a deterministic stride sample (agents 0, s, 2s, ... with
  /// s = ceil(n / cap)) instead of every agent: the per-period eval is
  /// O(agents x classes) with a log() per entry, which at 10k nodes
  /// would dwarf the simulation work it watches. The stride is a pure
  /// function of the population size, so sampled gauge and alarm streams
  /// stay byte-identical across shard/thread layouts.
  int max_sampled_agents = 32;
  /// Overload: alarm when at least this many queries were shed in one
  /// global period (or a brownout is in force).
  int64_t overload_min_shed = 1;
};

/// Online market-health detectors, evaluated once per global period from
/// the mediator with the allocator's own market probe. Each alarm is
/// rising-edge latched: it fires once when its condition becomes true and
/// re-arms only after the condition clears, so a persistently sick market
/// yields one alarm per episode, not one per period.
class WatchdogSuite {
 public:
  WatchdogSuite(const WatchdogConfig& config, util::VTime period_us);

  /// Feed from the arrival reject path: `sojourn_us` is how long the query
  /// has been waiting since its original arrival.
  void ObserveRejectSojourn(int class_id, util::VTime sojourn_us);

  /// Feed for the overload detector, called once before each
  /// EvaluatePeriod: the run's cumulative shed counter and the admission
  /// controller's current brownout level. The detector fires on the
  /// per-period shed delta, so cumulative feeds are the natural interface.
  void ObserveOverload(int64_t shed_total, int brownout_level) {
    shed_total_ = shed_total;
    brownout_level_ = brownout_level;
  }

  /// Run all detectors against this period's market probe (see
  /// MarketProbe for why the allocator fills a flat reusable buffer
  /// rather than a full snapshot). Returns the alarms that fired
  /// (possibly empty). Probes without per-agent state (non-market
  /// mechanisms) skip the price-based detectors.
  std::vector<AlarmRecord> EvaluatePeriod(int64_t period, util::VTime now,
                                          const MarketProbe& probe);

  // Gauge values computed by the latest EvaluatePeriod.
  double log_price_variance() const { return log_price_variance_; }
  double osc_flip_rate() const { return osc_flip_rate_; }
  double max_reject_age_ms() const { return max_reject_age_ms_; }
  double earnings_cv() const { return earnings_cv_; }

 private:
  struct ClassHistory {
    std::deque<double> mean_ln_price;  // last `window`+1 period means
    std::deque<double> ln_price_var;   // last `window` period variances
  };

  /// Latch slots, dense-indexed so the per-period latch bookkeeping is an
  /// array access, not a string-keyed map probe (EvaluatePeriod runs every
  /// period; its fixed cost is what the metrics overhead gate measures).
  /// The alarm-record name for each slot lives in WatchdogName().
  enum Watchdog : size_t {
    kStarvation = 0,
    kOscillation,
    kNonconvergence,
    kOverload,
    kWatchdogCount,
  };
  static const char* WatchdogName(Watchdog watchdog);

  /// True when the (watchdog, class) latch is open; closes it. Re-armed by
  /// ClearLatch when the condition is observed false.
  bool TryLatch(Watchdog watchdog, int class_id);
  void ClearLatch(Watchdog watchdog, int class_id);

  WatchdogConfig config_;
  util::VTime period_us_;
  std::map<int, ClassHistory> history_;
  /// (class, worst sojourn) this period. A flat vector: the observe side
  /// runs per rejected allocation attempt, where a linear scan of a
  /// couple of classes beats a map probe. Sorted by class at evaluation
  /// so alarm order matches ascending class id.
  std::vector<std::pair<int, util::VTime>> worst_sojourn_us_;
  std::map<int, std::array<bool, kWatchdogCount>> latched_;  // per class

  double log_price_variance_ = 0.0;
  double osc_flip_rate_ = 0.0;
  double max_reject_age_ms_ = 0.0;
  double earnings_cv_ = 0.0;

  /// Overload-detector feed (ObserveOverload) and its previous-period
  /// cursor for the delta.
  int64_t shed_total_ = 0;
  int64_t prev_shed_total_ = 0;
  int brownout_level_ = 0;
};

}  // namespace qa::obs::metrics

#endif  // QAMARKET_OBS_METRICS_WATCHDOG_H_
