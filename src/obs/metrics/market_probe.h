#ifndef QAMARKET_OBS_METRICS_MARKET_PROBE_H_
#define QAMARKET_OBS_METRICS_MARKET_PROBE_H_

#include <cstddef>
#include <vector>

namespace qa::obs::metrics {

/// The minimal per-period market view the health watchdogs consume:
/// per-agent per-class prices and per-agent cumulative earnings, flat.
///
/// This exists so the watchdog feed stays off the allocation fast path's
/// cost ledger: materializing a full obs::AllocatorSnapshot every period
/// clones each agent's price and supply vectors (dozens of heap
/// allocations per period), which measurably drags the whole federation
/// run when metrics are attached. A MarketProbe instead is refilled in
/// place each period — the owner keeps one instance alive and the
/// steady-state fill costs no allocation at all.
///
/// Layout: `prices` is agent-major (`agent * num_classes + class_id`);
/// `earnings` has one entry per agent. Agents appear in node-id order —
/// the same order AllocatorSnapshot::agents uses — so the watchdog sees
/// an identical statistical population either way.
struct MarketProbe {
  int num_classes = 0;
  std::vector<double> prices;
  std::vector<double> earnings;

  size_t num_agents() const { return earnings.size(); }
  bool has_agents() const { return !earnings.empty(); }
  double price(size_t agent, int class_id) const {
    return prices[agent * static_cast<size_t>(num_classes) +
                  static_cast<size_t>(class_id)];
  }

  /// Resets to the no-market-state shape (what non-market mechanisms
  /// report); keeps capacity so the next fill does not reallocate.
  void Clear() {
    num_classes = 0;
    prices.clear();
    earnings.clear();
  }
};

}  // namespace qa::obs::metrics

#endif  // QAMARKET_OBS_METRICS_MARKET_PROBE_H_
