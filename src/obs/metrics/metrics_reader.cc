#include "obs/metrics/metrics_reader.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace qa::obs::metrics {

const MetricStat* ParsedMetrics::FindStat(const std::string& name) const {
  for (const MetricStat& stat : stats) {
    if (stat.name == name) return &stat;
  }
  return nullptr;
}

util::StatusOr<ParsedMetrics> ParsedMetrics::Load(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return util::Status::NotFound("cannot open metrics file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return Parse(buffer.str());
}

util::StatusOr<ParsedMetrics> ParsedMetrics::Parse(const std::string& text) {
  ParsedMetrics parsed;
  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string_view line(text.data() + pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    util::StatusOr<Json> json = Json::Parse(line);
    if (!json.ok()) {
      return util::Status::InvalidArgument(
          "metrics line " + std::to_string(line_no) + ": " +
          json.status().message());
    }
    const Json& record = *json;
    const std::string type = record.GetString("type");
    if (type == "mmeta") {
      parsed.meta = record;
    } else if (type == "msample") {
      parsed.samples.push_back(record);
    } else if (type == "alarm") {
      AlarmRecord alarm;
      alarm.t_us = record.GetInt("t_us");
      alarm.period = record.GetInt("period");
      alarm.watchdog = record.GetString("watchdog");
      alarm.class_id = static_cast<int>(record.GetInt("class", -1));
      alarm.value = record.GetDouble("value");
      alarm.threshold = record.GetDouble("threshold");
      alarm.detail = record.GetString("detail");
      parsed.alarms.push_back(std::move(alarm));
    } else if (type == "mstat") {
      MetricStat stat;
      stat.name = record.GetString("name");
      stat.kind = record.GetString("kind");
      if (stat.kind == "gauge") {
        stat.gauge = record.GetDouble("value");
      } else if (stat.kind == "histogram") {
        stat.count = static_cast<uint64_t>(record.GetInt("count"));
        stat.sum = record.GetInt("sum");
        stat.min = record.GetInt("min");
        stat.max = record.GetInt("max");
      } else {
        stat.value = record.GetInt("value");
      }
      parsed.stats.push_back(std::move(stat));
    } else if (type == "mshards") {
      if (const Json* nanos = record.Find("lane_drain_ns");
          nanos != nullptr && nanos->is_array()) {
        for (const Json& v : nanos->array()) {
          parsed.lane_drain_ns.push_back(v.AsInt());
        }
      }
      if (const Json* events = record.Find("lane_events");
          events != nullptr && events->is_array()) {
        for (const Json& v : events->array()) {
          parsed.lane_events.push_back(v.AsInt());
        }
      }
    } else {
      return util::Status::InvalidArgument(
          "metrics line " + std::to_string(line_no) +
          ": unknown record type '" + type + "'");
    }
  }
  return parsed;
}

}  // namespace qa::obs::metrics
