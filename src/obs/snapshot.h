#ifndef QAMARKET_OBS_SNAPSHOT_H_
#define QAMARKET_OBS_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qa::market {
struct TatonnementResult;
}  // namespace qa::market

namespace qa::obs {

/// One server agent's market state at snapshot time (QA-NT): the private
/// price vector, the supply vector planned at the last period rollover and
/// what is left of it, plus the agent's cumulative offer bookkeeping.
struct AgentStateSnapshot {
  int node = -1;
  std::vector<double> prices;            // per query class
  std::vector<int64_t> planned_supply;   // per query class
  std::vector<int64_t> remaining_supply; // per query class (leftover)
  int64_t requests_seen = 0;
  int64_t offers_made = 0;
  int64_t offers_accepted = 0;
  int64_t declines_no_supply = 0;
  int64_t periods = 0;
  int64_t debt_us = 0;
  int64_t remaining_budget_us = 0;
  double earnings = 0.0;
};

/// One cluster's seat at the hierarchical top market at snapshot time:
/// the aggregate supply its sub-mediator last published, the ledger's
/// remaining estimate, cumulative units sold through the cluster, and the
/// seat's top-tier trading counters. Only *activated* clusters (ever
/// solicited by the top tier) appear in snapshots.
struct ClusterStateSnapshot {
  int cluster = -1;
  int members = 0;
  std::vector<int64_t> published;  // per query class
  std::vector<int64_t> remaining;  // per query class
  std::vector<int64_t> sold;       // per query class, cumulative
  int64_t publishes = 0;
  int64_t top_requests = 0;
  int64_t top_offers = 0;
  int64_t top_declines = 0;
  int64_t exhausted_marks = 0;
};

/// What Allocator::Snapshot() exposes for telemetry. Mechanisms fill the
/// parts that exist for them:
///   - QA-NT: one AgentStateSnapshot per node (private prices, supply,
///     rejection/leftover counts);
///   - hierarchical QA-NT additionally: one ClusterStateSnapshot per
///     activated cluster (the top tier's per-tier view);
///   - the tâtonnement reference: umpire prices and excess demand;
///   - baselines: probe/message counts only.
struct AllocatorSnapshot {
  std::string mechanism;
  std::vector<AgentStateSnapshot> agents;
  std::vector<ClusterStateSnapshot> clusters;
  std::vector<double> umpire_prices;   // per query class
  std::vector<double> excess_demand;   // per query class
  /// Cumulative messages the mechanism has charged for its decisions.
  int64_t probe_messages = 0;

  bool has_agents() const { return !agents.empty(); }
  bool has_umpire() const { return !umpire_prices.empty(); }
};

/// Builds the umpire view of a finished tâtonnement run (the centralized
/// reference process QA-NT is compared against).
AllocatorSnapshot SnapshotFromTatonnement(
    const market::TatonnementResult& result);

}  // namespace qa::obs

#endif  // QAMARKET_OBS_SNAPSHOT_H_
