#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace qa::obs {

namespace {

void AppendEscaped(std::string_view s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  util::StatusOr<Json> ParseDocument() {
    util::StatusOr<Json> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  util::Status Error(const std::string& what) const {
    return util::Status::InvalidArgument(
        "JSON parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  util::StatusOr<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        util::StatusOr<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return Json(std::move(s).value());
      }
      case 't':
        if (ConsumeWord("true")) return Json(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeWord("false")) return Json(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeWord("null")) return Json(nullptr);
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  util::StatusOr<Json> ParseNumber() {
    size_t start = pos_;
    bool is_double = false;
    if (Consume('-')) {
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<int64_t>(v));
      }
      // Out-of-range integers fall through to double.
    }
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("bad number");
    return Json(d);
  }

  util::StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode the code point (BMP only — the writer never emits
          // surrogate pairs; traces are ASCII plus control escapes).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  util::StatusOr<Json> ParseArray() {
    Consume('[');
    Json::Array items;
    SkipWhitespace();
    if (Consume(']')) return Json(std::move(items));
    while (true) {
      util::StatusOr<Json> item = ParseValue();
      if (!item.ok()) return item;
      items.push_back(std::move(item).value());
      SkipWhitespace();
      if (Consume(']')) return Json(std::move(items));
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  util::StatusOr<Json> ParseObject() {
    Consume('{');
    Json::Object fields;
    SkipWhitespace();
    if (Consume('}')) return Json(std::move(fields));
    while (true) {
      SkipWhitespace();
      util::StatusOr<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      util::StatusOr<Json> value = ParseValue();
      if (!value.ok()) return value;
      fields.emplace_back(std::move(key).value(), std::move(value).value());
      SkipWhitespace();
      if (Consume('}')) return Json(std::move(fields));
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const std::string& Json::EmptyString() {
  static const std::string empty;
  return empty;
}

int64_t Json::AsInt(int64_t fallback) const {
  if (is_int()) return std::get<int64_t>(value_);
  if (is_double()) return static_cast<int64_t>(std::get<double>(value_));
  return fallback;
}

double Json::AsDouble(double fallback) const {
  if (is_double()) return std::get<double>(value_);
  if (is_int()) return static_cast<double>(std::get<int64_t>(value_));
  return fallback;
}

bool Json::AsBool(bool fallback) const {
  if (is_bool()) return std::get<bool>(value_);
  return fallback;
}

const std::string& Json::AsString(const std::string& fallback) const {
  if (is_string()) return std::get<std::string>(value_);
  return fallback;
}

const Json* Json::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t Json::GetInt(std::string_view key, int64_t fallback) const {
  const Json* v = Find(key);
  return v != nullptr ? v->AsInt(fallback) : fallback;
}

double Json::GetDouble(std::string_view key, double fallback) const {
  const Json* v = Find(key);
  return v != nullptr ? v->AsDouble(fallback) : fallback;
}

std::string Json::GetString(std::string_view key,
                            const std::string& fallback) const {
  const Json* v = Find(key);
  return v != nullptr ? v->AsString(fallback) : fallback;
}

void Json::Set(std::string key, Json value) {
  if (is_null()) value_ = Object{};
  Object& fields = std::get<Object>(value_);
  for (auto& [k, v] : fields) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  fields.emplace_back(std::move(key), std::move(value));
}

void Json::Append(Json value) {
  if (is_null()) value_ = Array{};
  std::get<Array>(value_).push_back(std::move(value));
}

void Json::DumpTo(std::string& out) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_int()) {
    out += std::to_string(std::get<int64_t>(value_));
  } else if (is_double()) {
    double d = std::get<double>(value_);
    if (!std::isfinite(d)) {
      // JSON has no Infinity/NaN; null is the conventional stand-in.
      out += "null";
      return;
    }
    char buf[32];
    // Integral doubles print as "390.0", not "3.9e+02": just as exact,
    // far more readable, and still a double (not an int) when reparsed.
    // Exact integrality test on purpose: "is this double exactly an
    // integer" decides the printed form, and any epsilon would change
    // what reparsing yields.
    // qa-lint: allow(QA-NUM-001)
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%.1f", d);
      out += buf;
      return;
    }
    // Otherwise the shortest representation that parses back to the same
    // double.
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    double reparsed = std::strtod(buf, nullptr);
    // Round-trip checks must be bitwise: the shortest representation is
    // only acceptable if strtod returns the *identical* double.
    // qa-lint: allow(QA-NUM-001)
    if (reparsed == d) {
      for (int precision = 1; precision < 17; ++precision) {
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, d);
        // qa-lint: allow(QA-NUM-001)
        if (std::strtod(shorter, nullptr) == d) {
          out += shorter;
          return;
        }
      }
    }
    out += buf;
  } else if (is_string()) {
    AppendEscaped(std::get<std::string>(value_), out);
  } else if (is_array()) {
    out.push_back('[');
    bool first = true;
    for (const Json& item : array()) {
      if (!first) out.push_back(',');
      first = false;
      item.DumpTo(out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : object()) {
      if (!first) out.push_back(',');
      first = false;
      AppendEscaped(k, out);
      out.push_back(':');
      v.DumpTo(out);
    }
    out.push_back('}');
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out);
  return out;
}

util::StatusOr<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace qa::obs
