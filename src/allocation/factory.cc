#include "allocation/factory.h"

#include "allocation/baselines.h"
#include "allocation/qa_nt_allocator.h"

namespace qa::allocation {

std::unique_ptr<Allocator> CreateAllocator(const std::string& name,
                                           const AllocatorParams& params) {
  if (name == "QA-NT") {
    return std::make_unique<QaNtAllocator>(
        params.cost_model, params.period, params.qa_nt,
        QaNtAllocator::OfferSelection::kCheapest, params.solicitation,
        params.seed, params.cluster_plan);
  }
  if (name == "Greedy") {
    return std::make_unique<GreedyAllocator>(params.seed);
  }
  if (name == "GreedyBlind") {
    return std::make_unique<BlindGreedyAllocator>(
        params.seed, params.greedy_randomization);
  }
  if (name == "Random") {
    return std::make_unique<RandomAllocator>(params.seed);
  }
  if (name == "RoundRobin") {
    return std::make_unique<RoundRobinAllocator>();
  }
  if (name == "BNQRD") {
    return std::make_unique<BnqrdAllocator>();
  }
  if (name == "TwoProbes") {
    return std::make_unique<TwoRandomProbesAllocator>(params.seed);
  }
  if (name == "LeastImbalance") {
    return std::make_unique<LeastImbalanceAllocator>();
  }
  return nullptr;
}

std::vector<std::string> AllMechanismNames() {
  return {"QA-NT", "Greedy", "Random", "RoundRobin", "BNQRD", "TwoProbes"};
}

}  // namespace qa::allocation
