#ifndef QAMARKET_ALLOCATION_FACTORY_H_
#define QAMARKET_ALLOCATION_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "allocation/allocator.h"
#include "allocation/cluster_plan.h"
#include "allocation/solicitation.h"
#include "market/qa_nt.h"

namespace qa::allocation {

/// Everything a mechanism might need at construction time.
struct AllocatorParams {
  const query::CostModel* cost_model = nullptr;
  /// Market time period T (QA-NT only).
  util::VDuration period = 500 * util::kMillisecond;
  market::QaNtConfig qa_nt;
  /// Offer-solicitation fanout policy (QA-NT only; baselines have their
  /// own fixed probe counts).
  SolicitationConfig solicitation;
  /// Hierarchical two-tier market plan (QA-NT only). Disabled = flat.
  ClusterPlan cluster_plan;
  uint64_t seed = 1;
  /// GreedyBlind randomization fraction: execution-time estimates are
  /// perturbed by +/- this fraction so load spreads over near-fastest
  /// nodes instead of piling on one node. The default is the value that
  /// minimizes GreedyBlind's own response time in the Fig. 4 conditions
  /// (swept in bench_ablation_information) — the baseline gets its best
  /// setting.
  double greedy_randomization = 1.0;
};

/// Creates an allocator by name: "QA-NT", "Greedy", "Random", "RoundRobin",
/// "GreedyBlind", "BNQRD", "TwoProbes", "LeastImbalance". Returns nullptr for unknown
/// names.
std::unique_ptr<Allocator> CreateAllocator(const std::string& name,
                                           const AllocatorParams& params);

/// The mechanism names compared in the paper's Fig. 4, in its order.
std::vector<std::string> AllMechanismNames();

}  // namespace qa::allocation

#endif  // QAMARKET_ALLOCATION_FACTORY_H_
