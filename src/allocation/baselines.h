#ifndef QAMARKET_ALLOCATION_BASELINES_H_
#define QAMARKET_ALLOCATION_BASELINES_H_

#include <string>
#include <vector>

#include "allocation/allocator.h"
#include "allocation/solicitation.h"
#include "util/rng.h"

namespace qa::allocation {

/// Client-level random server selection (the commercial-cluster baseline of
/// §4): pick a feasible node uniformly at random, no probing.
class RandomAllocator : public Allocator {
 public:
  explicit RandomAllocator(uint64_t seed) : rng_(seed) {}

  std::string name() const override { return "Random"; }
  MechanismProperties properties() const override;
  AllocationDecision Allocate(const workload::Arrival& arrival,
                              const AllocationContext& context) override;

 private:
  util::Rng rng_;
  CandidateIndex candidates_;
};

/// Client-level round-robin over the feasible nodes of each class.
class RoundRobinAllocator : public Allocator {
 public:
  RoundRobinAllocator() = default;

  std::string name() const override { return "RoundRobin"; }
  MechanismProperties properties() const override;
  AllocationDecision Allocate(const workload::Arrival& arrival,
                              const AllocationContext& context) override;

 private:
  /// Next feasible-list index, per query class.
  std::vector<size_t> next_index_;
  CandidateIndex candidates_;
};

/// Greedy (§4): "immediately assign queries to server nodes that can
/// evaluate them in the least time" — the node with the smallest estimated
/// *completion* time (current backlog + execution estimate), optionally
/// perturbed by randomization (the paper: "a small amount of randomization
/// may also be used to further improve performance"). Violates node
/// autonomy: clients unilaterally assign queries and read node backlogs.
class GreedyAllocator : public Allocator {
 public:
  GreedyAllocator(uint64_t seed, double randomization = 0.0)
      : rng_(seed), randomization_(randomization) {}

  std::string name() const override { return "Greedy"; }
  MechanismProperties properties() const override;
  AllocationDecision Allocate(const workload::Arrival& arrival,
                              const AllocationContext& context) override;

 private:
  util::Rng rng_;
  double randomization_;
  CandidateIndex candidates_;
};

/// Queue-blind greedy: assigns by estimated *execution* time only, the way
/// the §5.2 real implementation computed its estimates (EXPLAIN + history;
/// no load disclosure). Included as an ablation baseline — without queue
/// knowledge it piles queries onto the fastest nodes and collapses near
/// capacity unless heavily randomized (see bench_ablation_information).
class BlindGreedyAllocator : public Allocator {
 public:
  BlindGreedyAllocator(uint64_t seed, double randomization = 1.0)
      : rng_(seed), randomization_(randomization) {}

  std::string name() const override { return "GreedyBlind"; }
  MechanismProperties properties() const override;
  AllocationDecision Allocate(const workload::Arrival& arrival,
                              const AllocationContext& context) override;

 private:
  util::Rng rng_;
  double randomization_;
  CandidateIndex candidates_;
};

/// Mitzenmacher's two-random-probes policy [10] ("How useful is old
/// information"): pick two random feasible nodes and send the query to the
/// one whose *last reported* load is lighter. Load reports are periodic
/// bulletin-board style, so decisions run on stale information — the
/// paper's point, and the reason the policy cannot fully balance a dynamic
/// federation (§5.1).
class TwoRandomProbesAllocator : public Allocator {
 public:
  TwoRandomProbesAllocator(uint64_t seed,
                           util::VDuration staleness =
                               5 * 1000 * util::kMillisecond)
      : rng_(seed), staleness_(staleness) {}

  std::string name() const override { return "TwoProbes"; }
  MechanismProperties properties() const override;
  AllocationDecision Allocate(const workload::Arrival& arrival,
                              const AllocationContext& context) override;

 private:
  /// Refreshes the load board when the snapshot expired.
  void MaybeRefresh(const AllocationContext& context);

  util::Rng rng_;
  util::VDuration staleness_;
  std::vector<util::VDuration> load_board_;
  util::VTime snapshot_time_ = -1;
  CandidateIndex candidates_;
};

/// BNQRD [1,2]: a central coordinator keeps an unbalance factor per node
/// and assigns each query so CPU/IO *work* stays evenly spread. Work is
/// measured in node-independent units (the class's best-case cost), which
/// is exactly why it underperforms on heterogeneous federations: it
/// equalizes the work of fast and slow nodes alike (§5.1).
class BnqrdAllocator : public Allocator {
 public:
  BnqrdAllocator() = default;

  std::string name() const override { return "BNQRD"; }
  MechanismProperties properties() const override;
  AllocationDecision Allocate(const workload::Arrival& arrival,
                              const AllocationContext& context) override;

 private:
  CandidateIndex candidates_;
};

/// The naive greedy load-balancer of the paper's introduction (Fig. 1):
/// assign each query to the node that minimizes the resulting load
/// imbalance (max - min backlog in actual time units).
class LeastImbalanceAllocator : public Allocator {
 public:
  LeastImbalanceAllocator() = default;

  std::string name() const override { return "LeastImbalance"; }
  MechanismProperties properties() const override;
  AllocationDecision Allocate(const workload::Arrival& arrival,
                              const AllocationContext& context) override;

 private:
  CandidateIndex candidates_;
};

}  // namespace qa::allocation

#endif  // QAMARKET_ALLOCATION_BASELINES_H_
