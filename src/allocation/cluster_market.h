#ifndef QAMARKET_ALLOCATION_CLUSTER_MARKET_H_
#define QAMARKET_ALLOCATION_CLUSTER_MARKET_H_

#include <functional>
#include <vector>

#include "allocation/cluster_plan.h"
#include "allocation/solicitation.h"
#include "market/cluster_supply.h"
#include "market/qa_nt.h"
#include "query/cost_model.h"
#include "util/vtime.h"

namespace qa::allocation {

/// The top tier of the hierarchical market: one ClusterSupplyAgent per
/// cluster trading the cluster's aggregate eq.-4 supply, a cluster-level
/// CandidateIndex so the existing bounded-fanout solicitation runs
/// unchanged over clusters, per-cluster member candidate indexes for the
/// tier-2 QA-NT auction, and the per-period publish that refreshes the
/// aggregates.
///
/// Clusters activate lazily, like node agents do: a cluster never
/// solicited by the top tier carries no member index, no cached plans and
/// no published aggregate — so a million-node federation where a sampled
/// top tier only ever touches a few hundred clusters never pays for the
/// rest. Everything here runs on the mediator lane (Allocate /
/// OnPeriodStart): strictly sequential, no cross-shard state.
class ClusterMarket {
 public:
  /// How the market reads a member agent's live remaining supply. Returns
  /// null for members whose agent was never instantiated; the market then
  /// uses the member's cached default (first-period) plan instead — an
  /// uncontacted agent's plan is a pure function of its configuration, so
  /// no agent needs to be built just to be summed. (Idle instantiated
  /// agents drift as their prices decay; the cached plan intentionally
  /// ignores that drift for never-contacted members — a documented
  /// approximation that touches only the routing hint, never the tier-2
  /// auction itself.)
  using RemainingFn =
      std::function<const market::QuantityVector*(catalog::NodeId)>;

  /// The plan must have passed Validate(cost_model->num_nodes()). The
  /// cost model must outlive the market.
  ClusterMarket(const query::CostModel* cost_model, ClusterPlan plan,
                market::QaNtConfig agent_config, util::VDuration period);

  int num_clusters() const { return plan_.num_clusters(); }
  const ClusterPlan& plan() const { return plan_; }
  /// Cluster owning `node` (every node has one in a validated plan).
  int cluster_of(catalog::NodeId node) const {
    return node_cluster_[static_cast<size_t>(node)];
  }

  /// Cluster-level candidate lists: "node" ids are cluster ids, a cluster
  /// is a class-k candidate iff some member can evaluate k, and the cost
  /// order sorts by the cluster's best member cost (its quote).
  const CandidateIndex& cluster_candidates() const {
    return cluster_candidates_;
  }

  /// The cluster's quoted execution time for class `k`: the best cost any
  /// member advertises (query::kInfeasibleCost when no member can).
  util::VDuration Quote(int cluster, int k) const {
    return quotes_[static_cast<size_t>(k) *
                       static_cast<size_t>(num_clusters()) +
                   static_cast<size_t>(cluster)];
  }

  bool active(int cluster) const {
    return clusters_[static_cast<size_t>(cluster)].active;
  }
  market::ClusterSupplyAgent& agent(int cluster) {
    return clusters_[static_cast<size_t>(cluster)].agent;
  }
  const market::ClusterSupplyAgent& agent(int cluster) const {
    return clusters_[static_cast<size_t>(cluster)].agent;
  }
  /// Member candidate lists of an *active* cluster (the tier-2 auction's
  /// solicitation universe).
  const CandidateIndex& member_candidates(int cluster) const {
    return clusters_[static_cast<size_t>(cluster)].members;
  }

  /// First-contact activation: builds the cluster's member candidate
  /// index, caches its members' default plans and publishes the first
  /// aggregate from the members' current state. Idempotent.
  void EnsureActive(int cluster, const RemainingFn& remaining_of);

  /// Market tick: once `now` crosses a global period boundary, every
  /// active cluster's sub-mediator re-publishes its aggregate from the
  /// members' post-rollover supply. Call after the member rollover of the
  /// same tick.
  void OnTick(util::VTime now, const RemainingFn& remaining_of);

 private:
  struct Cluster {
    explicit Cluster(market::ClusterSupplyAgent a) : agent(std::move(a)) {}
    market::ClusterSupplyAgent agent;
    /// Built on activation; empty before.
    CandidateIndex members;
    bool active = false;
  };

  void PublishCluster(int cluster, const RemainingFn& remaining_of);

  const query::CostModel* cost_model_;
  ClusterPlan plan_;
  market::QaNtConfig agent_config_;
  util::VDuration period_;
  /// Owning cluster per node id.
  std::vector<int> node_cluster_;
  /// Row-major [class][cluster] best-member-cost quotes.
  std::vector<util::VDuration> quotes_;
  CandidateIndex cluster_candidates_;
  std::vector<Cluster> clusters_;
  /// Cached default (first-period) plan per node; empty vectors until the
  /// owning cluster activates.
  std::vector<market::QuantityVector> default_plans_;
  /// Next global period boundary at which active clusters re-publish.
  util::VTime next_publish_;
};

}  // namespace qa::allocation

#endif  // QAMARKET_ALLOCATION_CLUSTER_MARKET_H_
