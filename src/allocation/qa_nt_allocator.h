#ifndef QAMARKET_ALLOCATION_QA_NT_ALLOCATOR_H_
#define QAMARKET_ALLOCATION_QA_NT_ALLOCATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "allocation/allocator.h"
#include "allocation/cluster_market.h"
#include "allocation/cluster_plan.h"
#include "allocation/solicitation.h"
#include "market/qa_nt.h"

namespace qa::allocation {

/// The paper's mechanism, packaged behind the Allocator interface: one
/// QaNtAgent per server node; an arriving query is offered to the solicited
/// subset of the nodes able to evaluate its class (all of them under the
/// paper's broadcast protocol, a bounded random fanout under the sampled
/// policies), each agent independently offers or declines per its private
/// prices/supply, and the client accepts the offer with the lowest
/// estimated execution time. If every agent declines, the query is
/// resubmitted in the next time period (decision.node == kNoNode).
class QaNtAllocator : public Allocator {
 public:
  /// How the client picks among the offering nodes.
  enum class OfferSelection {
    /// Best estimated execution time (the paper's §3.3 semantics).
    kCheapest,
    /// The offering node with the least cumulative earnings — the
    /// "equitable allocation" extension of the paper's future work (§6):
    /// equalize the utility (virtual value earned) of all nodes.
    kEquitable,
  };

  /// Prepares one agent slot per node of `cost_model` with period budget
  /// `period`. Agents are instantiated lazily on first contact, so a
  /// 10,000-node federation where a sampled policy only ever touches a few
  /// hundred nodes never pays for the rest. The cost model pointer must
  /// outlive the allocator. `seed` feeds the per-arrival solicitation
  /// sampling streams (unused under broadcast).
  /// `cluster_plan`, when hierarchical (enabled with >= 2 clusters),
  /// turns on the two-tier market: arrivals are first routed to a cluster
  /// on the aggregate-supply top market, then auctioned among that
  /// cluster's members with the ordinary QA-NT protocol. A disabled or
  /// single-cluster plan runs the flat market code path and is
  /// byte-identical to it.
  QaNtAllocator(const query::CostModel* cost_model, util::VDuration period,
                market::QaNtConfig config = {},
                OfferSelection selection = OfferSelection::kCheapest,
                SolicitationConfig solicitation = {}, uint64_t seed = 0,
                ClusterPlan cluster_plan = {});
  ~QaNtAllocator() override;

  std::string name() const override { return "QA-NT"; }
  MechanismProperties properties() const override;

  AllocationDecision Allocate(const workload::Arrival& arrival,
                              const AllocationContext& context) override;

  /// Market introspection over every *instantiated* agent (O(contacted),
  /// not O(N)): each agent's private price vector, the supply it planned
  /// at its last period rollover, the unsold leftover, and its cumulative
  /// request/offer/decline counters.
  obs::AllocatorSnapshot Snapshot() const override;

  /// Watchdog feed: prices and earnings of every instantiated agent, in
  /// node-id order (the population Snapshot() reports, minus the clones
  /// of the supply vectors that make Snapshot() too heavy for a
  /// per-period cadence). Steady-state allocation-free: the probe's
  /// buffers are cleared and refilled in place.
  void FillMarketProbe(obs::metrics::MarketProbe* probe) const override;

  /// Market refresh hook. The nodes are autonomous, so their periods are
  /// *staggered*: agent i's boundaries sit at phase (i/N)*T within the
  /// global period. Each call rolls over every instantiated agent whose
  /// boundary has passed (EndPeriod price decay + BeginPeriod re-solving
  /// eq. 4), which makes fresh supply appear continuously instead of in
  /// one synchronized burst. Call this at a granularity finer than T (the
  /// federation's market tick); OnPeriodEnd is a no-op.
  void OnPeriodStart(util::VTime now) override;
  void OnPeriodEnd(util::VTime now) override;

  /// Crash-with-state-loss recovery: the node's agent is rebuilt from the
  /// cost model and the configured QaNtConfig defaults — its learned price
  /// vector, debt and earnings are gone, exactly as if the process had
  /// restarted from its configuration file. The agent's staggered period
  /// phase is preserved so the restart does not re-synchronize the market.
  void OnNodeRestart(catalog::NodeId node, util::VTime now) override;

  /// Enables the fork-join fast paths: the per-arrival bid scan and the
  /// per-tick rollover chunk the agent range and fan the chunks out on
  /// `runner`. Exactness is by construction — each agent's OnRequest /
  /// rollover touches only that agent's state (agents are autonomous, the
  /// whole point of the mechanism), chunks are contiguous id ranges, and
  /// chunk results are concatenated in chunk order, reproducing the
  /// sequential left-to-right order byte for byte at any concurrency.
  /// qa_lint's QA-SHD-002 pass holds the callbacks to that contract: a
  /// ParallelFor chunk lambda touching a cross-chunk aggregate
  /// (total_messages_, arrival_seq_, metrics_) is a finding.
  void SetTaskRunner(const util::TaskRunner* runner) override {
    runner_ = runner;
  }

  /// Wall-clock phase profiling of the mechanism's two internal stages:
  /// the staggered period rollover (OnPeriodStart) and the solicited-agent
  /// bid scan (Allocate). Side channel only — readings never influence the
  /// decision stream.
  void SetMetricsCollector(obs::metrics::Collector* collector) override {
    metrics_ = collector;
  }

  int num_nodes() const { return static_cast<int>(agents_.size()); }
  const SolicitationConfig& solicitation() const { return solicitation_; }
  /// Accessing an agent instantiates it (caught up to the market tick) if
  /// no solicitation has reached it yet.
  const market::QaNtAgent& agent(catalog::NodeId node) const {
    return const_cast<QaNtAllocator*>(this)->EnsureAgent(node);
  }
  market::QaNtAgent& mutable_agent(catalog::NodeId node) {
    return EnsureAgent(node);
  }

  /// Null unless the plan passed at construction is hierarchical.
  const ClusterMarket* cluster_market() const {
    return cluster_market_.get();
  }

 private:
  /// Builds a fresh default-state agent for `node` (instantiation and
  /// crash/restart recovery share this).
  std::unique_ptr<market::QaNtAgent> MakeAgent(catalog::NodeId node) const;

  /// Two-tier dispatch of one arrival (see class comment on the ctor's
  /// cluster_plan): top-tier cluster routing, then the flat tier-2
  /// auction over the chosen cluster's members.
  AllocationDecision AllocateHierarchical(const workload::Arrival& arrival,
                                          const AllocationContext& context);

  /// Shared tier-2/flat engine: scans solicited_ (bids via OnRequest),
  /// picks the best offer, sends accept/reject notifications, and returns
  /// the winner (kNoNode when everyone declined). `*asked` receives the
  /// number of online nodes actually contacted.
  catalog::NodeId ScanAndSettle(const AllocationContext& context, int k,
                                int* asked);

  /// Returns the agent of `node`, instantiating it on first contact and
  /// replaying every period rollover up to the last market tick — which
  /// leaves it byte-identical to an agent that had existed (idle) since
  /// t=0, because an uncontacted agent's state is a pure function of its
  /// rollover count.
  market::QaNtAgent& EnsureAgent(catalog::NodeId node);

  const query::CostModel* cost_model_;
  util::VDuration period_;
  market::QaNtConfig config_;
  OfferSelection selection_;
  SolicitationConfig solicitation_;
  uint64_t seed_;
  /// Arrivals allocated so far; arrival i's sampling stream is seeded with
  /// MixSeed(seed_, i), a pure function of (seed, arrival index).
  uint64_t arrival_seq_ = 0;
  /// Time of the most recent market tick — how far EnsureAgent must roll a
  /// newly instantiated agent forward.
  util::VTime last_rollover_now_ = 0;
  CandidateIndex candidates_;
  /// One slot per node; null until the node is first contacted.
  std::vector<std::unique_ptr<market::QaNtAgent>> agents_;
  /// Next boundary time of each agent's own (staggered) period.
  std::vector<util::VTime> next_refresh_;
  /// Fork-join runner for the bid scan / rollover (null = sequential).
  const util::TaskRunner* runner_ = nullptr;
  /// Phase-profiling collector (null = no probes).
  obs::metrics::Collector* metrics_ = nullptr;
  /// Top tier of the two-tier market; null when the plan is flat.
  std::unique_ptr<ClusterMarket> cluster_market_;
  /// How the cluster market reads live member supply (bound once; no
  /// per-publish allocation).
  ClusterMarket::RemainingFn remaining_view_;
  /// Scratch buffers reused across arrivals (no hot-path allocation).
  std::vector<catalog::NodeId> solicited_;
  std::vector<catalog::NodeId> top_solicited_;
  std::vector<catalog::NodeId> offers_;
  /// Per-chunk scratch of the parallel bid scan.
  std::vector<std::vector<catalog::NodeId>> chunk_offers_;
  std::vector<int> chunk_asked_;
};

}  // namespace qa::allocation

#endif  // QAMARKET_ALLOCATION_QA_NT_ALLOCATOR_H_
