#ifndef QAMARKET_ALLOCATION_QA_NT_ALLOCATOR_H_
#define QAMARKET_ALLOCATION_QA_NT_ALLOCATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "allocation/allocator.h"
#include "market/qa_nt.h"

namespace qa::allocation {

/// The paper's mechanism, packaged behind the Allocator interface: one
/// QaNtAgent per server node; an arriving query is broadcast to the nodes
/// able to evaluate its class, each agent independently offers or declines
/// per its private prices/supply, and the client accepts the offer with the
/// lowest estimated execution time. If every agent declines, the query is
/// resubmitted in the next time period (decision.node == kNoNode).
class QaNtAllocator : public Allocator {
 public:
  /// How the client picks among the offering nodes.
  enum class OfferSelection {
    /// Best estimated execution time (the paper's §3.3 semantics).
    kCheapest,
    /// The offering node with the least cumulative earnings — the
    /// "equitable allocation" extension of the paper's future work (§6):
    /// equalize the utility (virtual value earned) of all nodes.
    kEquitable,
  };

  /// Builds one agent per node of `cost_model` with period budget
  /// `period`. The cost model pointer must outlive the allocator.
  QaNtAllocator(const query::CostModel* cost_model, util::VDuration period,
                market::QaNtConfig config = {},
                OfferSelection selection = OfferSelection::kCheapest);

  std::string name() const override { return "QA-NT"; }
  MechanismProperties properties() const override;

  AllocationDecision Allocate(const workload::Arrival& arrival,
                              const AllocationContext& context) override;

  /// Full market introspection: every agent's private price vector, the
  /// supply it planned at its last period rollover, the unsold leftover,
  /// and its cumulative request/offer/decline counters.
  obs::AllocatorSnapshot Snapshot() const override;

  /// Market refresh hook. The nodes are autonomous, so their periods are
  /// *staggered*: agent i's boundaries sit at phase (i/N)*T within the
  /// global period. Each call rolls over every agent whose boundary has
  /// passed (EndPeriod price decay + BeginPeriod re-solving eq. 4), which
  /// makes fresh supply appear continuously instead of in one synchronized
  /// burst. Call this at a granularity finer than T (the federation's
  /// market tick); OnPeriodEnd is a no-op.
  void OnPeriodStart(util::VTime now) override;
  void OnPeriodEnd(util::VTime now) override;

  /// Crash-with-state-loss recovery: the node's agent is rebuilt from the
  /// cost model and the configured QaNtConfig defaults — its learned price
  /// vector, debt and earnings are gone, exactly as if the process had
  /// restarted from its configuration file. The agent's staggered period
  /// phase is preserved so the restart does not re-synchronize the market.
  void OnNodeRestart(catalog::NodeId node, util::VTime now) override;

  int num_nodes() const { return static_cast<int>(agents_.size()); }
  const market::QaNtAgent& agent(catalog::NodeId node) const {
    return *agents_[static_cast<size_t>(node)];
  }
  market::QaNtAgent& mutable_agent(catalog::NodeId node) {
    return *agents_[static_cast<size_t>(node)];
  }

 private:
  /// Builds a fresh default-state agent for `node` (construction and
  /// crash/restart recovery share this).
  std::unique_ptr<market::QaNtAgent> MakeAgent(catalog::NodeId node) const;

  const query::CostModel* cost_model_;
  util::VDuration period_;
  market::QaNtConfig config_;
  OfferSelection selection_;
  std::vector<std::unique_ptr<market::QaNtAgent>> agents_;
  /// Next boundary time of each agent's own (staggered) period.
  std::vector<util::VTime> next_refresh_;
};

}  // namespace qa::allocation

#endif  // QAMARKET_ALLOCATION_QA_NT_ALLOCATOR_H_
