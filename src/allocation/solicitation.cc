#include "allocation/solicitation.h"

#include <algorithm>
#include <string>

namespace qa::allocation {

std::string_view SolicitationPolicyName(SolicitationPolicy policy) {
  switch (policy) {
    case SolicitationPolicy::kBroadcast:
      return "broadcast";
    case SolicitationPolicy::kUniformSample:
      return "uniform-sample";
    case SolicitationPolicy::kStratifiedSample:
      return "stratified-sample";
  }
  return "broadcast";
}

bool ParseSolicitationPolicy(std::string_view name,
                             SolicitationPolicy* policy) {
  if (name == "broadcast") {
    *policy = SolicitationPolicy::kBroadcast;
    return true;
  }
  if (name == "uniform-sample" || name == "uniform") {
    *policy = SolicitationPolicy::kUniformSample;
    return true;
  }
  if (name == "stratified-sample" || name == "stratified") {
    *policy = SolicitationPolicy::kStratifiedSample;
    return true;
  }
  return false;
}

util::Status SolicitationConfig::Validate() const {
  if (sampled() && fanout < 1) {
    return util::Status::InvalidArgument(
        "solicitation: " + std::string(SolicitationPolicyName(policy)) +
        " requires fanout >= 1, got " + std::to_string(fanout));
  }
  return util::Status::OK();
}

CandidateIndex::CandidateIndex(const query::CostModel& cost_model) {
  int num_classes = cost_model.num_classes();
  int num_nodes = cost_model.num_nodes();
  by_id_.resize(static_cast<size_t>(num_classes));
  by_cost_.resize(static_cast<size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) {
    std::vector<catalog::NodeId>& ids = by_id_[static_cast<size_t>(k)];
    for (catalog::NodeId j = 0; j < num_nodes; ++j) {
      if (cost_model.CanEvaluate(k, j)) ids.push_back(j);
    }
    std::vector<catalog::NodeId>& by_cost =
        by_cost_[static_cast<size_t>(k)];
    by_cost = ids;
    std::stable_sort(by_cost.begin(), by_cost.end(),
                     [&](catalog::NodeId a, catalog::NodeId b) {
                       return cost_model.Cost(k, a) < cost_model.Cost(k, b);
                     });
  }
}

CandidateIndex::CandidateIndex(
    const query::CostModel& cost_model,
    const std::vector<catalog::NodeId>& members) {
  int num_classes = cost_model.num_classes();
  // The candidate lists keep ascending id order regardless of how the
  // cluster plan happens to list its members.
  std::vector<catalog::NodeId> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  by_id_.resize(static_cast<size_t>(num_classes));
  by_cost_.resize(static_cast<size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) {
    std::vector<catalog::NodeId>& ids = by_id_[static_cast<size_t>(k)];
    for (catalog::NodeId j : sorted) {
      if (cost_model.CanEvaluate(k, j)) ids.push_back(j);
    }
    std::vector<catalog::NodeId>& by_cost =
        by_cost_[static_cast<size_t>(k)];
    by_cost = ids;
    std::stable_sort(by_cost.begin(), by_cost.end(),
                     [&](catalog::NodeId a, catalog::NodeId b) {
                       return cost_model.Cost(k, a) < cost_model.Cost(k, b);
                     });
  }
}

int SolicitNodes(const SolicitationConfig& config,
                 const CandidateIndex& candidates, query::QueryClassId k,
                 util::SplitMix64 stream,
                 std::vector<catalog::NodeId>* out) {
  out->clear();
  const std::vector<catalog::NodeId>& by_id = candidates.ById(k);
  size_t n = by_id.size();
  // Tiny-federation clamp: a fanout covering every candidate is exactly a
  // broadcast, including the absence of any random draw.
  size_t d = config.sampled()
                 ? std::min(static_cast<size_t>(config.fanout), n)
                 : n;
  if (d == n) {
    out->assign(by_id.begin(), by_id.end());
    return static_cast<int>(out->size());
  }

  if (config.policy == SolicitationPolicy::kUniformSample) {
    // Floyd's O(d) sampling of d distinct indices out of [0, n). The
    // membership test is a linear scan of the (small, <= d) sample — no
    // unordered container, no allocation beyond the caller's buffer.
    for (size_t j = n - d; j < n; ++j) {
      catalog::NodeId pick =
          by_id[static_cast<size_t>(stream.NextBounded(j + 1))];
      if (std::find(out->begin(), out->end(), pick) != out->end()) {
        pick = by_id[j];
      }
      out->push_back(pick);
    }
  } else {
    // Stratified: one uniform pick from each of d contiguous strata of
    // the cost-sorted candidate list. d <= n here, so every stratum is
    // non-empty.
    const std::vector<catalog::NodeId>& by_cost = candidates.ByCost(k);
    for (size_t i = 0; i < d; ++i) {
      size_t lo = i * n / d;
      size_t hi = (i + 1) * n / d;
      out->push_back(
          by_cost[lo + static_cast<size_t>(stream.NextBounded(hi - lo))]);
    }
  }
  // Solicit in id order, like the broadcast protocol: agent interactions
  // and best-offer tie-breaks stay independent of the draw order.
  std::sort(out->begin(), out->end());
  return static_cast<int>(out->size());
}

}  // namespace qa::allocation
