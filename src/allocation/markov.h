#ifndef QAMARKET_ALLOCATION_MARKOV_H_
#define QAMARKET_ALLOCATION_MARKOV_H_

#include <vector>

#include "allocation/allocator.h"
#include "util/rng.h"

namespace qa::allocation {

/// The stochastic allocator of Drenick & Smith [4], as characterized in
/// the paper's §4/Table 2: a centralized mechanism that, given the *exact*
/// per-class arrival rates and every node's execution costs up front,
/// precomputes an optimal static routing matrix from queueing theory and
/// then just samples it. Excellent on the static workload it was solved
/// for; it never adapts (the paper excludes it from the dynamic simulator
/// for exactly that reason), and it violates autonomy twice over (global
/// rates, global capabilities).
///
/// The routing matrix is computed by marginal-delay water-filling: each
/// quantum of a class's arrival rate goes to the feasible node whose M/M/1
/// response time (cost / (1 - utilization)) grows the least by taking it.
class MarkovAllocator : public Allocator {
 public:
  /// `rates_qps[k]` is the known arrival rate of class k (queries/second).
  MarkovAllocator(const query::CostModel* cost_model,
                  std::vector<double> rates_qps, uint64_t seed,
                  int quanta = 400);

  std::string name() const override { return "Markov"; }
  MechanismProperties properties() const override;
  AllocationDecision Allocate(const workload::Arrival& arrival,
                              const AllocationContext& context) override;

  /// The solved routing probability of class k to node j (for tests).
  double RoutingProbability(int k, catalog::NodeId j) const;

 private:
  void Solve(int quanta);

  const query::CostModel* cost_model_;
  std::vector<double> rates_;
  util::Rng rng_;
  /// quanta_[k][j] = number of rate quanta of class k routed to node j.
  std::vector<std::vector<int>> quanta_;
  std::vector<int> quanta_per_class_;
};

}  // namespace qa::allocation

#endif  // QAMARKET_ALLOCATION_MARKOV_H_
