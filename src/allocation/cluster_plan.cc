#include "allocation/cluster_plan.h"

#include <string>

namespace qa::allocation {

util::Status ClusterPlan::Validate(int num_nodes) const {
  if (!enabled) return util::Status::OK();
  if (clusters.empty()) {
    return util::Status::InvalidArgument(
        "cluster_plan: enabled plan has zero clusters");
  }
  std::vector<int> seen(static_cast<size_t>(num_nodes), 0);
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (catalog::NodeId node : clusters[c]) {
      if (node < 0 || node >= num_nodes) {
        return util::Status::OutOfRange(
            "cluster_plan: cluster " + std::to_string(c) + " member " +
            std::to_string(node) + " outside [0, " +
            std::to_string(num_nodes) + ")");
      }
      if (++seen[static_cast<size_t>(node)] > 1) {
        return util::Status::InvalidArgument(
            "cluster_plan: node " + std::to_string(node) +
            " appears in more than one cluster");
      }
    }
  }
  for (catalog::NodeId node = 0; node < num_nodes; ++node) {
    if (seen[static_cast<size_t>(node)] == 0) {
      return util::Status::InvalidArgument(
          "cluster_plan: node " + std::to_string(node) +
          " belongs to no cluster");
    }
  }
  util::Status top_status = top.Validate();
  if (!top_status.ok()) {
    return util::Status(top_status.code(),
                        "cluster_plan top tier: " + top_status.message());
  }
  return util::Status::OK();
}

ClusterPlan ClusterPlan::Uniform(int num_nodes, int num_clusters,
                                 int top_fanout) {
  ClusterPlan plan;
  plan.enabled = true;
  if (num_clusters < 1) num_clusters = 1;
  plan.clusters.resize(static_cast<size_t>(num_clusters));
  for (int c = 0; c < num_clusters; ++c) {
    // Contiguous near-equal blocks: cluster c owns [c*N/C, (c+1)*N/C).
    catalog::NodeId begin = static_cast<catalog::NodeId>(
        static_cast<int64_t>(num_nodes) * c / num_clusters);
    catalog::NodeId end = static_cast<catalog::NodeId>(
        static_cast<int64_t>(num_nodes) * (c + 1) / num_clusters);
    std::vector<catalog::NodeId>& members =
        plan.clusters[static_cast<size_t>(c)];
    members.reserve(static_cast<size_t>(end - begin));
    for (catalog::NodeId node = begin; node < end; ++node) {
      members.push_back(node);
    }
  }
  if (top_fanout > 0) {
    plan.top.policy = SolicitationPolicy::kUniformSample;
    plan.top.fanout = top_fanout;
  } else {
    plan.top.policy = SolicitationPolicy::kBroadcast;
    plan.top.fanout = 0;
  }
  return plan;
}

}  // namespace qa::allocation
