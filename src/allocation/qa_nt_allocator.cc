#include "allocation/qa_nt_allocator.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics/collector.h"

namespace qa::allocation {

QaNtAllocator::QaNtAllocator(const query::CostModel* cost_model,
                             util::VDuration period,
                             market::QaNtConfig config,
                             OfferSelection selection,
                             SolicitationConfig solicitation, uint64_t seed,
                             ClusterPlan cluster_plan)
    : cost_model_(cost_model),
      period_(period),
      config_(config),
      selection_(selection),
      solicitation_(solicitation),
      seed_(seed),
      candidates_(*cost_model) {
  assert(cost_model_ != nullptr);
  int num_nodes = cost_model_->num_nodes();
  agents_.resize(static_cast<size_t>(num_nodes));
  next_refresh_.reserve(static_cast<size_t>(num_nodes));
  for (catalog::NodeId i = 0; i < num_nodes; ++i) {
    // Autonomous nodes run unsynchronized periods: spread the first
    // boundary of agent i across [T/N, T]. The schedule exists for every
    // node from t=0 even though the agent itself is built lazily.
    next_refresh_.push_back(period_ * (i + 1) / std::max(num_nodes, 1));
  }
  // A single-cluster plan is structurally the flat market, so it runs the
  // flat code path — that degenerate identity is exactly what the
  // hierarchy equivalence tests pin down, and it means enabling the plan
  // can never change a federation that has nothing to cluster.
  if (cluster_plan.hierarchical()) {
    cluster_market_ = std::make_unique<ClusterMarket>(
        cost_model_, std::move(cluster_plan), config_, period_);
    remaining_view_ =
        [this](catalog::NodeId node) -> const market::QuantityVector* {
      const auto& agent = agents_[static_cast<size_t>(node)];
      return agent != nullptr ? &agent->remaining_supply() : nullptr;
    };
  }
}

QaNtAllocator::~QaNtAllocator() = default;

std::unique_ptr<market::QaNtAgent> QaNtAllocator::MakeAgent(
    catalog::NodeId node) const {
  int num_classes = cost_model_->num_classes();
  std::vector<util::VDuration> unit_costs(static_cast<size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) {
    util::VDuration c = cost_model_->Cost(k, node);
    unit_costs[static_cast<size_t>(k)] =
        c == query::kInfeasibleCost
            ? market::CapacitySupplySet::kCannotEvaluate
            : c;
  }
  auto agent = std::make_unique<market::QaNtAgent>(
      node, std::move(unit_costs), period_, config_);
  agent->BeginPeriod();
  return agent;
}

market::QaNtAgent& QaNtAllocator::EnsureAgent(catalog::NodeId node) {
  size_t i = static_cast<size_t>(node);
  assert(i < agents_.size());
  if (agents_[i] == nullptr) {
    agents_[i] = MakeAgent(node);
    // Replay the rollovers the agent would have performed had it existed
    // since t=0. Only boundaries up to the last market *tick* are rolled
    // (not up to the current arrival time): an eagerly built agent also
    // rolls exclusively at tick times, and matching that exactly is what
    // keeps lazy instantiation byte-identical to the eager protocol.
    while (next_refresh_[i] <= last_rollover_now_) {
      agents_[i]->EndPeriod();
      agents_[i]->BeginPeriod();
      next_refresh_[i] += period_;
    }
  }
  return *agents_[i];
}

MechanismProperties QaNtAllocator::properties() const {
  MechanismProperties p;
  p.distributed = true;
  p.handles_dynamic_workload = true;
  // QA-NT restricts the set of *offering* nodes instead of pinning the
  // query; distributed query optimizers can still split the query among
  // offerers, so there is no conflict (Table 2).
  p.conflicts_with_query_optimization = false;
  p.respects_autonomy = true;
  return p;
}

namespace {

/// Below this many solicited nodes a fork-join dispatch costs more than
/// the scan itself; the sequential loop also remains the semantics
/// reference the chunked scan must reproduce exactly.
constexpr size_t kParallelScanThreshold = 192;
/// Minimum nodes per chunk, so tiny tails do not become pool tasks.
constexpr size_t kMinChunk = 64;

}  // namespace

/// Salts the top tier's per-arrival sampling stream so its draws never
/// alias the tier-2 member sampling made for the same arrival.
constexpr uint64_t kTopTierSeedSalt = 0x746965722d746f70ULL;  // "tier-top"

AllocationDecision QaNtAllocator::Allocate(const workload::Arrival& arrival,
                                           const AllocationContext& context) {
  if (cluster_market_ != nullptr) {
    return AllocateHierarchical(arrival, context);
  }
  AllocationDecision decision;
  int k = arrival.class_id;

  decision.solicited = SolicitNodes(
      solicitation_, candidates_, k,
      util::SplitMix64(util::MixSeed(seed_, arrival_seq_++)), &solicited_);

  int asked = 0;
  decision.node = ScanAndSettle(context, k, &asked);
  // Request + offer/decline reply per asked node, plus the final accept.
  decision.messages = 2 * asked + 1;
  total_messages_ += decision.messages;
  return decision;
}

AllocationDecision QaNtAllocator::AllocateHierarchical(
    const workload::Arrival& arrival, const AllocationContext& context) {
  AllocationDecision decision;
  int k = arrival.class_id;
  uint64_t seq = arrival_seq_++;

  // Tier 1: solicit cluster sub-mediators on the aggregate-supply market.
  // Each offers iff its published-aggregate ledger still shows supply for
  // the class; the query routes to the offer with the highest *supply
  // density* — remaining aggregate per unit of quoted cost. Routing on the
  // quote alone would funnel every arrival into the fastest cluster until
  // its ledger drained, burning a retry per mis-route; density is the
  // commodity this tier actually trades (how much eq.-4 supply the quoted
  // price buys), so plentiful clusters absorb load before hot ones
  // over-promise. Ties (exact density equality) break toward the
  // earliest-solicited cluster via the strict > below — a pure function
  // of the per-arrival solicitation draw, so byte-deterministic.
  decision.clusters_solicited = SolicitNodes(
      cluster_market_->plan().top, cluster_market_->cluster_candidates(), k,
      util::SplitMix64(util::MixSeed(seed_ ^ kTopTierSeedSalt, seq)),
      &top_solicited_);
  int best_cluster = -1;
  double best_density = 0.0;
  int fallback_cluster = -1;
  for (catalog::NodeId c : top_solicited_) {
    cluster_market_->EnsureActive(c, remaining_view_);
    if (!cluster_market_->agent(c).OnSolicited(k)) {
      // An empty ledger is a worst-possible offer, not a refusal: the
      // first feasible decliner (solicitation order — a fresh uniform
      // draw per arrival, so load spreads) backstops the round when every
      // ledger is drained. Member-tier admission, which knows the real
      // budgets, then settles it like a flat round would.
      if (fallback_cluster < 0 &&
          cluster_market_->Quote(c, k) != query::kInfeasibleCost) {
        fallback_cluster = c;
      }
      continue;
    }
    double density =
        static_cast<double>(cluster_market_->agent(c).remaining()[k]) /
        static_cast<double>(cluster_market_->Quote(c, k));
    if (best_cluster < 0 || density > best_density) {
      best_cluster = c;
      best_density = density;
    }
  }
  if (best_cluster < 0) best_cluster = fallback_cluster;
  // Solicitation + quote/decline reply per contacted sub-mediator.
  decision.messages = 2 * decision.clusters_solicited;
  if (best_cluster < 0) {
    // No solicited cluster can evaluate this class at all; the client
    // resubmits next period, like an all-decline flat round.
    total_messages_ += decision.messages;
    return decision;
  }
  decision.cluster = best_cluster;

  // Tier 2: the ordinary QA-NT auction among the chosen cluster's
  // members, on the same per-arrival stream the flat market would use.
  decision.solicited = SolicitNodes(
      solicitation_, cluster_market_->member_candidates(best_cluster), k,
      util::SplitMix64(util::MixSeed(seed_, seq)), &solicited_);
  int asked = 0;
  catalog::NodeId best = ScanAndSettle(context, k, &asked);
  decision.messages += 2 * asked + 1;
  total_messages_ += decision.messages;
  if (best == kNoNode) {
    // The ledger over-promised (members sold out / went offline since the
    // last publish): correct it so follow-up queries stop routing here.
    cluster_market_->agent(best_cluster).MarkExhausted(k);
    return decision;
  }
  cluster_market_->agent(best_cluster).OnSold(k);
  decision.node = best;
  return decision;
}

catalog::NodeId QaNtAllocator::ScanAndSettle(const AllocationContext& context,
                                             int k, int* asked_out) {
  offers_.clear();
  int asked = 0;
  [[maybe_unused]] int64_t scan_start = 0;
  QA_METRICS(metrics_) {
    // Chain from the federation's allocate-start reading (the
    // solicitation sampling above then counts as part of the scan — it
    // is the fan-out decision of the same stage). An absent mark means
    // this allocation fell outside the deterministic probe sample (see
    // kAllocProbeStride) and the scan goes untimed.
    scan_start = metrics_->TakePhaseMark();
  }
  if (runner_ != nullptr && runner_->concurrency() > 1 &&
      solicited_.size() >= kParallelScanThreshold) {
    // Chunked parallel bid scan. SolicitNodes fills solicited_ in
    // ascending id order, every agent's OnRequest touches only that
    // agent's own state (plus read-only shared config), and the chunk
    // offer lists are concatenated in chunk order below — so the offers_
    // this produces are byte-identical to the sequential loop in the else
    // branch, at any chunk count and any thread count.
    size_t chunks = std::min(
        static_cast<size_t>(runner_->concurrency()),
        (solicited_.size() + kMinChunk - 1) / kMinChunk);
    chunk_offers_.resize(chunks);
    chunk_asked_.assign(chunks, 0);
    size_t per_chunk = (solicited_.size() + chunks - 1) / chunks;
    runner_->ParallelFor(
        static_cast<int>(chunks), [&](int chunk) {
          size_t c = static_cast<size_t>(chunk);
          size_t begin = c * per_chunk;
          size_t end = std::min(begin + per_chunk, solicited_.size());
          std::vector<catalog::NodeId>& local = chunk_offers_[c];
          local.clear();
          int asked_here = 0;
          for (size_t i = begin; i < end; ++i) {
            catalog::NodeId j = solicited_[i];
            if (!context.NodeOnline(j)) continue;
            ++asked_here;
            if (EnsureAgent(j).OnRequest(k)) local.push_back(j);
          }
          chunk_asked_[c] = asked_here;
        });
    for (size_t c = 0; c < chunks; ++c) {
      asked += chunk_asked_[c];
      offers_.insert(offers_.end(), chunk_offers_[c].begin(),
                     chunk_offers_[c].end());
    }
  } else {
    for (catalog::NodeId j : solicited_) {
      // An offline node's agent is simply unreachable: the request times
      // out and no offer (or price move) happens. Autonomy makes failure
      // handling free — the market routes around dead nodes by itself.
      if (!context.NodeOnline(j)) continue;
      ++asked;
      if (EnsureAgent(j).OnRequest(k)) offers_.push_back(j);
    }
  }
  QA_METRICS(metrics_) {
    if (scan_start != 0) {
      metrics_->RecordPhase(obs::metrics::Phase::kBidScan,
                            util::MonotonicClock::NowNanos() - scan_start,
                            obs::metrics::kAllocProbeStride);
    }
  }
  *asked_out = asked;
  if (offers_.empty()) return kNoNode;  // resubmitted next period

  catalog::NodeId best = offers_[0];
  for (catalog::NodeId j : offers_) {
    if (selection_ == OfferSelection::kEquitable) {
      if (agents_[static_cast<size_t>(j)]->earnings() <
          agents_[static_cast<size_t>(best)]->earnings()) {
        best = j;
      }
    } else if (cost_model_->Cost(k, j) < cost_model_->Cost(k, best)) {
      best = j;
    }
  }
  // Accept/reject notifications touch disjoint agents, so under broadcast
  // (offers ~ N) they chunk out on the runner just like the scan; the
  // winner is already fixed, so the interleaving cannot matter.
  if (runner_ != nullptr && runner_->concurrency() > 1 &&
      offers_.size() >= kParallelScanThreshold) {
    size_t chunks =
        std::min(static_cast<size_t>(runner_->concurrency()),
                 (offers_.size() + kMinChunk - 1) / kMinChunk);
    size_t per_chunk = (offers_.size() + chunks - 1) / chunks;
    runner_->ParallelFor(static_cast<int>(chunks), [&](int chunk) {
      size_t begin = static_cast<size_t>(chunk) * per_chunk;
      size_t end = std::min(begin + per_chunk, offers_.size());
      for (size_t i = begin; i < end; ++i) {
        catalog::NodeId j = offers_[i];
        if (j == best) {
          agents_[static_cast<size_t>(j)]->OnOfferAccepted(k);
        } else {
          agents_[static_cast<size_t>(j)]->OnOfferRejected(k);
        }
      }
    });
  } else {
    for (catalog::NodeId j : offers_) {
      if (j == best) {
        agents_[static_cast<size_t>(j)]->OnOfferAccepted(k);
      } else {
        agents_[static_cast<size_t>(j)]->OnOfferRejected(k);
      }
    }
  }
  return best;
}

obs::AllocatorSnapshot QaNtAllocator::Snapshot() const {
  obs::AllocatorSnapshot snapshot;
  snapshot.mechanism = name();
  snapshot.probe_messages = total_messages_;
  for (const auto& agent : agents_) {
    if (agent == nullptr) continue;  // never contacted: no market state yet
    obs::AgentStateSnapshot state;
    state.node = agent->node();
    state.prices = agent->prices().values();
    const auto& planned = agent->planned_supply().values();
    const auto& remaining = agent->remaining_supply().values();
    state.planned_supply.assign(planned.begin(), planned.end());
    state.remaining_supply.assign(remaining.begin(), remaining.end());
    const market::QaNtAgentStats& stats = agent->stats();
    state.requests_seen = stats.requests_seen;
    state.offers_made = stats.offers_made;
    state.offers_accepted = stats.offers_accepted;
    state.declines_no_supply = stats.declines_no_supply;
    state.periods = stats.periods;
    state.debt_us = agent->debt();
    state.remaining_budget_us = agent->remaining_budget();
    state.earnings = agent->earnings();
    snapshot.agents.push_back(std::move(state));
  }
  if (cluster_market_ != nullptr) {
    // Per-tier introspection: every *activated* cluster's top-market seat
    // (O(contacted clusters), matching the lazy-agent story one tier up).
    for (int c = 0; c < cluster_market_->num_clusters(); ++c) {
      if (!cluster_market_->active(c)) continue;
      const market::ClusterSupplyAgent& seat = cluster_market_->agent(c);
      obs::ClusterStateSnapshot state;
      state.cluster = c;
      state.members = static_cast<int>(
          cluster_market_->plan().clusters[static_cast<size_t>(c)].size());
      state.published = seat.published().values();
      state.remaining = seat.remaining().values();
      state.sold = seat.sold();
      const market::ClusterSupplyStats& stats = seat.stats();
      state.publishes = stats.publishes;
      state.top_requests = stats.top_requests;
      state.top_offers = stats.top_offers;
      state.top_declines = stats.top_declines;
      state.exhausted_marks = stats.exhausted_marks;
      snapshot.clusters.push_back(std::move(state));
    }
  }
  return snapshot;
}

void QaNtAllocator::FillMarketProbe(obs::metrics::MarketProbe* probe) const {
  probe->Clear();
  probe->num_classes = cost_model_->num_classes();
  for (const auto& agent : agents_) {
    if (agent == nullptr) continue;  // never contacted: no market state yet
    const auto& prices = agent->prices().values();
    probe->prices.insert(probe->prices.end(), prices.begin(), prices.end());
    probe->earnings.push_back(agent->earnings());
  }
}

void QaNtAllocator::OnPeriodStart(util::VTime now) {
  // Chain from the federation's tick-start reading; an absent mark means
  // this tick fell outside the deterministic probe sample (see
  // kTickProbeStride) and the rollover goes untimed. OnPeriodEnd is a
  // no-op, so the chained start matches the rollover's real start.
  [[maybe_unused]] int64_t roll_start = 0;
  QA_METRICS(metrics_) { roll_start = metrics_->TakePhaseMark(); }
  // Record the tick *before* rolling: EnsureAgent replays rollovers for
  // lazily built agents up to exactly this time.
  last_rollover_now_ = now;
  auto roll_range = [this, now](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (agents_[i] == nullptr) continue;
      while (next_refresh_[i] <= now) {
        agents_[i]->EndPeriod();
        agents_[i]->BeginPeriod();
        next_refresh_[i] += period_;
      }
    }
  };
  // The batched per-tick rollover: each agent's rollover is a pure
  // function of its own state (EndPeriod decay + BeginPeriod re-solve),
  // so contiguous id chunks run concurrently without any cross-agent
  // ordering to preserve.
  if (runner_ != nullptr && runner_->concurrency() > 1 &&
      agents_.size() >= kParallelScanThreshold) {
    size_t chunks =
        std::min(static_cast<size_t>(runner_->concurrency()),
                 (agents_.size() + kMinChunk - 1) / kMinChunk);
    size_t per_chunk = (agents_.size() + chunks - 1) / chunks;
    runner_->ParallelFor(static_cast<int>(chunks), [&](int chunk) {
      size_t begin = static_cast<size_t>(chunk) * per_chunk;
      roll_range(begin, std::min(begin + per_chunk, agents_.size()));
    });
  } else {
    roll_range(0, agents_.size());
  }
  if (cluster_market_ != nullptr) {
    // Sub-mediators publish after their members rolled: the aggregate a
    // cluster trades this period is the members' post-rollover supply.
    // Strictly sequential on the mediator lane — no cross-chunk state.
    cluster_market_->OnTick(now, remaining_view_);
  }
  QA_METRICS(metrics_) {
    if (roll_start != 0) {
      metrics_->RecordPhase(obs::metrics::Phase::kRollover,
                            util::MonotonicClock::NowNanos() - roll_start,
                            obs::metrics::kTickProbeStride);
    }
  }
}

void QaNtAllocator::OnPeriodEnd(util::VTime now) {
  // Rollovers are driven entirely by OnPeriodStart (staggered per agent).
  (void)now;
}

void QaNtAllocator::OnNodeRestart(catalog::NodeId node, util::VTime now) {
  size_t i = static_cast<size_t>(node);
  assert(i < agents_.size());
  // A restart instantiates the agent even if it was never contacted — the
  // rebuilt process is running from its configuration file either way, and
  // this matches the eager protocol's post-restart state exactly.
  agents_[i] = MakeAgent(node);
  // Keep the agent's staggered phase: its next boundary is the first one
  // of its original schedule that lies strictly after the restart.
  util::VTime phase = period_ * (node + 1) / std::max(num_nodes(), 1);
  util::VTime next = phase;
  if (now >= phase) {
    next = phase + ((now - phase) / period_ + 1) * period_;
  }
  next_refresh_[i] = next;
}

}  // namespace qa::allocation
