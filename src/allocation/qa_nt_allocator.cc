#include "allocation/qa_nt_allocator.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics/collector.h"

namespace qa::allocation {

QaNtAllocator::QaNtAllocator(const query::CostModel* cost_model,
                             util::VDuration period,
                             market::QaNtConfig config,
                             OfferSelection selection,
                             SolicitationConfig solicitation, uint64_t seed)
    : cost_model_(cost_model),
      period_(period),
      config_(config),
      selection_(selection),
      solicitation_(solicitation),
      seed_(seed),
      candidates_(*cost_model) {
  assert(cost_model_ != nullptr);
  int num_nodes = cost_model_->num_nodes();
  agents_.resize(static_cast<size_t>(num_nodes));
  next_refresh_.reserve(static_cast<size_t>(num_nodes));
  for (catalog::NodeId i = 0; i < num_nodes; ++i) {
    // Autonomous nodes run unsynchronized periods: spread the first
    // boundary of agent i across [T/N, T]. The schedule exists for every
    // node from t=0 even though the agent itself is built lazily.
    next_refresh_.push_back(period_ * (i + 1) / std::max(num_nodes, 1));
  }
}

std::unique_ptr<market::QaNtAgent> QaNtAllocator::MakeAgent(
    catalog::NodeId node) const {
  int num_classes = cost_model_->num_classes();
  std::vector<util::VDuration> unit_costs(static_cast<size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) {
    util::VDuration c = cost_model_->Cost(k, node);
    unit_costs[static_cast<size_t>(k)] =
        c == query::kInfeasibleCost
            ? market::CapacitySupplySet::kCannotEvaluate
            : c;
  }
  auto agent = std::make_unique<market::QaNtAgent>(
      node, std::move(unit_costs), period_, config_);
  agent->BeginPeriod();
  return agent;
}

market::QaNtAgent& QaNtAllocator::EnsureAgent(catalog::NodeId node) {
  size_t i = static_cast<size_t>(node);
  assert(i < agents_.size());
  if (agents_[i] == nullptr) {
    agents_[i] = MakeAgent(node);
    // Replay the rollovers the agent would have performed had it existed
    // since t=0. Only boundaries up to the last market *tick* are rolled
    // (not up to the current arrival time): an eagerly built agent also
    // rolls exclusively at tick times, and matching that exactly is what
    // keeps lazy instantiation byte-identical to the eager protocol.
    while (next_refresh_[i] <= last_rollover_now_) {
      agents_[i]->EndPeriod();
      agents_[i]->BeginPeriod();
      next_refresh_[i] += period_;
    }
  }
  return *agents_[i];
}

MechanismProperties QaNtAllocator::properties() const {
  MechanismProperties p;
  p.distributed = true;
  p.handles_dynamic_workload = true;
  // QA-NT restricts the set of *offering* nodes instead of pinning the
  // query; distributed query optimizers can still split the query among
  // offerers, so there is no conflict (Table 2).
  p.conflicts_with_query_optimization = false;
  p.respects_autonomy = true;
  return p;
}

namespace {

/// Below this many solicited nodes a fork-join dispatch costs more than
/// the scan itself; the sequential loop also remains the semantics
/// reference the chunked scan must reproduce exactly.
constexpr size_t kParallelScanThreshold = 192;
/// Minimum nodes per chunk, so tiny tails do not become pool tasks.
constexpr size_t kMinChunk = 64;

}  // namespace

AllocationDecision QaNtAllocator::Allocate(const workload::Arrival& arrival,
                                           const AllocationContext& context) {
  AllocationDecision decision;
  int k = arrival.class_id;

  decision.solicited = SolicitNodes(
      solicitation_, candidates_, k,
      util::SplitMix64(util::MixSeed(seed_, arrival_seq_++)), &solicited_);

  offers_.clear();
  int asked = 0;
  [[maybe_unused]] int64_t scan_start = 0;
  QA_METRICS(metrics_) {
    // Chain from the federation's allocate-start reading (the
    // solicitation sampling above then counts as part of the scan — it
    // is the fan-out decision of the same stage). An absent mark means
    // this allocation fell outside the deterministic probe sample (see
    // kAllocProbeStride) and the scan goes untimed.
    scan_start = metrics_->TakePhaseMark();
  }
  if (runner_ != nullptr && runner_->concurrency() > 1 &&
      solicited_.size() >= kParallelScanThreshold) {
    // Chunked parallel bid scan. SolicitNodes fills solicited_ in
    // ascending id order, every agent's OnRequest touches only that
    // agent's own state (plus read-only shared config), and the chunk
    // offer lists are concatenated in chunk order below — so the offers_
    // this produces are byte-identical to the sequential loop in the else
    // branch, at any chunk count and any thread count.
    size_t chunks = std::min(
        static_cast<size_t>(runner_->concurrency()),
        (solicited_.size() + kMinChunk - 1) / kMinChunk);
    chunk_offers_.resize(chunks);
    chunk_asked_.assign(chunks, 0);
    size_t per_chunk = (solicited_.size() + chunks - 1) / chunks;
    runner_->ParallelFor(
        static_cast<int>(chunks), [&](int chunk) {
          size_t c = static_cast<size_t>(chunk);
          size_t begin = c * per_chunk;
          size_t end = std::min(begin + per_chunk, solicited_.size());
          std::vector<catalog::NodeId>& local = chunk_offers_[c];
          local.clear();
          int asked_here = 0;
          for (size_t i = begin; i < end; ++i) {
            catalog::NodeId j = solicited_[i];
            if (!context.NodeOnline(j)) continue;
            ++asked_here;
            if (EnsureAgent(j).OnRequest(k)) local.push_back(j);
          }
          chunk_asked_[c] = asked_here;
        });
    for (size_t c = 0; c < chunks; ++c) {
      asked += chunk_asked_[c];
      offers_.insert(offers_.end(), chunk_offers_[c].begin(),
                     chunk_offers_[c].end());
    }
  } else {
    for (catalog::NodeId j : solicited_) {
      // An offline node's agent is simply unreachable: the request times
      // out and no offer (or price move) happens. Autonomy makes failure
      // handling free — the market routes around dead nodes by itself.
      if (!context.NodeOnline(j)) continue;
      ++asked;
      if (EnsureAgent(j).OnRequest(k)) offers_.push_back(j);
    }
  }
  QA_METRICS(metrics_) {
    if (scan_start != 0) {
      metrics_->RecordPhase(obs::metrics::Phase::kBidScan,
                            util::MonotonicClock::NowNanos() - scan_start,
                            obs::metrics::kAllocProbeStride);
    }
  }
  // Request + offer/decline reply per asked node, plus the final accept.
  decision.messages = 2 * asked + 1;
  total_messages_ += decision.messages;
  if (offers_.empty()) return decision;  // resubmitted next period

  catalog::NodeId best = offers_[0];
  for (catalog::NodeId j : offers_) {
    if (selection_ == OfferSelection::kEquitable) {
      if (agents_[static_cast<size_t>(j)]->earnings() <
          agents_[static_cast<size_t>(best)]->earnings()) {
        best = j;
      }
    } else if (cost_model_->Cost(k, j) < cost_model_->Cost(k, best)) {
      best = j;
    }
  }
  // Accept/reject notifications touch disjoint agents, so under broadcast
  // (offers ~ N) they chunk out on the runner just like the scan; the
  // winner is already fixed, so the interleaving cannot matter.
  if (runner_ != nullptr && runner_->concurrency() > 1 &&
      offers_.size() >= kParallelScanThreshold) {
    size_t chunks =
        std::min(static_cast<size_t>(runner_->concurrency()),
                 (offers_.size() + kMinChunk - 1) / kMinChunk);
    size_t per_chunk = (offers_.size() + chunks - 1) / chunks;
    runner_->ParallelFor(static_cast<int>(chunks), [&](int chunk) {
      size_t begin = static_cast<size_t>(chunk) * per_chunk;
      size_t end = std::min(begin + per_chunk, offers_.size());
      for (size_t i = begin; i < end; ++i) {
        catalog::NodeId j = offers_[i];
        if (j == best) {
          agents_[static_cast<size_t>(j)]->OnOfferAccepted(k);
        } else {
          agents_[static_cast<size_t>(j)]->OnOfferRejected(k);
        }
      }
    });
  } else {
    for (catalog::NodeId j : offers_) {
      if (j == best) {
        agents_[static_cast<size_t>(j)]->OnOfferAccepted(k);
      } else {
        agents_[static_cast<size_t>(j)]->OnOfferRejected(k);
      }
    }
  }
  decision.node = best;
  return decision;
}

obs::AllocatorSnapshot QaNtAllocator::Snapshot() const {
  obs::AllocatorSnapshot snapshot;
  snapshot.mechanism = name();
  snapshot.probe_messages = total_messages_;
  for (const auto& agent : agents_) {
    if (agent == nullptr) continue;  // never contacted: no market state yet
    obs::AgentStateSnapshot state;
    state.node = agent->node();
    state.prices = agent->prices().values();
    const auto& planned = agent->planned_supply().values();
    const auto& remaining = agent->remaining_supply().values();
    state.planned_supply.assign(planned.begin(), planned.end());
    state.remaining_supply.assign(remaining.begin(), remaining.end());
    const market::QaNtAgentStats& stats = agent->stats();
    state.requests_seen = stats.requests_seen;
    state.offers_made = stats.offers_made;
    state.offers_accepted = stats.offers_accepted;
    state.declines_no_supply = stats.declines_no_supply;
    state.periods = stats.periods;
    state.debt_us = agent->debt();
    state.remaining_budget_us = agent->remaining_budget();
    state.earnings = agent->earnings();
    snapshot.agents.push_back(std::move(state));
  }
  return snapshot;
}

void QaNtAllocator::FillMarketProbe(obs::metrics::MarketProbe* probe) const {
  probe->Clear();
  probe->num_classes = cost_model_->num_classes();
  for (const auto& agent : agents_) {
    if (agent == nullptr) continue;  // never contacted: no market state yet
    const auto& prices = agent->prices().values();
    probe->prices.insert(probe->prices.end(), prices.begin(), prices.end());
    probe->earnings.push_back(agent->earnings());
  }
}

void QaNtAllocator::OnPeriodStart(util::VTime now) {
  // Chain from the federation's tick-start reading; an absent mark means
  // this tick fell outside the deterministic probe sample (see
  // kTickProbeStride) and the rollover goes untimed. OnPeriodEnd is a
  // no-op, so the chained start matches the rollover's real start.
  [[maybe_unused]] int64_t roll_start = 0;
  QA_METRICS(metrics_) { roll_start = metrics_->TakePhaseMark(); }
  // Record the tick *before* rolling: EnsureAgent replays rollovers for
  // lazily built agents up to exactly this time.
  last_rollover_now_ = now;
  auto roll_range = [this, now](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (agents_[i] == nullptr) continue;
      while (next_refresh_[i] <= now) {
        agents_[i]->EndPeriod();
        agents_[i]->BeginPeriod();
        next_refresh_[i] += period_;
      }
    }
  };
  // The batched per-tick rollover: each agent's rollover is a pure
  // function of its own state (EndPeriod decay + BeginPeriod re-solve),
  // so contiguous id chunks run concurrently without any cross-agent
  // ordering to preserve.
  if (runner_ != nullptr && runner_->concurrency() > 1 &&
      agents_.size() >= kParallelScanThreshold) {
    size_t chunks =
        std::min(static_cast<size_t>(runner_->concurrency()),
                 (agents_.size() + kMinChunk - 1) / kMinChunk);
    size_t per_chunk = (agents_.size() + chunks - 1) / chunks;
    runner_->ParallelFor(static_cast<int>(chunks), [&](int chunk) {
      size_t begin = static_cast<size_t>(chunk) * per_chunk;
      roll_range(begin, std::min(begin + per_chunk, agents_.size()));
    });
  } else {
    roll_range(0, agents_.size());
  }
  QA_METRICS(metrics_) {
    if (roll_start != 0) {
      metrics_->RecordPhase(obs::metrics::Phase::kRollover,
                            util::MonotonicClock::NowNanos() - roll_start,
                            obs::metrics::kTickProbeStride);
    }
  }
}

void QaNtAllocator::OnPeriodEnd(util::VTime now) {
  // Rollovers are driven entirely by OnPeriodStart (staggered per agent).
  (void)now;
}

void QaNtAllocator::OnNodeRestart(catalog::NodeId node, util::VTime now) {
  size_t i = static_cast<size_t>(node);
  assert(i < agents_.size());
  // A restart instantiates the agent even if it was never contacted — the
  // rebuilt process is running from its configuration file either way, and
  // this matches the eager protocol's post-restart state exactly.
  agents_[i] = MakeAgent(node);
  // Keep the agent's staggered phase: its next boundary is the first one
  // of its original schedule that lies strictly after the restart.
  util::VTime phase = period_ * (node + 1) / std::max(num_nodes(), 1);
  util::VTime next = phase;
  if (now >= phase) {
    next = phase + ((now - phase) / period_ + 1) * period_;
  }
  next_refresh_[i] = next;
}

}  // namespace qa::allocation
