#include "allocation/baselines.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace qa::allocation {

namespace {

/// Returns the cached id-ordered feasible-node list of class `k`, building
/// the per-class index on the allocator's first arrival. Replaces the old
/// per-arrival CostModel::FeasibleNodes call, which allocated a fresh
/// vector and scanned CanEvaluate over all N nodes on every query.
const std::vector<catalog::NodeId>& FeasibleNodes(
    CandidateIndex* candidates, const AllocationContext& context,
    query::QueryClassId k) {
  if (candidates->num_classes() == 0) {
    *candidates = CandidateIndex(context.cost_model());
  }
  return candidates->ById(k);
}

}  // namespace

// ---------------------------------------------------------------- Random

MechanismProperties RandomAllocator::properties() const {
  MechanismProperties p;
  p.distributed = true;
  p.handles_dynamic_workload = true;
  p.conflicts_with_query_optimization = true;
  p.respects_autonomy = true;
  return p;
}

AllocationDecision RandomAllocator::Allocate(
    const workload::Arrival& arrival, const AllocationContext& context) {
  AllocationDecision decision;
  const std::vector<catalog::NodeId>& nodes =
      FeasibleNodes(&candidates_, context, arrival.class_id);
  if (nodes.empty()) return decision;
  decision.node = nodes[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(nodes.size()) - 1))];
  decision.messages = 1;  // send the query to the chosen node
  total_messages_ += decision.messages;
  return decision;
}

// ------------------------------------------------------------ RoundRobin

MechanismProperties RoundRobinAllocator::properties() const {
  MechanismProperties p;
  p.distributed = true;
  p.handles_dynamic_workload = true;
  p.conflicts_with_query_optimization = true;
  p.respects_autonomy = true;
  return p;
}

AllocationDecision RoundRobinAllocator::Allocate(
    const workload::Arrival& arrival, const AllocationContext& context) {
  AllocationDecision decision;
  const std::vector<catalog::NodeId>& nodes =
      FeasibleNodes(&candidates_, context, arrival.class_id);
  if (nodes.empty()) return decision;
  size_t k = static_cast<size_t>(arrival.class_id);
  if (next_index_.size() <= k) next_index_.resize(k + 1, 0);
  decision.node = nodes[next_index_[k] % nodes.size()];
  next_index_[k] = (next_index_[k] + 1) % nodes.size();
  decision.messages = 1;
  total_messages_ += decision.messages;
  return decision;
}

// ---------------------------------------------------------------- Greedy

MechanismProperties GreedyAllocator::properties() const {
  MechanismProperties p;
  p.distributed = true;
  p.handles_dynamic_workload = true;
  p.conflicts_with_query_optimization = true;
  p.respects_autonomy = false;  // clients unilaterally assign queries
  p.reads_node_state = true;    // probes every node's live backlog
  return p;
}

AllocationDecision GreedyAllocator::Allocate(
    const workload::Arrival& arrival, const AllocationContext& context) {
  AllocationDecision decision;
  const std::vector<catalog::NodeId>& nodes =
      FeasibleNodes(&candidates_, context, arrival.class_id);
  if (nodes.empty()) return decision;

  double best_completion = std::numeric_limits<double>::infinity();
  for (catalog::NodeId j : nodes) {
    if (!context.NodeOnline(j)) continue;  // probe timed out
    double completion =
        static_cast<double>(context.NodeBacklog(j)) +
        static_cast<double>(context.cost_model().Cost(arrival.class_id, j));
    if (randomization_ > 0.0) {
      completion *=
          rng_.UniformReal(1.0 - randomization_, 1.0 + randomization_);
    }
    if (completion < best_completion) {
      best_completion = completion;
      decision.node = j;
    }
  }
  // One probe round-trip per feasible node plus the final assignment.
  decision.messages = 2 * static_cast<int>(nodes.size()) + 1;
  total_messages_ += decision.messages;
  return decision;
}

// ----------------------------------------------------------- GreedyBlind

MechanismProperties BlindGreedyAllocator::properties() const {
  MechanismProperties p;
  p.distributed = true;
  p.handles_dynamic_workload = true;
  p.conflicts_with_query_optimization = true;
  p.respects_autonomy = false;  // clients unilaterally assign queries
  return p;
}

AllocationDecision BlindGreedyAllocator::Allocate(
    const workload::Arrival& arrival, const AllocationContext& context) {
  AllocationDecision decision;
  const std::vector<catalog::NodeId>& nodes =
      FeasibleNodes(&candidates_, context, arrival.class_id);
  if (nodes.empty()) return decision;

  double best_time = std::numeric_limits<double>::infinity();
  for (catalog::NodeId j : nodes) {
    if (!context.NodeOnline(j)) continue;  // estimate request timed out
    double estimate =
        static_cast<double>(context.cost_model().Cost(arrival.class_id, j));
    if (randomization_ > 0.0) {
      estimate *=
          rng_.UniformReal(1.0 - randomization_, 1.0 + randomization_);
    }
    if (estimate < best_time) {
      best_time = estimate;
      decision.node = j;
    }
  }
  // One estimate round-trip per feasible node plus the final assignment.
  decision.messages = 2 * static_cast<int>(nodes.size()) + 1;
  total_messages_ += decision.messages;
  return decision;
}

// ------------------------------------------------------------- TwoProbes

MechanismProperties TwoRandomProbesAllocator::properties() const {
  MechanismProperties p;
  p.distributed = true;
  p.handles_dynamic_workload = true;
  p.conflicts_with_query_optimization = true;
  p.respects_autonomy = false;  // probes node load
  p.reads_node_state = true;    // samples two nodes' live backlogs
  return p;
}

void TwoRandomProbesAllocator::MaybeRefresh(
    const AllocationContext& context) {
  if (snapshot_time_ >= 0 &&
      context.now() - snapshot_time_ < staleness_) {
    return;
  }
  load_board_.assign(static_cast<size_t>(context.num_nodes()), 0);
  for (catalog::NodeId j = 0; j < context.num_nodes(); ++j) {
    load_board_[static_cast<size_t>(j)] = context.NodeBacklog(j);
  }
  snapshot_time_ = context.now();
}

AllocationDecision TwoRandomProbesAllocator::Allocate(
    const workload::Arrival& arrival, const AllocationContext& context) {
  AllocationDecision decision;
  const std::vector<catalog::NodeId>& nodes =
      FeasibleNodes(&candidates_, context, arrival.class_id);
  if (nodes.empty()) return decision;
  MaybeRefresh(context);
  if (nodes.size() == 1) {
    decision.node = nodes[0];
    decision.messages = 1;
    total_messages_ += decision.messages;
    return decision;
  }
  int n = static_cast<int>(nodes.size());
  std::vector<int> picks = rng_.Sample(n, 2);
  catalog::NodeId a = nodes[static_cast<size_t>(picks[0])];
  catalog::NodeId b = nodes[static_cast<size_t>(picks[1])];
  decision.node = load_board_[static_cast<size_t>(a)] <=
                          load_board_[static_cast<size_t>(b)]
                      ? a
                      : b;
  decision.messages = 2 * 2 + 1;  // two probe round-trips + assignment
  total_messages_ += decision.messages;
  return decision;
}

// ----------------------------------------------------------------- BNQRD

MechanismProperties BnqrdAllocator::properties() const {
  MechanismProperties p;
  p.distributed = true;
  p.handles_dynamic_workload = true;
  p.conflicts_with_query_optimization = true;
  p.respects_autonomy = false;  // central load collection
  p.reads_node_state = true;    // collects cumulative usage reports
  return p;
}

AllocationDecision BnqrdAllocator::Allocate(
    const workload::Arrival& arrival, const AllocationContext& context) {
  AllocationDecision decision;
  const std::vector<catalog::NodeId>& nodes =
      FeasibleNodes(&candidates_, context, arrival.class_id);
  if (nodes.empty()) return decision;

  // Spread node-independent resource usage evenly: the chosen node is the
  // one with the least *cumulative* assigned work (the assignment that
  // minimizes the post-assignment unbalance factor). Deliberately blind to
  // how fast each node drains its usage — the flaw the paper calls out on
  // heterogeneous federations.
  double best_work = std::numeric_limits<double>::infinity();
  for (catalog::NodeId j : nodes) {
    if (!context.NodeOnline(j)) continue;  // no usage report
    double w = context.NodeCumulativeWork(j);
    if (w < best_work) {
      best_work = w;
      decision.node = j;
    }
  }
  // Every node periodically reports its load to the coordinator; charge
  // one report per feasible node plus the assignment message.
  decision.messages = static_cast<int>(nodes.size()) + 1;
  total_messages_ += decision.messages;
  return decision;
}

// -------------------------------------------------------- LeastImbalance

MechanismProperties LeastImbalanceAllocator::properties() const {
  MechanismProperties p;
  p.distributed = false;
  p.handles_dynamic_workload = true;
  p.conflicts_with_query_optimization = true;
  p.respects_autonomy = false;
  p.reads_node_state = true;  // recomputes global backlog imbalance
  return p;
}

AllocationDecision LeastImbalanceAllocator::Allocate(
    const workload::Arrival& arrival, const AllocationContext& context) {
  AllocationDecision decision;
  const std::vector<catalog::NodeId>& nodes =
      FeasibleNodes(&candidates_, context, arrival.class_id);
  if (nodes.empty()) return decision;

  double best_imbalance = std::numeric_limits<double>::infinity();
  for (catalog::NodeId candidate : nodes) {
    // Hypothetical backlogs after assigning the query to `candidate`.
    double max_load = 0.0;
    double min_load = std::numeric_limits<double>::infinity();
    for (catalog::NodeId j = 0; j < context.num_nodes(); ++j) {
      double load = static_cast<double>(context.NodeBacklog(j));
      if (j == candidate) {
        load += static_cast<double>(
            context.cost_model().Cost(arrival.class_id, candidate));
      }
      max_load = std::max(max_load, load);
      min_load = std::min(min_load, load);
    }
    double imbalance = max_load - min_load;
    if (imbalance < best_imbalance) {
      best_imbalance = imbalance;
      decision.node = candidate;
    }
  }
  decision.messages = 2 * context.num_nodes() + 1;
  total_messages_ += decision.messages;
  return decision;
}

}  // namespace qa::allocation
