#include "allocation/cluster_market.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "market/supply_set.h"

namespace qa::allocation {

namespace {

/// Presents the [class][cluster] quote matrix as a CostModel whose "nodes"
/// are clusters, so CandidateIndex builds the top tier's candidate lists
/// with the exact same code the flat market uses.
class ClusterQuoteModel : public query::CostModel {
 public:
  ClusterQuoteModel(int num_classes, int num_clusters,
                    const std::vector<util::VDuration>* quotes)
      : num_classes_(num_classes),
        num_clusters_(num_clusters),
        quotes_(quotes) {}

  int num_classes() const override { return num_classes_; }
  int num_nodes() const override { return num_clusters_; }
  util::VDuration Cost(query::QueryClassId k,
                       catalog::NodeId cluster) const override {
    return (*quotes_)[static_cast<size_t>(k) *
                          static_cast<size_t>(num_clusters_) +
                      static_cast<size_t>(cluster)];
  }

 private:
  int num_classes_;
  int num_clusters_;
  const std::vector<util::VDuration>* quotes_;
};

}  // namespace

ClusterMarket::ClusterMarket(const query::CostModel* cost_model,
                             ClusterPlan plan,
                             market::QaNtConfig agent_config,
                             util::VDuration period)
    : cost_model_(cost_model),
      plan_(std::move(plan)),
      agent_config_(agent_config),
      period_(period),
      next_publish_(period) {
  assert(cost_model_ != nullptr);
  int num_classes = cost_model_->num_classes();
  int num_clusters = plan_.num_clusters();
  node_cluster_.assign(static_cast<size_t>(cost_model_->num_nodes()), -1);
  quotes_.assign(static_cast<size_t>(num_classes) *
                     static_cast<size_t>(num_clusters),
                 query::kInfeasibleCost);
  for (int c = 0; c < num_clusters; ++c) {
    for (catalog::NodeId node : plan_.clusters[static_cast<size_t>(c)]) {
      node_cluster_[static_cast<size_t>(node)] = c;
      for (int k = 0; k < num_classes; ++k) {
        util::VDuration cost = cost_model_->Cost(k, node);
        util::VDuration& quote =
            quotes_[static_cast<size_t>(k) *
                        static_cast<size_t>(num_clusters) +
                    static_cast<size_t>(c)];
        quote = std::min(quote, cost);
      }
    }
  }
  ClusterQuoteModel quote_model(num_classes, num_clusters, &quotes_);
  cluster_candidates_ = CandidateIndex(quote_model);
  clusters_.reserve(static_cast<size_t>(num_clusters));
  for (int c = 0; c < num_clusters; ++c) {
    clusters_.emplace_back(market::ClusterSupplyAgent(c, num_classes));
  }
  default_plans_.resize(static_cast<size_t>(cost_model_->num_nodes()));
}

void ClusterMarket::EnsureActive(int cluster,
                                 const RemainingFn& remaining_of) {
  Cluster& state = clusters_[static_cast<size_t>(cluster)];
  if (state.active) return;
  const std::vector<catalog::NodeId>& members =
      plan_.clusters[static_cast<size_t>(cluster)];
  state.members = CandidateIndex(*cost_model_, members);
  int num_classes = cost_model_->num_classes();
  for (catalog::NodeId node : members) {
    std::vector<util::VDuration> unit_costs(
        static_cast<size_t>(num_classes));
    for (int k = 0; k < num_classes; ++k) {
      util::VDuration c = cost_model_->Cost(k, node);
      unit_costs[static_cast<size_t>(k)] =
          c == query::kInfeasibleCost
              ? market::CapacitySupplySet::kCannotEvaluate
              : c;
    }
    default_plans_[static_cast<size_t>(node)] = market::DefaultPlannedSupply(
        std::move(unit_costs), period_, agent_config_);
  }
  state.active = true;
  PublishCluster(cluster, remaining_of);
}

void ClusterMarket::OnTick(util::VTime now,
                           const RemainingFn& remaining_of) {
  if (now < next_publish_) return;
  for (int c = 0; c < num_clusters(); ++c) {
    if (clusters_[static_cast<size_t>(c)].active) {
      PublishCluster(c, remaining_of);
    }
  }
  while (next_publish_ <= now) next_publish_ += period_;
}

void ClusterMarket::PublishCluster(int cluster,
                                   const RemainingFn& remaining_of) {
  market::QuantityVector aggregate(cost_model_->num_classes());
  for (catalog::NodeId node :
       plan_.clusters[static_cast<size_t>(cluster)]) {
    const market::QuantityVector* live = remaining_of(node);
    aggregate +=
        live != nullptr ? *live : default_plans_[static_cast<size_t>(node)];
  }
  clusters_[static_cast<size_t>(cluster)].agent.Publish(aggregate);
}

}  // namespace qa::allocation
