#ifndef QAMARKET_ALLOCATION_ALLOCATOR_H_
#define QAMARKET_ALLOCATION_ALLOCATOR_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "obs/metrics/market_probe.h"
#include "obs/snapshot.h"
#include "query/cost_model.h"
#include "util/task_runner.h"
#include "util/vtime.h"
#include "workload/trace.h"

namespace qa::obs::metrics {
class Collector;
}  // namespace qa::obs::metrics

namespace qa::allocation {

inline constexpr catalog::NodeId kNoNode = -1;

/// Read-only view of the federation an allocation mechanism may consult.
///
/// Which parts a mechanism actually touches is the autonomy story of
/// Table 2: QA-NT only uses the cost model entries of the *offering* nodes
/// (public information exchanged in the offers), whereas Greedy/BNQRD/
/// two-probes read NodeBacklog — internal node state that a truly
/// autonomous node would not disclose.
class AllocationContext {
 public:
  virtual ~AllocationContext() = default;

  virtual int num_nodes() const = 0;
  virtual const query::CostModel& cost_model() const = 0;
  /// Total remaining execution time queued at `node` (its backlog), in
  /// microseconds. Disclosing this violates node autonomy.
  virtual util::VDuration NodeBacklog(catalog::NodeId node) const = 0;
  /// Outstanding work queued at `node` in node-independent units (the sum
  /// of each queued query's best-case cost over all nodes).
  virtual double NodeQueuedWork(catalog::NodeId node) const = 0;
  /// Cumulative work ever assigned to `node`, in the same units. This is
  /// the "CPU and I/O usage" notion BNQRD's unbalance factor spreads
  /// evenly — blind to how fast the node drains it. Autonomy-violating
  /// (central usage collection).
  virtual double NodeCumulativeWork(catalog::NodeId node) const = 0;
  virtual util::VTime now() const = 0;
  /// Whether `node` is currently reachable. Mechanisms that negotiate or
  /// probe get no reply from an offline node and must route around it;
  /// blind mechanisms (Random/RoundRobin) do not consult this and their
  /// assignments to dead nodes bounce at the network layer instead.
  virtual bool NodeOnline(catalog::NodeId /*node*/) const { return true; }
};

/// The outcome of one allocation attempt.
struct AllocationDecision {
  /// Chosen server, or kNoNode when every server declined (the client
  /// resubmits the query in the next time period — QA-NT semantics).
  catalog::NodeId node = kNoNode;
  /// Network messages this attempt cost (request/probe/offer/reply...).
  int messages = 0;
  /// Nodes the mediator solicited offers from for this attempt (the
  /// effective fanout; 0 for mechanisms that do not negotiate).
  int solicited = 0;
  /// Hierarchical market only: the cluster the top tier routed this
  /// attempt to (-1 under the flat market, or when every solicited
  /// cluster declined).
  int cluster = -1;
  /// Cluster sub-mediators the top tier solicited for this attempt (0
  /// under the flat market).
  int clusters_solicited = 0;
};

/// Static properties of a mechanism (columns of Table 2).
struct MechanismProperties {
  bool distributed = false;
  bool handles_dynamic_workload = false;
  /// Whether the mechanism physically pins a query to a single node and so
  /// conflicts with distributed query optimizers (Mariposa/SQPT) that want
  /// to split it (Table 2, "Conflict with query optimization").
  bool conflicts_with_query_optimization = false;
  bool respects_autonomy = false;
  /// Whether Allocate reads live node execution state from the context
  /// (NodeBacklog / NodeQueuedWork / NodeCumulativeWork). This is the
  /// autonomy story of Table 2 made operational for the sharded simulator:
  /// a mechanism that probes internal node state needs that state current
  /// at every allocation, which forces the mediator to synchronize with
  /// the node shards at zero lookahead — so the federation runs it on the
  /// inline (unsharded) path. Autonomy-respecting mechanisms (QA-NT) and
  /// blind ones (Random, RoundRobin) never read it, which is exactly what
  /// makes their runs shardable.
  bool reads_node_state = false;
};

/// A query-allocation mechanism: given an arriving query, pick the node
/// that will evaluate it (or decline).
class Allocator {
 public:
  virtual ~Allocator() = default;

  virtual std::string name() const = 0;
  virtual MechanismProperties properties() const = 0;

  /// Decides where `arrival` runs. Implementations may inspect the context
  /// (the simulator charges the disclosed information as messages).
  virtual AllocationDecision Allocate(const workload::Arrival& arrival,
                                      const AllocationContext& context) = 0;

  /// Period-boundary hooks (QA-NT runs its market period here; most
  /// baselines ignore them).
  virtual void OnPeriodStart(util::VTime now) { (void)now; }
  virtual void OnPeriodEnd(util::VTime now) { (void)now; }

  /// Failure-recovery hook: `node` crashed with loss of volatile state and
  /// has just come back up. Mechanisms that keep per-node learned state
  /// (QA-NT's private price vectors) reset that node to its configured
  /// defaults and re-learn it through ordinary market interaction;
  /// stateless baselines ignore the call and stay oblivious.
  virtual void OnNodeRestart(catalog::NodeId node, util::VTime now) {
    (void)node;
    (void)now;
  }

  /// Offers the mechanism a fork-join runner for intra-decision
  /// parallelism (the federation forwards its shard runner here). Purely
  /// an execution hint: implementations that use it must produce byte-
  /// identical results with or without it, at any concurrency (QA-NT's
  /// chunked bid scan keeps the sequential offer order by construction).
  /// nullptr (the default state) means run sequentially. The runner must
  /// outlive the allocator or be reset first.
  virtual void SetTaskRunner(const util::TaskRunner* runner) {
    (void)runner;
  }

  /// Offers the mechanism a metrics collector for wall-clock phase
  /// profiling of its internal stages (QA-NT times its period rollover and
  /// bid scan). Same side-channel contract as the collector itself:
  /// readings must never influence the decision stream. nullptr (the
  /// default state) disables the probes; the collector must outlive the
  /// allocator or be reset first.
  virtual void SetMetricsCollector(obs::metrics::Collector* collector) {
    (void)collector;
  }

  /// Fast-path cousin of Snapshot() for the per-period health watchdogs:
  /// refills `probe` in place with per-agent prices and earnings (see
  /// obs::metrics::MarketProbe for the layout and the why). Mechanisms
  /// without market state leave the probe cleared — the watchdogs then
  /// skip their price-based detectors. Called every global period, so
  /// implementations must not allocate in steady state.
  virtual void FillMarketProbe(obs::metrics::MarketProbe* probe) const {
    probe->Clear();
  }

  /// Introspection for the telemetry layer: what this mechanism can show
  /// of its internal market state. QA-NT overrides this with the full
  /// per-agent private price/supply vectors; the default (all baselines)
  /// reports the mechanism name and cumulative probe/message spend.
  /// Called off the allocation fast path (market-period cadence).
  virtual obs::AllocatorSnapshot Snapshot() const {
    obs::AllocatorSnapshot snapshot;
    snapshot.mechanism = name();
    snapshot.probe_messages = total_messages_;
    return snapshot;
  }

 protected:
  /// Implementations add every AllocationDecision::messages here so
  /// Snapshot() can report cumulative message spend.
  int64_t total_messages_ = 0;
};

}  // namespace qa::allocation

#endif  // QAMARKET_ALLOCATION_ALLOCATOR_H_
