#ifndef QAMARKET_ALLOCATION_CLUSTER_PLAN_H_
#define QAMARKET_ALLOCATION_CLUSTER_PLAN_H_

#include <vector>

#include "allocation/solicitation.h"
#include "catalog/catalog.h"
#include "util/status.h"

namespace qa::allocation {

/// Partition of the federation's nodes into clusters for the two-tier
/// hierarchical market: each cluster runs its own QA-NT sub-mediator over
/// its members, and a top-level market routes each query to a cluster by
/// trading the clusters' aggregate supply vectors. Disabled (the default)
/// means the classic flat single-mediator market; an enabled plan with a
/// single cluster is structurally flat too and reproduces it byte for
/// byte (the equivalence anchor of the hierarchy tests).
struct ClusterPlan {
  bool enabled = false;
  /// clusters[c] lists the member node ids of cluster c. When the plan is
  /// enabled, every node of the federation must appear in exactly one
  /// cluster; an empty cluster is legal (it simply never offers).
  std::vector<std::vector<catalog::NodeId>> clusters;
  /// Bounded-fanout solicitation reused at the top tier: how many cluster
  /// sub-mediators are asked for their aggregate quote per arrival.
  SolicitationConfig top;

  int num_clusters() const { return static_cast<int>(clusters.size()); }

  /// True when allocation actually runs the two-tier protocol. A
  /// single-cluster plan degenerates to the flat market and is executed
  /// as such (same code path, same bytes).
  bool hierarchical() const { return enabled && clusters.size() > 1; }

  /// A disabled plan is always valid (clusters/top are ignored). An
  /// enabled plan must name at least one cluster, place every node of
  /// [0, num_nodes) in exactly one cluster, keep every member id in
  /// range, and carry a valid top-tier solicitation config.
  util::Status Validate(int num_nodes) const;

  /// Convenience builder: `num_clusters` clusters of near-equal size over
  /// contiguous id blocks, top tier sampling `top_fanout` clusters
  /// uniformly per arrival (top_fanout <= 0 selects top-tier broadcast).
  static ClusterPlan Uniform(int num_nodes, int num_clusters,
                             int top_fanout);
};

}  // namespace qa::allocation

#endif  // QAMARKET_ALLOCATION_CLUSTER_PLAN_H_
