#ifndef QAMARKET_ALLOCATION_SOLICITATION_H_
#define QAMARKET_ALLOCATION_SOLICITATION_H_

#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "query/cost_model.h"
#include "util/rng.h"
#include "util/status.h"

namespace qa::allocation {

/// How a mediator picks the set of nodes it solicits offers from for one
/// arriving query (the QA-NT scale-out knob).
///
/// The paper's QA-NT broadcasts every request to every feasible node, so
/// messages and mediator CPU grow O(N) per query — its own Table 2 flags
/// this as the mechanism's main liability (~500 msgs/query at 100 nodes).
/// Bounded-fanout solicitation asks only d nodes per arrival, the
/// power-of-d-choices insight (Mitzenmacher): a small random fanout
/// captures most of the benefit of full information, and msgs/query stays
/// near-flat as the federation grows to thousands of nodes.
enum class SolicitationPolicy {
  /// Ask every feasible node (the paper's literal §3.3 protocol).
  kBroadcast,
  /// Ask `fanout` feasible nodes drawn uniformly without replacement.
  kUniformSample,
  /// Ask `fanout` feasible nodes, one drawn from each of `fanout`
  /// contiguous strata of the class's cost-sorted candidate list — always
  /// touches the cheap end *and* keeps pressure on the expensive end, so
  /// slow nodes keep receiving the price signals they learn from.
  kStratifiedSample,
};

std::string_view SolicitationPolicyName(SolicitationPolicy policy);
/// Returns false when `name` names no known policy.
bool ParseSolicitationPolicy(std::string_view name,
                             SolicitationPolicy* policy);

/// The solicitation knobs of a federation run, validated by
/// sim::ValidateConfig before a run starts.
struct SolicitationConfig {
  SolicitationPolicy policy = SolicitationPolicy::kBroadcast;
  /// Number of nodes asked per arrival (the d of power-of-d-choices).
  /// Sampled policies require d >= 1; on tiny federations
  /// (candidates < d) the effective fanout is clamped to the candidate
  /// count, which reproduces broadcast exactly. Ignored by kBroadcast.
  int fanout = 0;

  bool sampled() const { return policy != SolicitationPolicy::kBroadcast; }

  /// Rejects a sampled policy with fanout < 1. (fanout > num_nodes is
  /// legal — it clamps to broadcast semantics at allocation time.)
  util::Status Validate() const;
};

/// Per-class feasible-node candidate lists precomputed from a cost model,
/// so the per-arrival hot path never scans CanEvaluate over all N nodes.
///
/// Two orderings are kept per class: id order (the solicitation order of
/// the broadcast protocol, and what uniform samples are drawn from) and
/// cost order (what stratified sampling stratifies).
class CandidateIndex {
 public:
  CandidateIndex() = default;
  /// Builds both orderings for every class: O(K * N) once.
  explicit CandidateIndex(const query::CostModel& cost_model);
  /// Restriction of the index to `members` (a cluster sub-mediator's view
  /// of the federation): candidate lists contain only feasible nodes from
  /// `members`, in the same (id, cost-stable) orders as the full index.
  CandidateIndex(const query::CostModel& cost_model,
                 const std::vector<catalog::NodeId>& members);

  int num_classes() const { return static_cast<int>(by_id_.size()); }

  /// Feasible nodes of class `k` in node-id order.
  const std::vector<catalog::NodeId>& ById(query::QueryClassId k) const {
    return by_id_[static_cast<size_t>(k)];
  }
  /// Feasible nodes of class `k` sorted by (cost ascending, id ascending).
  const std::vector<catalog::NodeId>& ByCost(query::QueryClassId k) const {
    return by_cost_[static_cast<size_t>(k)];
  }

 private:
  std::vector<std::vector<catalog::NodeId>> by_id_;
  std::vector<std::vector<catalog::NodeId>> by_cost_;
};

/// Fills `out` with the node ids the mediator solicits for one arrival of
/// class `k`, in ascending id order, and returns the effective fanout
/// (== out->size()). `stream` must be a fresh per-arrival stream
/// (util::MixSeed of the run seed and the arrival counter) so the draw
/// depends only on (seed, arrival index). When the policy is broadcast —
/// or the clamped fanout covers every candidate — the full id-ordered
/// candidate list is copied and *no* random draw is made, which is what
/// makes `d >= candidates` byte-identical to broadcast.
int SolicitNodes(const SolicitationConfig& config,
                 const CandidateIndex& candidates, query::QueryClassId k,
                 util::SplitMix64 stream,
                 std::vector<catalog::NodeId>* out);

}  // namespace qa::allocation

#endif  // QAMARKET_ALLOCATION_SOLICITATION_H_
