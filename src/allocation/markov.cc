#include "allocation/markov.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace qa::allocation {

MarkovAllocator::MarkovAllocator(const query::CostModel* cost_model,
                                 std::vector<double> rates_qps,
                                 uint64_t seed, int quanta)
    : cost_model_(cost_model), rates_(std::move(rates_qps)), rng_(seed) {
  assert(cost_model_ != nullptr);
  assert(static_cast<int>(rates_.size()) == cost_model_->num_classes());
  Solve(quanta);
}

void MarkovAllocator::Solve(int quanta) {
  int K = cost_model_->num_classes();
  int I = cost_model_->num_nodes();
  quanta_.assign(static_cast<size_t>(K),
                 std::vector<int>(static_cast<size_t>(I), 0));
  quanta_per_class_.assign(static_cast<size_t>(K), 0);

  double total_rate = 0.0;
  for (double r : rates_) total_rate += r;
  if (total_rate <= 0.0) return;
  double rate_per_quantum = total_rate / quanta;

  // Node utilizations as quanta get placed.
  std::vector<double> utilization(static_cast<size_t>(I), 0.0);

  // Round-robin the classes while distributing each one's quanta, so no
  // class monopolizes the fast nodes during the fill.
  std::vector<double> rate_left = rates_;
  bool placed_any = true;
  while (placed_any) {
    placed_any = false;
    for (int k = 0; k < K; ++k) {
      if (rate_left[static_cast<size_t>(k)] < rate_per_quantum * 0.5) {
        continue;
      }
      rate_left[static_cast<size_t>(k)] -= rate_per_quantum;

      // Marginal M/M/1 delay of pushing this quantum onto node j:
      // cost_jk / (1 - rho_j'), where rho_j' includes the quantum.
      int best = -1;
      double best_delay = std::numeric_limits<double>::infinity();
      for (catalog::NodeId j = 0; j < I; ++j) {
        util::VDuration c = cost_model_->Cost(k, j);
        if (c == query::kInfeasibleCost) continue;
        double service_s = util::ToSeconds(c);
        double rho = utilization[static_cast<size_t>(j)] +
                     rate_per_quantum * service_s;
        double delay = rho < 0.98
                           ? service_s / (1.0 - rho)
                           : 1e6 * rho * service_s;  // saturated: spill
        if (delay < best_delay) {
          best_delay = delay;
          best = j;
        }
      }
      if (best < 0) continue;  // class evaluable nowhere
      utilization[static_cast<size_t>(best)] +=
          rate_per_quantum * util::ToSeconds(cost_model_->Cost(k, best));
      ++quanta_[static_cast<size_t>(k)][static_cast<size_t>(best)];
      ++quanta_per_class_[static_cast<size_t>(k)];
      placed_any = true;
    }
  }
}

MechanismProperties MarkovAllocator::properties() const {
  MechanismProperties p;
  p.distributed = false;                       // central solver
  p.handles_dynamic_workload = false;          // static routing matrix
  p.conflicts_with_query_optimization = true;  // pins whole queries
  p.respects_autonomy = false;                 // needs global knowledge
  return p;
}

double MarkovAllocator::RoutingProbability(int k, catalog::NodeId j) const {
  int total = quanta_per_class_[static_cast<size_t>(k)];
  if (total == 0) return 0.0;
  return static_cast<double>(
             quanta_[static_cast<size_t>(k)][static_cast<size_t>(j)]) /
         static_cast<double>(total);
}

AllocationDecision MarkovAllocator::Allocate(
    const workload::Arrival& arrival, const AllocationContext& context) {
  (void)context;
  AllocationDecision decision;
  int k = arrival.class_id;
  int total = quanta_per_class_[static_cast<size_t>(k)];
  if (total > 0) {
    // Sample the precomputed routing distribution.
    int64_t pick = rng_.UniformInt(0, total - 1);
    for (catalog::NodeId j = 0; j < cost_model_->num_nodes(); ++j) {
      pick -= quanta_[static_cast<size_t>(k)][static_cast<size_t>(j)];
      if (pick < 0) {
        decision.node = j;
        break;
      }
    }
  } else {
    // The solver saw zero rate for this class: fall back to the cheapest
    // feasible node.
    util::VDuration best = query::kInfeasibleCost;
    for (catalog::NodeId j = 0; j < cost_model_->num_nodes(); ++j) {
      util::VDuration c = cost_model_->Cost(k, j);
      if (c < best) {
        best = c;
        decision.node = j;
      }
    }
  }
  decision.messages = 1;  // routing is precomputed; just ship the query
  return decision;
}

}  // namespace qa::allocation
