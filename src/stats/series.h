#ifndef QAMARKET_STATS_SERIES_H_
#define QAMARKET_STATS_SERIES_H_

#include <cstddef>
#include <vector>

#include "util/vtime.h"

namespace qa::stats {

/// A single (time, value) observation.
struct Sample {
  util::VTime time = 0;
  double value = 0.0;
};

/// Append-only time series with fixed-width bucket aggregation, used to
/// produce the per-period curves in the paper's figures (e.g. queries
/// executed per half second in Fig. 5c).
class TimeSeries {
 public:
  void Add(util::VTime time, double value) { samples_.push_back({time, value}); }

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Sum of sample values whose time falls in [start, end).
  double SumInWindow(util::VTime start, util::VTime end) const;

  /// Count of samples whose time falls in [start, end).
  size_t CountInWindow(util::VTime start, util::VTime end) const;

  /// Splits [0, horizon) into buckets of width `bucket` and returns the sum
  /// of values per bucket.
  std::vector<double> BucketSums(util::VDuration bucket,
                                 util::VTime horizon) const;

  /// Same bucketing, but returns per-bucket sample counts.
  std::vector<size_t> BucketCounts(util::VDuration bucket,
                                   util::VTime horizon) const;

  /// Same bucketing, but returns per-bucket mean values (0 where empty).
  std::vector<double> BucketMeans(util::VDuration bucket,
                                  util::VTime horizon) const;

  /// Largest sample time, or 0 when empty.
  util::VTime MaxTime() const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace qa::stats

#endif  // QAMARKET_STATS_SERIES_H_
