#include "stats/series.h"

#include <algorithm>

namespace qa::stats {

double TimeSeries::SumInWindow(util::VTime start, util::VTime end) const {
  double sum = 0.0;
  for (const Sample& s : samples_) {
    if (s.time >= start && s.time < end) sum += s.value;
  }
  return sum;
}

size_t TimeSeries::CountInWindow(util::VTime start, util::VTime end) const {
  size_t count = 0;
  for (const Sample& s : samples_) {
    if (s.time >= start && s.time < end) ++count;
  }
  return count;
}

std::vector<double> TimeSeries::BucketSums(util::VDuration bucket,
                                           util::VTime horizon) const {
  size_t n = bucket > 0 ? static_cast<size_t>((horizon + bucket - 1) / bucket)
                        : 0;
  std::vector<double> sums(n, 0.0);
  for (const Sample& s : samples_) {
    if (s.time < 0 || s.time >= horizon) continue;
    sums[static_cast<size_t>(s.time / bucket)] += s.value;
  }
  return sums;
}

std::vector<size_t> TimeSeries::BucketCounts(util::VDuration bucket,
                                             util::VTime horizon) const {
  size_t n = bucket > 0 ? static_cast<size_t>((horizon + bucket - 1) / bucket)
                        : 0;
  std::vector<size_t> counts(n, 0);
  for (const Sample& s : samples_) {
    if (s.time < 0 || s.time >= horizon) continue;
    ++counts[static_cast<size_t>(s.time / bucket)];
  }
  return counts;
}

std::vector<double> TimeSeries::BucketMeans(util::VDuration bucket,
                                            util::VTime horizon) const {
  std::vector<double> sums = BucketSums(bucket, horizon);
  std::vector<size_t> counts = BucketCounts(bucket, horizon);
  for (size_t i = 0; i < sums.size(); ++i) {
    if (counts[i] > 0) sums[i] /= static_cast<double>(counts[i]);
  }
  return sums;
}

util::VTime TimeSeries::MaxTime() const {
  util::VTime max_t = 0;
  for (const Sample& s : samples_) max_t = std::max(max_t, s.time);
  return max_t;
}

}  // namespace qa::stats
