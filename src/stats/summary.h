#ifndef QAMARKET_STATS_SUMMARY_H_
#define QAMARKET_STATS_SUMMARY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace qa::stats {

/// Online accumulator for scalar samples (typically response times in ms).
class Summary {
 public:
  void Add(double value);

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double Mean() const;
  double StdDev() const;
  double Percentile(double p) const;

  const std::vector<double>& values() const { return values_; }

  /// "n=100 mean=12.3 p50=11.0 p95=30.1 max=44.0".
  std::string ToString() const;

 private:
  std::vector<double> values_;
  double sum_ = 0.0;
};

}  // namespace qa::stats

#endif  // QAMARKET_STATS_SUMMARY_H_
