#include "stats/summary.h"

#include <algorithm>
#include <cstdio>

#include "util/mathutil.h"

namespace qa::stats {

void Summary::Add(double value) {
  values_.push_back(value);
  sum_ += value;
}

double Summary::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::Mean() const { return util::Mean(values_); }

double Summary::StdDev() const { return util::StdDev(values_); }

double Summary::Percentile(double p) const {
  return util::Percentile(values_, p);
}

std::string Summary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.2f p50=%.2f p95=%.2f max=%.2f", count(), Mean(),
                Percentile(50), Percentile(95), max());
  return buf;
}

}  // namespace qa::stats
