#ifndef QAMARKET_EXEC_EXPERIMENT_RUNNER_H_
#define QAMARKET_EXEC_EXPERIMENT_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "allocation/allocator.h"
#include "query/cost_model.h"
#include "sim/federation.h"
#include "sim/metrics.h"
#include "workload/trace.h"

namespace qa::exec {

/// One cell of an experiment grid: everything needed to build a fresh
/// Federation + Allocator pair and run one trace through it.
///
/// The referenced cost model and trace are shared *read-only* across
/// concurrent runs (both are immutable after construction); all mutable
/// state — the allocator, the federation, the metrics — is created
/// per-run, so cells never interact and every cell is as deterministic as
/// a serial run.
struct RunSpec {
  /// Immutable cost oracle, shared across cells. Required.
  const query::CostModel* cost_model = nullptr;
  /// Mechanism name for allocation::CreateAllocator. Ignored when
  /// make_allocator is set. An unknown name aborts the process — a typo in
  /// a bench grid must not silently produce zero rows.
  std::string mechanism;
  /// Immutable arrival trace, shared across cells. Required.
  const workload::Trace* trace = nullptr;
  /// Market period T (configures both the allocator and the federation).
  util::VDuration period = 500 * util::kMillisecond;
  /// Seed for the allocator's private RNG.
  uint64_t seed = 0;
  /// Federation knobs. `config.period` is overwritten with `period`.
  sim::FederationConfig config;
  /// Optional factory overriding `mechanism` for custom allocators
  /// (ablations construct BlindGreedy/Markov/equitable QA-NT directly).
  /// Called once per run, on the worker thread.
  std::function<std::unique_ptr<allocation::Allocator>()> make_allocator;
  /// Optional post-run probe, called on the worker thread with the
  /// allocator the run used; its value lands in RunResult::probe (e.g. the
  /// earnings dispersion of QA-NT agents).
  std::function<double(const allocation::Allocator&)> probe;
};

/// What one grid cell produced.
struct RunResult {
  sim::SimMetrics metrics;
  /// Value of RunSpec::probe (0 when no probe was set).
  double probe = 0.0;
};

/// Builds the spec's allocator (aborting on an unknown mechanism name) and
/// runs its trace through a fresh Federation. This is the single funnel
/// every experiment goes through, serial or parallel.
RunResult RunSpecOnce(const RunSpec& spec);

/// Runs a grid of independent simulation cells on a fixed-size thread
/// pool, one Federation per worker, and returns results in *submission
/// order* — so tables and BENCH JSON built from the results are
/// byte-identical to a serial run regardless of thread count.
class ExperimentRunner {
 public:
  /// `threads` < 1 selects hardware_concurrency. threads() == 1 runs the
  /// specs inline on the calling thread (exactly today's serial behavior).
  explicit ExperimentRunner(int threads = 0)
      : threads_(ResolvedThreads(threads)) {}

  int threads() const { return threads_; }

  /// Runs every spec and returns one result per spec, index-aligned with
  /// `specs`. Rethrows the first exception any cell threw.
  std::vector<RunResult> Run(const std::vector<RunSpec>& specs) const;

 private:
  static int ResolvedThreads(int requested);

  int threads_;
};

}  // namespace qa::exec

#endif  // QAMARKET_EXEC_EXPERIMENT_RUNNER_H_
