#ifndef QAMARKET_EXEC_THREAD_POOL_H_
#define QAMARKET_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "util/task_runner.h"

namespace qa::exec {

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// Tasks are arbitrary void() callables; Submit returns a future that
/// becomes ready when the task finishes and carries any exception the task
/// threw (so callers can rethrow on their own thread). The destructor
/// drains the queue: every task already submitted still runs, then the
/// workers join.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`; it runs on some worker as soon as one is free.
  std::future<void> Submit(std::function<void()> fn);

  int size() const { return static_cast<int>(workers_.size()); }

  /// The number of threads `requested` resolves to: values < 1 mean "use
  /// hardware_concurrency" (itself clamped to >= 1 when unknown).
  static int ResolveThreadCount(int requested);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// util::TaskRunner backed by a ThreadPool: the bridge that lets the sim
/// and allocation layers (which only see the abstract TaskRunner) fan
/// work out onto exec's workers. ParallelFor submits every index as one
/// pool task and blocks until all futures resolve — the pool's queue
/// mutex establishes the happens-before edges the TaskRunner contract
/// promises. The pool is not owned and must outlive the runner.
class PoolRunner final : public util::TaskRunner {
 public:
  explicit PoolRunner(ThreadPool* pool) : pool_(pool) {}

  int concurrency() const override { return pool_->size(); }

  void ParallelFor(int n,
                   const std::function<void(int)>& fn) const override {
    if (n <= 0) return;
    if (n == 1) {  // no fan-out to pay for
      fn(0);
      return;
    }
    std::vector<std::future<void>> done;
    done.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      done.push_back(pool_->Submit([&fn, i] { fn(i); }));
    }
    for (std::future<void>& future : done) future.get();
  }

 private:
  ThreadPool* pool_;
};

}  // namespace qa::exec

#endif  // QAMARKET_EXEC_THREAD_POOL_H_
