#ifndef QAMARKET_EXEC_THREAD_POOL_H_
#define QAMARKET_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace qa::exec {

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// Tasks are arbitrary void() callables; Submit returns a future that
/// becomes ready when the task finishes and carries any exception the task
/// threw (so callers can rethrow on their own thread). The destructor
/// drains the queue: every task already submitted still runs, then the
/// workers join.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`; it runs on some worker as soon as one is free.
  std::future<void> Submit(std::function<void()> fn);

  int size() const { return static_cast<int>(workers_.size()); }

  /// The number of threads `requested` resolves to: values < 1 mean "use
  /// hardware_concurrency" (itself clamped to >= 1 when unknown).
  static int ResolveThreadCount(int requested);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace qa::exec

#endif  // QAMARKET_EXEC_THREAD_POOL_H_
