#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace qa::exec {

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested >= 1) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> result = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return result;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task catches the task's exception and stores it in the
    // future, so a throwing job can never take a worker down.
    task();
  }
}

}  // namespace qa::exec
