#include "exec/experiment_runner.h"

#include <cstdio>
#include <cstdlib>
#include <future>
#include <utility>

#include "allocation/factory.h"
#include "exec/thread_pool.h"

namespace qa::exec {

namespace {

std::unique_ptr<allocation::Allocator> MakeAllocator(const RunSpec& spec) {
  if (spec.make_allocator) return spec.make_allocator();
  allocation::AllocatorParams params;
  params.cost_model = spec.cost_model;
  params.period = spec.period;
  params.seed = spec.seed;
  params.solicitation = spec.config.solicitation;
  params.cluster_plan = spec.config.cluster_plan;
  std::unique_ptr<allocation::Allocator> allocator =
      allocation::CreateAllocator(spec.mechanism, params);
  if (allocator == nullptr) {
    // Fail fast: a typo'd mechanism name in a bench grid would otherwise
    // silently produce default-constructed (all-zero) rows.
    std::fprintf(stderr,
                 "FATAL: unknown allocation mechanism '%s' "
                 "(see allocation::AllMechanismNames)\n",
                 spec.mechanism.c_str());
    std::abort();
  }
  return allocator;
}

}  // namespace

RunResult RunSpecOnce(const RunSpec& spec) {
  if (spec.cost_model == nullptr || spec.trace == nullptr) {
    std::fprintf(stderr,
                 "FATAL: RunSpec needs both a cost_model and a trace\n");
    std::abort();
  }
  std::unique_ptr<allocation::Allocator> allocator = MakeAllocator(spec);
  sim::FederationConfig config = spec.config;
  config.period = spec.period;
  // Provenance for traced runs: the trace meta line records the seed.
  config.seed = static_cast<int64_t>(spec.seed);
  sim::Federation federation(spec.cost_model, allocator.get(), config);
  RunResult result;
  result.metrics = federation.Run(*spec.trace);
  if (spec.probe) result.probe = spec.probe(*allocator);
  return result;
}

int ExperimentRunner::ResolvedThreads(int requested) {
  return ThreadPool::ResolveThreadCount(requested);
}

std::vector<RunResult> ExperimentRunner::Run(
    const std::vector<RunSpec>& specs) const {
  std::vector<RunResult> results(specs.size());
  // Nested-parallelism budget: the thread budget is spent at exactly one
  // level. A grid of many cells parallelizes across cells (each run
  // internally serial); a single cell that asked for a sharded core gets
  // the whole pool as its intra-run fork-join runner instead. Never both —
  // S shard drains on each of T grid workers would oversubscribe the
  // machine T-fold, and a sharded run is byte-identical to its inline
  // twin anyway, so which level wins is purely a scheduling choice.
  if (threads_ > 1 && specs.size() == 1 && specs[0].config.shards > 1 &&
      specs[0].config.runner == nullptr) {
    ThreadPool pool(threads_);
    PoolRunner runner(&pool);
    RunSpec spec = specs[0];
    spec.config.runner = &runner;
    results[0] = RunSpecOnce(spec);
    return results;
  }
  if (threads_ <= 1 || specs.size() <= 1) {
    for (size_t i = 0; i < specs.size(); ++i) {
      results[i] = RunSpecOnce(specs[i]);
    }
    return results;
  }

  ThreadPool pool(threads_);
  std::vector<std::future<void>> done;
  done.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    // Each worker writes only its own pre-allocated slot; submission order
    // indexes the results, so ordering is independent of completion order.
    done.push_back(pool.Submit(
        [&specs, &results, i] { results[i] = RunSpecOnce(specs[i]); }));
  }
  for (std::future<void>& future : done) future.get();
  return results;
}

}  // namespace qa::exec
