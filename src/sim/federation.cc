#include "sim/federation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "market/market_sim.h"
#include "util/logging.h"

namespace qa::sim {

Federation::Federation(const query::CostModel* cost_model,
                       allocation::Allocator* allocator,
                       FederationConfig config)
    : cost_model_(cost_model), allocator_(allocator), config_(config) {
  assert(cost_model_ != nullptr);
  assert(allocator_ != nullptr);
  for (catalog::NodeId i = 0; i < cost_model_->num_nodes(); ++i) {
    nodes_.emplace_back(i);
  }
  best_cost_.resize(static_cast<size_t>(cost_model_->num_classes()), 0.0);
  for (int k = 0; k < cost_model_->num_classes(); ++k) {
    util::VDuration best = cost_model_->BestCost(k);
    best_cost_[static_cast<size_t>(k)] =
        best == query::kInfeasibleCost ? 0.0 : static_cast<double>(best);
  }
  cost_cache_.resize(static_cast<size_t>(cost_model_->num_classes()) *
                     nodes_.size());
  for (int k = 0; k < cost_model_->num_classes(); ++k) {
    for (catalog::NodeId j = 0; j < cost_model_->num_nodes(); ++j) {
      cost_cache_[static_cast<size_t>(k) * nodes_.size() +
                  static_cast<size_t>(j)] = cost_model_->Cost(k, j);
    }
  }
}

SimMetrics Federation::Run(const workload::Trace& trace) {
  metrics_ = SimMetrics();
  size_t num_classes = static_cast<size_t>(cost_model_->num_classes());
  metrics_.completions_per_class.resize(num_classes);
  metrics_.dropped_per_class.resize(num_classes);
  metrics_.retries_per_class.resize(num_classes);
  outstanding_ = static_cast<int64_t>(trace.size());
  ticks_ = 0;

  // While this run is active, log lines on this thread carry the current
  // virtual time (interleaved parallel runs stay attributable).
  util::ScopedVTimeClock log_clock(
      [](const void* ctx) {
        return static_cast<const EventQueue<SimEvent>*>(ctx)->now();
      },
      &events_);

  QA_OBS(config_.recorder) {
    obs::MetaRecord meta;
    meta.schema = obs::kTraceSchemaVersion;
    meta.mechanism = allocator_->name();
    meta.nodes = num_nodes();
    meta.classes = cost_model_->num_classes();
    meta.period_us = config_.period;
    meta.ticks_per_period = config_.market_tick_divisor;
    meta.seed = config_.seed;
    config_.recorder->Record(meta);
    EmitSnapshot();  // the market's initial prices, at t=0
  }

  // All arrivals live in the heap at once, plus one in-flight
  // deliver/complete event per node and the market tick: reserving here
  // makes steady-state scheduling allocation-free.
  events_.Reserve(trace.size() + nodes_.size() + 1);
  for (const workload::Arrival& arrival : trace.arrivals()) {
    events_.Schedule(
        arrival.time,
        SimEvent::MakeArrival({arrival, next_query_id_++, /*attempts=*/0}));
  }
  events_.Schedule(TickInterval(), SimEvent::MakeMarketTick());

  events_.RunAll([this](const SimEvent& event) { Dispatch(event); });

  metrics_.end_time = events_.now();
  for (const SimNode& node : nodes_) {
    metrics_.total_busy_time += node.busy_time();
    metrics_.node_last_idle.push_back(node.last_idle_at());
    metrics_.node_completed.push_back(node.completed());
  }
  return metrics_;
}

void Federation::Dispatch(const SimEvent& event) {
  switch (event.kind) {
    case SimEvent::Kind::kArrival:
      HandleQuery(event.pending);
      break;
    case SimEvent::Kind::kDeliver:
      DeliverTask(event.node, event.task);
      break;
    case SimEvent::Kind::kComplete:
      CompleteTask(event.node, event.task);
      break;
    case SimEvent::Kind::kMarketTick:
      MarketTick();
      break;
  }
}

bool Federation::NodeOnline(catalog::NodeId node) const {
  for (const Outage& outage : config_.outages) {
    if (outage.node == node && events_.now() >= outage.from &&
        events_.now() < outage.until) {
      return false;
    }
  }
  return true;
}

void Federation::HandleQuery(SimEvent::Pending pending) {
  QA_OBS(config_.recorder) {
    if (pending.attempts == 0) {
      obs::EventRecord event;
      event.kind = obs::EventRecord::Kind::kArrival;
      event.t_us = events_.now();
      event.query = pending.id;
      event.class_id = pending.arrival.class_id;
      event.origin = pending.arrival.origin;
      config_.recorder->Record(event);
      config_.recorder->Count("arrivals");
    }
  }

  allocation::AllocationDecision decision =
      allocator_->Allocate(pending.arrival, *this);
  metrics_.messages += decision.messages;

  // A mechanism that cannot observe liveness (Random/RoundRobin) may pick
  // an unreachable node: the query bounces at the network layer and is
  // resubmitted like any other failed placement.
  if (decision.node != allocation::kNoNode &&
      !NodeOnline(decision.node)) {
    ++metrics_.bounced;
    QA_OBS(config_.recorder) {
      obs::EventRecord event;
      event.kind = obs::EventRecord::Kind::kBounce;
      event.t_us = events_.now();
      event.query = pending.id;
      event.class_id = pending.arrival.class_id;
      event.node = decision.node;
      event.attempts = pending.attempts;
      config_.recorder->Record(event);
      config_.recorder->Count("bounces");
    }
    decision.node = allocation::kNoNode;
  }

  if (decision.node == allocation::kNoNode) {
    ++pending.attempts;
    if (pending.attempts > config_.max_retries) {
      ++metrics_.dropped;
      ++metrics_.dropped_per_class[static_cast<size_t>(
          pending.arrival.class_id)];
      --outstanding_;
      QA_OBS(config_.recorder) {
        obs::EventRecord event;
        event.kind = obs::EventRecord::Kind::kDrop;
        event.t_us = events_.now();
        event.query = pending.id;
        event.class_id = pending.arrival.class_id;
        event.attempts = pending.attempts;
        config_.recorder->Record(event);
        config_.recorder->Count("drops");
      }
      return;
    }
    ++metrics_.retries;
    ++metrics_.retries_per_class[static_cast<size_t>(
        pending.arrival.class_id)];
    QA_OBS(config_.recorder) {
      obs::EventRecord event;
      event.kind = obs::EventRecord::Kind::kReject;
      event.t_us = events_.now();
      event.query = pending.id;
      event.class_id = pending.arrival.class_id;
      event.messages = decision.messages;
      event.attempts = pending.attempts;
      config_.recorder->Record(event);
      config_.recorder->Count("rejects");
    }
    // The client resubmits the query at the next market tick (§3.3 says
    // "next time period" — with staggered autonomous periods, some node's
    // period boundary passes every tick). Long-waiting queries back off to
    // once per full period so a deep overload costs O(backlog) retry work
    // per period instead of O(backlog * ticks). The tick event is already
    // scheduled and was enqueued earlier, so the market refreshes before
    // the retry runs.
    int wait_ticks = std::min(pending.attempts,
                              std::max(config_.market_tick_divisor, 1));
    events_.Schedule(NextMarketTick() + (wait_ticks - 1) * TickInterval(),
                     SimEvent::MakeArrival(pending));
    return;
  }

  ++metrics_.assigned;
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kAssign;
    event.t_us = events_.now();
    event.query = pending.id;
    event.class_id = pending.arrival.class_id;
    event.node = decision.node;
    event.messages = decision.messages;
    event.attempts = pending.attempts;
    config_.recorder->Record(event);
    config_.recorder->Count("assigns");
  }
  QueryTask task;
  task.query_id = pending.id;
  task.class_id = pending.arrival.class_id;
  task.origin = pending.arrival.origin;
  task.arrival = pending.arrival.time;
  util::VDuration base =
      CachedCost(pending.arrival.class_id, decision.node);
  task.exec_time = std::max<util::VDuration>(
      static_cast<util::VDuration>(static_cast<double>(base) *
                                   pending.arrival.cost_jitter),
      1);
  task.work_units = best_cost_[static_cast<size_t>(task.class_id)];

  // Probes run in parallel: one round trip for the negotiation (when any)
  // plus the hop that ships the query to the chosen node.
  util::VDuration delay =
      decision.messages >= 2 ? 3 * config_.message_latency
                             : config_.message_latency;
  events_.ScheduleAfter(delay, SimEvent::MakeDeliver(decision.node, task));
}

void Federation::DeliverTask(catalog::NodeId node_id, const QueryTask& task) {
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kDeliver;
    event.t_us = events_.now();
    event.query = task.query_id;
    event.class_id = task.class_id;
    event.node = node_id;
    config_.recorder->Record(event);
    config_.recorder->Count("deliveries");
  }
  if (nodes_[static_cast<size_t>(node_id)].Enqueue(task, events_.now())) {
    StartTask(node_id);
  }
}

void Federation::StartTask(catalog::NodeId node_id) {
  SimNode& node = nodes_[static_cast<size_t>(node_id)];
  QueryTask task = node.BeginNext(events_.now());
  events_.ScheduleAfter(task.exec_time,
                        SimEvent::MakeComplete(node_id, task));
}

void Federation::CompleteTask(catalog::NodeId node_id, const QueryTask& task) {
  SimNode& node = nodes_[static_cast<size_t>(node_id)];
  bool more = node.CompleteCurrent(events_.now());

  double response_ms = util::ToMillis(events_.now() - task.arrival);
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kComplete;
    event.t_us = events_.now();
    event.query = task.query_id;
    event.class_id = task.class_id;
    event.node = node_id;
    event.response_ms = response_ms;
    config_.recorder->Record(event);
    config_.recorder->Count("completions");
  }
  metrics_.response_time_ms.Add(response_ms);
  metrics_.completions.Add(events_.now(),
                           static_cast<double>(task.class_id));
  metrics_.completions_per_class[static_cast<size_t>(task.class_id)].Add(
      events_.now(), 1.0);
  ++metrics_.completed;
  --outstanding_;

  if (more) StartTask(node_id);
}

void Federation::MarketTick() {
  allocator_->OnPeriodEnd(events_.now());
  allocator_->OnPeriodStart(events_.now());
  ++ticks_;
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kTick;
    event.t_us = events_.now();
    config_.recorder->Record(event);
    config_.recorder->Count("ticks");
    // Snapshot once per global period (every divisor-th tick), after the
    // period hooks ran: post-rollover prices are what convergence analysis
    // wants to see.
    if (ticks_ % std::max(config_.market_tick_divisor, 1) == 0) {
      EmitSnapshot();
    }
  }
  if (outstanding_ > 0) {
    events_.ScheduleAfter(TickInterval(), SimEvent::MakeMarketTick());
  }
}

void Federation::EmitSnapshot() {
  config_.recorder->RecordSnapshot(events_.now(), allocator_->Snapshot());
  config_.recorder->Count("snapshots");
}

util::VDuration Federation::TickInterval() const {
  return std::max<util::VDuration>(
      config_.period / std::max(config_.market_tick_divisor, 1), 1);
}

util::VTime Federation::NextMarketTick() const {
  util::VDuration tick = TickInterval();
  return (events_.now() / tick + 1) * tick;
}

double EstimateCapacityQps(const query::CostModel& cost_model,
                           const std::vector<double>& mix,
                           util::VDuration period, int periods) {
  assert(static_cast<int>(mix.size()) == cost_model.num_classes());
  double mix_sum = 0.0;
  for (double m : mix) mix_sum += m;
  assert(mix_sum > 0.0);

  // Upper bound on per-period throughput: every node runs its cheapest
  // class back to back.
  double max_per_period = 0.0;
  for (catalog::NodeId j = 0; j < cost_model.num_nodes(); ++j) {
    util::VDuration cheapest = query::kInfeasibleCost;
    for (int k = 0; k < cost_model.num_classes(); ++k) {
      cheapest = std::min(cheapest, cost_model.Cost(k, j));
    }
    if (cheapest != query::kInfeasibleCost && cheapest > 0) {
      max_per_period +=
          static_cast<double>(period) / static_cast<double>(cheapest);
    }
  }

  market::MarketSimConfig sim_config;
  sim_config.period = period;
  market::MarketSimulator sim(&cost_model, sim_config);

  // Keep each class's pending queue topped up to ~2x its mix share of the
  // throughput bound so servers are always saturated without letting the
  // queues (and the per-period cost) grow unboundedly.
  auto top_up = [&]() {
    std::vector<market::QuantityVector> demand(
        static_cast<size_t>(cost_model.num_nodes()),
        market::QuantityVector(cost_model.num_classes()));
    for (int k = 0; k < cost_model.num_classes(); ++k) {
      double want = 2.0 * max_per_period *
                    (mix[static_cast<size_t>(k)] / mix_sum);
      market::Quantity have = 0;
      for (const auto& p : sim.pending()) have += p[k];
      market::Quantity need =
          static_cast<market::Quantity>(std::ceil(want)) - have;
      if (need > 0) demand[0][k] = need;
    }
    return demand;
  };

  int warmup = periods / 2;
  market::Quantity consumed = 0;
  for (int t = 0; t < periods; ++t) {
    market::MarketSimulator::PeriodResult result = sim.RunPeriod(top_up());
    if (t >= warmup) consumed += result.aggregate_consumption.Total();
  }
  double measured_seconds =
      util::ToSeconds(period) * static_cast<double>(periods - warmup);
  return measured_seconds > 0.0 ? static_cast<double>(consumed) /
                                      measured_seconds
                                : 0.0;
}

}  // namespace qa::sim
