#include "sim/federation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "market/market_sim.h"
#include "util/logging.h"

namespace qa::sim {

namespace {

/// The fault schedule a run actually executes: the configured FaultPlan
/// plus one single-node partition per legacy Outage (same [from, until)
/// unreachable-but-state-intact semantics).
faults::FaultPlan EffectivePlan(const FederationConfig& config) {
  faults::FaultPlan plan = config.faults;
  for (const Outage& outage : config.outages) {
    faults::PartitionFault partition;
    partition.nodes = {outage.node};
    partition.from = outage.from;
    partition.until = outage.until;
    plan.partitions.push_back(std::move(partition));
  }
  return plan;
}

}  // namespace

util::Status ValidateConfig(const FederationConfig& config, int num_nodes) {
  if (config.period <= 0) {
    return util::Status::InvalidArgument(
        "period must be positive, got " + std::to_string(config.period));
  }
  if (config.market_tick_divisor < 1) {
    return util::Status::InvalidArgument(
        "market_tick_divisor must be >= 1, got " +
        std::to_string(config.market_tick_divisor));
  }
  if (config.message_latency < 0) {
    return util::Status::InvalidArgument(
        "message_latency must be non-negative, got " +
        std::to_string(config.message_latency));
  }
  if (config.max_retries < 0) {
    return util::Status::InvalidArgument(
        "max_retries must be non-negative, got " +
        std::to_string(config.max_retries));
  }
  if (config.max_backoff_periods < 1) {
    return util::Status::InvalidArgument(
        "max_backoff_periods must be >= 1, got " +
        std::to_string(config.max_backoff_periods));
  }
  if (config.query_deadline < 0) {
    return util::Status::InvalidArgument(
        "query_deadline must be non-negative, got " +
        std::to_string(config.query_deadline));
  }
  for (size_t i = 0; i < config.outages.size(); ++i) {
    const Outage& outage = config.outages[i];
    if (outage.node < 0 || outage.node >= num_nodes) {
      return util::Status::InvalidArgument(
          "outages[" + std::to_string(i) + "]: node " +
          std::to_string(outage.node) + " outside [0, " +
          std::to_string(num_nodes) + ")");
    }
    if (outage.from < 0 || outage.until <= outage.from) {
      return util::Status::InvalidArgument(
          "outages[" + std::to_string(i) + "]: window [" +
          std::to_string(outage.from) + ", " +
          std::to_string(outage.until) + ") is empty or negative");
    }
  }
  util::Status solicitation = config.solicitation.Validate();
  if (!solicitation.ok()) return solicitation;
  return config.faults.Validate(num_nodes);
}

Federation::Federation(const query::CostModel* cost_model,
                       allocation::Allocator* allocator,
                       FederationConfig config)
    : cost_model_(cost_model),
      allocator_(allocator),
      config_(config),
      injector_(EffectivePlan(config), static_cast<uint64_t>(config.seed)) {
  assert(cost_model_ != nullptr);
  assert(allocator_ != nullptr);
  for (catalog::NodeId i = 0; i < cost_model_->num_nodes(); ++i) {
    nodes_.emplace_back(i);
  }
  link_down_.assign(nodes_.size(), 0);
  best_cost_.resize(static_cast<size_t>(cost_model_->num_classes()), 0.0);
  for (int k = 0; k < cost_model_->num_classes(); ++k) {
    util::VDuration best = cost_model_->BestCost(k);
    best_cost_[static_cast<size_t>(k)] =
        best == query::kInfeasibleCost ? 0.0 : static_cast<double>(best);
  }
  cost_cache_.resize(static_cast<size_t>(cost_model_->num_classes()) *
                     nodes_.size());
  for (int k = 0; k < cost_model_->num_classes(); ++k) {
    for (catalog::NodeId j = 0; j < cost_model_->num_nodes(); ++j) {
      cost_cache_[static_cast<size_t>(k) * nodes_.size() +
                  static_cast<size_t>(j)] = cost_model_->Cost(k, j);
    }
  }
}

SimMetrics Federation::Run(const workload::Trace& trace) {
  // A malformed config (zero period, inverted fault window...) would not
  // crash — it would silently simulate nonsense. Fail fast instead, like
  // the experiment runner does for an unknown mechanism name.
  util::Status valid = ValidateConfig(config_, num_nodes());
  if (!valid.ok()) {
    std::fprintf(stderr, "FATAL: invalid FederationConfig: %s\n",
                 valid.ToString().c_str());
    std::abort();
  }

  metrics_ = SimMetrics();
  size_t num_classes = static_cast<size_t>(cost_model_->num_classes());
  metrics_.completions_per_class.resize(num_classes);
  metrics_.dropped_per_class.resize(num_classes);
  metrics_.retries_per_class.resize(num_classes);
  outstanding_ = static_cast<int64_t>(trace.size());
  ticks_ = 0;

  // While this run is active, log lines on this thread carry the current
  // virtual time (interleaved parallel runs stay attributable).
  util::ScopedVTimeClock log_clock(
      [](const void* ctx) {
        return static_cast<const EventQueue<SimEvent>*>(ctx)->now();
      },
      &events_);

  QA_OBS(config_.recorder) {
    obs::MetaRecord meta;
    meta.schema = obs::kTraceSchemaVersion;
    meta.mechanism = allocator_->name();
    meta.nodes = num_nodes();
    meta.classes = cost_model_->num_classes();
    meta.period_us = config_.period;
    meta.ticks_per_period = config_.market_tick_divisor;
    meta.seed = config_.seed;
    meta.solicitation = std::string(
        allocation::SolicitationPolicyName(config_.solicitation.policy));
    meta.fanout =
        config_.solicitation.sampled() ? config_.solicitation.fanout : 0;
    config_.recorder->Record(meta);
    EmitSnapshot();  // the market's initial prices, at t=0
  }

  // All arrivals live in the heap at once, plus one in-flight
  // deliver/complete event per node, the market tick, and the fault
  // plan's transitions: reserving here makes steady-state scheduling
  // allocation-free.
  events_.Reserve(trace.size() + nodes_.size() + 1 +
                  injector_.transitions().size());
  for (const workload::Arrival& arrival : trace.arrivals()) {
    events_.Schedule(
        arrival.time,
        SimEvent::MakeArrival({arrival, next_query_id_++, /*attempts=*/0}));
  }
  for (const auto& [when, transition] : injector_.transitions()) {
    events_.Schedule(when, SimEvent::MakeFault(transition));
  }
  events_.Schedule(TickInterval(), SimEvent::MakeMarketTick());

  events_.RunAll([this](const SimEvent& event) { Dispatch(event); });

  metrics_.end_time = events_.now();
  for (const SimNode& node : nodes_) {
    metrics_.total_busy_time += node.busy_time();
    metrics_.node_last_idle.push_back(node.last_idle_at());
    metrics_.node_completed.push_back(node.completed());
  }
  return metrics_;
}

void Federation::Dispatch(const SimEvent& event) {
  ++metrics_.events_dispatched;
  switch (event.kind) {
    case SimEvent::Kind::kArrival:
      HandleQuery(event.pending);
      break;
    case SimEvent::Kind::kDeliver:
      DeliverTask(event.node, event.task);
      break;
    case SimEvent::Kind::kComplete:
      CompleteTask(event.node, event.task);
      break;
    case SimEvent::Kind::kMarketTick:
      MarketTick();
      break;
    case SimEvent::Kind::kFault:
      HandleFault(event.transition);
      break;
  }
}

bool Federation::NodeOnline(catalog::NodeId node) const {
  if (injector_.Unreachable(node, events_.now())) return false;
  // During an allocation attempt under an active link fault, a node whose
  // request/offer hops were dropped looks exactly like an offline one: the
  // mediator's request times out and counts as a decline.
  if (link_mask_active_ && link_down_[static_cast<size_t>(node)] != 0) {
    return false;
  }
  return true;
}

void Federation::HandleQuery(SimEvent::Pending pending) {
  QA_OBS(config_.recorder) {
    if (pending.attempts == 0) {
      obs::EventRecord event;
      event.kind = obs::EventRecord::Kind::kArrival;
      event.t_us = events_.now();
      event.query = pending.id;
      event.class_id = pending.arrival.class_id;
      event.origin = pending.arrival.origin;
      config_.recorder->Record(event);
      config_.recorder->Count("arrivals");
    }
  }

  // The client abandons a query whose sojourn has reached its response
  // deadline instead of renegotiating it: a placement that cannot possibly
  // answer in time is not worth another market round. Fresh arrivals
  // (attempts == 0) are never expired — their sojourn is zero.
  if (config_.query_deadline > 0 && pending.attempts > 0 &&
      events_.now() - pending.arrival.time >= config_.query_deadline) {
    DropQuery(pending.id, pending.arrival.class_id, pending.attempts,
              /*expired=*/true);
    return;
  }

  // Under an active link fault, draw the fate of this attempt's message
  // hops once per node before the mechanism runs: a node whose hops are
  // dropped is indistinguishable from an offline one (the request times
  // out — a decline). One draw per node per attempt, in node order, keeps
  // the RNG stream a function of the plan and the event order only.
  bool link_faults = injector_.AnyLinkFaultActive(events_.now());
  if (link_faults) {
    for (catalog::NodeId j = 0; j < num_nodes(); ++j) {
      link_down_[static_cast<size_t>(j)] =
          injector_.DropMessage(j, events_.now()) ? 1 : 0;
    }
    link_mask_active_ = true;
  }

  allocation::AllocationDecision decision =
      allocator_->Allocate(pending.arrival, *this);
  metrics_.messages += decision.messages;
  metrics_.solicited += decision.solicited;

  // A mechanism that cannot observe liveness (Random/RoundRobin) may pick
  // an unreachable node: the query bounces at the network layer and is
  // resubmitted like any other failed placement.
  if (decision.node != allocation::kNoNode &&
      !NodeOnline(decision.node)) {
    ++metrics_.bounced;
    QA_OBS(config_.recorder) {
      obs::EventRecord event;
      event.kind = obs::EventRecord::Kind::kBounce;
      event.t_us = events_.now();
      event.query = pending.id;
      event.class_id = pending.arrival.class_id;
      event.node = decision.node;
      event.attempts = pending.attempts;
      config_.recorder->Record(event);
      config_.recorder->Count("bounces");
    }
    decision.node = allocation::kNoNode;
  }
  // The per-attempt link mask only scopes the negotiation above; the
  // shipment hop below draws its own fate.
  link_mask_active_ = false;

  if (decision.node == allocation::kNoNode) {
    ++tick_rejects_;
    ++pending.attempts;
    if (pending.attempts > config_.max_retries) {
      DropQuery(pending.id, pending.arrival.class_id, pending.attempts,
                /*expired=*/false);
      return;
    }
    ++metrics_.retries;
    ++metrics_.retries_per_class[static_cast<size_t>(
        pending.arrival.class_id)];
    QA_OBS(config_.recorder) {
      obs::EventRecord event;
      event.kind = obs::EventRecord::Kind::kReject;
      event.t_us = events_.now();
      event.query = pending.id;
      event.class_id = pending.arrival.class_id;
      event.messages = decision.messages;
      event.solicited = decision.solicited;
      event.attempts = pending.attempts;
      config_.recorder->Record(event);
      config_.recorder->Count("rejects");
    }
    // The client resubmits the query at the next market tick (§3.3 says
    // "next time period" — with staggered autonomous periods, some node's
    // period boundary passes every tick). Long-waiting queries back off to
    // once per full period so a deep overload costs O(backlog) retry work
    // per period instead of O(backlog * ticks). The tick event is already
    // scheduled and was enqueued earlier, so the market refreshes before
    // the retry runs.
    int wait_ticks = std::min(pending.attempts,
                              std::max(config_.market_tick_divisor, 1));
    // Market-protocol hardening: when whole market rounds go by with every
    // attempt declined (a dead market — mass crash, partition, or hard
    // overload), the mediators escalate exponentially instead of hammering
    // the market in lockstep, capped at max_backoff_periods whole periods.
    if (consecutive_decline_rounds_ > 2) {
      int shift = std::min(consecutive_decline_rounds_ - 2, 3);
      int cap = config_.max_backoff_periods *
                std::max(config_.market_tick_divisor, 1);
      wait_ticks = std::min(wait_ticks << shift, cap);
    }
    events_.Schedule(NextMarketTick() + (wait_ticks - 1) * TickInterval(),
                     SimEvent::MakeArrival(pending));
    return;
  }

  ++tick_assigns_;
  ++metrics_.assigned;
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kAssign;
    event.t_us = events_.now();
    event.query = pending.id;
    event.class_id = pending.arrival.class_id;
    event.node = decision.node;
    event.messages = decision.messages;
    event.solicited = decision.solicited;
    event.attempts = pending.attempts;
    config_.recorder->Record(event);
    config_.recorder->Count("assigns");
  }
  QueryTask task;
  task.query_id = pending.id;
  task.class_id = pending.arrival.class_id;
  task.origin = pending.arrival.origin;
  task.arrival = pending.arrival.time;
  util::VDuration base =
      CachedCost(pending.arrival.class_id, decision.node);
  task.exec_time = std::max<util::VDuration>(
      static_cast<util::VDuration>(static_cast<double>(base) *
                                   pending.arrival.cost_jitter),
      1);
  task.work_units = best_cost_[static_cast<size_t>(task.class_id)];
  task.attempts = pending.attempts;
  task.cost_jitter = pending.arrival.cost_jitter;

  // The shipment hop draws its own fate under an active link fault: a
  // dropped shipment loses the (already accepted) query in flight; the
  // client notices the silence and resubmits at the next market tick.
  if (link_faults && injector_.DropMessage(decision.node, events_.now())) {
    LoseTask(task, decision.node);
    return;
  }

  // Probes run in parallel: one round trip for the negotiation (when any)
  // plus the hop that ships the query to the chosen node.
  util::VDuration delay =
      decision.messages >= 2 ? 3 * config_.message_latency
                             : config_.message_latency;
  if (link_faults) {
    delay += injector_.ExtraLatency(decision.node, events_.now());
  }
  events_.ScheduleAfter(delay, SimEvent::MakeDeliver(decision.node, task));
}

void Federation::DropQuery(query::QueryId id, query::QueryClassId class_id,
                           int attempts, bool expired) {
  ++metrics_.dropped;
  ++metrics_.dropped_per_class[static_cast<size_t>(class_id)];
  if (expired) ++metrics_.expired;
  --outstanding_;
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kDrop;
    event.t_us = events_.now();
    event.query = id;
    event.class_id = class_id;
    event.attempts = attempts;
    config_.recorder->Record(event);
    config_.recorder->Count(expired ? "expired" : "drops");
  }
}

void Federation::LoseTask(const QueryTask& task, catalog::NodeId node_id) {
  ++metrics_.lost;
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kLost;
    event.t_us = events_.now();
    event.query = task.query_id;
    event.class_id = task.class_id;
    event.node = node_id;
    event.attempts = task.attempts;
    config_.recorder->Record(event);
    config_.recorder->Count("losses");
  }
  // Reconstruct the client's pending query (original arrival time — the
  // loss inflates its response time, which is the point) and resubmit it
  // at the next market tick, one retry poorer. The tick event for that
  // time is already in the heap, so the market refreshes first.
  SimEvent::Pending pending;
  pending.arrival.time = task.arrival;
  pending.arrival.class_id = task.class_id;
  pending.arrival.origin = task.origin;
  pending.arrival.cost_jitter = task.cost_jitter;
  pending.id = task.query_id;
  pending.attempts = task.attempts + 1;
  events_.Schedule(NextMarketTick(), SimEvent::MakeArrival(pending));
}

void Federation::DeliverTask(catalog::NodeId node_id, const QueryTask& task) {
  // The node crashed while the query was on the wire: the shipment reaches
  // a dead machine and is lost (the negotiation happened before the
  // crash). The client resubmits at the next market tick.
  if (injector_.Crashed(node_id, events_.now())) {
    LoseTask(task, node_id);
    return;
  }
  QueryTask delivered = task;
  // Degraded capacity: the node executes at a fraction of its advertised
  // speed, so the execution time fixed at allocation stretches. The
  // mechanism is not told — its learned costs/prices are now stale, which
  // is exactly the failure mode under study.
  double speed = injector_.SpeedFactor(node_id, events_.now());
  if (speed < 1.0) {
    delivered.exec_time = std::max<util::VDuration>(
        static_cast<util::VDuration>(
            static_cast<double>(delivered.exec_time) / speed),
        1);
  }
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kDeliver;
    event.t_us = events_.now();
    event.query = delivered.query_id;
    event.class_id = delivered.class_id;
    event.node = node_id;
    config_.recorder->Record(event);
    config_.recorder->Count("deliveries");
  }
  if (nodes_[static_cast<size_t>(node_id)].Enqueue(delivered,
                                                   events_.now())) {
    StartTask(node_id);
  }
}

void Federation::StartTask(catalog::NodeId node_id) {
  SimNode& node = nodes_[static_cast<size_t>(node_id)];
  QueryTask task = node.BeginNext(events_.now());
  // Stamp the node's incarnation so this completion event can be
  // recognized as stale if a crash wipes the task before it fires.
  task.epoch = node.epoch();
  events_.ScheduleAfter(task.exec_time,
                        SimEvent::MakeComplete(node_id, task));
}

void Federation::CompleteTask(catalog::NodeId node_id, const QueryTask& task) {
  SimNode& node = nodes_[static_cast<size_t>(node_id)];
  // A crash bumped the node's epoch after this completion was scheduled:
  // the task it announces was wiped (and resubmitted by its client), so
  // the event is a ghost of the previous incarnation. Ignore it.
  if (task.epoch != node.epoch()) return;
  bool more = node.CompleteCurrent(events_.now());

  // The result arrived after the client's deadline: nobody is waiting for
  // it. The node's work is already spent (wasted capacity — the real cost
  // of serving a client that gave up); the query counts as expired.
  if (config_.query_deadline > 0 &&
      events_.now() - task.arrival > config_.query_deadline) {
    DropQuery(task.query_id, task.class_id, task.attempts,
              /*expired=*/true);
    if (more) StartTask(node_id);
    return;
  }

  double response_ms = util::ToMillis(events_.now() - task.arrival);
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kComplete;
    event.t_us = events_.now();
    event.query = task.query_id;
    event.class_id = task.class_id;
    event.node = node_id;
    event.response_ms = response_ms;
    config_.recorder->Record(event);
    config_.recorder->Count("completions");
  }
  metrics_.response_time_ms.Add(response_ms);
  metrics_.completions.Add(events_.now(),
                           static_cast<double>(task.class_id));
  metrics_.completions_per_class[static_cast<size_t>(task.class_id)].Add(
      events_.now(), 1.0);
  ++metrics_.completed;
  --outstanding_;

  if (more) StartTask(node_id);
}

void Federation::HandleFault(
    const faults::FaultInjector::Transition& transition) {
  using Kind = faults::FaultInjector::Transition::Kind;
  switch (transition.kind) {
    case Kind::kCrash: {
      SimNode& node = nodes_[static_cast<size_t>(transition.node)];
      std::vector<QueryTask> wiped = node.Crash(events_.now());
      QA_OBS(config_.recorder) {
        obs::EventRecord event;
        event.kind = obs::EventRecord::Kind::kCrash;
        event.t_us = events_.now();
        event.node = transition.node;
        config_.recorder->Record(event);
        config_.recorder->Count("crashes");
      }
      // Everything queued or running there is gone with the volatile
      // state; the clients detect the silence and resubmit.
      for (const QueryTask& task : wiped) LoseTask(task, transition.node);
      break;
    }
    case Kind::kRestart:
      // The node is back with empty queues and default configuration; a
      // mechanism with learned per-node state (QA-NT's price vector)
      // resets it and re-learns through ordinary market interaction.
      allocator_->OnNodeRestart(transition.node, events_.now());
      QA_OBS(config_.recorder) {
        obs::EventRecord event;
        event.kind = obs::EventRecord::Kind::kRestart;
        event.t_us = events_.now();
        event.node = transition.node;
        config_.recorder->Record(event);
        config_.recorder->Count("restarts");
      }
      break;
    case Kind::kDegradeStart:
    case Kind::kDegradeEnd:
      QA_OBS(config_.recorder) {
        obs::EventRecord event;
        event.kind = obs::EventRecord::Kind::kDegrade;
        event.t_us = events_.now();
        event.node = transition.node;
        event.factor = transition.factor;
        config_.recorder->Record(event);
        config_.recorder->Count("degrades");
      }
      break;
  }
}

void Federation::MarketTick() {
  allocator_->OnPeriodEnd(events_.now());
  allocator_->OnPeriodStart(events_.now());
  ++ticks_;
  // Backoff streak bookkeeping: a round where every allocation attempt
  // was declined bumps the streak, any successful assignment resets it,
  // and a quiet round (no attempts) leaves it alone.
  if (tick_rejects_ > 0 && tick_assigns_ == 0) {
    ++consecutive_decline_rounds_;
  } else if (tick_assigns_ > 0) {
    consecutive_decline_rounds_ = 0;
  }
  tick_assigns_ = 0;
  tick_rejects_ = 0;
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kTick;
    event.t_us = events_.now();
    config_.recorder->Record(event);
    config_.recorder->Count("ticks");
    // Snapshot once per global period (every divisor-th tick), after the
    // period hooks ran: post-rollover prices are what convergence analysis
    // wants to see.
    if (ticks_ % std::max(config_.market_tick_divisor, 1) == 0) {
      EmitSnapshot();
    }
  }
  if (outstanding_ > 0) {
    events_.ScheduleAfter(TickInterval(), SimEvent::MakeMarketTick());
  }
}

void Federation::EmitSnapshot() {
  // Both call sites sit inside QA_OBS gates already, but gate here too so
  // the allocator Snapshot() walk compiles away under -DQA_OBS_DISABLED.
  QA_OBS(config_.recorder) {
    config_.recorder->RecordSnapshot(events_.now(), allocator_->Snapshot());
    config_.recorder->Count("snapshots");
  }
}

util::VDuration Federation::TickInterval() const {
  return std::max<util::VDuration>(
      config_.period / std::max(config_.market_tick_divisor, 1), 1);
}

util::VTime Federation::NextMarketTick() const {
  util::VDuration tick = TickInterval();
  return (events_.now() / tick + 1) * tick;
}

double EstimateCapacityQps(const query::CostModel& cost_model,
                           const std::vector<double>& mix,
                           util::VDuration period, int periods) {
  assert(static_cast<int>(mix.size()) == cost_model.num_classes());
  double mix_sum = 0.0;
  for (double m : mix) mix_sum += m;
  assert(mix_sum > 0.0);

  // Upper bound on per-period throughput: every node runs its cheapest
  // class back to back.
  double max_per_period = 0.0;
  for (catalog::NodeId j = 0; j < cost_model.num_nodes(); ++j) {
    util::VDuration cheapest = query::kInfeasibleCost;
    for (int k = 0; k < cost_model.num_classes(); ++k) {
      cheapest = std::min(cheapest, cost_model.Cost(k, j));
    }
    if (cheapest != query::kInfeasibleCost && cheapest > 0) {
      max_per_period +=
          static_cast<double>(period) / static_cast<double>(cheapest);
    }
  }

  market::MarketSimConfig sim_config;
  sim_config.period = period;
  market::MarketSimulator sim(&cost_model, sim_config);

  // Keep each class's pending queue topped up to ~2x its mix share of the
  // throughput bound so servers are always saturated without letting the
  // queues (and the per-period cost) grow unboundedly.
  auto top_up = [&]() {
    std::vector<market::QuantityVector> demand(
        static_cast<size_t>(cost_model.num_nodes()),
        market::QuantityVector(cost_model.num_classes()));
    for (int k = 0; k < cost_model.num_classes(); ++k) {
      double want = 2.0 * max_per_period *
                    (mix[static_cast<size_t>(k)] / mix_sum);
      market::Quantity have = 0;
      for (const auto& p : sim.pending()) have += p[k];
      market::Quantity need =
          static_cast<market::Quantity>(std::ceil(want)) - have;
      if (need > 0) demand[0][k] = need;
    }
    return demand;
  };

  int warmup = periods / 2;
  market::Quantity consumed = 0;
  for (int t = 0; t < periods; ++t) {
    market::MarketSimulator::PeriodResult result = sim.RunPeriod(top_up());
    if (t >= warmup) consumed += result.aggregate_consumption.Total();
  }
  double measured_seconds =
      util::ToSeconds(period) * static_cast<double>(periods - warmup);
  return measured_seconds > 0.0 ? static_cast<double>(consumed) /
                                      measured_seconds
                                : 0.0;
}

}  // namespace qa::sim
