#include "sim/federation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "market/market_sim.h"
#include "util/logging.h"

namespace qa::sim {

namespace {

/// The fault schedule a run actually executes: the configured FaultPlan
/// plus one single-node partition per legacy Outage (same [from, until)
/// unreachable-but-state-intact semantics).
faults::FaultPlan EffectivePlan(const FederationConfig& config) {
  faults::FaultPlan plan = config.faults;
  for (const Outage& outage : config.outages) {
    faults::PartitionFault partition;
    partition.nodes = {outage.node};
    partition.from = outage.from;
    partition.until = outage.until;
    plan.partitions.push_back(std::move(partition));
  }
  return plan;
}

/// Every counter name a run can ever Count(), in the canonical emission
/// order. Traced runs pre-register all of them at t=0 (a Count of 0
/// creates the stat), so the recorder's trailing stats block lists the
/// same names in the same order regardless of which events a scenario
/// happens to produce — and, crucially for the sharded core, regardless
/// of the order in which the first increment of each counter fires
/// (mediator-side counts fire at dispatch, shard-side counts at the
/// barrier merge; only pre-registration makes creation order invariant).
constexpr const char* kCounterNames[] = {
    "arrivals", "assigns",  "rejects",  "bounces",  "drops",
    "expired",  "shed",     "admission_rejects", "deliveries",
    "completions", "losses", "crashes",
    "restarts", "degrades", "surges", "ticks", "snapshots",
};

}  // namespace

util::Status ValidateConfig(const FederationConfig& config, int num_nodes) {
  if (config.period <= 0) {
    return util::Status::InvalidArgument(
        "period must be positive, got " + std::to_string(config.period));
  }
  if (config.market_tick_divisor < 1) {
    return util::Status::InvalidArgument(
        "market_tick_divisor must be >= 1, got " +
        std::to_string(config.market_tick_divisor));
  }
  if (config.message_latency < 0) {
    return util::Status::InvalidArgument(
        "message_latency must be non-negative, got " +
        std::to_string(config.message_latency));
  }
  if (config.max_retries < 0) {
    return util::Status::InvalidArgument(
        "max_retries must be non-negative, got " +
        std::to_string(config.max_retries));
  }
  if (config.max_backoff_periods < 1) {
    return util::Status::InvalidArgument(
        "max_backoff_periods must be >= 1, got " +
        std::to_string(config.max_backoff_periods));
  }
  if (config.query_deadline < 0) {
    return util::Status::InvalidArgument(
        "query_deadline must be non-negative, got " +
        std::to_string(config.query_deadline));
  }
  if (config.shards < 1) {
    return util::Status::InvalidArgument(
        "shards must be >= 1, got " + std::to_string(config.shards));
  }
  if (config.max_node_queue < 1) {
    return util::Status::InvalidArgument(
        "max_node_queue (shed bound) must be >= 1, got " +
        std::to_string(config.max_node_queue));
  }
  if (config.max_retry_backlog < 1) {
    return util::Status::InvalidArgument(
        "max_retry_backlog (shed bound) must be >= 1, got " +
        std::to_string(config.max_retry_backlog));
  }
  util::Status admission = config.admission.Validate();
  if (!admission.ok()) return admission;
  for (size_t i = 0; i < config.outages.size(); ++i) {
    const Outage& outage = config.outages[i];
    if (outage.node < 0 || outage.node >= num_nodes) {
      return util::Status::InvalidArgument(
          "outages[" + std::to_string(i) + "]: node " +
          std::to_string(outage.node) + " outside [0, " +
          std::to_string(num_nodes) + ")");
    }
    if (outage.from < 0 || outage.until <= outage.from) {
      return util::Status::InvalidArgument(
          "outages[" + std::to_string(i) + "]: window [" +
          std::to_string(outage.from) + ", " +
          std::to_string(outage.until) + ") is empty or negative");
    }
  }
  util::Status solicitation = config.solicitation.Validate();
  if (!solicitation.ok()) return solicitation;
  util::Status clusters = config.cluster_plan.Validate(num_nodes);
  if (!clusters.ok()) return clusters;
  return config.faults.Validate(num_nodes);
}

std::string DescribeEvent(const SimEvent& event) {
  switch (event.kind) {
    case SimEvent::Kind::kArrival:
      return "arrival query=" + std::to_string(event.pending.id) +
             " class=" + std::to_string(event.pending.arrival.class_id) +
             " attempts=" + std::to_string(event.pending.attempts);
    case SimEvent::Kind::kDeliver:
      return "deliver node=" + std::to_string(event.node) +
             " query=" + std::to_string(event.task.query_id);
    case SimEvent::Kind::kComplete:
      return "complete node=" + std::to_string(event.node) +
             " query=" + std::to_string(event.task.query_id);
    case SimEvent::Kind::kMarketTick:
      return "market-tick";
    case SimEvent::Kind::kFault: {
      using Kind = faults::FaultInjector::Transition::Kind;
      const char* what = "fault";
      switch (event.transition.kind) {
        case Kind::kCrash:
          what = "fault-crash";
          break;
        case Kind::kRestart:
          what = "fault-restart";
          break;
        case Kind::kDegradeStart:
          what = "fault-degrade-start";
          break;
        case Kind::kDegradeEnd:
          what = "fault-degrade-end";
          break;
        case Kind::kSurgeStart:
          return "fault-surge-start class=" +
                 std::to_string(event.transition.class_id);
        case Kind::kSurgeEnd:
          return "fault-surge-end class=" +
                 std::to_string(event.transition.class_id);
      }
      return std::string(what) + " node=" + std::to_string(event.node);
    }
  }
  return "(unknown SimEvent kind)";
}

Federation::Federation(const query::CostModel* cost_model,
                       allocation::Allocator* allocator,
                       FederationConfig config)
    : cost_model_(cost_model),
      allocator_(allocator),
      config_(config),
      injector_(EffectivePlan(config), static_cast<uint64_t>(config.seed)) {
  assert(cost_model_ != nullptr);
  assert(allocator_ != nullptr);
  num_nodes_ = cost_model_->num_nodes();

  // Mode selection. Sharded execution is legal exactly when the mediator
  // can run ahead of the node lanes within a market window — i.e. when the
  // mechanism never reads live node state at allocation time. Mechanisms
  // that probe backlogs (Greedy, BNQRD, two-probes...) need that state
  // current at every decision, which is a zero-lookahead synchronization
  // requirement: they run on the inline path no matter what the config
  // asks for. This is Table 2's autonomy column made operational.
  sharded_ = config_.shards > 1 && config_.runner != nullptr &&
             !allocator_->properties().reads_node_state;
  plan_ = ShardPlan(num_nodes_, sharded_ ? config_.shards : 1);
  std::vector<int> shard_of;
  shard_of.reserve(static_cast<size_t>(num_nodes_));
  for (catalog::NodeId j = 0; j < num_nodes_; ++j) {
    shard_of.push_back(plan_.shard_of(j));
  }
  pool_.Init(num_nodes_, plan_.shards(), shard_of);
  if (sharded_) {
    lanes_ = std::vector<ShardLane>(static_cast<size_t>(plan_.shards()));
  }
  node_seq_.assign(static_cast<size_t>(num_nodes_), 0);
  // The allocator may use the runner for intra-decision fan-out (QA-NT's
  // chunked bid scan) on the inline path too; it must be byte-exact either
  // way, so this is unconditional.
  allocator_->SetTaskRunner(config_.runner);

  link_down_.assign(static_cast<size_t>(num_nodes_), 0);
  best_cost_.resize(static_cast<size_t>(cost_model_->num_classes()), 0.0);
  for (int k = 0; k < cost_model_->num_classes(); ++k) {
    util::VDuration best = cost_model_->BestCost(k);
    best_cost_[static_cast<size_t>(k)] =
        best == query::kInfeasibleCost ? 0.0 : static_cast<double>(best);
  }
  cost_cache_.resize(static_cast<size_t>(cost_model_->num_classes()) *
                     static_cast<size_t>(num_nodes_));
  for (int k = 0; k < cost_model_->num_classes(); ++k) {
    for (catalog::NodeId j = 0; j < num_nodes_; ++j) {
      cost_cache_[static_cast<size_t>(k) *
                      static_cast<size_t>(num_nodes_) +
                  static_cast<size_t>(j)] = cost_model_->Cost(k, j);
    }
  }
}

SimMetrics Federation::Run(const workload::Trace& trace) {
  // A malformed config (zero period, inverted fault window...) would not
  // crash — it would silently simulate nonsense. Fail fast instead, like
  // the experiment runner does for an unknown mechanism name.
  util::Status valid = ValidateConfig(config_, num_nodes());
  if (!valid.ok()) {
    std::fprintf(stderr, "FATAL: invalid FederationConfig: %s\n",
                 valid.ToString().c_str());
    std::abort();
  }

  metrics_ = SimMetrics();
  size_t num_classes = static_cast<size_t>(cost_model_->num_classes());
  metrics_.completions_per_class.resize(num_classes);
  metrics_.dropped_per_class.resize(num_classes);
  metrics_.retries_per_class.resize(num_classes);
  ticks_ = 0;
  retry_backlog_ = 0;
  admission_ = AdmissionController(config_.admission, best_cost_);

  // While this run is active, log lines on this thread carry the current
  // virtual time (interleaved parallel runs stay attributable).
  util::ScopedVTimeClock log_clock(
      [](const void* ctx) {
        return static_cast<const EventQueue<SimEvent>*>(ctx)->now();
      },
      &events_);

  QA_OBS(config_.recorder) {
    obs::MetaRecord meta;
    meta.schema = obs::kTraceSchemaVersion;
    meta.mechanism = allocator_->name();
    meta.nodes = num_nodes();
    meta.classes = cost_model_->num_classes();
    meta.period_us = config_.period;
    meta.ticks_per_period = config_.market_tick_divisor;
    meta.seed = config_.seed;
    meta.solicitation = std::string(
        allocation::SolicitationPolicyName(config_.solicitation.policy));
    meta.fanout =
        config_.solicitation.sampled() ? config_.solicitation.fanout : 0;
    // Only a genuinely hierarchical run stamps cluster fields: a
    // single-cluster plan executes the flat market, and its meta line
    // must stay byte-identical to the flat run it reproduces.
    if (config_.cluster_plan.hierarchical()) {
      meta.clusters = config_.cluster_plan.num_clusters();
      meta.top_fanout = config_.cluster_plan.top.sampled()
                            ? config_.cluster_plan.top.fanout
                            : 0;
    }
    config_.recorder->Record(meta);
    // Fix the stats block's name order up front (see kCounterNames).
    for (const char* name : kCounterNames) {
      config_.recorder->Count(name, 0);
    }
    // The market's initial prices, at t=0; written directly — nothing can
    // be buffered ahead of it in either mode.
    config_.recorder->RecordSnapshot(0, allocator_->Snapshot());
    config_.recorder->Count("snapshots");
  }

  watchdogs_.reset();
  QA_METRICS(config_.metrics) {
    obs::metrics::RunMeta mmeta;
    mmeta.mechanism = allocator_->name();
    mmeta.nodes = num_nodes();
    mmeta.shards = sharded_ ? plan_.shards() : 1;
    mmeta.threads =
        config_.runner != nullptr ? config_.runner->concurrency() : 1;
    mmeta.seed = static_cast<uint64_t>(config_.seed);
    mmeta.period_us = config_.period;
    config_.metrics->BeginRun(mmeta);
    config_.metrics->SetNumLanes(lanes_.size());
    watchdogs_ = std::make_unique<obs::metrics::WatchdogSuite>(
        config_.watchdogs, config_.period);
  }
  // The allocator's internal phase probes share the run's collector; reset
  // on every run so a collector-less rerun of the same allocator carries no
  // stale pointer.
  allocator_->SetMetricsCollector(config_.metrics);
  [[maybe_unused]] int64_t run_start = 0;
  QA_METRICS(config_.metrics) {
    run_start = util::MonotonicClock::NowNanos();
  }

  // All arrivals live in the heap at once, plus one in-flight
  // deliver/complete event per node, the market tick, and the fault
  // plan's transitions: reserving here makes steady-state scheduling
  // allocation-free. Every event carries a canonical placement-independent
  // stamp (sim/shard.h) in both modes — inline runs dispatch in exactly
  // the order sharded runs reproduce.
  events_.Reserve(trace.size() + static_cast<size_t>(num_nodes_) + 1 +
                  injector_.transitions().size());
  // Surge windows expand (or thin) the trace at schedule time: each
  // matching arrival is scheduled `multiplier` times — the integer part
  // guaranteed, the fractional part by one seeded Bernoulli draw per
  // arrival. The draw stream is a pure function of (plan, trace), never of
  // execution layout, so surged runs stay byte-identical across shard and
  // thread counts. Plans without surges consume no draws, so pre-surge
  // scenarios reproduce their old traces exactly.
  const bool surging = injector_.AnySurge();
  util::Rng surge_rng((config_.faults.seed != 0
                           ? config_.faults.seed
                           : static_cast<uint64_t>(config_.seed)) ^
                      0xc2b2ae3d27d4eb4full);
  int64_t arrivals_scheduled = 0;
  for (const workload::Arrival& arrival : trace.arrivals()) {
    int copies = 1;
    if (surging) {
      double multiplier =
          injector_.ArrivalMultiplier(arrival.class_id, arrival.time);
      // qa-lint: allow(QA-NUM-001) exact 1.0 = "no surge window matched"
      if (multiplier != 1.0) {
        copies = static_cast<int>(multiplier);
        double frac = multiplier - static_cast<double>(copies);
        if (frac > 0.0 && surge_rng.Bernoulli(frac)) ++copies;
      }
    }
    for (int c = 0; c < copies; ++c) {
      events_.Schedule(
          arrival.time, NextMediatorStamp(),
          SimEvent::MakeArrival({arrival, next_query_id_++, /*attempts=*/0,
                                 /*admitted=*/false}));
    }
    arrivals_scheduled += copies;
  }
  metrics_.arrivals = arrivals_scheduled;
  outstanding_ = arrivals_scheduled;
  admitted_in_flight_ = 0;
  admission_load_ = 0;
  for (const auto& [when, transition] : injector_.transitions()) {
    // Restarts are mediator-lane (the allocator re-learns the node), and
    // so are the node-less surge edges (informational trace markers);
    // crash and degrade edges act on node state and belong to the node's
    // own lane. Stamp allocation order here is the injector's transition
    // order in both modes — the counters stay mode-invariant.
    using TKind = faults::FaultInjector::Transition::Kind;
    if (transition.kind == TKind::kRestart ||
        transition.kind == TKind::kSurgeStart ||
        transition.kind == TKind::kSurgeEnd) {
      events_.Schedule(when, NextMediatorStamp(),
                       SimEvent::MakeFault(transition));
    } else {
      uint64_t stamp = NextNodeStampFromMediator(transition.node);
      ScheduleNodeEvent(when, stamp, SimEvent::MakeFault(transition));
    }
  }
  events_.Schedule(TickInterval(), NextMediatorStamp(),
                   SimEvent::MakeMarketTick());

  if (sharded_) {
    RunSharded();
  } else {
    events_.RunAll([this](const SimEvent& event) { Dispatch(event); });
  }

  metrics_.end_time = events_.now();
  for (const ShardLane& lane : lanes_) {
    metrics_.end_time = std::max(metrics_.end_time, lane.queue.now());
  }
  for (catalog::NodeId j = 0; j < num_nodes_; ++j) {
    metrics_.total_busy_time += pool_.busy_time(j);
    metrics_.node_last_idle.push_back(pool_.last_idle_at(j));
    metrics_.node_completed.push_back(pool_.completed(j));
  }
  QA_METRICS(config_.metrics) {
    // One final sample so short runs (fewer ticks than a global period)
    // still close with their end-state counters on record.
    EmitMetricsSample();
    config_.metrics->RecordPhase(obs::metrics::Phase::kRunTotal,
                                 util::MonotonicClock::NowNanos() - run_start);
  }
  return metrics_;
}

void Federation::RunSharded() {
  constexpr util::VTime kEndTime = std::numeric_limits<util::VTime>::max();
  constexpr uint64_t kEndStamp = std::numeric_limits<uint64_t>::max();
  // The mediator-dispatch phase is the fence-to-fence window: everything
  // the mediator does while running ahead of the shard lanes. Measured as
  // the wall time between fences (two clock reads per fence) rather than
  // per event — the dispatch hot path stays clock-free.
  [[maybe_unused]] int64_t window_start = 0;
  QA_METRICS(config_.metrics) {
    window_start = util::MonotonicClock::NowNanos();
  }
  for (;;) {
    while (!events_.empty()) {
      if (events_.Peek().kind == SimEvent::Kind::kMarketTick) {
        // The conservative time-window barrier: before the market tick
        // runs, every lane has drained strictly up to the tick's own
        // canonical key and all buffered effects are applied — so the
        // tick (and everything the mediator does after it) observes
        // exactly the state the inline dispatch order would have built.
        // Nothing the merge schedules can precede the tick: loss
        // resubmissions land at tick times with node-lane stamps, which
        // sort after the tick's mediator stamp.
        QA_METRICS(config_.metrics) {
          config_.metrics->RecordPhase(
              obs::metrics::Phase::kMediatorDispatch,
              util::MonotonicClock::NowNanos() - window_start);
        }
        FenceAndMerge(events_.PeekTime(), events_.PeekStamp());
        QA_METRICS(config_.metrics) {
          window_start = util::MonotonicClock::NowNanos();
        }
      }
      current_time_ = events_.PeekTime();
      current_stamp_ = events_.PeekStamp();
      events_.RunOne([this](const SimEvent& event) { Dispatch(event); });
    }
    // Mediator queue drained: run the lanes dry (fault transitions on
    // idle nodes may remain past the last tick) and flush every buffered
    // record. A lane can only hand the mediator new work (a loss
    // resubmission) while queries are outstanding — and then a market
    // tick would still be queued — so this loop runs at most twice in
    // practice; the re-check keeps termination an invariant rather than
    // an argument.
    FenceAndMerge(kEndTime, kEndStamp);
    if (events_.empty()) break;
  }
}

void Federation::FenceAndMerge(util::VTime fence_time, uint64_t fence_stamp) {
  size_t lanes = lanes_.size();
  size_t queued = 0;
  for (const ShardLane& lane : lanes_) queued += lane.queue.size();

  if (queued > 0) {
    auto drain = [this, fence_time, fence_stamp](int s) {
      ShardLane& lane = lanes_[static_cast<size_t>(s)];
      // Per-lane wall-time attribution: each worker times its own lane and
      // writes a distinct slot (the fork-join publishes the writes), so
      // the shard-imbalance stats need no per-event clock reads and no
      // histogram sharing across threads.
      [[maybe_unused]] int64_t lane_start = 0;
      QA_METRICS(config_.metrics) {
        lane_start = util::MonotonicClock::NowNanos();
      }
      lane.dispatched = lane.queue.RunWhileBefore(
          fence_time, fence_stamp,
          [this, &lane](const SimEvent& event, util::VTime when,
                        uint64_t stamp) {
            DispatchShard(&lane, event, when, stamp);
          });
      QA_METRICS(config_.metrics) {
        config_.metrics->RecordLaneDrain(
            static_cast<size_t>(s),
            util::MonotonicClock::NowNanos() - lane_start, lane.dispatched);
      }
    };
    [[maybe_unused]] int64_t drain_start = 0;
    QA_METRICS(config_.metrics) {
      drain_start = util::MonotonicClock::NowNanos();
    }
    // Tiny windows are not worth a fork-join round trip; the drain is
    // byte-equivalent either way (lanes are independent by construction).
    if (config_.runner != nullptr && lanes > 1 && queued >= 64) {
      config_.runner->ParallelFor(static_cast<int>(lanes), drain);
    } else {
      for (size_t s = 0; s < lanes; ++s) drain(static_cast<int>(s));
    }
    QA_METRICS(config_.metrics) {
      // The whole fork-join section, observed once from the mediator
      // thread (per-lane times above capture the imbalance inside it).
      config_.metrics->RecordPhase(
          obs::metrics::Phase::kLaneDrain,
          util::MonotonicClock::NowNanos() - drain_start);
    }
    for (ShardLane& lane : lanes_) {
      metrics_.events_dispatched +=
          static_cast<int64_t>(lane.dispatched);
      lane.dispatched = 0;
    }
  }

  // (S+1)-way merge of the window's buffered effects in canonical
  // (time, stamp) order: each lane's outcome list and the mediator's
  // record list are individually key-sorted (their producers run in key
  // order), and keys never collide across lists (each stamp belongs to
  // exactly one dispatched event), so picking the smallest head
  // reproduces the inline dispatch order exactly — including the
  // floating-point accumulation order of the metrics and the byte order
  // of the trace.
  [[maybe_unused]] int64_t merge_start = 0;
  QA_METRICS(config_.metrics) {
    merge_start = util::MonotonicClock::NowNanos();
  }
  size_t med_index = 0;
  std::vector<size_t> out_index(lanes, 0);
  for (;;) {
    bool have = false;
    bool take_mediator = false;
    size_t best_lane = 0;
    util::VTime best_time = 0;
    uint64_t best_stamp = 0;
    if (med_index < med_items_.size()) {
      best_time = med_items_[med_index].time;
      best_stamp = med_items_[med_index].stamp;
      take_mediator = true;
      have = true;
    }
    for (size_t s = 0; s < lanes; ++s) {
      if (out_index[s] >= lanes_[s].outcomes.size()) continue;
      const ShardOutcome& outcome = lanes_[s].outcomes[out_index[s]];
      if (!have || outcome.time < best_time ||
          (outcome.time == best_time && outcome.stamp < best_stamp)) {
        best_time = outcome.time;
        best_stamp = outcome.stamp;
        take_mediator = false;
        best_lane = s;
        have = true;
      }
    }
    if (!have) break;
    if (take_mediator) {
      const MediatorTraceItem& item = med_items_[med_index++];
      // Only traced runs buffer mediator items, so the recorder is set.
      QA_OBS(config_.recorder) {
        if (item.is_snapshot) {
          config_.recorder->RecordSnapshot(item.time, item.snapshot);
        } else {
          config_.recorder->Record(item.record);
        }
      }
    } else {
      ApplyOutcome(lanes_[best_lane].outcomes[out_index[best_lane]++]);
    }
  }
  med_items_.clear();
  for (ShardLane& lane : lanes_) lane.outcomes.clear();
  QA_METRICS(config_.metrics) {
    config_.metrics->RecordPhase(obs::metrics::Phase::kMerge,
                                 util::MonotonicClock::NowNanos() -
                                     merge_start);
  }
}

void Federation::Dispatch(const SimEvent& event) {
  ++metrics_.events_dispatched;
  switch (event.kind) {
    case SimEvent::Kind::kArrival:
      HandleQuery(event.pending);
      break;
    case SimEvent::Kind::kDeliver:
      DeliverTask(nullptr, event.node, event.task, events_.now(),
                  /*stamp=*/0);
      break;
    case SimEvent::Kind::kComplete:
      CompleteTask(nullptr, event.node, event.task, events_.now(),
                   /*stamp=*/0);
      break;
    case SimEvent::Kind::kMarketTick:
      MarketTick();
      break;
    case SimEvent::Kind::kFault: {
      using TKind = faults::FaultInjector::Transition::Kind;
      if (event.transition.kind == TKind::kRestart) {
        HandleRestart(event.transition);
      } else if (event.transition.kind == TKind::kSurgeStart ||
                 event.transition.kind == TKind::kSurgeEnd) {
        HandleSurge(event.transition);
      } else {
        HandleShardFault(nullptr, event.transition, events_.now(),
                         /*stamp=*/0);
      }
      break;
    }
  }
}

void Federation::DispatchShard(ShardLane* lane, const SimEvent& event,
                               util::VTime now, uint64_t stamp) {
  switch (event.kind) {
    case SimEvent::Kind::kDeliver:
      DeliverTask(lane, event.node, event.task, now, stamp);
      break;
    case SimEvent::Kind::kComplete:
      CompleteTask(lane, event.node, event.task, now, stamp);
      break;
    case SimEvent::Kind::kFault:
      HandleShardFault(lane, event.transition, now, stamp);
      break;
    case SimEvent::Kind::kArrival:
    case SimEvent::Kind::kMarketTick:
      assert(false && "mediator-lane event in a shard lane");
      break;
  }
}

bool Federation::NodeOnline(catalog::NodeId node) const {
  if (injector_.Unreachable(node, events_.now())) return false;
  // During an allocation attempt under an active link fault, a node whose
  // request/offer hops were dropped looks exactly like an offline one: the
  // mediator's request times out and counts as a decline.
  if (link_mask_active_ && link_down_[static_cast<size_t>(node)] != 0) {
    return false;
  }
  return true;
}

void Federation::HandleQuery(SimEvent::Pending pending) {
  QA_OBS(config_.recorder) {
    if (pending.attempts == 0) {
      obs::EventRecord event;
      event.kind = obs::EventRecord::Kind::kArrival;
      event.t_us = events_.now();
      event.query = pending.id;
      event.class_id = pending.arrival.class_id;
      event.origin = pending.arrival.origin;
      EmitRecord(event);
      config_.recorder->Count("arrivals");
    }
  }

  // A retry/defer attempt leaving the heap frees its backlog slot (the
  // bound counts scheduled future attempts, not attempts being served).
  if (pending.attempts > 0) --retry_backlog_;

  // The client abandons a query whose sojourn has reached its response
  // deadline instead of renegotiating it: a placement that cannot possibly
  // answer in time is not worth another market round. Fresh arrivals
  // (attempts == 0) are never expired — their sojourn is zero.
  if (config_.query_deadline > 0 && pending.attempts > 0 &&
      events_.now() - pending.arrival.time >= config_.query_deadline) {
    if (admission_.enabled() && pending.admitted) {
      --admitted_in_flight_;
      --admission_load_;
    }
    DropQuery(pending.id, pending.arrival.class_id, pending.attempts,
              /*expired=*/true);
    return;
  }

  // The admission gate runs ahead of solicitation: a gated query never
  // reaches the market — no messages, no link-fault draws, no allocator
  // state change. Deferral re-queues it for the next market tick at the
  // price of one retry attempt; shedding drops it on the spot. Already-
  // admitted retries skip the gate — admission decides who enters the
  // market, not who may finish — and the gate's load signal is the
  // tick-refreshed admitted-in-flight view (admission_load_), never the
  // raw outstanding count: gating on "everything still unfinished" would
  // count the deferred queries against the very threshold they wait on.
  if (admission_.enabled() && !pending.admitted) {
    AdmissionController::Decision fate =
        admission_.Admit(pending.arrival.class_id, admission_load_);
    if (fate == AdmissionController::Decision::kShed) {
      ShedQuery(pending.id, pending.arrival.class_id, pending.attempts,
                /*admission=*/true);
      return;
    }
    if (fate == AdmissionController::Decision::kDefer) {
      ++pending.attempts;
      if (pending.attempts > config_.max_retries) {
        DropQuery(pending.id, pending.arrival.class_id, pending.attempts,
                  /*expired=*/false);
        return;
      }
      if (retry_backlog_ >= config_.max_retry_backlog) {
        ShedQuery(pending.id, pending.arrival.class_id, pending.attempts,
                  /*admission=*/true);
        return;
      }
      ++retry_backlog_;
      ++metrics_.retries;
      ++metrics_.retries_per_class[static_cast<size_t>(
          pending.arrival.class_id)];
      events_.Schedule(NextMarketTick(), NextMediatorStamp(),
                       SimEvent::MakeArrival(pending));
      return;
    }
    pending.admitted = true;
    ++admitted_in_flight_;
    ++admission_load_;
  }

  // Under an active link fault, draw the fate of this attempt's message
  // hops once per node before the mechanism runs: a node whose hops are
  // dropped is indistinguishable from an offline one (the request times
  // out — a decline). One draw per node per attempt, in node order, keeps
  // the RNG stream a function of the plan and the event order only.
  bool link_faults = injector_.AnyLinkFaultActive(events_.now());
  if (link_faults) {
    for (catalog::NodeId j = 0; j < num_nodes(); ++j) {
      link_down_[static_cast<size_t>(j)] =
          injector_.DropMessage(j, events_.now()) ? 1 : 0;
    }
    link_mask_active_ = true;
  }

  [[maybe_unused]] int64_t alloc_start = 0;
  QA_METRICS(config_.metrics) {
    // Sampled probe: one in kAllocProbeStride allocations is timed (the
    // sequence counter makes the choice deterministic). The reading is
    // deposited for the mechanism's own inner-stage probe — QA-NT's bid
    // scan chains from it rather than reading the clock again, and an
    // absent mark tells it this allocation is unsampled.
    if (alloc_probe_seq_++ % obs::metrics::kAllocProbeStride == 0) {
      alloc_start = util::MonotonicClock::NowNanos();
      config_.metrics->MarkPhaseStart(alloc_start);
    }
  }
  allocation::AllocationDecision decision =
      allocator_->Allocate(pending.arrival, *this);
  QA_METRICS(config_.metrics) {
    if (alloc_start != 0) {
      config_.metrics->RecordPhase(obs::metrics::Phase::kAllocate,
                                   util::MonotonicClock::NowNanos() -
                                       alloc_start,
                                   obs::metrics::kAllocProbeStride);
    }
  }
  metrics_.messages += decision.messages;
  metrics_.solicited += decision.solicited;
  metrics_.clusters_solicited += decision.clusters_solicited;

  // A mechanism that cannot observe liveness (Random/RoundRobin) may pick
  // an unreachable node: the query bounces at the network layer and is
  // resubmitted like any other failed placement.
  if (decision.node != allocation::kNoNode &&
      !NodeOnline(decision.node)) {
    ++metrics_.bounced;
    QA_OBS(config_.recorder) {
      obs::EventRecord event;
      event.kind = obs::EventRecord::Kind::kBounce;
      event.t_us = events_.now();
      event.query = pending.id;
      event.class_id = pending.arrival.class_id;
      event.node = decision.node;
      event.attempts = pending.attempts;
      EmitRecord(event);
      config_.recorder->Count("bounces");
    }
    decision.node = allocation::kNoNode;
  }
  // The per-attempt link mask only scopes the negotiation above; the
  // shipment hop below draws its own fate.
  link_mask_active_ = false;

  if (decision.node == allocation::kNoNode) {
    ++tick_rejects_;
    QA_METRICS(config_.metrics) {
      // Starvation-watchdog feed: how long this query has been waiting
      // since its original arrival. Virtual-time input — deterministic.
      watchdogs_->ObserveRejectSojourn(pending.arrival.class_id,
                                       events_.now() - pending.arrival.time);
    }
    ++pending.attempts;
    if (pending.attempts > config_.max_retries) {
      if (admission_.enabled() && pending.admitted) {
        --admitted_in_flight_;
        --admission_load_;
      }
      DropQuery(pending.id, pending.arrival.class_id, pending.attempts,
                /*expired=*/false);
      return;
    }
    // Bounded retry backlog: the escalating backoff below caps each
    // query's *delay*, but only this bound caps how many queries can sit
    // backed off at once — past it, overflow is shed instead of queued,
    // so a long outage costs O(bound) retry state, not O(arrivals).
    if (retry_backlog_ >= config_.max_retry_backlog) {
      if (admission_.enabled() && pending.admitted) {
        --admitted_in_flight_;
        --admission_load_;
      }
      ShedQuery(pending.id, pending.arrival.class_id, pending.attempts,
                /*admission=*/false);
      return;
    }
    ++retry_backlog_;
    ++metrics_.retries;
    ++metrics_.retries_per_class[static_cast<size_t>(
        pending.arrival.class_id)];
    QA_OBS(config_.recorder) {
      obs::EventRecord event;
      event.kind = obs::EventRecord::Kind::kReject;
      event.t_us = events_.now();
      event.query = pending.id;
      event.class_id = pending.arrival.class_id;
      event.messages = decision.messages;
      event.solicited = decision.solicited;
      event.cluster = decision.cluster;
      event.clusters_asked = decision.clusters_solicited;
      event.attempts = pending.attempts;
      EmitRecord(event);
      config_.recorder->Count("rejects");
    }
    // The client resubmits the query at the next market tick (§3.3 says
    // "next time period" — with staggered autonomous periods, some node's
    // period boundary passes every tick). Long-waiting queries back off to
    // once per full period so a deep overload costs O(backlog) retry work
    // per period instead of O(backlog * ticks). The tick event is already
    // scheduled and sorts ahead of the retry (mediator stamps issued
    // earlier are smaller), so the market refreshes before the retry runs.
    int wait_ticks = std::min(pending.attempts,
                              std::max(config_.market_tick_divisor, 1));
    // Market-protocol hardening: when whole market rounds go by with every
    // attempt declined (a dead market — mass crash, partition, or hard
    // overload), the mediators escalate exponentially instead of hammering
    // the market in lockstep, capped at max_backoff_periods whole periods.
    if (consecutive_decline_rounds_ > 2) {
      int shift = std::min(consecutive_decline_rounds_ - 2, 3);
      int cap = config_.max_backoff_periods *
                std::max(config_.market_tick_divisor, 1);
      wait_ticks = std::min(wait_ticks << shift, cap);
    }
    events_.Schedule(NextMarketTick() + (wait_ticks - 1) * TickInterval(),
                     NextMediatorStamp(), SimEvent::MakeArrival(pending));
    return;
  }

  ++tick_assigns_;
  ++metrics_.assigned;
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kAssign;
    event.t_us = events_.now();
    event.query = pending.id;
    event.class_id = pending.arrival.class_id;
    event.node = decision.node;
    event.messages = decision.messages;
    event.solicited = decision.solicited;
    event.cluster = decision.cluster;
    event.clusters_asked = decision.clusters_solicited;
    event.attempts = pending.attempts;
    EmitRecord(event);
    config_.recorder->Count("assigns");
  }
  QueryTask task;
  task.query_id = pending.id;
  task.class_id = pending.arrival.class_id;
  task.origin = pending.arrival.origin;
  task.arrival = pending.arrival.time;
  util::VDuration base =
      CachedCost(pending.arrival.class_id, decision.node);
  task.exec_time = std::max<util::VDuration>(
      static_cast<util::VDuration>(static_cast<double>(base) *
                                   pending.arrival.cost_jitter),
      1);
  task.work_units = best_cost_[static_cast<size_t>(task.class_id)];
  task.attempts = pending.attempts;
  task.cost_jitter = pending.arrival.cost_jitter;

  // The shipment hop draws its own fate under an active link fault: a
  // dropped shipment loses the (already accepted) query in flight; the
  // client notices the silence and resubmits at the next market tick.
  if (link_faults && injector_.DropMessage(decision.node, events_.now())) {
    LoseTaskMediator(task, decision.node);
    return;
  }

  // Probes run in parallel: one round trip for the negotiation (when any)
  // plus the hop that ships the query to the chosen node. A hierarchical
  // placement pays one more round trip — the top-tier cluster
  // negotiation precedes (and cannot overlap) the member negotiation.
  util::VDuration delay =
      decision.messages >= 2 ? 3 * config_.message_latency
                             : config_.message_latency;
  if (decision.cluster >= 0) delay += 2 * config_.message_latency;
  if (link_faults) {
    delay += injector_.ExtraLatency(decision.node, events_.now());
  }
  ScheduleNodeEvent(events_.now() + delay,
                    NextNodeStampFromMediator(decision.node),
                    SimEvent::MakeDeliver(decision.node, task));
}

void Federation::DropQuery(query::QueryId id, query::QueryClassId class_id,
                           int attempts, bool expired) {
  ++metrics_.dropped;
  ++metrics_.dropped_per_class[static_cast<size_t>(class_id)];
  if (expired) ++metrics_.expired;
  --outstanding_;
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kDrop;
    event.t_us = events_.now();
    event.query = id;
    event.class_id = class_id;
    event.attempts = attempts;
    EmitRecord(event);
    config_.recorder->Count(expired ? "expired" : "drops");
  }
}

void Federation::ShedQuery(query::QueryId id, query::QueryClassId class_id,
                           int attempts, bool admission) {
  ++metrics_.shed;
  if (admission) ++metrics_.admission_rejects;
  ++metrics_.dropped;
  ++metrics_.dropped_per_class[static_cast<size_t>(class_id)];
  --outstanding_;
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kShed;
    event.t_us = events_.now();
    event.query = id;
    event.class_id = class_id;
    event.attempts = attempts;
    EmitRecord(event);
    config_.recorder->Count("shed");
    if (admission) config_.recorder->Count("admission_rejects");
  }
}

void Federation::LoseTaskMediator(const QueryTask& task,
                                  catalog::NodeId node_id) {
  ++metrics_.lost;
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kLost;
    event.t_us = events_.now();
    event.query = task.query_id;
    event.class_id = task.class_id;
    event.node = node_id;
    event.attempts = task.attempts;
    EmitRecord(event);
    config_.recorder->Count("losses");
  }
  // A resubmission is retry backlog like any other; past the bound the
  // client gives up instead of queueing (accounted as shed, not retried).
  if (retry_backlog_ >= config_.max_retry_backlog) {
    if (admission_.enabled()) {
      // Tasks exist only past the admission gate; this is a mediator-lane
      // event, so the gate's view updates too.
      --admitted_in_flight_;
      --admission_load_;
    }
    ShedQuery(task.query_id, task.class_id, task.attempts + 1,
              /*admission=*/false);
    return;
  }
  ++retry_backlog_;
  // Reconstruct the client's pending query (original arrival time — the
  // loss inflates its response time, which is the point) and resubmit it
  // at the next market tick, one retry poorer. The tick event for that
  // time is already in the heap, so the market refreshes first.
  SimEvent::Pending pending;
  pending.arrival.time = task.arrival;
  pending.arrival.class_id = task.class_id;
  pending.arrival.origin = task.origin;
  pending.arrival.cost_jitter = task.cost_jitter;
  pending.id = task.query_id;
  pending.attempts = task.attempts + 1;
  pending.admitted = true;  // a task is past the gate by construction
  events_.Schedule(NextMarketTick(), NextMediatorStamp(),
                   SimEvent::MakeArrival(pending));
}

void Federation::LoseTaskShard(ShardLane* lane, const QueryTask& task,
                               catalog::NodeId node_id, util::VTime now,
                               uint64_t stamp) {
  ShardOutcome outcome;
  outcome.kind = ShardOutcome::Kind::kLost;
  outcome.node = node_id;
  outcome.time = now;
  outcome.stamp = stamp;
  outcome.task = task;
  // The resubmission is decided here, on the losing node's lane: its time
  // is the first market tick after the loss, its stamp comes from the
  // node's own counter — both pure functions of the node's event history,
  // so the mediator applying this outcome at the barrier schedules exactly
  // the arrival the inline dispatch order would have.
  outcome.resubmit_time = NextMarketTickAfter(now);
  outcome.resubmit_stamp = NextNodeStamp(node_id);
  Emit(lane, std::move(outcome));
}

void Federation::DeliverTask(ShardLane* lane, catalog::NodeId node_id,
                             const QueryTask& task, util::VTime now,
                             uint64_t stamp) {
  // The node crashed while the query was on the wire: the shipment reaches
  // a dead machine and is lost (the negotiation happened before the
  // crash). The client resubmits at the next market tick.
  if (injector_.Crashed(node_id, now)) {
    LoseTaskShard(lane, task, node_id, now, stamp);
    return;
  }
  QueryTask delivered = task;
  // Degraded capacity: the node executes at a fraction of its advertised
  // speed, so the execution time fixed at allocation stretches. The
  // mechanism is not told — its learned costs/prices are now stale, which
  // is exactly the failure mode under study.
  double speed = injector_.SpeedFactor(node_id, now);
  if (speed < 1.0) {
    delivered.exec_time = std::max<util::VDuration>(
        static_cast<util::VDuration>(
            static_cast<double>(delivered.exec_time) / speed),
        1);
  }
  // Bounded node queue: a delivery that would leave more than
  // max_node_queue tasks waiting sheds one task instead of growing the
  // queue. Newest-first sheds the arriving task; lowest-priority-first
  // evicts the most expensive queued task when the arrival is strictly
  // cheaper (so cheap work still completes under pressure) and otherwise
  // sheds the arrival. Pure node-lane state — deterministic in both
  // execution modes, and never gated on observability.
  if (pool_.QueueLength(node_id) >= config_.max_node_queue) {
    if (config_.shed_policy == ShedPolicy::kLowestPriorityFirst) {
      QueryTask victim;
      if (pool_.EvictWorseQueued(
              node_id, best_cost_,
              best_cost_[static_cast<size_t>(delivered.class_id)],
              &victim)) {
        ShedTaskShard(lane, victim, node_id, now, stamp);
      } else {
        ShedTaskShard(lane, delivered, node_id, now, stamp);
        return;
      }
    } else {
      ShedTaskShard(lane, delivered, node_id, now, stamp);
      return;
    }
  }
  QA_OBS(config_.recorder) {
    ShardOutcome outcome;
    outcome.kind = ShardOutcome::Kind::kDeliverRecord;
    outcome.node = node_id;
    outcome.time = now;
    outcome.stamp = stamp;
    outcome.task = delivered;
    Emit(lane, std::move(outcome));
  }
  if (pool_.Enqueue(node_id, delivered)) {
    StartTask(node_id, now);
  }
}

void Federation::ShedTaskShard(ShardLane* lane, const QueryTask& task,
                               catalog::NodeId node_id, util::VTime now,
                               uint64_t stamp) {
  ShardOutcome outcome;
  outcome.kind = ShardOutcome::Kind::kShed;
  outcome.node = node_id;
  outcome.time = now;
  outcome.stamp = stamp;
  outcome.task = task;
  Emit(lane, std::move(outcome));
}

void Federation::StartTask(catalog::NodeId node_id, util::VTime now) {
  QueryTask task = pool_.BeginNext(node_id, now);
  // Stamp the node's incarnation so this completion event can be
  // recognized as stale if a crash wipes the task before it fires.
  task.epoch = pool_.epoch(node_id);
  ScheduleNodeEvent(now + task.exec_time, NextNodeStamp(node_id),
                    SimEvent::MakeComplete(node_id, task));
}

void Federation::CompleteTask(ShardLane* lane, catalog::NodeId node_id,
                              const QueryTask& task, util::VTime now,
                              uint64_t stamp) {
  // A crash bumped the node's epoch after this completion was scheduled:
  // the task it announces was wiped (and resubmitted by its client), so
  // the event is a ghost of the previous incarnation. Ignore it.
  if (task.epoch != pool_.epoch(node_id)) return;
  bool more = pool_.CompleteCurrent(node_id, now);

  ShardOutcome outcome;
  outcome.node = node_id;
  outcome.time = now;
  outcome.stamp = stamp;
  outcome.task = task;
  // The result arrived after the client's deadline: nobody is waiting for
  // it. The node's work is already spent (wasted capacity — the real cost
  // of serving a client that gave up); the query counts as expired.
  if (config_.query_deadline > 0 &&
      now - task.arrival > config_.query_deadline) {
    outcome.kind = ShardOutcome::Kind::kExpired;
  } else {
    outcome.kind = ShardOutcome::Kind::kComplete;
  }
  Emit(lane, std::move(outcome));

  if (more) StartTask(node_id, now);
}

void Federation::HandleRestart(
    const faults::FaultInjector::Transition& transition) {
  assert(transition.kind ==
         faults::FaultInjector::Transition::Kind::kRestart);
  // The node is back with empty queues and default configuration; a
  // mechanism with learned per-node state (QA-NT's price vector) resets it
  // and re-learns through ordinary market interaction.
  allocator_->OnNodeRestart(transition.node, events_.now());
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kRestart;
    event.t_us = events_.now();
    event.node = transition.node;
    EmitRecord(event);
    config_.recorder->Count("restarts");
  }
}

void Federation::HandleSurge(
    const faults::FaultInjector::Transition& transition) {
  // The arrival-rate change was already applied when the trace was
  // expanded at schedule time; this transition exists so traced runs carry
  // a `surge` marker (analysis tools anchor recovery windows on it).
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kSurge;
    event.t_us = events_.now();
    event.class_id = transition.class_id;
    event.factor = transition.factor;
    EmitRecord(event);
    config_.recorder->Count("surges");
  }
}

void Federation::HandleShardFault(
    ShardLane* lane, const faults::FaultInjector::Transition& transition,
    util::VTime now, uint64_t stamp) {
  using Kind = faults::FaultInjector::Transition::Kind;
  switch (transition.kind) {
    case Kind::kCrash: {
      std::vector<QueryTask> wiped;
      pool_.Crash(transition.node, now, &wiped);
      QA_OBS(config_.recorder) {
        ShardOutcome outcome;
        outcome.kind = ShardOutcome::Kind::kCrashRecord;
        outcome.node = transition.node;
        outcome.time = now;
        outcome.stamp = stamp;
        Emit(lane, std::move(outcome));
      }
      // Everything queued or running there is gone with the volatile
      // state; the clients detect the silence and resubmit.
      for (const QueryTask& task : wiped) {
        LoseTaskShard(lane, task, transition.node, now, stamp);
      }
      break;
    }
    case Kind::kRestart:
    case Kind::kSurgeStart:
    case Kind::kSurgeEnd:
      assert(false && "restart/surge transitions are mediator-lane events");
      break;
    case Kind::kDegradeStart:
    case Kind::kDegradeEnd:
      QA_OBS(config_.recorder) {
        ShardOutcome outcome;
        outcome.kind = ShardOutcome::Kind::kDegradeRecord;
        outcome.node = transition.node;
        outcome.time = now;
        outcome.stamp = stamp;
        outcome.factor = transition.factor;
        Emit(lane, std::move(outcome));
      }
      break;
  }
}

void Federation::Emit(ShardLane* lane, ShardOutcome outcome) {
  if (lane != nullptr) {
    lane->outcomes.push_back(std::move(outcome));
  } else {
    ApplyOutcome(outcome);
  }
}

void Federation::ApplyOutcome(const ShardOutcome& outcome) {
  // Runs on the mediator thread only (inline dispatch, or the barrier
  // merge), in canonical key order. All times come from the outcome — at
  // a barrier the mediator clock has already moved past them.
  switch (outcome.kind) {
    case ShardOutcome::Kind::kDeliverRecord: {
      QA_OBS(config_.recorder) {
        obs::EventRecord event;
        event.kind = obs::EventRecord::Kind::kDeliver;
        event.t_us = outcome.time;
        event.query = outcome.task.query_id;
        event.class_id = outcome.task.class_id;
        event.node = outcome.node;
        config_.recorder->Record(event);
        config_.recorder->Count("deliveries");
      }
      break;
    }
    case ShardOutcome::Kind::kComplete: {
      double response_ms =
          util::ToMillis(outcome.time - outcome.task.arrival);
      QA_OBS(config_.recorder) {
        obs::EventRecord event;
        event.kind = obs::EventRecord::Kind::kComplete;
        event.t_us = outcome.time;
        event.query = outcome.task.query_id;
        event.class_id = outcome.task.class_id;
        event.node = outcome.node;
        event.response_ms = response_ms;
        config_.recorder->Record(event);
        config_.recorder->Count("completions");
      }
      metrics_.response_time_ms.Add(response_ms);
      metrics_.completions.Add(outcome.time,
                               static_cast<double>(outcome.task.class_id));
      metrics_.completions_per_class[static_cast<size_t>(
          outcome.task.class_id)].Add(outcome.time, 1.0);
      ++metrics_.completed;
      --outstanding_;
      // Node-side terminations update only the exact in-flight count, not
      // the gate's view: inline mode applies this immediately, sharded
      // mode at the next fence, and the gate may run in between. The view
      // resyncs at the tick (see admission_load_).
      if (admission_.enabled()) --admitted_in_flight_;
      break;
    }
    case ShardOutcome::Kind::kExpired: {
      ++metrics_.dropped;
      ++metrics_.dropped_per_class[static_cast<size_t>(
          outcome.task.class_id)];
      ++metrics_.expired;
      --outstanding_;
      if (admission_.enabled()) --admitted_in_flight_;
      QA_OBS(config_.recorder) {
        obs::EventRecord event;
        event.kind = obs::EventRecord::Kind::kDrop;
        event.t_us = outcome.time;
        event.query = outcome.task.query_id;
        event.class_id = outcome.task.class_id;
        event.attempts = outcome.task.attempts;
        config_.recorder->Record(event);
        config_.recorder->Count("expired");
      }
      break;
    }
    case ShardOutcome::Kind::kLost: {
      ++metrics_.lost;
      QA_OBS(config_.recorder) {
        obs::EventRecord event;
        event.kind = obs::EventRecord::Kind::kLost;
        event.t_us = outcome.time;
        event.query = outcome.task.query_id;
        event.class_id = outcome.task.class_id;
        event.node = outcome.node;
        event.attempts = outcome.task.attempts;
        config_.recorder->Record(event);
        config_.recorder->Count("losses");
      }
      // Bounded retry backlog, exactly like the mediator-side loss path:
      // past the bound the client gives up (shed) instead of queueing.
      if (retry_backlog_ >= config_.max_retry_backlog) {
        ++metrics_.shed;
        ++metrics_.dropped;
        ++metrics_.dropped_per_class[static_cast<size_t>(
            outcome.task.class_id)];
        --outstanding_;
        if (admission_.enabled()) --admitted_in_flight_;
        QA_OBS(config_.recorder) {
          obs::EventRecord event;
          event.kind = obs::EventRecord::Kind::kShed;
          event.t_us = outcome.time;
          event.query = outcome.task.query_id;
          event.class_id = outcome.task.class_id;
          event.node = outcome.node;
          event.attempts = outcome.task.attempts + 1;
          config_.recorder->Record(event);
          config_.recorder->Count("shed");
        }
        break;
      }
      ++retry_backlog_;
      // Reconstruct the client's pending query (original arrival time —
      // the loss inflates its response time, which is the point) and
      // resubmit it with the time and stamp the losing lane fixed.
      SimEvent::Pending pending;
      pending.arrival.time = outcome.task.arrival;
      pending.arrival.class_id = outcome.task.class_id;
      pending.arrival.origin = outcome.task.origin;
      pending.arrival.cost_jitter = outcome.task.cost_jitter;
      pending.id = outcome.task.query_id;
      pending.attempts = outcome.task.attempts + 1;
      pending.admitted = true;  // a task is past the gate by construction
      events_.Schedule(outcome.resubmit_time, outcome.resubmit_stamp,
                       SimEvent::MakeArrival(pending));
      break;
    }
    case ShardOutcome::Kind::kCrashRecord: {
      QA_OBS(config_.recorder) {
        obs::EventRecord event;
        event.kind = obs::EventRecord::Kind::kCrash;
        event.t_us = outcome.time;
        event.node = outcome.node;
        config_.recorder->Record(event);
        config_.recorder->Count("crashes");
      }
      break;
    }
    case ShardOutcome::Kind::kDegradeRecord: {
      QA_OBS(config_.recorder) {
        obs::EventRecord event;
        event.kind = obs::EventRecord::Kind::kDegrade;
        event.t_us = outcome.time;
        event.node = outcome.node;
        event.factor = outcome.factor;
        config_.recorder->Record(event);
        config_.recorder->Count("degrades");
      }
      break;
    }
    case ShardOutcome::Kind::kShed: {
      // A bounded node queue turned the task away (or evicted it):
      // shed ⊆ dropped, so conservation still closes the run.
      ++metrics_.shed;
      ++metrics_.dropped;
      ++metrics_.dropped_per_class[static_cast<size_t>(
          outcome.task.class_id)];
      --outstanding_;
      if (admission_.enabled()) --admitted_in_flight_;
      QA_OBS(config_.recorder) {
        obs::EventRecord event;
        event.kind = obs::EventRecord::Kind::kShed;
        event.t_us = outcome.time;
        event.query = outcome.task.query_id;
        event.class_id = outcome.task.class_id;
        event.node = outcome.node;
        event.attempts = outcome.task.attempts;
        config_.recorder->Record(event);
        config_.recorder->Count("shed");
      }
      break;
    }
  }
}

void Federation::MarketTick() {
  [[maybe_unused]] int64_t tick_start = 0;
  QA_METRICS(config_.metrics) {
    // Sampled like the allocate probe (kTickProbeStride). The reading is
    // deposited so the mechanism's period hook can time its rollover
    // stage without another clock read; an absent mark marks the tick
    // unsampled.
    if (tick_probe_seq_++ % obs::metrics::kTickProbeStride == 0) {
      tick_start = util::MonotonicClock::NowNanos();
      config_.metrics->MarkPhaseStart(tick_start);
    }
  }
  allocator_->OnPeriodEnd(events_.now());
  allocator_->OnPeriodStart(events_.now());
  ++ticks_;
  // Backoff streak bookkeeping: a round where every allocation attempt
  // was declined bumps the streak, any successful assignment resets it,
  // and a quiet round (no attempts) leaves it alone.
  if (tick_rejects_ > 0 && tick_assigns_ == 0) {
    ++consecutive_decline_rounds_;
  } else if (tick_assigns_ > 0) {
    consecutive_decline_rounds_ = 0;
  }
  tick_assigns_ = 0;
  tick_rejects_ = 0;
  // Admission-control update, once per global period. Deliberately NOT
  // inside a QA_METRICS gate: admission changes which queries run, so it
  // must behave identically with and without a collector attached (the
  // collector-never-perturbs invariant, DESIGN.md §9). The controller
  // keeps its own probe for the same reason.
  if (admission_.enabled()) {
    // The fence has run (sharded mode merges every lane before a market
    // tick dispatches), so admitted_in_flight_ is exact in both modes
    // here: resync the gate's view so node-side completions since the
    // last tick free admission slots.
    admission_load_ = admitted_in_flight_;
    if (ticks_ % std::max(config_.market_tick_divisor, 1) == 0) {
      if (admission_.wants_probe()) {
        allocator_->FillMarketProbe(&admission_probe_);
      }
      admission_.OnPeriod(admission_probe_);
    }
  }
  QA_OBS(config_.recorder) {
    obs::EventRecord event;
    event.kind = obs::EventRecord::Kind::kTick;
    event.t_us = events_.now();
    EmitRecord(event);
    config_.recorder->Count("ticks");
    // Snapshot once per global period (every divisor-th tick), after the
    // period hooks ran: post-rollover prices are what convergence analysis
    // wants to see.
    if (ticks_ % std::max(config_.market_tick_divisor, 1) == 0) {
      EmitSnapshot();
    }
  }
  QA_METRICS(config_.metrics) {
    // The tick phase is the allocator's period hooks plus bookkeeping;
    // sampling and watchdog evaluation is attributed separately below.
    if (tick_start != 0) {
      config_.metrics->RecordPhase(obs::metrics::Phase::kMarketTick,
                                   util::MonotonicClock::NowNanos() -
                                       tick_start,
                                   obs::metrics::kTickProbeStride);
    }
    // Sample once per global period (every divisor-th tick), after the
    // period hooks: the barrier before this tick applied every outcome
    // with an earlier key, so the cumulative counters here are the inline
    // mode's counters byte for byte.
    if (ticks_ % std::max(config_.market_tick_divisor, 1) == 0) {
      obs::metrics::ScopedPhaseTimer timer(config_.metrics,
                                           obs::metrics::Phase::kSnapshot);
      EmitMetricsSample();
    }
  }
  // The barrier before this tick applied every completion and drop with
  // an earlier key, so `outstanding_` is exact here in both modes.
  if (outstanding_ > 0) {
    events_.Schedule(events_.now() + TickInterval(), NextMediatorStamp(),
                     SimEvent::MakeMarketTick());
  }
}

void Federation::EmitRecord(const obs::EventRecord& record) {
  // Every call site is inside a QA_OBS gate already; gating again here
  // keeps the recorder call compiled away under -DQA_OBS_DISABLED.
  QA_OBS(config_.recorder) {
    if (!sharded_) {
      config_.recorder->Record(record);
      return;
    }
    MediatorTraceItem item;
    item.time = current_time_;
    item.stamp = current_stamp_;
    item.record = record;
    med_items_.push_back(std::move(item));
  }
}

void Federation::EmitSnapshot() {
  // The call site sits inside a QA_OBS gate already, but gate here too so
  // the allocator Snapshot() walk compiles away under -DQA_OBS_DISABLED.
  QA_OBS(config_.recorder) {
    if (!sharded_) {
      config_.recorder->RecordSnapshot(events_.now(),
                                       allocator_->Snapshot());
    } else {
      // Materialized eagerly: by the time the barrier flushes this item
      // the allocator has moved on, and a late Snapshot() would show the
      // future.
      MediatorTraceItem item;
      item.time = current_time_;
      item.stamp = current_stamp_;
      item.is_snapshot = true;
      item.snapshot = allocator_->Snapshot();
      med_items_.push_back(std::move(item));
    }
    config_.recorder->Count("snapshots");
  }
}

void Federation::EmitMetricsSample() {
  // Call sites are inside QA_METRICS gates already; gating again keeps the
  // snapshot walk compiled away under -DQA_METRICS_DISABLED.
  QA_METRICS(config_.metrics) {
    int divisor = std::max(config_.market_tick_divisor, 1);
    obs::metrics::SampleRow row;
    row.t_us = events_.now();
    row.period = ticks_ / divisor;
    row.ticks = ticks_;
    row.events_dispatched = metrics_.events_dispatched;
    row.assigned = metrics_.assigned;
    row.completed = metrics_.completed;
    row.dropped = metrics_.dropped;
    row.expired = metrics_.expired;
    row.bounced = metrics_.bounced;
    row.lost = metrics_.lost;
    row.retries = metrics_.retries;
    row.messages = metrics_.messages;
    row.solicited = metrics_.solicited;
    row.outstanding = outstanding_;
    row.shed = metrics_.shed;
    row.admission_rejects = metrics_.admission_rejects;
    row.brownout_level = admission_.brownout_level();
    // Queue-depth histogram: per-node waiting-queue lengths at the period
    // fence. Virtual state, so the histogram is as deterministic as the
    // counters (the one histogram that is not a wall-clock side channel).
    for (catalog::NodeId j = 0; j < num_nodes_; ++j) {
      config_.metrics->registry().Observe(obs::metrics::kNodeQueueDepth,
                                          pool_.QueueLength(j));
    }
    // Watchdogs first: alarms precede the sample that carries the gauges
    // they fired on, so the stream reads cause-before-effect.
    watchdogs_->ObserveOverload(metrics_.shed, admission_.brownout_level());
    allocator_->FillMarketProbe(&market_probe_);
    std::vector<obs::metrics::AlarmRecord> alarms =
        watchdogs_->EvaluatePeriod(row.period, events_.now(), market_probe_);
    for (const obs::metrics::AlarmRecord& alarm : alarms) {
      config_.metrics->Alarm(alarm);
    }
    row.log_price_variance = watchdogs_->log_price_variance();
    row.osc_flip_rate = watchdogs_->osc_flip_rate();
    row.max_reject_age_ms = watchdogs_->max_reject_age_ms();
    row.earnings_cv = watchdogs_->earnings_cv();
    config_.metrics->Sample(row);
  }
}

util::VDuration Federation::TickInterval() const {
  return std::max<util::VDuration>(
      config_.period / std::max(config_.market_tick_divisor, 1), 1);
}

util::VTime Federation::NextMarketTick() const {
  return NextMarketTickAfter(events_.now());
}

util::VTime Federation::NextMarketTickAfter(util::VTime t) const {
  util::VDuration tick = TickInterval();
  return (t / tick + 1) * tick;
}

void Federation::ScheduleNodeEvent(util::VTime when, uint64_t stamp,
                                   SimEvent event) {
  if (sharded_) {
    lanes_[static_cast<size_t>(plan_.shard_of(event.node))].queue.Schedule(
        when, stamp, event);
  } else {
    events_.Schedule(when, stamp, event);
  }
}

double EstimateCapacityQps(const query::CostModel& cost_model,
                           const std::vector<double>& mix,
                           util::VDuration period, int periods) {
  assert(static_cast<int>(mix.size()) == cost_model.num_classes());
  double mix_sum = 0.0;
  for (double m : mix) mix_sum += m;
  assert(mix_sum > 0.0);

  // Upper bound on per-period throughput: every node runs its cheapest
  // class back to back.
  double max_per_period = 0.0;
  for (catalog::NodeId j = 0; j < cost_model.num_nodes(); ++j) {
    util::VDuration cheapest = query::kInfeasibleCost;
    for (int k = 0; k < cost_model.num_classes(); ++k) {
      cheapest = std::min(cheapest, cost_model.Cost(k, j));
    }
    if (cheapest != query::kInfeasibleCost && cheapest > 0) {
      max_per_period +=
          static_cast<double>(period) / static_cast<double>(cheapest);
    }
  }

  market::MarketSimConfig sim_config;
  sim_config.period = period;
  market::MarketSimulator sim(&cost_model, sim_config);

  // Keep each class's pending queue topped up to ~2x its mix share of the
  // throughput bound so servers are always saturated without letting the
  // queues (and the per-period cost) grow unboundedly.
  auto top_up = [&]() {
    std::vector<market::QuantityVector> demand(
        static_cast<size_t>(cost_model.num_nodes()),
        market::QuantityVector(cost_model.num_classes()));
    for (int k = 0; k < cost_model.num_classes(); ++k) {
      double want = 2.0 * max_per_period *
                    (mix[static_cast<size_t>(k)] / mix_sum);
      market::Quantity have = 0;
      for (const auto& p : sim.pending()) have += p[k];
      market::Quantity need =
          static_cast<market::Quantity>(std::ceil(want)) - have;
      if (need > 0) demand[0][k] = need;
    }
    return demand;
  };

  int warmup = periods / 2;
  market::Quantity consumed = 0;
  for (int t = 0; t < periods; ++t) {
    market::MarketSimulator::PeriodResult result = sim.RunPeriod(top_up());
    if (t >= warmup) consumed += result.aggregate_consumption.Total();
  }
  double measured_seconds =
      util::ToSeconds(period) * static_cast<double>(periods - warmup);
  return measured_seconds > 0.0 ? static_cast<double>(consumed) /
                                      measured_seconds
                                : 0.0;
}

}  // namespace qa::sim
