#include "sim/scenario.h"

#include <cmath>

namespace qa::sim {

Scenario BuildTable3Scenario(const Table3Config& config, util::Rng& rng) {
  Scenario scenario;
  scenario.catalog = std::make_unique<catalog::Catalog>(
      catalog::Catalog::MakeSynthetic(config.catalog, rng));
  std::vector<query::NodeProfile> profiles =
      query::MakeSyntheticProfiles(config.profiles, rng);
  std::vector<query::QueryTemplate> templates =
      query::GenerateTemplates(*scenario.catalog, config.templates, rng);
  auto cost_model = std::make_unique<query::SyntheticCostModel>(
      scenario.catalog.get(), std::move(profiles), std::move(templates));
  cost_model->CalibrateBestCost(config.avg_best_exec);
  scenario.cost_model = std::move(cost_model);
  return scenario;
}

std::unique_ptr<query::MatrixCostModel> BuildTwoClassCostModel(
    const TwoClassConfig& config, util::Rng& rng) {
  auto model =
      std::make_unique<query::MatrixCostModel>(2, config.num_nodes);
  int num_q2 = static_cast<int>(
      std::lround(config.q2_feasible_fraction * config.num_nodes));
  std::vector<int> q2_nodes = rng.Sample(config.num_nodes, num_q2);
  std::vector<bool> q2_ok(static_cast<size_t>(config.num_nodes), false);
  for (int j : q2_nodes) q2_ok[static_cast<size_t>(j)] = true;

  for (catalog::NodeId j = 0; j < config.num_nodes; ++j) {
    double speed = config.node_speed_spread > 0.0
                       ? rng.UniformReal(1.0 - config.node_speed_spread,
                                         1.0 + config.node_speed_spread)
                       : 1.0;
    model->SetCost(0, j,
                   std::max<util::VDuration>(
                       static_cast<util::VDuration>(
                           static_cast<double>(config.q1_avg) * speed),
                       1));
    if (q2_ok[static_cast<size_t>(j)]) {
      model->SetCost(1, j,
                     std::max<util::VDuration>(
                         static_cast<util::VDuration>(
                             static_cast<double>(config.q2_avg) * speed),
                         1));
    }
  }
  return model;
}

std::unique_ptr<query::MatrixCostModel> BuildFig1CostModel() {
  auto model = std::make_unique<query::MatrixCostModel>(2, 2);
  model->SetCost(0, 0, 400 * util::kMillisecond);   // q1 on N1
  model->SetCost(1, 0, 100 * util::kMillisecond);   // q2 on N1
  model->SetCost(0, 1, 450 * util::kMillisecond);   // q1 on N2
  model->SetCost(1, 1, 500 * util::kMillisecond);   // q2 on N2
  return model;
}

}  // namespace qa::sim
