#ifndef QAMARKET_SIM_ADMISSION_H_
#define QAMARKET_SIM_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "obs/metrics/market_probe.h"
#include "util/status.h"

namespace qa::sim {

/// What the federation does with queued work when a shed bound trips.
enum class ShedPolicy : uint8_t {
  /// Shed the arriving task; everything already queued keeps its place.
  kNewestFirst = 0,
  /// Evict the queued task of the most expensive class (highest advertised
  /// best cost; newest among ties) when it is strictly more expensive than
  /// the arriving one, otherwise shed the arrival. Under brownout-style
  /// load this preferentially completes cheap queries.
  kLowestPriorityFirst = 1,
};

/// How the mediator gates fresh work ahead of solicitation.
enum class AdmissionPolicy : uint8_t {
  /// No gate: every arrival goes to market (the pre-overload behavior).
  kOff = 0,
  /// Shed arrivals while more than `max_outstanding` queries are in
  /// flight. Load-blind but mechanism-agnostic.
  kStatic = 1,
  /// Price-signaled: the market's own scarcity signal (mean log price
  /// across agents and classes, read from the allocator's MarketProbe)
  /// drives a brownout level with hysteresis. Level k sheds the k most
  /// expensive query classes; level 0 admits everything. Mechanisms that
  /// expose no prices (Random, RoundRobin) fall back to the static
  /// `max_outstanding` threshold.
  kPriceSignal = 2,
};

/// Admission-control knobs, embedded in FederationConfig.
struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::kOff;
  /// kStatic threshold, and the probe-less fallback for kPriceSignal.
  /// 0 disables the outstanding-count gate entirely.
  int64_t max_outstanding = 0;
  /// kPriceSignal hysteresis band, as price ratios over the post-warmup
  /// baseline: the brownout level rises while the ratio is >= enter_ratio
  /// and the index is not falling, and falls while the ratio is
  /// <= exit_ratio or the index declined this period (a falling price
  /// means the market is clearing — see AdmissionController::OnPeriod).
  /// Requires enter_ratio > exit_ratio > 0.
  double enter_ratio = 3.0;
  double exit_ratio = 1.5;
  /// Number of leading global periods before the gate starts acting
  /// (>= 1). Everything is admitted during warmup. With baseline_alpha
  /// == 0 the baseline freezes at the mean index over the back half of
  /// the window (the front half carries the cold-start price-discovery
  /// ramp); with baseline_alpha > 0 warmup is simply the time the
  /// tracking EMA gets to converge before its ratio has consequences.
  int warmup_periods = 2;
  /// Baseline tracking rate, in [0, 1). 0 = frozen baseline. A positive
  /// alpha makes the baseline an EMA of the index — seeded on the first
  /// priced period, moved by `alpha * (index - baseline)` each period.
  /// After warmup the update is skipped while the ratio is at or above
  /// enter_ratio, so slow price drift (QA-NT's index creeps upward even
  /// at constant load: decline-driven bumps are multiplicative, the
  /// decay is slow) reads as normal while a flash crowd, which outruns
  /// the tracking rate, still explodes the ratio — and cannot redefine
  /// "normal" while the gate considers it scarcity.
  double baseline_alpha = 0.0;
  /// When true, gated arrivals are deferred to the next market tick (one
  /// retry attempt consumed) instead of shed outright.
  bool defer = false;

  util::Status Validate() const;
};

/// Per-run admission state machine. The federation constructs one per Run,
/// feeds it the allocator's MarketProbe once per global period (from the
/// market tick, never gated on whether a metrics collector is attached —
/// admission is simulation behavior, not observability), and consults
/// Admit() for every query it is about to solicit for.
///
/// Everything here is a pure function of the probe sequence, so runs stay
/// byte-identical across shard/thread layouts.
class AdmissionController {
 public:
  enum class Decision : uint8_t { kAdmit = 0, kDefer = 1, kShed = 2 };

  AdmissionController() = default;
  /// `class_costs[c]` is the cheapest advertised cost of class c (the
  /// federation's best_cost_ table); it fixes the brownout order —
  /// expensive classes brown out first.
  AdmissionController(const AdmissionConfig& config,
                      const std::vector<double>& class_costs);

  bool enabled() const { return config_.policy != AdmissionPolicy::kOff; }
  bool wants_probe() const {
    return config_.policy == AdmissionPolicy::kPriceSignal;
  }

  /// Advances one global period: folds the probe's mean log price into the
  /// warmup baseline or, after warmup, moves the brownout level one step
  /// through the hysteresis band. A probe without market state (non-price
  /// mechanisms) leaves the level at 0 and arms the static fallback.
  void OnPeriod(const obs::metrics::MarketProbe& probe);

  /// The fate of a not-yet-admitted query of `class_id`, evaluated before
  /// solicitation. `outstanding` is the caller's admitted-in-flight count
  /// (queries past this gate that have not yet terminated), refreshed at
  /// market-tick granularity so decisions are layout-invariant. Never
  /// returns kDefer unless the config asks for deferral.
  Decision Admit(int class_id, int64_t outstanding) const;

  /// Current brownout level: number of (most expensive first) classes
  /// currently being gated. 0 = everything admitted.
  int brownout_level() const { return brownout_level_; }
  /// Last observed price ratio over the (frozen or slow-tracking)
  /// baseline (1.0 until the baseline exists).
  double price_ratio() const { return price_ratio_; }

 private:
  Decision Gate() const {
    return config_.defer ? Decision::kDefer : Decision::kShed;
  }

  AdmissionConfig config_;
  /// brownout_rank_[c] = position of class c in the expensive-first order;
  /// class c is gated while brownout_rank_[c] < brownout_level_.
  std::vector<int> brownout_rank_;
  int num_classes_ = 0;
  int periods_seen_ = 0;
  int baseline_periods_ = 0;
  double baseline_sum_ = 0.0;
  double baseline_ = 0.0;
  double prev_index_ = 0.0;
  bool baseline_frozen_ = false;
  bool probe_has_market_ = false;
  double price_ratio_ = 1.0;
  int brownout_level_ = 0;
};

}  // namespace qa::sim

#endif  // QAMARKET_SIM_ADMISSION_H_
