#ifndef QAMARKET_SIM_SHARD_H_
#define QAMARKET_SIM_SHARD_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "util/rng.h"

namespace qa::sim {

/// Canonical event-stamp encoding for the sharded simulator core.
///
/// Events at equal virtual time are ordered by a 64-bit stamp. For the
/// sharded federation the stamp must be a pure function of the *scenario*
/// — never of how nodes are placed on shards or how many threads drain
/// them — so one global event order exists that every (shards, threads)
/// configuration reproduces byte for byte. The encoding:
///
///     [ node+1 : 23 bits ][ sublane : 1 bit ][ counter : 40 bits ]
///
///  - Mediator-lane events (arrivals, resubmissions issued by the
///    mediator, market ticks, restarts) use node = -1: the high bits are
///    zero and the stamp is just the mediator's own scheduling counter.
///    The mediator's decisions never read shard-side state, so its
///    scheduling order — and therefore these stamps — is identical in
///    inline and sharded execution.
///  - Node-lane events carry the target node in the high bits, so at equal
///    time the order is: mediator events first, then node events in node
///    order. Two sublanes per node keep the counters placement-
///    independent: sublane 0 stamps are allocated by the *mediator* (in
///    mediator order: deliveries it ships, fault transitions at setup),
///    sublane 1 stamps by the node's own event processing (in the node's
///    event-key order: completions it schedules, resubmissions of queries
///    it lost). Each allocator's history is mode-invariant, so the stamps
///    are too; had the two shared one counter, the stamp a completion gets
///    would depend on how far the mediator had run ahead — i.e. on the
///    barrier placement.
///
/// FIFO semantics within a (node, sublane) stream are preserved because
/// counters only increase.
struct EventStamp {
  static constexpr int kCounterBits = 40;
  static constexpr int kSublaneBits = 1;
  static constexpr uint64_t kCounterMask = (uint64_t{1} << kCounterBits) - 1;

  /// Mediator-lane stamp: plain scheduling counter, sorts before every
  /// node-lane stamp at equal time.
  static uint64_t Mediator(uint64_t counter) {
    assert(counter <= kCounterMask);
    return counter;
  }

  /// Node-lane stamp. `sublane` 0 = mediator-allocated (deliveries, fault
  /// transitions), 1 = node-allocated (completions, loss resubmissions).
  static uint64_t Node(catalog::NodeId node, int sublane, uint64_t counter) {
    assert(node >= 0);
    assert(sublane == 0 || sublane == 1);
    assert(counter <= kCounterMask);
    assert(static_cast<uint64_t>(node) + 1 <
           (uint64_t{1} << (64 - kCounterBits - kSublaneBits)));
    return ((static_cast<uint64_t>(node) + 1)
            << (kCounterBits + kSublaneBits)) |
           (static_cast<uint64_t>(sublane) << kCounterBits) | counter;
  }
};

/// The stable node -> shard partition of one federation run.
///
/// The assignment hashes the node id (SplitMix64 finalizer) rather than
/// taking id % shards, so structured id ranges (e.g. a workload whose hot
/// origins are the low ids) still spread across shards. The hash is a pure
/// function of (node, shards): re-running a scenario always partitions the
/// same way, and the partition never feeds into event *ordering* — only
/// into which worker drains which lane — so results are independent of it
/// by construction.
class ShardPlan {
 public:
  ShardPlan() : shards_(1) {}
  ShardPlan(int num_nodes, int shards)
      : shards_(shards < 1 ? 1 : shards) {
    shard_of_.reserve(static_cast<size_t>(num_nodes));
    for (catalog::NodeId node = 0; node < num_nodes; ++node) {
      shard_of_.push_back(HashShard(node, shards_));
    }
  }

  int shards() const { return shards_; }
  int shard_of(catalog::NodeId node) const {
    return shard_of_[static_cast<size_t>(node)];
  }

  /// Nodes owned by `shard`, in ascending id order.
  std::vector<catalog::NodeId> NodesOf(int shard) const {
    std::vector<catalog::NodeId> nodes;
    for (catalog::NodeId node = 0;
         node < static_cast<catalog::NodeId>(shard_of_.size()); ++node) {
      if (shard_of_[static_cast<size_t>(node)] == shard) {
        nodes.push_back(node);
      }
    }
    return nodes;
  }

  static int HashShard(catalog::NodeId node, int shards) {
    if (shards <= 1) return 0;
    return static_cast<int>(
        util::SplitMix64(static_cast<uint64_t>(node)).Next() %
        static_cast<uint64_t>(shards));
  }

 private:
  int shards_;
  std::vector<int> shard_of_;
};

}  // namespace qa::sim

#endif  // QAMARKET_SIM_SHARD_H_
