#include "sim/admission.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

namespace qa::sim {

util::Status AdmissionConfig::Validate() const {
  if (policy == AdmissionPolicy::kOff) return util::Status::OK();
  if (max_outstanding < 0) {
    return util::Status::InvalidArgument(
        "admission: max_outstanding " + std::to_string(max_outstanding) +
        " is negative");
  }
  if (policy == AdmissionPolicy::kStatic && max_outstanding == 0) {
    return util::Status::InvalidArgument(
        "admission: static policy needs max_outstanding > 0");
  }
  if (policy == AdmissionPolicy::kPriceSignal) {
    if (!(exit_ratio > 0.0) || !(enter_ratio > exit_ratio)) {
      return util::Status::InvalidArgument(
          "admission: need enter_ratio > exit_ratio > 0, got enter=" +
          std::to_string(enter_ratio) + " exit=" +
          std::to_string(exit_ratio));
    }
    if (warmup_periods < 1) {
      return util::Status::InvalidArgument(
          "admission: warmup_periods " + std::to_string(warmup_periods) +
          " must be >= 1");
    }
    if (!(baseline_alpha >= 0.0) || baseline_alpha >= 1.0) {
      return util::Status::InvalidArgument(
          "admission: baseline_alpha " + std::to_string(baseline_alpha) +
          " must be in [0, 1)");
    }
  }
  return util::Status::OK();
}

AdmissionController::AdmissionController(
    const AdmissionConfig& config, const std::vector<double>& class_costs)
    : config_(config), num_classes_(static_cast<int>(class_costs.size())) {
  // Expensive-first brownout order; stable so equal-cost classes brown
  // out in class-id order, deterministically.
  std::vector<int> order(class_costs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return class_costs[static_cast<size_t>(a)] >
           class_costs[static_cast<size_t>(b)];
  });
  brownout_rank_.assign(class_costs.size(), 0);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    brownout_rank_[static_cast<size_t>(order[rank])] =
        static_cast<int>(rank);
  }
}

void AdmissionController::OnPeriod(const obs::metrics::MarketProbe& probe) {
  if (config_.policy != AdmissionPolicy::kPriceSignal) return;
  probe_has_market_ = probe.has_agents() && probe.num_classes > 0;
  if (!probe_has_market_) {
    // No price signal this period (non-market mechanism, or no agents
    // yet): decay toward full admission and rely on the static fallback.
    brownout_level_ = std::max(brownout_level_ - 1, 0);
    price_ratio_ = 1.0;
    return;
  }
  // Scarcity index: mean log price over every (agent, class) cell with a
  // positive price. The log keeps a single runaway class from dominating
  // and makes the enter/exit band multiplicative.
  double sum = 0.0;
  int64_t cells = 0;
  for (size_t agent = 0; agent < probe.num_agents(); ++agent) {
    for (int c = 0; c < probe.num_classes; ++c) {
      double p = probe.price(agent, c);
      if (p > 0.0) {
        sum += std::log(p);
        ++cells;
      }
    }
  }
  if (cells == 0) {
    brownout_level_ = std::max(brownout_level_ - 1, 0);
    price_ratio_ = 1.0;
    return;
  }
  double index = sum / static_cast<double>(cells);
  if (!baseline_frozen_) {
    ++periods_seen_;
    if (config_.baseline_alpha > 0.0) {
      // Tracking mode: the baseline starts exactly where the index
      // stands when warmup ends, so the gate's first ratio is 1 by
      // construction. Any average (window or EMA) over the warmup lags
      // the cold-start discovery ramp, and a lag above ln(enter_ratio)
      // at the handoff deadlocks the outlier-rejected tracking below —
      // the ratio would sit permanently above the band. Handoff noise
      // self-corrects: the EMA keeps tracking in both directions.
      baseline_ = index;
    } else if (periods_seen_ > config_.warmup_periods / 2) {
      // Frozen mode: only the back half of the warmup window feeds the
      // baseline — the leading periods carry the discovery ramp, which
      // would drag the baseline below the steady level and make normal
      // load read as scarcity forever after.
      baseline_sum_ += index;
      ++baseline_periods_;
    }
    if (periods_seen_ >= config_.warmup_periods) {
      if (!(config_.baseline_alpha > 0.0)) {
        baseline_ = baseline_sum_ / static_cast<double>(baseline_periods_);
      }
      baseline_frozen_ = true;
    }
    prev_index_ = index;
    price_ratio_ = 1.0;
    return;
  }
  price_ratio_ = std::exp(index - baseline_);
  // Slow baseline tracking (see AdmissionConfig::baseline_alpha): follow
  // gradual drift so the ratio measures *sudden* scarcity, but never
  // learn from periods the band already considers overloaded.
  if (config_.baseline_alpha > 0.0 && price_ratio_ < config_.enter_ratio) {
    baseline_ += config_.baseline_alpha * (index - baseline_);
  }
  bool cooling = index < prev_index_;
  prev_index_ = index;
  // Hysteresis on level and trend, one step per period. QA-NT's price
  // moves are asymmetric — decline-driven bumps are multiplicative and
  // fast, the per-period decay is slow — so a flash crowd lifts the index
  // several log-units in a couple of periods while the way back down takes
  // the rest of the run. Gating the exit on the *level* alone would
  // therefore lock the brownout in long after the crowd is gone. The
  // trend breaks that deadlock: a falling index means no one is being
  // declined any more — the market is clearing — so the gate steps down
  // even while the level is still far above the band; a rising index
  // above the band means scarcity is still building, so it steps up.
  if (price_ratio_ >= config_.enter_ratio && !cooling) {
    brownout_level_ = std::min(brownout_level_ + 1, num_classes_);
  } else if (price_ratio_ <= config_.exit_ratio || cooling) {
    brownout_level_ = std::max(brownout_level_ - 1, 0);
  }
}

AdmissionController::Decision AdmissionController::Admit(
    int class_id, int64_t outstanding) const {
  switch (config_.policy) {
    case AdmissionPolicy::kOff:
      return Decision::kAdmit;
    case AdmissionPolicy::kStatic:
      return outstanding > config_.max_outstanding ? Gate()
                                                   : Decision::kAdmit;
    case AdmissionPolicy::kPriceSignal: {
      if (probe_has_market_) {
        if (class_id >= 0 && class_id < num_classes_ &&
            brownout_rank_[static_cast<size_t>(class_id)] <
                brownout_level_) {
          return Gate();
        }
        return Decision::kAdmit;
      }
      // Probe-less fallback: behave like the static threshold (a no-op
      // when max_outstanding is 0).
      if (config_.max_outstanding > 0 &&
          outstanding > config_.max_outstanding) {
        return Gate();
      }
      return Decision::kAdmit;
    }
  }
  return Decision::kAdmit;
}

}  // namespace qa::sim
