#include "sim/node.h"

#include <cassert>

namespace qa::sim {

bool SimNode::Enqueue(const QueryTask& task, util::VTime now) {
  (void)now;
  queue_.push_back(task);
  queued_work_ += task.work_units;
  cumulative_work_ += task.work_units;
  // Start immediately only when the executor is idle and this is the only
  // queued task (a caller that has not yet called BeginNext for an earlier
  // enqueue must not be told to start twice).
  return !running_ && queue_.size() == 1;
}

QueryTask SimNode::BeginNext(util::VTime now) {
  assert(!running_);
  assert(!queue_.empty());
  current_ = queue_.front();
  queue_.pop_front();
  running_ = true;
  busy_until_ = now + current_.exec_time;
  busy_time_ += current_.exec_time;
  return current_;
}

bool SimNode::CompleteCurrent(util::VTime now) {
  assert(running_);
  running_ = false;
  queued_work_ -= current_.work_units;
  if (queued_work_ < 0.0) queued_work_ = 0.0;
  ++completed_;
  if (queue_.empty()) last_idle_at_ = now;
  return !queue_.empty();
}

std::vector<QueryTask> SimNode::Crash(util::VTime now) {
  std::vector<QueryTask> lost;
  lost.reserve(queue_.size() + (running_ ? 1 : 0));
  if (running_) {
    // BeginNext charged the full exec_time to busy_time_ up front; give
    // back the part that will now never run.
    if (busy_until_ > now) busy_time_ -= busy_until_ - now;
    lost.push_back(current_);
    running_ = false;
  }
  for (const QueryTask& task : queue_) lost.push_back(task);
  queue_.clear();
  queued_work_ = 0.0;
  last_idle_at_ = now;
  ++epoch_;
  return lost;
}

util::VDuration SimNode::Backlog(util::VTime now) const {
  util::VDuration backlog = 0;
  if (running_ && busy_until_ > now) backlog += busy_until_ - now;
  for (const QueryTask& task : queue_) backlog += task.exec_time;
  return backlog;
}

// ----------------------------------------------------------------
// NodePool

void NodePool::Init(int num_nodes, int shards,
                    const std::vector<int>& shard_of) {
  assert(num_nodes >= 0);
  assert(shards >= 1);
  assert(shard_of.size() == static_cast<size_t>(num_nodes));
  size_t n = static_cast<size_t>(num_nodes);
  busy_until_.assign(n, 0);
  queued_work_.assign(n, 0.0);
  cumulative_work_.assign(n, 0.0);
  busy_time_.assign(n, 0);
  completed_.assign(n, 0);
  last_idle_.assign(n, 0);
  epoch_.assign(n, 0);
  running_.assign(n, 0);
  current_.assign(n, QueryTask{});
  queue_head_.assign(n, -1);
  queue_tail_.assign(n, -1);
  queue_len_.assign(n, 0);
  shard_of_ = shard_of;
  arenas_.clear();
  arenas_.resize(static_cast<size_t>(shards));
}

int32_t NodePool::AcquireSlot(int shard) {
  Arena& arena = arenas_[static_cast<size_t>(shard)];
  if (arena.free_head >= 0) {
    int32_t index = arena.free_head;
    arena.free_head = arena.slots[static_cast<size_t>(index)].next;
    return index;
  }
  arena.slots.emplace_back();
  return static_cast<int32_t>(arena.slots.size()) - 1;
}

void NodePool::ReleaseSlot(int shard, int32_t index) {
  Arena& arena = arenas_[static_cast<size_t>(shard)];
  arena.slots[static_cast<size_t>(index)].next = arena.free_head;
  arena.free_head = index;
}

bool NodePool::Enqueue(catalog::NodeId node, const QueryTask& task) {
  size_t i = static_cast<size_t>(node);
  int shard = shard_of_[i];
  int32_t slot = AcquireSlot(shard);
  Arena& arena = arenas_[static_cast<size_t>(shard)];
  arena.slots[static_cast<size_t>(slot)].task = task;
  arena.slots[static_cast<size_t>(slot)].next = -1;
  if (queue_tail_[i] >= 0) {
    arena.slots[static_cast<size_t>(queue_tail_[i])].next = slot;
  } else {
    queue_head_[i] = slot;
  }
  queue_tail_[i] = slot;
  ++queue_len_[i];
  queued_work_[i] += task.work_units;
  cumulative_work_[i] += task.work_units;
  // Start immediately only when the executor is idle and this is the only
  // queued task (mirrors SimNode::Enqueue).
  return running_[i] == 0 && queue_len_[i] == 1;
}

QueryTask NodePool::BeginNext(catalog::NodeId node, util::VTime now) {
  size_t i = static_cast<size_t>(node);
  assert(running_[i] == 0);
  assert(queue_head_[i] >= 0);
  int shard = shard_of_[i];
  Arena& arena = arenas_[static_cast<size_t>(shard)];
  int32_t slot = queue_head_[i];
  current_[i] = arena.slots[static_cast<size_t>(slot)].task;
  queue_head_[i] = arena.slots[static_cast<size_t>(slot)].next;
  if (queue_head_[i] < 0) queue_tail_[i] = -1;
  --queue_len_[i];
  ReleaseSlot(shard, slot);
  running_[i] = 1;
  busy_until_[i] = now + current_[i].exec_time;
  busy_time_[i] += current_[i].exec_time;
  return current_[i];
}

bool NodePool::CompleteCurrent(catalog::NodeId node, util::VTime now) {
  size_t i = static_cast<size_t>(node);
  assert(running_[i] != 0);
  running_[i] = 0;
  queued_work_[i] -= current_[i].work_units;
  if (queued_work_[i] < 0.0) queued_work_[i] = 0.0;
  ++completed_[i];
  if (queue_len_[i] == 0) last_idle_[i] = now;
  return queue_len_[i] > 0;
}

void NodePool::Crash(catalog::NodeId node, util::VTime now,
                     std::vector<QueryTask>* lost) {
  size_t i = static_cast<size_t>(node);
  int shard = shard_of_[i];
  Arena& arena = arenas_[static_cast<size_t>(shard)];
  if (running_[i] != 0) {
    // BeginNext charged the full exec_time to the busy ledger up front;
    // give back the part that will now never run.
    if (busy_until_[i] > now) busy_time_[i] -= busy_until_[i] - now;
    lost->push_back(current_[i]);
    running_[i] = 0;
  }
  int32_t slot = queue_head_[i];
  while (slot >= 0) {
    lost->push_back(arena.slots[static_cast<size_t>(slot)].task);
    int32_t next = arena.slots[static_cast<size_t>(slot)].next;
    ReleaseSlot(shard, slot);
    slot = next;
  }
  queue_head_[i] = -1;
  queue_tail_[i] = -1;
  queue_len_[i] = 0;
  queued_work_[i] = 0.0;
  last_idle_[i] = now;
  ++epoch_[i];
}

bool NodePool::EvictWorseQueued(catalog::NodeId node,
                                const std::vector<double>& class_cost,
                                double incoming_cost, QueryTask* victim) {
  size_t i = static_cast<size_t>(node);
  int shard = shard_of_[i];
  Arena& arena = arenas_[static_cast<size_t>(shard)];
  int32_t best = -1;
  int32_t best_prev = -1;
  double best_cost = incoming_cost;
  int32_t prev = -1;
  for (int32_t slot = queue_head_[i]; slot >= 0;
       prev = slot, slot = arena.slots[static_cast<size_t>(slot)].next) {
    const QueryTask& task = arena.slots[static_cast<size_t>(slot)].task;
    double cost = class_cost[static_cast<size_t>(task.class_id)];
    // `>=` so the newest among equally expensive queued tasks loses;
    // strictly `>` against the incoming cost (seeded via best_cost).
    if (cost > incoming_cost && cost >= best_cost) {
      best = slot;
      best_prev = prev;
      best_cost = cost;
    }
  }
  if (best < 0) return false;
  *victim = arena.slots[static_cast<size_t>(best)].task;
  int32_t next = arena.slots[static_cast<size_t>(best)].next;
  if (best_prev >= 0) {
    arena.slots[static_cast<size_t>(best_prev)].next = next;
  } else {
    queue_head_[i] = next;
  }
  if (queue_tail_[i] == best) queue_tail_[i] = best_prev;
  ReleaseSlot(shard, best);
  --queue_len_[i];
  queued_work_[i] -= victim->work_units;
  if (queued_work_[i] < 0.0) queued_work_[i] = 0.0;
  // cumulative_work_ deliberately keeps the shed task's units, matching
  // Crash(): it tracks work ever assigned here, not work retained.
  return true;
}

util::VDuration NodePool::Backlog(catalog::NodeId node,
                                  util::VTime now) const {
  size_t i = static_cast<size_t>(node);
  util::VDuration backlog = 0;
  if (running_[i] != 0 && busy_until_[i] > now) {
    backlog += busy_until_[i] - now;
  }
  const Arena& arena = arenas_[static_cast<size_t>(shard_of_[i])];
  for (int32_t slot = queue_head_[i]; slot >= 0;
       slot = arena.slots[static_cast<size_t>(slot)].next) {
    backlog += arena.slots[static_cast<size_t>(slot)].task.exec_time;
  }
  return backlog;
}

}  // namespace qa::sim
