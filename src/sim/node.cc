#include "sim/node.h"

#include <cassert>

namespace qa::sim {

bool SimNode::Enqueue(const QueryTask& task, util::VTime now) {
  (void)now;
  queue_.push_back(task);
  queued_work_ += task.work_units;
  cumulative_work_ += task.work_units;
  // Start immediately only when the executor is idle and this is the only
  // queued task (a caller that has not yet called BeginNext for an earlier
  // enqueue must not be told to start twice).
  return !running_ && queue_.size() == 1;
}

QueryTask SimNode::BeginNext(util::VTime now) {
  assert(!running_);
  assert(!queue_.empty());
  current_ = queue_.front();
  queue_.pop_front();
  running_ = true;
  busy_until_ = now + current_.exec_time;
  busy_time_ += current_.exec_time;
  return current_;
}

bool SimNode::CompleteCurrent(util::VTime now) {
  assert(running_);
  running_ = false;
  queued_work_ -= current_.work_units;
  if (queued_work_ < 0.0) queued_work_ = 0.0;
  ++completed_;
  if (queue_.empty()) last_idle_at_ = now;
  return !queue_.empty();
}

std::vector<QueryTask> SimNode::Crash(util::VTime now) {
  std::vector<QueryTask> lost;
  lost.reserve(queue_.size() + (running_ ? 1 : 0));
  if (running_) {
    // BeginNext charged the full exec_time to busy_time_ up front; give
    // back the part that will now never run.
    if (busy_until_ > now) busy_time_ -= busy_until_ - now;
    lost.push_back(current_);
    running_ = false;
  }
  for (const QueryTask& task : queue_) lost.push_back(task);
  queue_.clear();
  queued_work_ = 0.0;
  last_idle_at_ = now;
  ++epoch_;
  return lost;
}

util::VDuration SimNode::Backlog(util::VTime now) const {
  util::VDuration backlog = 0;
  if (running_ && busy_until_ > now) backlog += busy_until_ - now;
  for (const QueryTask& task : queue_) backlog += task.exec_time;
  return backlog;
}

}  // namespace qa::sim
