#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace qa::sim {

void EventQueue::Schedule(util::VTime when, Callback fn) {
  assert(when >= now_ && "cannot schedule into the past");
  events_.push(Event{when, next_seq_++, std::move(fn)});
}

bool EventQueue::RunOne() {
  if (events_.empty()) return false;
  // priority_queue::top is const; the callback must be moved out via a
  // const_cast-free copy of the struct fields we need.
  Event event = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  now_ = event.time;
  event.fn();
  return true;
}

uint64_t EventQueue::RunAll(uint64_t limit) {
  uint64_t ran = 0;
  while (ran < limit && RunOne()) ++ran;
  return ran;
}

uint64_t EventQueue::RunUntil(util::VTime until) {
  uint64_t ran = 0;
  while (!events_.empty() && events_.top().time <= until && RunOne()) ++ran;
  return ran;
}

}  // namespace qa::sim
