#ifndef QAMARKET_SIM_EVENT_QUEUE_H_
#define QAMARKET_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/vtime.h"

namespace qa::sim {

/// Customization point for EventQueue's past-timestamp diagnostic: provide
/// an overload of DescribeEvent for your event type (found by ADL or in
/// this namespace) that names the event's kind and the node/query it
/// targets, and scheduling bugs report *which* event time-traveled instead
/// of a bare assert. This template is the fallback for payload types that
/// do not describe themselves (ints in unit tests, micro-bench payloads).
template <typename Event>
std::string DescribeEvent(const Event& /*event*/) {
  return "(event type has no DescribeEvent overload)";
}

/// A classic discrete-event scheduler: events fire in time order, with a
/// 64-bit stamp breaking ties deterministically.
///
/// Two scheduling modes share the queue:
///  - Schedule(when, event): the stamp is a monotonically increasing
///    internal sequence number, i.e. classic FIFO tie-breaking —
///    simultaneous events run in the order they were scheduled.
///  - Schedule(when, stamp, event): the caller supplies the stamp. The
///    sharded federation uses this with *placement-independent* stamps
///    (a canonical (lane, node, counter) encoding, see sim/shard.h) so
///    that the global event order is a pure function of the scenario and
///    never of how nodes are partitioned onto shards or threads.
/// The two modes must not be mixed on one queue instance: relative order
/// of internal and external stamps would depend on call history.
///
/// `Event` is a by-value payload (for the federation: a small tagged
/// struct, see SimEvent) handed back to the dispatcher passed to
/// RunOne/RunAll/RunUntil. Storing plain structs instead of type-erased
/// std::function callbacks keeps the hot path allocation-free: the only
/// memory the queue ever touches is its own heap vector, which Reserve()
/// can size up front.
template <typename Event>
class EventQueue {
 public:
  /// Schedules `event` at absolute time `when` (must be >= now()) with an
  /// internal FIFO stamp. Scheduling into the past is a bug in the caller:
  /// every build prints a diagnostic naming the offending event (see
  /// DescribeEvent), debug builds then assert, and all builds clamp `when`
  /// to now() so the event cannot time-travel and corrupt the monotonic
  /// clock.
  void Schedule(util::VTime when, Event event) {
    Schedule(when, next_seq_++, std::move(event));
  }

  /// Schedules `event` with a caller-chosen tie-break stamp. Same
  /// past-timestamp policy as above.
  void Schedule(util::VTime when, uint64_t stamp, Event event) {
    if (when < now_) {
      // Diagnose loudly in every build: under NDEBUG the assert below
      // compiles away, and a silently clamped event is exactly how a
      // shard-merge ordering bug would hide. The event's own description
      // (kind, node, query) is what makes the report actionable.
      std::fprintf(stderr,
                   "EventQueue: scheduling into the past (when=%" PRId64
                   "us < now=%" PRId64 "us, stamp=%" PRIu64 "): %s\n",
                   static_cast<int64_t>(when), static_cast<int64_t>(now_),
                   stamp, DescribeEvent(event).c_str());
      assert(when >= now_ && "cannot schedule into the past");
      when = now_;
    }
    heap_.push_back(Entry{when, stamp, std::move(event)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Schedules `event` `delay` after now() with an internal FIFO stamp.
  void ScheduleAfter(util::VDuration delay, Event event) {
    Schedule(now_ + delay, std::move(event));
  }

  /// Pre-sizes the underlying heap so steady-state scheduling never
  /// reallocates (e.g. every trace arrival is scheduled up front).
  void Reserve(size_t events) { heap_.reserve(events); }

  util::VTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// The next event to fire (undefined when empty()); it stays queued.
  const Event& Peek() const { return heap_.front().event; }
  util::VTime PeekTime() const { return heap_.front().time; }
  uint64_t PeekStamp() const { return heap_.front().stamp; }

  /// Pops and dispatches the next event; returns false when the queue is
  /// empty. `dispatch` may schedule further events.
  template <typename Dispatch>
  bool RunOne(Dispatch&& dispatch) {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    now_ = entry.time;
    dispatch(entry.event);
    return true;
  }

  /// Runs events until the queue empties or `limit` events have fired.
  /// Returns the number of events run.
  template <typename Dispatch>
  uint64_t RunAll(Dispatch&& dispatch, uint64_t limit = UINT64_MAX) {
    uint64_t ran = 0;
    while (ran < limit && RunOne(dispatch)) ++ran;
    return ran;
  }

  /// Runs events with time <= `until`.
  template <typename Dispatch>
  uint64_t RunUntil(util::VTime until, Dispatch&& dispatch) {
    uint64_t ran = 0;
    while (!heap_.empty() && heap_.front().time <= until &&
           RunOne(dispatch)) {
      ++ran;
    }
    return ran;
  }

  /// Runs events whose (time, stamp) key is strictly before the given
  /// fence key — the conservative-window drain of the sharded federation:
  /// each shard lane advances exactly to the market-tick barrier and not
  /// one event past it. Unlike RunOne, the dispatcher receives the popped
  /// entry's key too, `dispatch(event, time, stamp)` — shard handlers use
  /// it to key their buffered effects for the canonical barrier merge.
  /// Returns the number of events run. The dispatcher runs on the shard
  /// lane: qa_lint's QA-SHD-002 pass treats every lambda handed here as a
  /// shard-lane entry point and flags mediator-lane state reachable from
  /// it outside the merge fences.
  template <typename Dispatch>
  uint64_t RunWhileBefore(util::VTime fence_time, uint64_t fence_stamp,
                          Dispatch&& dispatch) {
    uint64_t ran = 0;
    while (!heap_.empty() &&
           (heap_.front().time < fence_time ||
            (heap_.front().time == fence_time &&
             heap_.front().stamp < fence_stamp))) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Entry entry = std::move(heap_.back());
      heap_.pop_back();
      now_ = entry.time;
      dispatch(entry.event, entry.time, entry.stamp);
      ++ran;
    }
    return ran;
  }

 private:
  struct Entry {
    util::VTime time;
    uint64_t stamp;
    Event event;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.stamp > b.stamp;
    }
  };

  // A std::push_heap/pop_heap max-heap over a plain vector (rather than
  // std::priority_queue) so Reserve() is possible and the popped entry can
  // be moved out without const_cast.
  std::vector<Entry> heap_;
  util::VTime now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace qa::sim

#endif  // QAMARKET_SIM_EVENT_QUEUE_H_
