#ifndef QAMARKET_SIM_EVENT_QUEUE_H_
#define QAMARKET_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/vtime.h"

namespace qa::sim {

/// A classic discrete-event scheduler: events fire in time order, with FIFO
/// tie-breaking via a monotonically increasing sequence number so that
/// simultaneous events run in the order they were scheduled (determinism).
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `when` (must be >= now()).
  void Schedule(util::VTime when, Callback fn);
  /// Schedules `fn` `delay` after now().
  void ScheduleAfter(util::VDuration delay, Callback fn) {
    Schedule(now_ + delay, std::move(fn));
  }

  util::VTime now() const { return now_; }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

  /// Runs the next event; returns false when the queue is empty.
  bool RunOne();
  /// Runs events until the queue empties or `limit` events have fired.
  /// Returns the number of events run.
  uint64_t RunAll(uint64_t limit = UINT64_MAX);
  /// Runs events with time <= `until`.
  uint64_t RunUntil(util::VTime until);

 private:
  struct Event {
    util::VTime time;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  util::VTime now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace qa::sim

#endif  // QAMARKET_SIM_EVENT_QUEUE_H_
