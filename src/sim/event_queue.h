#ifndef QAMARKET_SIM_EVENT_QUEUE_H_
#define QAMARKET_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/vtime.h"

namespace qa::sim {

/// A classic discrete-event scheduler: events fire in time order, with FIFO
/// tie-breaking via a monotonically increasing sequence number so that
/// simultaneous events run in the order they were scheduled (determinism).
///
/// `Event` is a by-value payload (for the federation: a small tagged
/// struct, see SimEvent) handed back to the dispatcher passed to
/// RunOne/RunAll/RunUntil. Storing plain structs instead of type-erased
/// std::function callbacks keeps the hot path allocation-free: the only
/// memory the queue ever touches is its own heap vector, which Reserve()
/// can size up front.
template <typename Event>
class EventQueue {
 public:
  /// Schedules `event` at absolute time `when` (must be >= now()).
  /// Scheduling into the past is a bug in the caller: debug builds assert,
  /// and all builds clamp `when` to now() so the event cannot time-travel
  /// and corrupt the monotonic clock.
  void Schedule(util::VTime when, Event event) {
    assert(when >= now_ && "cannot schedule into the past");
    if (when < now_) when = now_;
    heap_.push_back(Entry{when, next_seq_++, std::move(event)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  /// Schedules `event` `delay` after now().
  void ScheduleAfter(util::VDuration delay, Event event) {
    Schedule(now_ + delay, std::move(event));
  }

  /// Pre-sizes the underlying heap so steady-state scheduling never
  /// reallocates (e.g. every trace arrival is scheduled up front).
  void Reserve(size_t events) { heap_.reserve(events); }

  util::VTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Pops and dispatches the next event; returns false when the queue is
  /// empty. `dispatch` may schedule further events.
  template <typename Dispatch>
  bool RunOne(Dispatch&& dispatch) {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    now_ = entry.time;
    dispatch(entry.event);
    return true;
  }

  /// Runs events until the queue empties or `limit` events have fired.
  /// Returns the number of events run.
  template <typename Dispatch>
  uint64_t RunAll(Dispatch&& dispatch, uint64_t limit = UINT64_MAX) {
    uint64_t ran = 0;
    while (ran < limit && RunOne(dispatch)) ++ran;
    return ran;
  }

  /// Runs events with time <= `until`.
  template <typename Dispatch>
  uint64_t RunUntil(util::VTime until, Dispatch&& dispatch) {
    uint64_t ran = 0;
    while (!heap_.empty() && heap_.front().time <= until &&
           RunOne(dispatch)) {
      ++ran;
    }
    return ran;
  }

 private:
  struct Entry {
    util::VTime time;
    uint64_t seq;
    Event event;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // A std::push_heap/pop_heap max-heap over a plain vector (rather than
  // std::priority_queue) so Reserve() is possible and the popped entry can
  // be moved out without const_cast.
  std::vector<Entry> heap_;
  util::VTime now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace qa::sim

#endif  // QAMARKET_SIM_EVENT_QUEUE_H_
