#ifndef QAMARKET_SIM_NODE_H_
#define QAMARKET_SIM_NODE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "catalog/catalog.h"
#include "query/query.h"
#include "util/vtime.h"

namespace qa::sim {

/// A query waiting at or running on a node.
struct QueryTask {
  query::QueryId query_id = -1;
  query::QueryClassId class_id = -1;
  catalog::NodeId origin = -1;
  /// First arrival into the system (response time is measured from here).
  util::VTime arrival = 0;
  /// Actual execution time on the node this task was assigned to.
  util::VDuration exec_time = 0;
  /// Node-independent work units (best-case cost), for BNQRD bookkeeping.
  double work_units = 0.0;
  /// Allocation attempts spent so far; carried on the task so a query lost
  /// to a fault can be resubmitted with its retry budget intact.
  int attempts = 0;
  /// The per-query execution-time jitter drawn at first allocation, kept so
  /// a resubmitted query re-prices deterministically.
  double cost_jitter = 1.0;
  /// The node incarnation this task was started under. A crash bumps the
  /// node's epoch, so completions of tasks wiped by the crash can be
  /// recognized as stale and ignored.
  int64_t epoch = 0;
};

/// One autonomous RDBMS in the federation: a serial executor draining a
/// FIFO queue of assigned queries. The node tracks its backlog in time
/// units and in node-independent work units; the simulator exposes those to
/// mechanisms that (legitimately or not) probe node load.
class SimNode {
 public:
  explicit SimNode(catalog::NodeId id) : id_(id) {}

  catalog::NodeId id() const { return id_; }

  /// Adds a task to the queue. Returns true if the node was idle (the
  /// caller should schedule a start immediately).
  bool Enqueue(const QueryTask& task, util::VTime now);

  /// Pops the task to run next and marks the node busy until
  /// now + task.exec_time. Requires a non-empty queue and an idle node.
  QueryTask BeginNext(util::VTime now);

  /// Marks the current task finished. Returns true if more tasks wait.
  bool CompleteCurrent(util::VTime now);

  bool idle() const { return !running_; }
  size_t queue_length() const { return queue_.size() + (running_ ? 1 : 0); }

  /// Remaining execution time of everything assigned here (running task
  /// remainder + queued tasks), in microseconds.
  util::VDuration Backlog(util::VTime now) const;

  /// Outstanding work in node-independent units.
  double QueuedWork() const { return queued_work_; }

  /// Cumulative work ever assigned here, in node-independent units.
  double CumulativeWork() const { return cumulative_work_; }

  /// Cumulative statistics.
  util::VDuration busy_time() const { return busy_time_; }
  int64_t completed() const { return completed_; }
  /// Time the node last went idle (0 if never busy) — used for the
  /// overload-duration measurements of Fig. 1.
  util::VTime last_idle_at() const { return last_idle_at_; }

  /// Current incarnation of the node's volatile state; bumped by Crash().
  int64_t epoch() const { return epoch_; }

  /// Crash with loss of volatile state: the run queue and the running task
  /// are wiped and returned (so the simulator can account them as lost and
  /// resubmit them), the busy-time ledger is corrected for the un-run
  /// remainder of the current task, and the node's epoch is bumped so
  /// in-flight completion events of wiped tasks become stale.
  std::vector<QueryTask> Crash(util::VTime now);

 private:
  catalog::NodeId id_;
  std::deque<QueryTask> queue_;
  bool running_ = false;
  QueryTask current_;
  util::VTime busy_until_ = 0;
  double queued_work_ = 0.0;
  double cumulative_work_ = 0.0;
  util::VDuration busy_time_ = 0;
  int64_t completed_ = 0;
  util::VTime last_idle_at_ = 0;
  int64_t epoch_ = 0;
};

/// Struct-of-arrays node state for the federation's hot path: the same
/// executor semantics as SimNode, but every per-node field lives in a flat
/// parallel array indexed by node id, and the FIFO task queues draw their
/// storage from per-shard arena free lists instead of one std::deque per
/// node. Federation::Dispatch touches two or three of these arrays per
/// event; with 10k+ nodes that is a handful of contiguous cache lines
/// instead of a pointer chase through 10k deque headers.
///
/// Sharding contract: a node's state (including its queue links) is only
/// ever touched by the lane that owns its shard, and each arena belongs to
/// exactly one shard — so concurrent lanes never share a free list. Arena
/// slot indices are an allocation detail: they never influence event
/// order or results.
class NodePool {
 public:
  /// Sizes the pool for `num_nodes` nodes partitioned into `shards`
  /// arenas by `shard_of` (node -> shard, values in [0, shards)).
  void Init(int num_nodes, int shards,
            const std::vector<int>& shard_of);

  int num_nodes() const { return static_cast<int>(busy_until_.size()); }

  /// Same contract as SimNode::Enqueue: returns true when the node was
  /// idle with an empty queue (caller should begin the task now).
  bool Enqueue(catalog::NodeId node, const QueryTask& task);

  /// Same contract as SimNode::BeginNext.
  QueryTask BeginNext(catalog::NodeId node, util::VTime now);

  /// Same contract as SimNode::CompleteCurrent.
  bool CompleteCurrent(catalog::NodeId node, util::VTime now);

  /// Same contract as SimNode::Crash: wipes queue + running task into
  /// `lost` (appended in run-queue order, running task first), corrects
  /// the busy ledger, bumps the epoch.
  void Crash(catalog::NodeId node, util::VTime now,
             std::vector<QueryTask>* lost);

  util::VDuration Backlog(catalog::NodeId node, util::VTime now) const;
  double QueuedWork(catalog::NodeId node) const {
    return queued_work_[static_cast<size_t>(node)];
  }
  double CumulativeWork(catalog::NodeId node) const {
    return cumulative_work_[static_cast<size_t>(node)];
  }
  util::VDuration busy_time(catalog::NodeId node) const {
    return busy_time_[static_cast<size_t>(node)];
  }
  int64_t completed(catalog::NodeId node) const {
    return completed_[static_cast<size_t>(node)];
  }
  util::VTime last_idle_at(catalog::NodeId node) const {
    return last_idle_[static_cast<size_t>(node)];
  }
  int64_t epoch(catalog::NodeId node) const {
    return epoch_[static_cast<size_t>(node)];
  }
  /// Number of tasks waiting in the FIFO (excludes the running task).
  int32_t QueueLength(catalog::NodeId node) const {
    return queue_len_[static_cast<size_t>(node)];
  }

  /// Lowest-priority-first shedding support: unlinks the queued task whose
  /// class has the highest `class_cost` (the newest one among equals) into
  /// `*victim` — but only when that cost strictly exceeds `incoming_cost`,
  /// so an eviction never replaces a cheap task with an expensive one.
  /// Returns false (queue untouched) when nothing queued is strictly more
  /// expensive than the incoming task.
  bool EvictWorseQueued(catalog::NodeId node,
                        const std::vector<double>& class_cost,
                        double incoming_cost, QueryTask* victim);

 private:
  /// One arena slot: a queued task plus the intrusive FIFO link (index of
  /// the next slot in the same node's queue, -1 at the tail). Free slots
  /// reuse `next` as the free-list link.
  struct Slot {
    QueryTask task;
    int32_t next = -1;
  };
  struct Arena {
    std::vector<Slot> slots;
    int32_t free_head = -1;
  };

  int32_t AcquireSlot(int shard);
  void ReleaseSlot(int shard, int32_t index);

  // ---- hot per-node state (parallel arrays indexed by node id) ----
  std::vector<util::VTime> busy_until_;
  std::vector<double> queued_work_;
  std::vector<double> cumulative_work_;
  std::vector<util::VDuration> busy_time_;
  std::vector<int64_t> completed_;
  std::vector<util::VTime> last_idle_;
  std::vector<int64_t> epoch_;
  std::vector<uint8_t> running_;
  std::vector<QueryTask> current_;
  // FIFO queue per node: arena slot indices into the owning shard's arena.
  std::vector<int32_t> queue_head_;
  std::vector<int32_t> queue_tail_;
  std::vector<int32_t> queue_len_;
  std::vector<int> shard_of_;
  std::vector<Arena> arenas_;
};

}  // namespace qa::sim

#endif  // QAMARKET_SIM_NODE_H_
