#ifndef QAMARKET_SIM_METRICS_JSON_H_
#define QAMARKET_SIM_METRICS_JSON_H_

#include "obs/json.h"
#include "sim/metrics.h"

namespace qa::sim {

/// Renders a finished run's SimMetrics as the `metrics` object of the JSON
/// run report (obs::RunReport): every scalar counter, response-time
/// percentiles (p50/p95/p99) and the per-class completion/drop/retry
/// breakdowns. See src/obs/SCHEMA.md for the field list.
obs::Json MetricsToJson(const SimMetrics& metrics);

}  // namespace qa::sim

#endif  // QAMARKET_SIM_METRICS_JSON_H_
