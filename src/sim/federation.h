#ifndef QAMARKET_SIM_FEDERATION_H_
#define QAMARKET_SIM_FEDERATION_H_

#include <memory>
#include <vector>

#include "allocation/allocator.h"
#include "query/cost_model.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/node.h"
#include "workload/trace.h"

namespace qa::sim {

/// A scheduled node outage: the node is unreachable during [from, until).
/// Queries already queued there keep executing (network partition
/// semantics); new assignments bounce or are routed around, depending on
/// what the mechanism can observe.
struct Outage {
  catalog::NodeId node = -1;
  util::VTime from = 0;
  util::VTime until = 0;
};

/// Timing and policy knobs of a federation run.
struct FederationConfig {
  /// Market time period T (drives the allocator's period hooks).
  util::VDuration period = 500 * util::kMillisecond;
  /// One-way network latency per message hop.
  util::VDuration message_latency = 1 * util::kMillisecond;
  /// Queries declined by every server are resubmitted at the next market
  /// tick, at most this many times before being dropped.
  int max_retries = 200;
  /// The market-driver granularity: allocator period hooks run every
  /// period / market_tick_divisor, so the staggered per-node periods of
  /// QA-NT refresh supply continuously and rejected queries retry without
  /// waiting a whole global period.
  int market_tick_divisor = 8;
  /// Scheduled node outages (failure injection).
  std::vector<Outage> outages;
};

/// The discrete-event simulator of a federation of autonomous RDBMSs:
/// arrivals from a workload trace are placed by an allocation mechanism
/// onto serial-executor nodes; completions, retries and market periods are
/// simulated in virtual time.
///
/// The Federation object is also the AllocationContext handed to the
/// mechanism: it exposes node backlogs/work to the mechanisms that probe
/// them, and charges every decision's messages to the metrics.
class Federation : public allocation::AllocationContext {
 public:
  /// Both pointers must outlive the federation.
  Federation(const query::CostModel* cost_model,
             allocation::Allocator* allocator, FederationConfig config);

  /// Runs the whole trace to completion and returns the metrics. The run
  /// ends when all queries completed or were dropped.
  SimMetrics Run(const workload::Trace& trace);

  // ---- AllocationContext ----
  int num_nodes() const override {
    return static_cast<int>(nodes_.size());
  }
  const query::CostModel& cost_model() const override { return *cost_model_; }
  util::VDuration NodeBacklog(catalog::NodeId node) const override {
    return nodes_[static_cast<size_t>(node)].Backlog(events_.now());
  }
  double NodeQueuedWork(catalog::NodeId node) const override {
    return nodes_[static_cast<size_t>(node)].QueuedWork();
  }
  double NodeCumulativeWork(catalog::NodeId node) const override {
    return nodes_[static_cast<size_t>(node)].CumulativeWork();
  }
  util::VTime now() const override { return events_.now(); }
  bool NodeOnline(catalog::NodeId node) const override;

  const SimNode& node(catalog::NodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }

 private:
  struct PendingQuery {
    workload::Arrival arrival;
    query::QueryId id;
    int attempts = 0;
  };

  void HandleQuery(PendingQuery pending);
  void StartTask(catalog::NodeId node_id);
  void CompleteTask(catalog::NodeId node_id, const QueryTask& task);
  void MarketTick();
  util::VTime NextMarketTick() const;
  util::VDuration TickInterval() const;

  const query::CostModel* cost_model_;
  allocation::Allocator* allocator_;
  FederationConfig config_;
  EventQueue events_;
  std::vector<SimNode> nodes_;
  std::vector<PendingQuery> retry_queue_;
  SimMetrics metrics_;
  /// Queries in flight (arrived, not yet completed or dropped); the
  /// periodic market event keeps rescheduling itself while this is > 0.
  int64_t outstanding_ = 0;
  bool arrivals_done_ = false;
  query::QueryId next_query_id_ = 0;
  /// Best-case cost per class, precomputed for work-unit accounting.
  std::vector<double> best_cost_;
};

/// Estimates the federation's saturation throughput (queries/second) for a
/// workload mix by running the synchronous market loop at overwhelming
/// demand for `periods` periods and measuring steady-state consumption.
/// `mix[k]` is the relative arrival share of class k. The paper could not
/// compute exact optima either (§5.1); this estimate is used to express
/// workloads as a percentage of system capacity (Figs. 4-5).
double EstimateCapacityQps(const query::CostModel& cost_model,
                           const std::vector<double>& mix,
                           util::VDuration period, int periods = 40);

}  // namespace qa::sim

#endif  // QAMARKET_SIM_FEDERATION_H_
