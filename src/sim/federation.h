#ifndef QAMARKET_SIM_FEDERATION_H_
#define QAMARKET_SIM_FEDERATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "allocation/allocator.h"
#include "allocation/cluster_plan.h"
#include "allocation/solicitation.h"
#include "obs/metrics/collector.h"
#include "obs/metrics/watchdog.h"
#include "obs/recorder.h"
#include "obs/snapshot.h"
#include "query/cost_model.h"
#include "sim/admission.h"
#include "sim/event_queue.h"
#include "sim/faults/fault_injector.h"
#include "sim/faults/fault_plan.h"
#include "sim/metrics.h"
#include "sim/node.h"
#include "sim/shard.h"
#include "util/status.h"
#include "util/task_runner.h"
#include "workload/trace.h"

namespace qa::sim {

/// A scheduled node outage: the node is unreachable during [from, until)
/// but keeps its state (network-partition semantics) — queries already
/// queued there keep executing. How new work is kept off the node depends
/// on what the mechanism can observe, via AllocationContext::NodeOnline:
/// mechanisms that negotiate or probe (QA-NT, Greedy, BNQRD, TwoProbes)
/// get no reply from the unreachable node — the request times out, which
/// counts as a decline — and route around it without penalty; blind
/// mechanisms (Random, RoundRobin) never consult NodeOnline, so their
/// assignments to the node bounce at the network layer and the query is
/// resubmitted like any other failed placement.
///
/// This is the legacy compatibility spelling of a single-node
/// faults::PartitionFault; prefer FederationConfig::faults for new code.
struct Outage {
  catalog::NodeId node = -1;
  util::VTime from = 0;
  util::VTime until = 0;
};

/// Timing and policy knobs of a federation run.
struct FederationConfig {
  /// Market time period T (drives the allocator's period hooks).
  util::VDuration period = 500 * util::kMillisecond;
  /// One-way network latency per message hop.
  util::VDuration message_latency = 1 * util::kMillisecond;
  /// Queries declined by every server are resubmitted at the next market
  /// tick, at most this many times before being dropped.
  int max_retries = 200;
  /// The market-driver granularity: allocator period hooks run every
  /// period / market_tick_divisor, so the staggered per-node periods of
  /// QA-NT refresh supply continuously and rejected queries retry without
  /// waiting a whole global period.
  int market_tick_divisor = 8;
  /// Scheduled node outages (failure injection). Legacy shim: each entry
  /// becomes a single-node faults::PartitionFault in the effective plan.
  std::vector<Outage> outages;
  /// Declarative fault schedule (crashes with state loss, degraded
  /// capacity, lossy/delayed links, partitions). Merged with `outages`.
  faults::FaultPlan faults;
  /// Mediator retry backoff cap: after sustained all-decline market rounds
  /// the per-query retry interval escalates exponentially, but never past
  /// this many whole market periods.
  int max_backoff_periods = 4;
  /// Client response deadline (0 = none, the default). When set, a query
  /// whose sojourn (now - arrival) reaches the deadline is abandoned by
  /// its client: pending resubmissions stop, and a result completing after
  /// the deadline is discarded unread (the node's work is wasted — the
  /// realistic cost of serving a client that already gave up). Expired
  /// queries count as dropped (plus SimMetrics::expired), so conservation
  /// still holds: arrivals == completed + dropped.
  util::VDuration query_deadline = 0;
  /// Per-node queue bound: a delivery that would leave more than this many
  /// tasks waiting at a node sheds one task instead (which one is decided
  /// by `shed_policy`), accounted as SimMetrics::shed ⊆ dropped with a
  /// schema-v4 `shed` trace event. The default is effectively unbounded —
  /// the pre-overload behavior; ValidateConfig rejects values < 1.
  int max_node_queue = 1 << 30;
  /// Mediator retry-backlog bound: at most this many queries may sit in
  /// backed-off retry/defer state at once. Overflow is shed instead of
  /// rescheduled, so the retry set stays O(bound) rather than O(arrivals)
  /// during an outage. ValidateConfig rejects values < 1.
  int max_retry_backlog = 1 << 30;
  /// Which task loses when a shed bound trips.
  ShedPolicy shed_policy = ShedPolicy::kNewestFirst;
  /// Admission-control gate evaluated ahead of solicitation (off by
  /// default). The price-signal policy reads the allocator's MarketProbe
  /// once per global period — unconditionally, never gated on whether a
  /// metrics collector is attached, because admission changes simulation
  /// behavior.
  AdmissionConfig admission;
  /// Optional telemetry sink (not owned; must outlive the run). When set,
  /// the federation streams event spans, per-period allocator snapshots and
  /// run counters into it; when null every probe is a single branch.
  obs::Recorder* recorder = nullptr;
  /// Optional metrics collector (not owned; must outlive the run). When
  /// set, the federation streams deterministic per-period samples and
  /// watchdog alarms into it and attributes wall-clock time to run phases.
  /// Wall time is a side channel only: it never feeds simulation state or
  /// trace bytes, so attaching a collector cannot perturb a run
  /// (DESIGN.md §9). Null = every probe is a single branch.
  obs::metrics::Collector* metrics = nullptr;
  /// Watchdog thresholds for the market-health detectors evaluated each
  /// global period (only when `metrics` is set).
  obs::metrics::WatchdogConfig watchdogs;
  /// Allocator RNG seed, recorded in the trace meta line for provenance.
  /// Also the default seed of the fault injector's message-loss RNG (see
  /// faults::FaultPlan::seed).
  int64_t seed = 0;
  /// QA-NT offer-solicitation fanout policy. Carried here so runs record
  /// it in the trace meta line and ValidateConfig rejects bad fanouts; the
  /// experiment runner forwards it into AllocatorParams. Mechanisms other
  /// than QA-NT ignore it.
  allocation::SolicitationConfig solicitation;
  /// Hierarchical two-tier market plan (DESIGN.md §12). Disabled (the
  /// default) runs the classic flat single-mediator market. When enabled
  /// with >= 2 clusters, each cluster runs its own QA-NT sub-mediator and
  /// a top-level market routes queries by aggregate supply. Validated by
  /// ValidateConfig; forwarded into AllocatorParams by the experiment
  /// runner. Mechanisms other than QA-NT ignore it.
  allocation::ClusterPlan cluster_plan;
  /// Node-partition count of the sharded core: nodes are split into this
  /// many shards (stable id-hash, see ShardPlan), each draining its own
  /// event lane between market-tick barriers. Results are byte-identical
  /// at every (shards, runner) combination — sharding is an execution
  /// layout, never a semantic knob. Sharded execution engages only when
  /// shards > 1, `runner` is set, and the mechanism does not read live
  /// node state (MechanismProperties::reads_node_state); otherwise the
  /// run uses the inline single-queue path.
  int shards = 1;
  /// Fork-join runner the sharded core drains its lanes on, also handed
  /// to the allocator for its intra-decision fan-out (QA-NT's bid scan).
  /// Not owned; must outlive the run. Null = fully sequential.
  const util::TaskRunner* runner = nullptr;
};

/// Rejects misconfigured runs before they produce silent nonsense:
/// non-positive period, market_tick_divisor < 1, negative message latency
/// or retry budget, max_backoff_periods < 1, shards < 1, shed bounds < 1,
/// malformed admission bands, malformed outage windows, and anything
/// FaultPlan::Validate rejects. Federation::Run
/// calls this at entry and aborts on error; callers building configs from
/// external input should call it themselves and surface the Status.
util::Status ValidateConfig(const FederationConfig& config, int num_nodes);

/// The tagged event payload of the federation's discrete-event loop.
///
/// A small POD dispatched by Federation::Dispatch on its kind, replacing
/// the previous per-event heap-allocated std::function closure: millions
/// of arrivals/deliveries/completions per run now cost zero allocations
/// and no indirect calls. The two payload variants never coexist, so they
/// share storage in a union (both are trivially copyable).
struct SimEvent {
  enum class Kind : uint8_t {
    /// A query arrives at (or is resubmitted to) the client's mediator.
    kArrival,
    /// An assigned query reaches its server after the network delay.
    kDeliver,
    /// The task running on `node` finishes.
    kComplete,
    /// Periodic market driver (allocator period hooks, retry clock).
    kMarketTick,
    /// A fault-plan transition fires (crash / restart / degrade or surge
    /// edge).
    kFault,
  };

  /// Arrival payload: the pending query a mediator must (re)place.
  struct Pending {
    workload::Arrival arrival;
    query::QueryId id;
    int attempts;
    /// True once the query passed the admission gate (or was reconstructed
    /// from a lost task — tasks exist only past the gate). Admitted queries
    /// skip the gate on retries: admission decides who *enters* the market,
    /// not who may finish. Union member — every creation site must set it.
    bool admitted;
  };

  Kind kind;
  /// Target server of kDeliver/kComplete.
  catalog::NodeId node;
  union {
    Pending pending;                             // kArrival
    QueryTask task;                              // kDeliver / kComplete
    faults::FaultInjector::Transition transition;  // kFault
  };

  static SimEvent MakeArrival(const Pending& pending) {
    return SimEvent(pending);
  }
  static SimEvent MakeDeliver(catalog::NodeId node, const QueryTask& task) {
    return SimEvent(Kind::kDeliver, node, task);
  }
  static SimEvent MakeComplete(catalog::NodeId node, const QueryTask& task) {
    return SimEvent(Kind::kComplete, node, task);
  }
  static SimEvent MakeMarketTick() { return SimEvent(); }
  static SimEvent MakeFault(const faults::FaultInjector::Transition& t) {
    return SimEvent(t);
  }

 private:
  // The active union member is chosen in a mem-initializer so its lifetime
  // starts in a well-defined way; all variants are trivially copyable, so
  // the implicit copy/assign/destroy of the union are trivial.
  SimEvent() : kind(Kind::kMarketTick), node(-1), task() {}
  explicit SimEvent(const Pending& p)
      : kind(Kind::kArrival), node(-1), pending(p) {}
  SimEvent(Kind k, catalog::NodeId n, const QueryTask& t)
      : kind(k), node(n), task(t) {}
  explicit SimEvent(const faults::FaultInjector::Transition& t)
      : kind(Kind::kFault), node(t.node), transition(t) {}
};

/// EventQueue's past-timestamp diagnostic hook: names the offending
/// event's kind plus the node/query it targets (see EventQueue::Schedule).
std::string DescribeEvent(const SimEvent& event);

/// The discrete-event simulator of a federation of autonomous RDBMSs:
/// arrivals from a workload trace are placed by an allocation mechanism
/// onto serial-executor nodes; completions, retries and market periods are
/// simulated in virtual time.
///
/// The Federation object is also the AllocationContext handed to the
/// mechanism: it exposes node backlogs/work to the mechanisms that probe
/// them, and charges every decision's messages to the metrics.
///
/// Execution has two byte-identical modes:
///
///  - Inline: one event queue, events dispatched strictly in canonical
///    (time, stamp) order — the semantics reference.
///  - Sharded (config.shards > 1 with a runner): the run is split into a
///    *mediator lane* (arrivals, allocation, market ticks, restarts) and
///    one lane per node shard (deliveries, completions, node faults). The
///    mediator runs ahead within one market-tick window — legal exactly
///    when the mechanism never reads live node state — while shard lanes
///    drain their queues in parallel at each tick barrier (a conservative
///    time window: the tick's own (time, stamp) key). Shard-side effects
///    (metrics, trace records, loss resubmissions) are buffered per lane
///    and k-way merged in canonical key order at the barrier, so metrics
///    float-accumulation order and trace bytes match the inline mode
///    exactly. Canonical stamps (sim/shard.h) make the global order a
///    pure function of the scenario, independent of shard count, thread
///    count and node placement.
///
/// Threading: concurrency exists only inside the fork-join fences the
/// federation itself issues on config.runner; between fences the run is
/// single-threaded, and concurrent runs on *distinct* Federation
/// instances (sharing only the const cost model) remain safe, which is
/// what exec::ExperimentRunner exploits.
class Federation : public allocation::AllocationContext {
 public:
  /// Both pointers must outlive the federation.
  Federation(const query::CostModel* cost_model,
             allocation::Allocator* allocator, FederationConfig config);

  /// Runs the whole trace to completion and returns the metrics. The run
  /// ends when all queries completed or were dropped.
  SimMetrics Run(const workload::Trace& trace);

  // ---- AllocationContext ----
  int num_nodes() const override { return num_nodes_; }
  const query::CostModel& cost_model() const override { return *cost_model_; }
  util::VDuration NodeBacklog(catalog::NodeId node) const override {
    // Only mechanisms with reads_node_state consult this; those run on
    // the inline path, where node state is current at every allocation.
    return pool_.Backlog(node, events_.now());
  }
  double NodeQueuedWork(catalog::NodeId node) const override {
    return pool_.QueuedWork(node);
  }
  double NodeCumulativeWork(catalog::NodeId node) const override {
    return pool_.CumulativeWork(node);
  }
  util::VTime now() const override { return events_.now(); }
  bool NodeOnline(catalog::NodeId node) const override;

 private:
  /// A shard-side effect, buffered during the window drain and applied by
  /// the mediator at the barrier in canonical (time, stamp) order.
  struct ShardOutcome {
    enum class Kind : uint8_t {
      kDeliverRecord,  // trace only
      kComplete,       // completion metrics + record
      kExpired,        // completion past deadline: drop accounting
      kLost,           // in-flight loss: accounting + resubmission
      kCrashRecord,    // trace only (losses arrive as kLost outcomes)
      kDegradeRecord,  // trace only
      kShed,           // bounded node queue shed: drop accounting
    };
    Kind kind;
    catalog::NodeId node = -1;
    util::VTime time = 0;
    uint64_t stamp = 0;
    QueryTask task;       // kComplete / kExpired / kLost
    double factor = 0.0;  // kDegradeRecord
    util::VTime resubmit_time = 0;   // kLost
    uint64_t resubmit_stamp = 0;     // kLost
  };

  /// One node shard's event lane: its own queue over its own nodes, plus
  /// the window's buffered effects, drained only inside tick barriers.
  struct ShardLane {
    EventQueue<SimEvent> queue;
    std::vector<ShardOutcome> outcomes;
    uint64_t dispatched = 0;
  };

  /// A mediator-side trace emission buffered while the mediator runs
  /// ahead of the shard lanes, flushed at the barrier merge.
  struct MediatorTraceItem {
    util::VTime time = 0;
    uint64_t stamp = 0;
    bool is_snapshot = false;
    obs::EventRecord record;
    /// Materialized eagerly at the tick (allocator state moves on before
    /// the flush).
    obs::AllocatorSnapshot snapshot;
  };

  // ---- event dispatch ----
  void Dispatch(const SimEvent& event);
  void DispatchShard(ShardLane* lane, const SimEvent& event, util::VTime now,
                     uint64_t stamp);
  void HandleQuery(SimEvent::Pending pending);
  void DeliverTask(ShardLane* lane, catalog::NodeId node_id,
                   const QueryTask& task, util::VTime now, uint64_t stamp);
  void StartTask(catalog::NodeId node_id, util::VTime now);
  void CompleteTask(ShardLane* lane, catalog::NodeId node_id,
                    const QueryTask& task, util::VTime now, uint64_t stamp);
  void MarketTick();
  /// Mediator-side fault transition (restart: allocator re-learns).
  void HandleRestart(const faults::FaultInjector::Transition& transition);
  /// Mediator-side surge edge: the rate change itself was applied when the
  /// arrivals were scheduled; this emits the informational trace marker.
  void HandleSurge(const faults::FaultInjector::Transition& transition);
  /// Shard-side fault transition (crash flush / degrade edges).
  void HandleShardFault(ShardLane* lane,
                        const faults::FaultInjector::Transition& transition,
                        util::VTime now, uint64_t stamp);
  /// Accounts `task` as lost to a *shard-side* event (crash flush,
  /// delivery to a dead node) and arranges the client's resubmission.
  void LoseTaskShard(ShardLane* lane, const QueryTask& task,
                     catalog::NodeId node_id, util::VTime now,
                     uint64_t stamp);
  /// Accounts `task` as lost on the mediator side (shipment hop dropped by
  /// a link fault) and schedules the resubmission.
  void LoseTaskMediator(const QueryTask& task, catalog::NodeId node_id);
  /// Accounts one query as abandoned — retry budget exhausted, or
  /// `expired` (client deadline passed) — and emits the drop record.
  /// Mediator-side only; the shard-side equivalent is a kExpired outcome.
  void DropQuery(query::QueryId id, query::QueryClassId class_id,
                 int attempts, bool expired);
  /// Accounts one query as shed on the mediator side (admission gate or
  /// retry-backlog overflow): SimMetrics::shed ⊆ dropped, plus
  /// admission_rejects when the admission gate did it, and the schema-v4
  /// `shed` trace record.
  void ShedQuery(query::QueryId id, query::QueryClassId class_id,
                 int attempts, bool admission);
  /// Sheds `task` at a full node queue (the incoming task, or the evicted
  /// queued victim under kLowestPriorityFirst): buffers a kShed outcome in
  /// sharded mode, applies it on the spot inline.
  void ShedTaskShard(ShardLane* lane, const QueryTask& task,
                     catalog::NodeId node_id, util::VTime now,
                     uint64_t stamp);

  // ---- sharded-mode machinery ----
  /// Runs the mediator lane with a barrier before every market tick.
  void RunSharded();
  /// Drains every shard lane up to the fence key (in parallel on the
  /// runner), then merges and applies the buffered window effects.
  void FenceAndMerge(util::VTime fence_time, uint64_t fence_stamp);
  /// Routes a shard effect: buffered into the lane in sharded mode,
  /// applied on the spot in inline mode — one effect-application code path
  /// in both modes, which is what makes byte-identity an invariant rather
  /// than a coincidence.
  void Emit(ShardLane* lane, ShardOutcome outcome);
  void ApplyOutcome(const ShardOutcome& outcome);
  /// Emits a mediator-side trace record: direct in inline mode, buffered
  /// in canonical key order in sharded mode.
  void EmitRecord(const obs::EventRecord& record);

  // ---- stamps and routing ----
  uint64_t NextMediatorStamp() {
    return EventStamp::Mediator(mediator_seq_++);
  }
  /// Mediator-allocated node-lane stamp (sublane 0: deliveries, faults).
  uint64_t NextNodeStampFromMediator(catalog::NodeId node) {
    return EventStamp::Node(node, 0, mediator_seq_++);
  }
  /// Node-allocated node-lane stamp (sublane 1: completions, losses).
  uint64_t NextNodeStamp(catalog::NodeId node) {
    return EventStamp::Node(node, 1,
                            node_seq_[static_cast<size_t>(node)]++);
  }
  /// Schedules a node-lane event: into the owning shard's lane queue in
  /// sharded mode, into the single queue otherwise.
  void ScheduleNodeEvent(util::VTime when, uint64_t stamp, SimEvent event);

  /// Streams the allocator's Snapshot() into the recorder (traced runs
  /// only; called once per global market period plus once at t=0).
  void EmitSnapshot();
  /// Evaluates the market-health watchdogs against the allocator snapshot
  /// and emits one deterministic msample (plus any alarms) into the
  /// collector. Global-market-period cadence, plus one final sample when
  /// the run ends.
  void EmitMetricsSample();
  util::VTime NextMarketTick() const;
  /// First market tick strictly after `t` (shard lanes compute their loss
  /// resubmission times against their own event clock, not the
  /// mediator's).
  util::VTime NextMarketTickAfter(util::VTime t) const;
  util::VDuration TickInterval() const;
  /// Cached cost_model_->Cost(k, node): one flat-array load instead of a
  /// virtual call per placement on the hot path.
  util::VDuration CachedCost(query::QueryClassId k,
                             catalog::NodeId node) const {
    return cost_cache_[static_cast<size_t>(k) *
                           static_cast<size_t>(num_nodes_) +
                       static_cast<size_t>(node)];
  }

  // Lane partition of the members below (DESIGN.md §8, machine-checked
  // by qa_lint QA-SHD-002): shard-lane code — DispatchShard and the
  // RunWhileBefore drain lambdas — may touch only shard-local state
  // (pool_, lanes_, node_seq_, plan_) and read-only-shared inputs
  // (config_, cost_model_, injector_, best_cost_, sharded_, num_nodes_).
  // Everything else is mediator-owned, mutated only between fences or
  // inside the canonical barrier merge.
  const query::CostModel* cost_model_;
  allocation::Allocator* allocator_;
  FederationConfig config_;
  /// Compiled fault schedule: config_.faults plus config_.outages (each
  /// outage becomes a single-node partition).
  faults::FaultInjector injector_;
  int num_nodes_ = 0;
  /// The mediator lane (and, in inline mode, the only queue).
  EventQueue<SimEvent> events_;
  /// Struct-of-arrays node state (see NodePool).
  NodePool pool_;
  ShardPlan plan_;
  std::vector<ShardLane> lanes_;
  /// True while Run executes in sharded mode.
  bool sharded_ = false;
  /// Canonical stamp counters: the mediator's scheduling counter and each
  /// node's own (sublane 1) counter. See sim/shard.h for why the two
  /// spaces must be separate.
  uint64_t mediator_seq_ = 0;
  std::vector<uint64_t> node_seq_;
  /// Key of the mediator event being dispatched (buffered records carry
  /// it so the barrier merge can interleave them canonically).
  util::VTime current_time_ = 0;
  uint64_t current_stamp_ = 0;
  std::vector<MediatorTraceItem> med_items_;
  SimMetrics metrics_;
  /// Per-allocation-attempt link mask: while the current arrival is being
  /// negotiated, link_down_[j] != 0 means this attempt's message hops to
  /// node j were dropped — the mediator sees a timeout, i.e. a decline
  /// (NodeOnline returns false). Valid only while link_mask_active_.
  std::vector<uint8_t> link_down_;
  bool link_mask_active_ = false;
  /// Per-tick allocation outcome counters driving the mediator's
  /// escalating retry backoff: a market round where every attempt was
  /// declined (rejects > 0, assigns == 0) bumps the streak, any assign
  /// resets it.
  int64_t tick_assigns_ = 0;
  int64_t tick_rejects_ = 0;
  int consecutive_decline_rounds_ = 0;
  /// Queries in flight (arrived, not yet completed or dropped); the
  /// periodic market event keeps rescheduling itself while this is > 0.
  int64_t outstanding_ = 0;
  /// Queries currently scheduled for a future retry/defer attempt
  /// (attempts > 0 arrivals in the queue); bounded by
  /// config_.max_retry_backlog.
  int64_t retry_backlog_ = 0;
  /// Queries that passed the admission gate and have not yet terminated
  /// (completed, dropped, or shed). Exact at market ticks in both execution
  /// modes; between ticks the sharded merge defers node-side terminations
  /// to the next fence, so the gate must never read this directly.
  int64_t admitted_in_flight_ = 0;
  /// The admission gate's view of admitted_in_flight_: refreshed from it at
  /// every market tick (post-fence, where inline and sharded state agree)
  /// and tracked between ticks by mediator-lane events only. Node-side
  /// completions become visible at the next tick — the gate reads node
  /// state at market granularity, exactly like the market itself does.
  /// Reading the live counter instead would make admission decisions
  /// depend on the execution layout (inline applies shard outcomes
  /// immediately; sharded applies them at the fence).
  int64_t admission_load_ = 0;
  /// Admission-control state machine, rebuilt per Run from the config and
  /// the per-class best costs.
  AdmissionController admission_;
  /// The admission controller's own market view, refilled every global
  /// period when the price-signal policy is active. Separate from
  /// market_probe_ (the watchdog feed) so admission works identically with
  /// and without a metrics collector attached.
  obs::metrics::MarketProbe admission_probe_;
  query::QueryId next_query_id_ = 0;
  /// Market ticks run so far (drives the snapshot cadence of traced runs).
  int64_t ticks_ = 0;
  /// Market-health detectors (built per run when a collector is attached).
  std::unique_ptr<obs::metrics::WatchdogSuite> watchdogs_;
  /// Reusable watchdog-feed buffer, refilled by the allocator each global
  /// period (steady state allocates nothing; see MarketProbe).
  obs::metrics::MarketProbe market_probe_;
  /// Allocation sequence number driving the sampled allocate/bid-scan
  /// phase probes (see obs::metrics::kAllocProbeStride).
  uint64_t alloc_probe_seq_ = 0;
  /// Tick sequence number driving the sampled tick/rollover phase probes
  /// (see obs::metrics::kTickProbeStride).
  uint64_t tick_probe_seq_ = 0;
  /// Best-case cost per class, precomputed for work-unit accounting.
  std::vector<double> best_cost_;
  /// Flattened (class x node) execution-cost matrix, precomputed once so
  /// HandleQuery never pays the CostModel virtual dispatch.
  std::vector<util::VDuration> cost_cache_;
};

/// Estimates the federation's saturation throughput (queries/second) for a
/// workload mix by running the synchronous market loop at overwhelming
/// demand for `periods` periods and measuring steady-state consumption.
/// `mix[k]` is the relative arrival share of class k. The paper could not
/// compute exact optima either (§5.1); this estimate is used to express
/// workloads as a percentage of system capacity (Figs. 4-5).
double EstimateCapacityQps(const query::CostModel& cost_model,
                           const std::vector<double>& mix,
                           util::VDuration period, int periods = 40);

}  // namespace qa::sim

#endif  // QAMARKET_SIM_FEDERATION_H_
