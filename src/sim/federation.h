#ifndef QAMARKET_SIM_FEDERATION_H_
#define QAMARKET_SIM_FEDERATION_H_

#include <memory>
#include <vector>

#include "allocation/allocator.h"
#include "obs/recorder.h"
#include "query/cost_model.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/node.h"
#include "workload/trace.h"

namespace qa::sim {

/// A scheduled node outage: the node is unreachable during [from, until).
/// Queries already queued there keep executing (network partition
/// semantics); new assignments bounce or are routed around, depending on
/// what the mechanism can observe.
struct Outage {
  catalog::NodeId node = -1;
  util::VTime from = 0;
  util::VTime until = 0;
};

/// Timing and policy knobs of a federation run.
struct FederationConfig {
  /// Market time period T (drives the allocator's period hooks).
  util::VDuration period = 500 * util::kMillisecond;
  /// One-way network latency per message hop.
  util::VDuration message_latency = 1 * util::kMillisecond;
  /// Queries declined by every server are resubmitted at the next market
  /// tick, at most this many times before being dropped.
  int max_retries = 200;
  /// The market-driver granularity: allocator period hooks run every
  /// period / market_tick_divisor, so the staggered per-node periods of
  /// QA-NT refresh supply continuously and rejected queries retry without
  /// waiting a whole global period.
  int market_tick_divisor = 8;
  /// Scheduled node outages (failure injection).
  std::vector<Outage> outages;
  /// Optional telemetry sink (not owned; must outlive the run). When set,
  /// the federation streams event spans, per-period allocator snapshots and
  /// run counters into it; when null every probe is a single branch.
  obs::Recorder* recorder = nullptr;
  /// Allocator RNG seed, recorded in the trace meta line for provenance
  /// (the federation itself draws no random numbers).
  int64_t seed = 0;
};

/// The tagged event payload of the federation's discrete-event loop.
///
/// A small POD dispatched by Federation::Dispatch on its kind, replacing
/// the previous per-event heap-allocated std::function closure: millions
/// of arrivals/deliveries/completions per run now cost zero allocations
/// and no indirect calls. The two payload variants never coexist, so they
/// share storage in a union (both are trivially copyable).
struct SimEvent {
  enum class Kind : uint8_t {
    /// A query arrives at (or is resubmitted to) the client's mediator.
    kArrival,
    /// An assigned query reaches its server after the network delay.
    kDeliver,
    /// The task running on `node` finishes.
    kComplete,
    /// Periodic market driver (allocator period hooks, retry clock).
    kMarketTick,
  };

  /// Arrival payload: the pending query a mediator must (re)place.
  struct Pending {
    workload::Arrival arrival;
    query::QueryId id;
    int attempts;
  };

  Kind kind;
  /// Target server of kDeliver/kComplete.
  catalog::NodeId node;
  union {
    Pending pending;  // kArrival
    QueryTask task;   // kDeliver / kComplete
  };

  static SimEvent MakeArrival(const Pending& pending) {
    return SimEvent(pending);
  }
  static SimEvent MakeDeliver(catalog::NodeId node, const QueryTask& task) {
    return SimEvent(Kind::kDeliver, node, task);
  }
  static SimEvent MakeComplete(catalog::NodeId node, const QueryTask& task) {
    return SimEvent(Kind::kComplete, node, task);
  }
  static SimEvent MakeMarketTick() { return SimEvent(); }

 private:
  // The active union member is chosen in a mem-initializer so its lifetime
  // starts in a well-defined way; both variants are trivially copyable, so
  // the implicit copy/assign/destroy of the union are trivial.
  SimEvent() : kind(Kind::kMarketTick), node(-1), task() {}
  explicit SimEvent(const Pending& p)
      : kind(Kind::kArrival), node(-1), pending(p) {}
  SimEvent(Kind k, catalog::NodeId n, const QueryTask& t)
      : kind(k), node(n), task(t) {}
};

/// The discrete-event simulator of a federation of autonomous RDBMSs:
/// arrivals from a workload trace are placed by an allocation mechanism
/// onto serial-executor nodes; completions, retries and market periods are
/// simulated in virtual time.
///
/// The Federation object is also the AllocationContext handed to the
/// mechanism: it exposes node backlogs/work to the mechanisms that probe
/// them, and charges every decision's messages to the metrics.
///
/// A Federation is single-threaded and self-contained: concurrent runs on
/// *distinct* Federation instances (sharing only the const cost model) are
/// safe, which is what exec::ExperimentRunner exploits.
class Federation : public allocation::AllocationContext {
 public:
  /// Both pointers must outlive the federation.
  Federation(const query::CostModel* cost_model,
             allocation::Allocator* allocator, FederationConfig config);

  /// Runs the whole trace to completion and returns the metrics. The run
  /// ends when all queries completed or were dropped.
  SimMetrics Run(const workload::Trace& trace);

  // ---- AllocationContext ----
  int num_nodes() const override {
    return static_cast<int>(nodes_.size());
  }
  const query::CostModel& cost_model() const override { return *cost_model_; }
  util::VDuration NodeBacklog(catalog::NodeId node) const override {
    return nodes_[static_cast<size_t>(node)].Backlog(events_.now());
  }
  double NodeQueuedWork(catalog::NodeId node) const override {
    return nodes_[static_cast<size_t>(node)].QueuedWork();
  }
  double NodeCumulativeWork(catalog::NodeId node) const override {
    return nodes_[static_cast<size_t>(node)].CumulativeWork();
  }
  util::VTime now() const override { return events_.now(); }
  bool NodeOnline(catalog::NodeId node) const override;

  const SimNode& node(catalog::NodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }

 private:
  void Dispatch(const SimEvent& event);
  void HandleQuery(SimEvent::Pending pending);
  void DeliverTask(catalog::NodeId node_id, const QueryTask& task);
  void StartTask(catalog::NodeId node_id);
  void CompleteTask(catalog::NodeId node_id, const QueryTask& task);
  void MarketTick();
  /// Streams the allocator's Snapshot() into the recorder (traced runs
  /// only; called once per global market period plus once at t=0).
  void EmitSnapshot();
  util::VTime NextMarketTick() const;
  util::VDuration TickInterval() const;
  /// Cached cost_model_->Cost(k, node): one flat-array load instead of a
  /// virtual call per placement on the hot path.
  util::VDuration CachedCost(query::QueryClassId k,
                             catalog::NodeId node) const {
    return cost_cache_[static_cast<size_t>(k) * nodes_.size() +
                       static_cast<size_t>(node)];
  }

  const query::CostModel* cost_model_;
  allocation::Allocator* allocator_;
  FederationConfig config_;
  EventQueue<SimEvent> events_;
  std::vector<SimNode> nodes_;
  SimMetrics metrics_;
  /// Queries in flight (arrived, not yet completed or dropped); the
  /// periodic market event keeps rescheduling itself while this is > 0.
  int64_t outstanding_ = 0;
  query::QueryId next_query_id_ = 0;
  /// Market ticks run so far (drives the snapshot cadence of traced runs).
  int64_t ticks_ = 0;
  /// Best-case cost per class, precomputed for work-unit accounting.
  std::vector<double> best_cost_;
  /// Flattened (class x node) execution-cost matrix, precomputed once so
  /// HandleQuery never pays the CostModel virtual dispatch.
  std::vector<util::VDuration> cost_cache_;
};

/// Estimates the federation's saturation throughput (queries/second) for a
/// workload mix by running the synchronous market loop at overwhelming
/// demand for `periods` periods and measuring steady-state consumption.
/// `mix[k]` is the relative arrival share of class k. The paper could not
/// compute exact optima either (§5.1); this estimate is used to express
/// workloads as a percentage of system capacity (Figs. 4-5).
double EstimateCapacityQps(const query::CostModel& cost_model,
                           const std::vector<double>& mix,
                           util::VDuration period, int periods = 40);

}  // namespace qa::sim

#endif  // QAMARKET_SIM_FEDERATION_H_
