#include "sim/metrics_json.h"

namespace qa::sim {

obs::Json MetricsToJson(const SimMetrics& metrics) {
  obs::Json json = obs::Json::MakeObject();
  json.Set("arrivals", metrics.arrivals);
  json.Set("completed", metrics.completed);
  json.Set("assigned", metrics.assigned);
  json.Set("dropped", metrics.dropped);
  json.Set("expired", metrics.expired);
  json.Set("shed", metrics.shed);
  json.Set("admission_rejects", metrics.admission_rejects);
  json.Set("retries", metrics.retries);
  json.Set("bounced", metrics.bounced);
  json.Set("lost", metrics.lost);
  json.Set("messages", metrics.messages);
  json.Set("solicited", metrics.solicited);
  // Omitted for flat-market runs so their reports keep their exact bytes.
  if (metrics.clusters_solicited != 0) {
    json.Set("clusters_solicited", metrics.clusters_solicited);
  }
  json.Set("events_dispatched", metrics.events_dispatched);
  json.Set("end_time_us", metrics.end_time);
  json.Set("total_busy_us", metrics.total_busy_time);
  json.Set("mean_ms", metrics.MeanResponseMs());
  json.Set("p50_ms", metrics.response_time_ms.Percentile(50));
  json.Set("p95_ms", metrics.response_time_ms.Percentile(95));
  json.Set("p99_ms", metrics.response_time_ms.Percentile(99));
  json.Set("min_ms", metrics.response_time_ms.min());
  json.Set("max_ms", metrics.response_time_ms.max());
  json.Set("throughput_qps", metrics.ThroughputQps());

  obs::Json dropped = obs::Json::MakeArray();
  for (int64_t d : metrics.dropped_per_class) dropped.Append(d);
  json.Set("dropped_per_class", std::move(dropped));

  obs::Json retries = obs::Json::MakeArray();
  for (int64_t r : metrics.retries_per_class) retries.Append(r);
  json.Set("retries_per_class", std::move(retries));

  obs::Json completed = obs::Json::MakeArray();
  for (const auto& series : metrics.completions_per_class) {
    completed.Append(static_cast<int64_t>(series.size()));
  }
  json.Set("completed_per_class", std::move(completed));
  return json;
}

}  // namespace qa::sim
