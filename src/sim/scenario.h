#ifndef QAMARKET_SIM_SCENARIO_H_
#define QAMARKET_SIM_SCENARIO_H_

#include <memory>

#include "catalog/catalog.h"
#include "query/cost_model.h"
#include "query/node_profile.h"
#include "query/template_gen.h"
#include "util/rng.h"

namespace qa::sim {

/// The full Table 3 parameter set, bundled.
struct Table3Config {
  catalog::CatalogConfig catalog;
  query::NodeProfileConfig profiles;
  query::TemplateGenConfig templates;
  /// Average best execution time of queries (paper: 2000 ms).
  util::VDuration avg_best_exec = 2000 * util::kMillisecond;
};

/// A fully built simulation scenario: the shared catalog plus the
/// per-(class, node) cost oracle derived from it.
struct Scenario {
  std::unique_ptr<catalog::Catalog> catalog;
  std::unique_ptr<query::CostModel> cost_model;
};

/// Builds the 100-node heterogeneous federation of §5.1 (Table 3):
/// synthetic catalog, heterogeneous node profiles, 100 query templates,
/// costs calibrated so the mean best-case execution time is ~2000 ms.
Scenario BuildTable3Scenario(const Table3Config& config, util::Rng& rng);

/// Parameters of the two-class sinusoid scenario (first experiment set of
/// §5.1): Q1 averages 1000 ms and is evaluable everywhere; Q2 averages
/// 500 ms and only half the nodes hold its data.
struct TwoClassConfig {
  int num_nodes = 100;
  util::VDuration q1_avg = 1000 * util::kMillisecond;
  util::VDuration q2_avg = 500 * util::kMillisecond;
  /// Fraction of nodes able to evaluate Q2.
  double q2_feasible_fraction = 0.5;
  /// Per-node speed factors are drawn from [1 - spread, 1 + spread]
  /// (heterogeneous hardware); 0 makes the federation homogeneous.
  double node_speed_spread = 0.5;
};

/// Builds the two-class MatrixCostModel: cost(Qk, j) = avg_k * speed_j,
/// with Q2 infeasible outside a random half of the nodes.
std::unique_ptr<query::MatrixCostModel> BuildTwoClassCostModel(
    const TwoClassConfig& config, util::Rng& rng);

/// The Fig. 1 two-node instance: node N1 runs q1 in 400 ms and q2 in
/// 100 ms; node N2 runs them in 450 ms and 500 ms.
std::unique_ptr<query::MatrixCostModel> BuildFig1CostModel();

}  // namespace qa::sim

#endif  // QAMARKET_SIM_SCENARIO_H_
