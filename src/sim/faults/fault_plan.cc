#include "sim/faults/fault_plan.h"

#include <string>

namespace qa::sim::faults {

namespace {

util::Status BadNode(const char* what, size_t index, catalog::NodeId node,
                     int num_nodes) {
  return util::Status::InvalidArgument(
      std::string(what) + "[" + std::to_string(index) + "]: node " +
      std::to_string(node) + " outside [0, " + std::to_string(num_nodes) +
      ")");
}

util::Status BadWindow(const char* what, size_t index, util::VTime from,
                       util::VTime until) {
  return util::Status::InvalidArgument(
      std::string(what) + "[" + std::to_string(index) + "]: window [" +
      std::to_string(from) + ", " + std::to_string(until) +
      ") is empty or inverted");
}

}  // namespace

util::Status FaultPlan::Validate(int num_nodes) const {
  for (size_t i = 0; i < crashes.size(); ++i) {
    const CrashFault& f = crashes[i];
    if (f.node < 0 || f.node >= num_nodes) {
      return BadNode("crashes", i, f.node, num_nodes);
    }
    if (f.at < 0 || f.restart_at <= f.at) {
      return BadWindow("crashes", i, f.at, f.restart_at);
    }
  }
  for (size_t i = 0; i < degrades.size(); ++i) {
    const DegradeFault& f = degrades[i];
    if (f.node < 0 || f.node >= num_nodes) {
      return BadNode("degrades", i, f.node, num_nodes);
    }
    if (f.from < 0 || f.until <= f.from) {
      return BadWindow("degrades", i, f.from, f.until);
    }
    if (!(f.factor > 0.0) || f.factor > 1.0) {
      return util::Status::InvalidArgument(
          "degrades[" + std::to_string(i) + "]: factor " +
          std::to_string(f.factor) + " outside (0, 1]");
    }
  }
  for (size_t i = 0; i < links.size(); ++i) {
    const LinkFault& f = links[i];
    if (f.node != LinkFault::kAllNodes &&
        (f.node < 0 || f.node >= num_nodes)) {
      return BadNode("links", i, f.node, num_nodes);
    }
    if (f.from < 0 || f.until <= f.from) {
      return BadWindow("links", i, f.from, f.until);
    }
    if (f.drop_probability < 0.0 || f.drop_probability >= 1.0) {
      return util::Status::InvalidArgument(
          "links[" + std::to_string(i) + "]: drop_probability " +
          std::to_string(f.drop_probability) + " outside [0, 1)");
    }
    if (f.extra_latency < 0) {
      return util::Status::InvalidArgument(
          "links[" + std::to_string(i) + "]: negative extra_latency");
    }
  }
  for (size_t i = 0; i < surges.size(); ++i) {
    const SurgeFault& f = surges[i];
    if (f.class_id < SurgeFault::kAllClasses) {
      return util::Status::InvalidArgument(
          "surges[" + std::to_string(i) + "]: class " +
          std::to_string(f.class_id) + " invalid (use kAllClasses = -1)");
    }
    if (f.from < 0 || f.until <= f.from) {
      return BadWindow("surges", i, f.from, f.until);
    }
    if (!(f.multiplier > 0.0)) {
      return util::Status::InvalidArgument(
          "surges[" + std::to_string(i) + "]: multiplier " +
          std::to_string(f.multiplier) + " must be positive");
    }
    // Overlapping windows with overlapping class scope would make the
    // effective multiplier depend on declaration order; reject instead of
    // silently compounding.
    for (size_t j = 0; j < i; ++j) {
      const SurgeFault& g = surges[j];
      bool classes_overlap = f.class_id == SurgeFault::kAllClasses ||
                             g.class_id == SurgeFault::kAllClasses ||
                             f.class_id == g.class_id;
      bool windows_overlap = f.from < g.until && g.from < f.until;
      if (classes_overlap && windows_overlap) {
        return util::Status::InvalidArgument(
            "surges[" + std::to_string(i) + "] overlaps surges[" +
            std::to_string(j) + "] in both time and class scope");
      }
    }
  }
  for (size_t i = 0; i < partitions.size(); ++i) {
    const PartitionFault& f = partitions[i];
    if (f.nodes.empty()) {
      return util::Status::InvalidArgument(
          "partitions[" + std::to_string(i) + "]: empty node set");
    }
    for (catalog::NodeId node : f.nodes) {
      if (node < 0 || node >= num_nodes) {
        return BadNode("partitions", i, node, num_nodes);
      }
    }
    if (f.from < 0 || f.until <= f.from) {
      return BadWindow("partitions", i, f.from, f.until);
    }
  }
  return util::Status::OK();
}

}  // namespace qa::sim::faults
