#ifndef QAMARKET_SIM_FAULTS_FAULT_INJECTOR_H_
#define QAMARKET_SIM_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/faults/fault_plan.h"
#include "util/rng.h"
#include "util/vtime.h"

namespace qa::sim::faults {

/// The compiled runtime of one FaultPlan for one federation run: answers
/// the simulator's reachability/speed/link questions from the plan's time
/// windows, and exposes the plan's timed transitions so the federation can
/// schedule them as discrete events (crash flushes a node, restart resets
/// the allocator's agent, degrade edges are traced).
///
/// One injector belongs to one single-threaded Federation. All message-loss
/// randomness comes from a private RNG seeded at construction; since the
/// event loop consumes draws in deterministic order, a (plan, seed) pair
/// reproduces the same run byte for byte at any experiment-grid thread
/// count.
class FaultInjector {
 public:
  /// A state change the federation must act on at a specific time.
  struct Transition {
    enum class Kind : uint8_t {
      kCrash,         // node goes down, volatile state lost
      kRestart,       // node back up, allocator re-learns it
      kDegradeStart,  // node slows to `factor` of normal speed
      kDegradeEnd,    // node back to full speed
      kSurgeStart,    // arrival rate of `class_id` multiplied by `factor`
      kSurgeEnd,      // arrival rate back to normal
    };
    Kind kind = Kind::kCrash;
    catalog::NodeId node = -1;  // -1 for the node-less surge transitions
    double factor = 1.0;   // degrade / surge transitions only
    int class_id = -1;     // surge transitions only (-1 = all classes)
  };

  /// `plan` must already be validated. `default_seed` is used when the
  /// plan's own seed is 0 (see FaultPlan::seed).
  FaultInjector(const FaultPlan& plan, uint64_t default_seed);

  bool empty() const { return plan_.empty(); }

  /// The plan's transitions, time-ordered (FIFO within a timestamp).
  const std::vector<std::pair<util::VTime, Transition>>& transitions()
      const {
    return transitions_;
  }

  /// Inside a crash window: down, state lost until restart.
  bool Crashed(catalog::NodeId node, util::VTime now) const;
  /// Inside a partition window: unreachable, state intact.
  bool Partitioned(catalog::NodeId node, util::VTime now) const;
  /// Unreachable for any reason (crashed or partitioned).
  bool Unreachable(catalog::NodeId node, util::VTime now) const {
    return Crashed(node, now) || Partitioned(node, now);
  }

  /// Execution speed multiplier in (0, 1]; 1.0 = full speed. Overlapping
  /// degrade windows compound.
  double SpeedFactor(catalog::NodeId node, util::VTime now) const;

  /// Arrival-rate multiplier for `class_id` at `now`: the matching surge
  /// window's multiplier, 1.0 outside every window. Validation forbids
  /// overlapping matching windows, so at most one applies.
  double ArrivalMultiplier(int class_id, util::VTime now) const;
  bool AnySurge() const { return !plan_.surges.empty(); }

  /// True when some link fault window covers `now` (fast-path gate: when
  /// false, no draw is consumed anywhere).
  bool AnyLinkFaultActive(util::VTime now) const;
  /// Draws the fate of one message hop toward `node`: true = the message
  /// is lost. Consumes one RNG draw per active matching link fault.
  bool DropMessage(catalog::NodeId node, util::VTime now);
  /// Extra one-way latency currently imposed on the link toward `node`.
  util::VDuration ExtraLatency(catalog::NodeId node, util::VTime now) const;

 private:
  FaultPlan plan_;
  std::vector<std::pair<util::VTime, Transition>> transitions_;
  util::Rng rng_;
};

}  // namespace qa::sim::faults

#endif  // QAMARKET_SIM_FAULTS_FAULT_INJECTOR_H_
