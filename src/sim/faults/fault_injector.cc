#include "sim/faults/fault_injector.h"

#include <algorithm>

namespace qa::sim::faults {

namespace {

inline bool InWindow(util::VTime from, util::VTime until, util::VTime now) {
  return now >= from && now < until;
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t default_seed)
    : plan_(plan),
      rng_(plan.seed != 0 ? plan.seed : default_seed ^ 0x9e3779b97f4a7c15ull) {
  for (const CrashFault& f : plan_.crashes) {
    transitions_.emplace_back(
        f.at, Transition{Transition::Kind::kCrash, f.node, 1.0});
    transitions_.emplace_back(
        f.restart_at, Transition{Transition::Kind::kRestart, f.node, 1.0});
  }
  for (const DegradeFault& f : plan_.degrades) {
    transitions_.emplace_back(
        f.from, Transition{Transition::Kind::kDegradeStart, f.node, f.factor});
    transitions_.emplace_back(
        f.until, Transition{Transition::Kind::kDegradeEnd, f.node, 1.0});
  }
  for (const SurgeFault& f : plan_.surges) {
    transitions_.emplace_back(
        f.from, Transition{Transition::Kind::kSurgeStart, /*node=*/-1,
                           f.multiplier, f.class_id});
    transitions_.emplace_back(
        f.until, Transition{Transition::Kind::kSurgeEnd, /*node=*/-1, 1.0,
                            f.class_id});
  }
  // Time-ordered, stable so simultaneous transitions keep plan order.
  std::stable_sort(transitions_.begin(), transitions_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
}

bool FaultInjector::Crashed(catalog::NodeId node, util::VTime now) const {
  for (const CrashFault& f : plan_.crashes) {
    if (f.node == node && InWindow(f.at, f.restart_at, now)) return true;
  }
  return false;
}

bool FaultInjector::Partitioned(catalog::NodeId node, util::VTime now) const {
  for (const PartitionFault& f : plan_.partitions) {
    if (!InWindow(f.from, f.until, now)) continue;
    for (catalog::NodeId n : f.nodes) {
      if (n == node) return true;
    }
  }
  return false;
}

double FaultInjector::SpeedFactor(catalog::NodeId node,
                                  util::VTime now) const {
  double factor = 1.0;
  for (const DegradeFault& f : plan_.degrades) {
    if (f.node == node && InWindow(f.from, f.until, now)) {
      factor *= f.factor;
    }
  }
  return factor;
}

double FaultInjector::ArrivalMultiplier(int class_id, util::VTime now) const {
  for (const SurgeFault& f : plan_.surges) {
    if (f.class_id != SurgeFault::kAllClasses && f.class_id != class_id) {
      continue;
    }
    if (InWindow(f.from, f.until, now)) return f.multiplier;
  }
  return 1.0;
}

bool FaultInjector::AnyLinkFaultActive(util::VTime now) const {
  for (const LinkFault& f : plan_.links) {
    if (InWindow(f.from, f.until, now)) return true;
  }
  return false;
}

bool FaultInjector::DropMessage(catalog::NodeId node, util::VTime now) {
  bool lost = false;
  for (const LinkFault& f : plan_.links) {
    if (f.node != LinkFault::kAllNodes && f.node != node) continue;
    if (!InWindow(f.from, f.until, now)) continue;
    // Draw even when already lost so the RNG stream depends only on the
    // plan and the event order, not on earlier draw outcomes.
    if (f.drop_probability > 0.0 && rng_.Bernoulli(f.drop_probability)) {
      lost = true;
    }
  }
  return lost;
}

util::VDuration FaultInjector::ExtraLatency(catalog::NodeId node,
                                            util::VTime now) const {
  util::VDuration extra = 0;
  for (const LinkFault& f : plan_.links) {
    if (f.node != LinkFault::kAllNodes && f.node != node) continue;
    if (InWindow(f.from, f.until, now)) extra += f.extra_latency;
  }
  return extra;
}

}  // namespace qa::sim::faults
