#ifndef QAMARKET_SIM_FAULTS_FAULT_PLAN_H_
#define QAMARKET_SIM_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "util/status.h"
#include "util/vtime.h"

namespace qa::sim::faults {

/// Crash with state loss: the node goes down at `at` and is unreachable
/// until `restart_at`. Unlike a scheduled Outage (state intact), every
/// query queued or running on the node at crash time is lost — clients
/// detect the silence at the next market tick and resubmit — and the
/// allocation mechanism is told about the restart (Allocator::
/// OnNodeRestart) so per-node learned state (QA-NT's private price vector)
/// resets to defaults and must be re-learned.
struct CrashFault {
  catalog::NodeId node = -1;
  util::VTime at = 0;
  util::VTime restart_at = 0;
};

/// Degraded capacity: during [from, until) the node executes at `factor`
/// of its normal speed (factor in (0, 1]; 0.5 = half speed). The node
/// stays reachable and keeps offering at its advertised costs, so a
/// market mechanism's learned prices become *stale* rather than absent —
/// the complementary failure mode to a crash.
struct DegradeFault {
  catalog::NodeId node = -1;
  util::VTime from = 0;
  util::VTime until = 0;
  double factor = 0.5;
};

/// Lossy/delayed link: during [from, until), each message hop toward
/// `node` (broadcast/offer probes and query shipment) is dropped with
/// `drop_probability` and delayed by `extra_latency`. A dropped
/// request/offer hop looks like a timeout to the mediator and is treated
/// as a decline; a dropped shipment hop loses the query in flight and the
/// client resubmits at the next market tick. `node == kAllNodes` applies
/// the fault to every link.
struct LinkFault {
  static constexpr catalog::NodeId kAllNodes = -1;

  catalog::NodeId node = kAllNodes;
  util::VTime from = 0;
  util::VTime until = 0;
  double drop_probability = 0.0;
  util::VDuration extra_latency = 0;
};

/// Flash crowd: during [from, until) the arrival rate of `class_id`
/// (kAllClasses = every class) is multiplied by `multiplier`. The demand-
/// side counterpart of the supply-side faults above: the federation clones
/// each matching trace arrival `multiplier`x (fractional parts resolved by
/// a seeded Bernoulli draw), so a 10x surge is a declarative chaos-plan
/// citizen like a crash — same plan, same seed, byte-identical run at any
/// shard/thread layout. Multipliers below 1 model demand droughts.
struct SurgeFault {
  static constexpr int kAllClasses = -1;

  int class_id = kAllClasses;
  util::VTime from = 0;
  util::VTime until = 0;
  double multiplier = 2.0;
};

/// Network partition: during [from, until) the listed node set is mutually
/// unreachable from the rest of the federation (and from the mediators,
/// which live on the majority side). State stays intact: queries already
/// queued on a partitioned node keep executing and their results are
/// delivered once the partition heals.
struct PartitionFault {
  std::vector<catalog::NodeId> nodes;
  util::VTime from = 0;
  util::VTime until = 0;
};

/// A declarative, seeded fault schedule for one federation run. Empty by
/// default (no faults). All randomness (message-loss draws) comes from a
/// private RNG seeded with `seed`, so the same plan over the same workload
/// produces a byte-identical run at any thread count.
struct FaultPlan {
  std::vector<CrashFault> crashes;
  std::vector<DegradeFault> degrades;
  std::vector<LinkFault> links;
  std::vector<PartitionFault> partitions;
  std::vector<SurgeFault> surges;
  /// Seed of the injector's message-loss RNG. 0 derives the seed from the
  /// federation's own seed (FederationConfig::seed).
  uint64_t seed = 0;

  bool empty() const {
    return crashes.empty() && degrades.empty() && links.empty() &&
           partitions.empty() && surges.empty();
  }

  /// Rejects malformed plans: nodes outside [0, num_nodes), inverted or
  /// empty windows, degrade factors outside (0, 1], drop probabilities
  /// outside [0, 1), negative extra latency, empty partition sets,
  /// non-positive surge multipliers, and surge windows that overlap in
  /// both time and class scope (overlap would make the effective rate
  /// multiplier order-dependent; split the windows instead).
  util::Status Validate(int num_nodes) const;
};

}  // namespace qa::sim::faults

#endif  // QAMARKET_SIM_FAULTS_FAULT_PLAN_H_
