#ifndef QAMARKET_SIM_METRICS_H_
#define QAMARKET_SIM_METRICS_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "stats/series.h"
#include "stats/summary.h"
#include "util/vtime.h"

namespace qa::sim {

/// Everything a federation run measures.
struct SimMetrics {
  /// Response time (ms) per completed query: completion - first arrival.
  stats::Summary response_time_ms;
  /// Completion events: one sample per finished query, value = class id.
  stats::TimeSeries completions;
  /// Completion events per class (index = class id).
  std::vector<stats::TimeSeries> completions_per_class;
  /// Queries that entered the system. Under arrival-rate surges this is
  /// not the configured trace length: surge windows clone (or thin)
  /// scheduled arrivals, so conservation checks must use this counter,
  /// never the input trace size. Invariant: arrivals == completed + dropped.
  int64_t arrivals = 0;
  /// Queries abandoned: retry budget exhausted, or the client's response
  /// deadline passed (`expired` counts the latter subset).
  int64_t dropped = 0;
  /// Queries dropped by overload protection — a bounded node queue, the
  /// bounded mediator retry backlog, or the admission gate (subset of
  /// `dropped`).
  int64_t shed = 0;
  /// Queries turned away by the admission controller specifically (subset
  /// of `shed`).
  int64_t admission_rejects = 0;
  /// Queries abandoned because FederationConfig::query_deadline passed
  /// before a usable answer arrived (subset of `dropped`).
  int64_t expired = 0;
  /// Total re-submissions (QA-NT's "ask again next period").
  int64_t retries = 0;
  /// Drops broken down by query class (index = class id).
  std::vector<int64_t> dropped_per_class;
  /// Re-submissions broken down by query class (index = class id).
  std::vector<int64_t> retries_per_class;
  /// Assignments that bounced off an unreachable node (failure injection).
  int64_t bounced = 0;
  /// Queries lost in flight or wiped by a node crash (failure injection);
  /// every lost query is resubmitted, so conservation still holds:
  /// arrivals == completed + dropped.
  int64_t lost = 0;
  /// Total network messages spent on allocation decisions.
  int64_t messages = 0;
  /// Hierarchical runs: total cluster sub-mediators solicited by the top
  /// tier across all allocation attempts (0 under the flat market).
  int64_t clusters_solicited = 0;
  /// Total nodes solicited for offers across all allocation attempts (the
  /// accumulated fanout; 0 for mechanisms that do not negotiate).
  int64_t solicited = 0;
  /// Simulator events dispatched over the run (arrivals, deliveries,
  /// completions, market ticks, faults) — the denominator of the
  /// events/sec wall-clock rate the scale bench reports.
  int64_t events_dispatched = 0;
  /// Queries assigned to some node.
  int64_t assigned = 0;
  /// Queries completed.
  int64_t completed = 0;
  /// Sum of per-node busy time (for utilization accounting).
  util::VDuration total_busy_time = 0;
  /// Virtual time when the last event ran.
  util::VTime end_time = 0;
  /// Per-node time at which each node was last idle (index = node id),
  /// for the overload-duration analysis of Fig. 1.
  std::vector<util::VTime> node_last_idle;
  /// Per-node completed-query counts.
  std::vector<int64_t> node_completed;

  /// Mean response time in ms (0 if nothing completed).
  double MeanResponseMs() const { return response_time_ms.Mean(); }
  /// Completed queries per second of virtual time.
  double ThroughputQps() const {
    return end_time > 0 ? static_cast<double>(completed) /
                              util::ToSeconds(end_time)
                        : 0.0;
  }
};

}  // namespace qa::sim

#endif  // QAMARKET_SIM_METRICS_H_
