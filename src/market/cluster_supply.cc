#include "market/cluster_supply.h"

#include <utility>

namespace qa::market {

QuantityVector DefaultPlannedSupply(std::vector<util::VDuration> unit_costs,
                                    util::VDuration period_budget,
                                    const QaNtConfig& config) {
  // Floor the eq.-4 plan at 1 for every evaluable class: the knapsack
  // plans 0 for a class whose unit cost exceeds the period budget, but
  // budget-elastic admission still accepts such a query into debt on an
  // uncontended node — a fresh member is never truly zero-supply, and a
  // ledger that says otherwise starves the class at the top tier.
  QaNtAgent agent(0, unit_costs, period_budget, config);
  agent.BeginPeriod();
  QuantityVector plan = agent.planned_supply();
  for (int k = 0; k < plan.num_classes(); ++k) {
    if (unit_costs[static_cast<size_t>(k)] !=
            CapacitySupplySet::kCannotEvaluate &&
        plan[k] == 0) {
      plan[k] = 1;
    }
  }
  return plan;
}

}  // namespace qa::market
