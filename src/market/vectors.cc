#include "market/vectors.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <numeric>

namespace qa::market {

Quantity QuantityVector::Total() const {
  return std::accumulate(q_.begin(), q_.end(), Quantity{0});
}

bool QuantityVector::IsZero() const {
  return std::all_of(q_.begin(), q_.end(), [](Quantity v) { return v == 0; });
}

bool QuantityVector::ComponentwiseLeq(const QuantityVector& other) const {
  assert(num_classes() == other.num_classes());
  for (size_t k = 0; k < q_.size(); ++k) {
    if (q_[k] > other.q_[k]) return false;
  }
  return true;
}

QuantityVector& QuantityVector::operator+=(const QuantityVector& other) {
  assert(num_classes() == other.num_classes());
  for (size_t k = 0; k < q_.size(); ++k) q_[k] += other.q_[k];
  return *this;
}

QuantityVector& QuantityVector::operator-=(const QuantityVector& other) {
  assert(num_classes() == other.num_classes());
  for (size_t k = 0; k < q_.size(); ++k) q_[k] -= other.q_[k];
  return *this;
}

std::string QuantityVector::ToString() const {
  std::string out = "(";
  for (size_t k = 0; k < q_.size(); ++k) {
    if (k != 0) out += ", ";
    out += std::to_string(q_[k]);
  }
  out += ")";
  return out;
}

QuantityVector Aggregate(const std::vector<QuantityVector>& vectors) {
  if (vectors.empty()) return QuantityVector();
  QuantityVector sum(vectors[0].num_classes());
  for (const QuantityVector& v : vectors) sum += v;
  return sum;
}

void PriceVector::ClampFloor(double floor) {
  for (double& p : p_) p = std::max(p, floor);
}

std::string PriceVector::ToString() const {
  std::string out = "(";
  char buf[32];
  for (size_t k = 0; k < p_.size(); ++k) {
    if (k != 0) out += ", ";
    std::snprintf(buf, sizeof(buf), "%.4g", p_[k]);
    out += buf;
  }
  out += ")";
  return out;
}

double Dot(const PriceVector& prices, const QuantityVector& quantities) {
  assert(prices.num_classes() == quantities.num_classes());
  double sum = 0.0;
  for (int k = 0; k < prices.num_classes(); ++k) {
    sum += prices[k] * static_cast<double>(quantities[k]);
  }
  return sum;
}

QuantityVector ExcessDemand(const QuantityVector& aggregate_demand,
                            const QuantityVector& aggregate_supply) {
  return aggregate_demand - aggregate_supply;
}

}  // namespace qa::market
