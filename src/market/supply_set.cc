#include "market/supply_set.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>

namespace qa::market {

bool SupplySet::CanAddUnit(const QuantityVector& supply, int k) const {
  QuantityVector next = supply;
  next[k] += 1;
  return Contains(next);
}

CapacitySupplySet::CapacitySupplySet(std::vector<util::VDuration> unit_costs,
                                     util::VDuration budget)
    : unit_costs_(std::move(unit_costs)), budget_(budget) {
  for (util::VDuration c : unit_costs_) {
    assert(c == kCannotEvaluate || c > 0);
    (void)c;
  }
}

util::VDuration CapacitySupplySet::CostOf(const QuantityVector& supply) const {
  assert(supply.num_classes() == num_classes());
  util::VDuration total = 0;
  for (int k = 0; k < num_classes(); ++k) {
    if (supply[k] == 0) continue;
    if (!CanEvaluateClass(k)) return kCannotEvaluate;
    total += unit_costs_[static_cast<size_t>(k)] * supply[k];
  }
  return total;
}

bool CapacitySupplySet::Contains(const QuantityVector& supply) const {
  if (supply.num_classes() != num_classes()) return false;
  for (int k = 0; k < num_classes(); ++k) {
    if (supply[k] < 0) return false;
  }
  util::VDuration cost = CostOf(supply);
  return cost != kCannotEvaluate && cost <= budget_;
}

QuantityVector CapacitySupplySet::MaximizeValue(
    const PriceVector& prices) const {
  return MaximizeValueWithBudget(prices, budget_);
}

QuantityVector CapacitySupplySet::MaximizeValueWithBudget(
    const PriceVector& prices, util::VDuration budget) const {
  assert(prices.num_classes() == num_classes());
  // Order evaluable classes by descending value density p_k / cost_k.
  std::vector<int> order;
  for (int k = 0; k < num_classes(); ++k) {
    if (CanEvaluateClass(k) && prices[k] > 0.0) order.push_back(k);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    double da = prices[a] / static_cast<double>(unit_cost(a));
    double db = prices[b] / static_cast<double>(unit_cost(b));
    // Exact compare on purpose: an epsilon tie-break would violate strict
    // weak ordering and make the knapsack order non-deterministic.
    // qa-lint: allow(QA-NUM-001)
    if (da != db) return da > db;
    return a < b;
  });
  QuantityVector supply(num_classes());
  util::VDuration remaining = budget;
  for (int k : order) {
    util::VDuration c = unit_cost(k);
    Quantity fit = remaining / c;
    if (fit > 0) {
      supply[k] += fit;
      remaining -= fit * c;
    }
  }
  return supply;
}

int CapacitySupplySet::BestDensityClass(const PriceVector& prices) const {
  int best = -1;
  double best_density = 0.0;
  for (int k = 0; k < num_classes(); ++k) {
    if (!CanEvaluateClass(k) || prices[k] <= 0.0) continue;
    double density = prices[k] / static_cast<double>(unit_cost(k));
    if (best < 0 || density > best_density) {
      best = k;
      best_density = density;
    }
  }
  return best;
}

FiniteSupplySet::FiniteSupplySet(std::vector<QuantityVector> vectors)
    : vectors_(std::move(vectors)) {
  assert(!vectors_.empty());
  num_classes_ = vectors_[0].num_classes();
  for (const QuantityVector& v : vectors_) {
    assert(v.num_classes() == num_classes_);
    (void)v;
  }
}

bool FiniteSupplySet::Contains(const QuantityVector& supply) const {
  return std::find(vectors_.begin(), vectors_.end(), supply) !=
         vectors_.end();
}

QuantityVector FiniteSupplySet::MaximizeValue(
    const PriceVector& prices) const {
  assert(prices.num_classes() == num_classes_);
  const QuantityVector* best = &vectors_[0];
  double best_value = Dot(prices, vectors_[0]);
  for (const QuantityVector& v : vectors_) {
    double value = Dot(prices, v);
    if (value > best_value) {
      best_value = value;
      best = &v;
    }
  }
  return *best;
}

std::vector<QuantityVector> EnumerateSupplyVectors(
    const CapacitySupplySet& set, const QuantityVector& ceil) {
  std::vector<QuantityVector> result;
  QuantityVector current(set.num_classes());
  std::function<void(int)> recurse = [&](int k) {
    if (k == set.num_classes()) {
      if (set.Contains(current)) result.push_back(current);
      return;
    }
    Quantity max_k = set.CanEvaluateClass(k) ? ceil[k] : 0;
    for (Quantity q = 0; q <= max_k; ++q) {
      current[k] = q;
      if (!set.CanEvaluateClass(k) && q > 0) break;
      recurse(k + 1);
    }
    current[k] = 0;
  };
  recurse(0);
  return result;
}

}  // namespace qa::market
