#ifndef QAMARKET_MARKET_MARKET_SIM_H_
#define QAMARKET_MARKET_MARKET_SIM_H_

#include <memory>
#include <vector>

#include "market/qa_nt.h"
#include "market/vectors.h"
#include "query/cost_model.h"
#include "util/vtime.h"

namespace qa::market {

/// Configuration of the synchronous market loop.
struct MarketSimConfig {
  /// Length T of one time period.
  util::VDuration period = 500 * util::kMillisecond;
  QaNtConfig agent;
};

/// Synchronous, period-driven execution of the query market: every node
/// runs a QaNtAgent, clients request offers for their queued queries, accept
/// the cheapest offer and resubmit unserved queries in the next period.
///
/// This is the distilled mechanism of §3.3 without queueing or execution
/// delays; the discrete-event simulator in src/sim embeds the same agents
/// into a full timing model. The synchronous loop is what the convergence
/// tests (Proposition 3.1) and the equilibrium experiments run on.
class MarketSimulator {
 public:
  /// One node per cost-model column; node i's agent prices all K classes
  /// and can evaluate class k iff cost_model->CanEvaluate(k, i).
  MarketSimulator(const query::CostModel* cost_model, MarketSimConfig config);

  struct PeriodResult {
    /// Demand faced this period (new arrivals + carryover), per node.
    std::vector<QuantityVector> demands;
    /// What each client node got evaluated this period (c_i).
    std::vector<QuantityVector> consumptions;
    /// What each server node actually supplied this period (s_i).
    std::vector<QuantityVector> supplies;
    QuantityVector aggregate_demand;
    QuantityVector aggregate_consumption;
    /// demand - consumption (queries rolled over to the next period).
    QuantityVector unserved;
  };

  /// Runs one period: injects `new_demands` (per client node), lets every
  /// agent plan its supply, brokers requests/offers/accepts, applies the
  /// end-of-period price decay and returns the period's bookkeeping.
  PeriodResult RunPeriod(const std::vector<QuantityVector>& new_demands);

  /// Convenience: runs `periods` periods of the same per-period demand.
  /// Returns the last period's result.
  PeriodResult RunSteadyDemand(const std::vector<QuantityVector>& demand,
                               int periods);

  int num_nodes() const { return static_cast<int>(agents_.size()); }
  int num_classes() const { return cost_model_->num_classes(); }
  const QaNtAgent& agent(int node) const {
    return *agents_[static_cast<size_t>(node)];
  }
  QaNtAgent& mutable_agent(int node) {
    return *agents_[static_cast<size_t>(node)];
  }
  /// Queries still waiting, per client node.
  const std::vector<QuantityVector>& pending() const { return pending_; }
  /// Sum over nodes of the supply vectors the agents planned this period.
  QuantityVector AggregatePlannedSupply() const;

 private:
  const query::CostModel* cost_model_;
  MarketSimConfig config_;
  std::vector<std::unique_ptr<QaNtAgent>> agents_;
  std::vector<QuantityVector> pending_;
};

}  // namespace qa::market

#endif  // QAMARKET_MARKET_MARKET_SIM_H_
