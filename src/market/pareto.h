#ifndef QAMARKET_MARKET_PARETO_H_
#define QAMARKET_MARKET_PARETO_H_

#include <vector>

#include "market/supply_set.h"
#include "market/vectors.h"

namespace qa::market {

/// A candidate outcome of the Query Allocation problem: per-node supply and
/// consumption vectors <[s_i], [c_i]> (§2.2).
struct Solution {
  std::vector<QuantityVector> supplies;
  std::vector<QuantityVector> consumptions;

  int num_nodes() const { return static_cast<int>(consumptions.size()); }
  QuantityVector AggregateSupply() const { return Aggregate(supplies); }
  QuantityVector AggregateConsumption() const {
    return Aggregate(consumptions);
  }
};

/// The preference relation >=_i used throughout the paper: node i prefers
/// the consumption vector with the larger total query count (§2.2).
inline bool Prefers(const QuantityVector& a, const QuantityVector& b) {
  return a.Total() >= b.Total();
}
inline bool StrictlyPrefers(const QuantityVector& a, const QuantityVector& b) {
  return a.Total() > b.Total();
}

/// Validates a solution against the model's constraints:
///   - every supply vector lies in its node's supply set,
///   - every consumption vector is componentwise <= that node's demand,
///   - aggregate supply == aggregate consumption (eq. 3).
bool IsFeasible(const Solution& solution,
                const std::vector<QuantityVector>& demands,
                const std::vector<const SupplySet*>& supply_sets);

/// Definition 1: `a` Pareto-dominates `b` iff every node weakly prefers its
/// consumption in `a` and at least one strictly prefers it.
bool ParetoDominates(const Solution& a, const Solution& b);

/// True iff no solution in `candidates` Pareto-dominates `solution`.
bool IsParetoOptimalAmong(const Solution& solution,
                          const std::vector<Solution>& candidates);

/// Exhaustively enumerates all feasible solutions of a small QA instance.
///
/// Consumption is capped by the per-node demands and supply by the supply
/// sets; complexity is exponential in I*K, so this is strictly a test/
/// example oracle (the paper's Fig. 1 instance has I = K = 2).
std::vector<Solution> EnumerateFeasibleSolutions(
    const std::vector<QuantityVector>& demands,
    const std::vector<const SupplySet*>& supply_sets);

/// The largest total consumption achievable by any feasible solution, via
/// the same exhaustive enumeration (test oracle).
Quantity MaxTotalConsumption(const std::vector<QuantityVector>& demands,
                             const std::vector<const SupplySet*>& supply_sets);

/// True iff `solution` is feasible and not Pareto-dominated by any feasible
/// solution of the instance (exhaustive check; test oracle for small
/// instances). Note that with the total-count preference, achieving
/// MaxTotalConsumption is *sufficient* for Pareto optimality (a dominating
/// solution would have to strictly increase the total) but not necessary.
bool IsParetoOptimal(const Solution& solution,
                     const std::vector<QuantityVector>& demands,
                     const std::vector<const SupplySet*>& supply_sets);

}  // namespace qa::market

#endif  // QAMARKET_MARKET_PARETO_H_
