#include "market/pareto.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace qa::market {

namespace {

/// All vectors q with 0 <= q <= ceil (componentwise) contained in `set`.
std::vector<QuantityVector> EnumerateWithin(const SupplySet& set,
                                            const QuantityVector& ceil) {
  std::vector<QuantityVector> result;
  QuantityVector current(set.num_classes());
  std::function<void(int)> recurse = [&](int k) {
    if (k == set.num_classes()) {
      if (set.Contains(current)) result.push_back(current);
      return;
    }
    for (Quantity q = 0; q <= ceil[k]; ++q) {
      current[k] = q;
      recurse(k + 1);
    }
    current[k] = 0;
  };
  recurse(0);
  return result;
}

/// Enumerates all consumption matrices [c_i] with sum_i c_i == target and
/// c_i <= demands_i componentwise, invoking `emit` for each.
void EnumerateConsumptionSplits(
    const std::vector<QuantityVector>& demands, const QuantityVector& target,
    const std::function<void(const std::vector<QuantityVector>&)>& emit) {
  int num_nodes = static_cast<int>(demands.size());
  int num_classes = target.num_classes();
  std::vector<QuantityVector> current(
      demands.size(), QuantityVector(num_classes));
  // Recurse over (class k, node i); `left` is what remains of target[k].
  std::function<void(int, int, Quantity)> recurse = [&](int k, int i,
                                                        Quantity left) {
    if (k == num_classes) {
      emit(current);
      return;
    }
    if (i == num_nodes) {
      if (left == 0) recurse(k + 1, 0, k + 1 < num_classes ? target[k + 1] : 0);
      return;
    }
    Quantity max_here = std::min(left, demands[static_cast<size_t>(i)][k]);
    for (Quantity q = 0; q <= max_here; ++q) {
      current[static_cast<size_t>(i)][k] = q;
      recurse(k, i + 1, left - q);
    }
    current[static_cast<size_t>(i)][k] = 0;
  };
  recurse(0, 0, num_classes > 0 ? target[0] : 0);
}

}  // namespace

bool IsFeasible(const Solution& solution,
                const std::vector<QuantityVector>& demands,
                const std::vector<const SupplySet*>& supply_sets) {
  if (solution.supplies.size() != supply_sets.size()) return false;
  if (solution.consumptions.size() != demands.size()) return false;
  for (size_t i = 0; i < supply_sets.size(); ++i) {
    if (!supply_sets[i]->Contains(solution.supplies[i])) return false;
  }
  for (size_t i = 0; i < demands.size(); ++i) {
    if (!solution.consumptions[i].ComponentwiseLeq(demands[i])) return false;
    for (int k = 0; k < demands[i].num_classes(); ++k) {
      if (solution.consumptions[i][k] < 0) return false;
    }
  }
  return solution.AggregateSupply() == solution.AggregateConsumption();
}

bool ParetoDominates(const Solution& a, const Solution& b) {
  assert(a.num_nodes() == b.num_nodes());
  bool some_strict = false;
  for (int i = 0; i < a.num_nodes(); ++i) {
    const QuantityVector& ca = a.consumptions[static_cast<size_t>(i)];
    const QuantityVector& cb = b.consumptions[static_cast<size_t>(i)];
    if (!Prefers(ca, cb)) return false;
    if (StrictlyPrefers(ca, cb)) some_strict = true;
  }
  return some_strict;
}

bool IsParetoOptimalAmong(const Solution& solution,
                          const std::vector<Solution>& candidates) {
  for (const Solution& other : candidates) {
    if (ParetoDominates(other, solution)) return false;
  }
  return true;
}

std::vector<Solution> EnumerateFeasibleSolutions(
    const std::vector<QuantityVector>& demands,
    const std::vector<const SupplySet*>& supply_sets) {
  assert(!demands.empty());
  QuantityVector aggregate_demand = Aggregate(demands);
  // Candidate supply vectors per node, capped by the aggregate demand (a
  // node never usefully supplies more of a class than the system demands).
  std::vector<std::vector<QuantityVector>> candidates;
  candidates.reserve(supply_sets.size());
  for (const SupplySet* set : supply_sets) {
    candidates.push_back(EnumerateWithin(*set, aggregate_demand));
  }

  std::vector<Solution> solutions;
  std::vector<QuantityVector> chosen(supply_sets.size());
  std::function<void(size_t)> pick_supply = [&](size_t i) {
    if (i == supply_sets.size()) {
      QuantityVector aggregate_supply = Aggregate(chosen);
      if (!aggregate_supply.ComponentwiseLeq(aggregate_demand)) return;
      EnumerateConsumptionSplits(
          demands, aggregate_supply,
          [&](const std::vector<QuantityVector>& consumptions) {
            Solution s;
            s.supplies = chosen;
            s.consumptions = consumptions;
            solutions.push_back(std::move(s));
          });
      return;
    }
    for (const QuantityVector& v : candidates[i]) {
      chosen[i] = v;
      pick_supply(i + 1);
    }
  };
  pick_supply(0);
  return solutions;
}

Quantity MaxTotalConsumption(
    const std::vector<QuantityVector>& demands,
    const std::vector<const SupplySet*>& supply_sets) {
  QuantityVector aggregate_demand = Aggregate(demands);
  std::vector<std::vector<QuantityVector>> candidates;
  candidates.reserve(supply_sets.size());
  for (const SupplySet* set : supply_sets) {
    candidates.push_back(EnumerateWithin(*set, aggregate_demand));
  }
  Quantity best = 0;
  std::vector<QuantityVector> chosen(supply_sets.size());
  std::function<void(size_t, QuantityVector)> recurse =
      [&](size_t i, QuantityVector acc) {
        if (!acc.ComponentwiseLeq(aggregate_demand)) return;
        if (i == supply_sets.size()) {
          best = std::max(best, acc.Total());
          return;
        }
        for (const QuantityVector& v : candidates[i]) {
          recurse(i + 1, acc + v);
        }
      };
  recurse(0, QuantityVector(aggregate_demand.num_classes()));
  return best;
}

bool IsParetoOptimal(const Solution& solution,
                     const std::vector<QuantityVector>& demands,
                     const std::vector<const SupplySet*>& supply_sets) {
  if (!IsFeasible(solution, demands, supply_sets)) return false;
  std::vector<Solution> all = EnumerateFeasibleSolutions(demands, supply_sets);
  return IsParetoOptimalAmong(solution, all);
}

}  // namespace qa::market
