#ifndef QAMARKET_MARKET_SUPPLY_SET_H_
#define QAMARKET_MARKET_SUPPLY_SET_H_

#include <memory>
#include <vector>

#include "market/vectors.h"
#include "util/vtime.h"

namespace qa::market {

/// The supply set S_i of a node: all supply vectors its hardware can realize
/// within one time period (§2.2).
class SupplySet {
 public:
  virtual ~SupplySet() = default;

  virtual int num_classes() const = 0;

  /// True iff `supply` is feasible for this node within one period.
  virtual bool Contains(const QuantityVector& supply) const = 0;

  /// Solves the seller's problem (eq. 4): the feasible supply vector with
  /// the largest virtual value p . s. Ties may be broken arbitrarily.
  virtual QuantityVector MaximizeValue(const PriceVector& prices) const = 0;

  /// True iff `supply + one more unit of class k` is still feasible.
  bool CanAddUnit(const QuantityVector& supply, int k) const;
};

/// Supply set of a node with a single serial executor: a supply vector is
/// feasible iff the summed execution costs of its queries fit into the
/// period budget, and classes the node cannot evaluate have zero supply.
///
/// MaximizeValue is an unbounded-knapsack instance. We use the classic
/// density greedy (fill by descending price-per-cost, then try to top up
/// with the remaining classes). This matches the paper's "first order
/// conditions" reading of eq. 4: the continuous optimum supplies only the
/// best-density class, and the greedy is its integer rounding. The result is
/// always feasible and is exact whenever one class dominates or costs divide
/// the budget evenly; FiniteSupplySet provides an exact oracle for tests.
class CapacitySupplySet : public SupplySet {
 public:
  /// `unit_costs[k]` is the node's execution time for one k-class query, or
  /// query::kInfeasibleCost-style sentinel: pass cost <= 0 or > budget
  /// handled as infeasible-within-period naturally; pass
  /// `kCannotEvaluate` for classes the node cannot run at all.
  static constexpr util::VDuration kCannotEvaluate = -1;

  CapacitySupplySet(std::vector<util::VDuration> unit_costs,
                    util::VDuration budget);

  int num_classes() const override {
    return static_cast<int>(unit_costs_.size());
  }
  util::VDuration budget() const { return budget_; }
  util::VDuration unit_cost(int k) const {
    return unit_costs_[static_cast<size_t>(k)];
  }
  /// Revises the node's belief about one class's execution time (e.g. from
  /// its plan-history estimator); kCannotEvaluate switches the class off.
  void SetUnitCost(int k, util::VDuration cost) {
    unit_costs_[static_cast<size_t>(k)] = cost;
  }
  bool CanEvaluateClass(int k) const {
    return unit_costs_[static_cast<size_t>(k)] != kCannotEvaluate;
  }

  /// Total execution time of `supply`; kCannotEvaluate if it uses a class
  /// the node cannot run.
  util::VDuration CostOf(const QuantityVector& supply) const;

  bool Contains(const QuantityVector& supply) const override;
  QuantityVector MaximizeValue(const PriceVector& prices) const override;

  /// Same greedy knapsack against an arbitrary budget (the QA-NT agent
  /// plans each period against its remaining capacity after debt).
  QuantityVector MaximizeValueWithBudget(const PriceVector& prices,
                                         util::VDuration budget) const;

  /// The evaluable class with the highest price-per-cost density (given
  /// positive price), or -1. Used for the minimum-one-offer rule when every
  /// class costs more than the period.
  int BestDensityClass(const PriceVector& prices) const;

 private:
  std::vector<util::VDuration> unit_costs_;
  util::VDuration budget_;
};

/// An explicitly enumerated supply set, mainly for tests and the paper's
/// small examples: Contains and MaximizeValue are exact by construction.
class FiniteSupplySet : public SupplySet {
 public:
  explicit FiniteSupplySet(std::vector<QuantityVector> vectors);

  int num_classes() const override { return num_classes_; }
  bool Contains(const QuantityVector& supply) const override;
  QuantityVector MaximizeValue(const PriceVector& prices) const override;

  const std::vector<QuantityVector>& vectors() const { return vectors_; }

 private:
  int num_classes_ = 0;
  std::vector<QuantityVector> vectors_;
};

/// Enumerates every feasible supply vector of a CapacitySupplySet (bounded
/// by per-class maxima `ceil`); exponential, for tests on small instances.
std::vector<QuantityVector> EnumerateSupplyVectors(
    const CapacitySupplySet& set, const QuantityVector& ceil);

}  // namespace qa::market

#endif  // QAMARKET_MARKET_SUPPLY_SET_H_
