#ifndef QAMARKET_MARKET_TATONNEMENT_H_
#define QAMARKET_MARKET_TATONNEMENT_H_

#include <vector>

#include "market/supply_set.h"
#include "market/vectors.h"

namespace qa::market {

/// Parameters of the centralized tâtonnement process (eq. 6).
struct TatonnementConfig {
  /// Price adjustment step lambda in eq. 6. Larger converges in fewer
  /// iterations but estimates the equilibrium prices less accurately (§3.3).
  double lambda = 0.05;
  double initial_price = 1.0;
  /// Prices are clamped to at least this (they live in R_+).
  double price_floor = 1e-9;
  int max_iterations = 10000;
  /// Convergence: stop when max_k |z_k(p)| <= tolerance.
  Quantity tolerance = 0;
};

/// Outcome of a tâtonnement run.
struct TatonnementResult {
  PriceVector prices;
  /// Per-node supply vectors at the final prices.
  std::vector<QuantityVector> supplies;
  QuantityVector aggregate_supply;
  QuantityVector excess_demand;
  int iterations = 0;
  bool converged = false;
};

/// The classical centralized price-adjustment process: an umpire announces
/// prices, collects the sellers' optimal supply vectors, and moves each
/// price proportionally to its excess demand (eq. 6) until excess demand
/// vanishes. No trading happens before equilibrium.
///
/// The paper uses this only as the conceptual starting point for QA-NT; we
/// implement it as the reference process the decentralized algorithm is
/// validated against in tests.
TatonnementResult RunTatonnement(
    const QuantityVector& aggregate_demand,
    const std::vector<const SupplySet*>& supply_sets,
    const TatonnementConfig& config = {});

}  // namespace qa::market

#endif  // QAMARKET_MARKET_TATONNEMENT_H_
