#ifndef QAMARKET_MARKET_VECTORS_H_
#define QAMARKET_MARKET_VECTORS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qa::market {

/// Number of queries of one class (entries of the demand/consumption/supply
/// vectors of §2.2).
using Quantity = int64_t;

/// A K-dimensional vector of query counts: one of the paper's demand (d_i),
/// consumption (c_i) or supply (s_i) vectors.
class QuantityVector {
 public:
  QuantityVector() = default;
  explicit QuantityVector(int num_classes)
      : q_(static_cast<size_t>(num_classes), 0) {}
  explicit QuantityVector(std::vector<Quantity> values)
      : q_(std::move(values)) {}

  int num_classes() const { return static_cast<int>(q_.size()); }

  Quantity operator[](int k) const { return q_[static_cast<size_t>(k)]; }
  Quantity& operator[](int k) { return q_[static_cast<size_t>(k)]; }

  /// Total number of queries (the preference relation of §2.2 compares
  /// exactly this: nodes prefer consuming more queries overall).
  Quantity Total() const;

  bool IsZero() const;
  /// True iff every component is <= the corresponding component of `other`.
  bool ComponentwiseLeq(const QuantityVector& other) const;

  QuantityVector& operator+=(const QuantityVector& other);
  QuantityVector& operator-=(const QuantityVector& other);
  friend QuantityVector operator+(QuantityVector lhs,
                                  const QuantityVector& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend QuantityVector operator-(QuantityVector lhs,
                                  const QuantityVector& rhs) {
    lhs -= rhs;
    return lhs;
  }
  friend bool operator==(const QuantityVector& a,
                         const QuantityVector& b) = default;

  const std::vector<Quantity>& values() const { return q_; }

  /// "(1, 6)" — for logs and tests.
  std::string ToString() const;

 private:
  std::vector<Quantity> q_;
};

/// Sums a family of per-node vectors into the aggregate vector (eq. 1).
QuantityVector Aggregate(const std::vector<QuantityVector>& vectors);

/// The paper's virtual price vector p in R^K_+.
class PriceVector {
 public:
  PriceVector() = default;
  explicit PriceVector(int num_classes, double initial = 1.0)
      : p_(static_cast<size_t>(num_classes), initial) {}
  explicit PriceVector(std::vector<double> values) : p_(std::move(values)) {}
  PriceVector(std::initializer_list<double> values) : p_(values) {}

  int num_classes() const { return static_cast<int>(p_.size()); }
  double operator[](int k) const { return p_[static_cast<size_t>(k)]; }
  double& operator[](int k) { return p_[static_cast<size_t>(k)]; }

  /// Clamps every price to at least `floor` (prices live in R_+; the
  /// adjustment process must not drive them to zero or negative).
  void ClampFloor(double floor);

  const std::vector<double>& values() const { return p_; }
  std::string ToString() const;

 private:
  std::vector<double> p_;
};

/// Virtual value p . q of a consumption or supply vector (§3.1).
double Dot(const PriceVector& prices, const QuantityVector& quantities);

/// Excess demand z(p) = aggregate demand - aggregate supply (Definition 2).
/// (The dependence on p is through the supply vector the sellers chose.)
QuantityVector ExcessDemand(const QuantityVector& aggregate_demand,
                            const QuantityVector& aggregate_supply);

}  // namespace qa::market

#endif  // QAMARKET_MARKET_VECTORS_H_
