#ifndef QAMARKET_MARKET_CLUSTER_SUPPLY_H_
#define QAMARKET_MARKET_CLUSTER_SUPPLY_H_

#include <cstdint>
#include <vector>

#include "market/qa_nt.h"
#include "market/vectors.h"
#include "util/vtime.h"

namespace qa::market {

/// Counters of one cluster's trading on the top-level market.
struct ClusterSupplyStats {
  /// Aggregate-supply refreshes (one per global period once active).
  int64_t publishes = 0;
  /// Top-tier solicitations received, per outcome.
  int64_t top_requests = 0;
  int64_t top_offers = 0;
  int64_t top_declines = 0;
  /// Times the tier-2 market declined after the ledger said supply
  /// remained (the published aggregate had gone stale mid-period).
  int64_t exhausted_marks = 0;
};

/// One cluster's seat at the top-level market. The commodity traded there
/// is the cluster's *aggregate supply vector*: the eq.-4 supply of every
/// member summed per class, published by the sub-mediator at each global
/// period boundary. Between publishes the ledger is decremented as queries
/// are sold into the cluster, so the top market sees a conservative
/// remaining-supply estimate without messaging the members — the same
/// autonomy-preserving trick the per-node agent uses, one level up.
class ClusterSupplyAgent {
 public:
  ClusterSupplyAgent(int cluster, int num_classes)
      : cluster_(cluster),
        published_(num_classes),
        remaining_(num_classes),
        sold_(static_cast<size_t>(num_classes), 0) {}

  /// Period refresh: replaces the ledger with a freshly summed aggregate.
  void Publish(const QuantityVector& aggregate) {
    published_ = aggregate;
    remaining_ = aggregate;
    ++stats_.publishes;
  }

  /// Top-tier solicitation for one k-class query: offer iff the ledger
  /// still shows remaining aggregate supply for the class.
  bool OnSolicited(int k) {
    ++stats_.top_requests;
    if (remaining_[k] > 0) {
      ++stats_.top_offers;
      return true;
    }
    ++stats_.top_declines;
    return false;
  }

  /// A member of this cluster won the tier-2 auction: one unit of the
  /// published aggregate is consumed.
  void OnSold(int k) {
    if (remaining_[k] > 0) remaining_[k] -= 1;
    ++sold_[static_cast<size_t>(k)];
  }

  /// The tier-2 market declined a query the ledger had offered on: the
  /// aggregate was stale (members sold out or went offline mid-period).
  /// Zeroing the class keeps the top market from re-routing follow-up
  /// queries into a cluster that just proved empty; the next publish
  /// restores whatever supply the members actually replan.
  void MarkExhausted(int k) {
    remaining_[k] = 0;
    ++stats_.exhausted_marks;
  }

  int cluster() const { return cluster_; }
  const QuantityVector& published() const { return published_; }
  const QuantityVector& remaining() const { return remaining_; }
  /// Cumulative units sold through this cluster, per class.
  const std::vector<int64_t>& sold() const { return sold_; }
  const ClusterSupplyStats& stats() const { return stats_; }

 private:
  int cluster_;
  QuantityVector published_;
  QuantityVector remaining_;
  std::vector<int64_t> sold_;
  ClusterSupplyStats stats_;
};

/// The supply vector a fresh default-state QaNtAgent with these unit costs
/// plans for its first period. Used by the cluster market as the aggregate
/// contribution of members whose agent was never instantiated: an
/// uncontacted agent's plan is a pure function of its configuration, so
/// the sub-mediator can publish on behalf of its idle members without
/// building (or messaging) them.
QuantityVector DefaultPlannedSupply(std::vector<util::VDuration> unit_costs,
                                    util::VDuration period_budget,
                                    const QaNtConfig& config);

}  // namespace qa::market

#endif  // QAMARKET_MARKET_CLUSTER_SUPPLY_H_
