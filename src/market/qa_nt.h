#ifndef QAMARKET_MARKET_QA_NT_H_
#define QAMARKET_MARKET_QA_NT_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "market/supply_set.h"
#include "market/vectors.h"
#include "util/vtime.h"

namespace qa::market {

/// Tuning knobs of the QA-NT non-tâtonnement agent (§3.3).
struct QaNtConfig {
  /// Price adjustment step lambda. Each trading failure moves the affected
  /// price by a factor (1 +/- lambda-ish); larger values react faster but
  /// estimate equilibrium prices less accurately.
  double lambda = 0.05;
  double initial_price = 1.0;
  /// Prices stay within [price_floor, price_cap] (R_+ with guards against
  /// collapse to zero and runaway growth during long overloads).
  double price_floor = 1e-6;
  double price_cap = 1e12;
  /// Optional overload-activation threshold (§5.1 closing remark): when the
  /// node's maximum price is below the threshold the agent keeps tracking
  /// prices but offers to evaluate any feasible query, i.e. supply
  /// restriction only kicks in when prices signal system overload.
  /// 0 disables the feature (supply restriction always active).
  double activation_threshold = 0.0;
  /// Queries costing more than the period T would make the per-period
  /// knapsack supply zero forever (the paper's workloads have 1-14 s
  /// queries against T = 500 ms). With this enabled (default), an agent
  /// whose knapsack came out empty while budget remains still offers one
  /// query of any acceptable-density class; the overshoot is carried as
  /// debt that suppresses supply in following periods, so long-run
  /// capacity is respected.
  bool allow_min_one_offer = true;
  /// Relaxation of the first-order conditions used for admission: a class
  /// is supplied while budget remains iff its price-per-cost density is at
  /// least this fraction of the node's best density. 1.0 supplies only the
  /// densest class (fully rigid; with many classes and ~1 query per period
  /// the node would decline almost everything while idle); 0 disables the
  /// gate (plain admission control). The default keeps the market steering
  /// of the two-class experiments while staying elastic with 100 classes.
  ///
  /// The gate only arms itself when capacity is actually contended: by
  /// complementary slackness the shadow price of capacity is zero while
  /// budget goes unsold, so an agent whose previous period left budget on
  /// the table admits any evaluable class (see density_gate_when_idle to
  /// force the gate permanently on).
  double supply_density_tolerance = 0.5;
  /// Keep the density gate armed even after idle periods (paper-rigid
  /// behaviour; mainly for tests and ablations).
  bool density_gate_when_idle = false;
  /// Cap on the leftover quantity used in the end-of-period decay
  /// p_k -= s_ik * lambda * p_k. With planned supplies of 10-20 units an
  /// uncapped decay crashes a price to the floor in one period, and the
  /// one-bump-per-decline recovery then takes dozens of periods: the
  /// classic tatonnement-overshoot oscillation. Bounded per-period price
  /// moves are the standard stabilization.
  market::Quantity max_leftover_decay_units = 3;
  /// Bank one period's worth of unused capacity as negative debt. The
  /// integer knapsack always strands a fractional budget remainder; without
  /// banking that remainder is lost every period and the market
  /// systematically under-supplies. Disable for strict per-period supply
  /// sets (some tests and the Pareto oracle need that).
  bool bank_leftover_capacity = true;
};

/// Counters exposed for the experiments (autonomy/message accounting).
struct QaNtAgentStats {
  int64_t requests_seen = 0;
  int64_t offers_made = 0;
  int64_t offers_accepted = 0;
  int64_t declines_no_supply = 0;
  int64_t periods = 0;
};

/// One server node's QA-NT state machine: private prices, the per-period
/// supply vector obtained by solving eq. (4), and the non-tâtonnement price
/// adjustments of the QA-NT algorithm listing (§3.3).
///
/// The agent is deliberately self-contained: it never sees other nodes'
/// prices, loads or capabilities — its only inputs are the requests clients
/// send it and the fate of its own offers. This is what preserves node
/// autonomy (Table 2).
class QaNtAgent {
 public:
  /// `unit_costs[k]` is this node's execution time for one k-class query or
  /// CapacitySupplySet::kCannotEvaluate; `period_budget` is the length T of
  /// a time period (the node's serial execution capacity per period).
  QaNtAgent(catalog::NodeId node, std::vector<util::VDuration> unit_costs,
            util::VDuration period_budget, QaNtConfig config = {});

  /// Step 2: given current prices, recompute the optimal supply vector for
  /// the period that now begins.
  void BeginPeriod();

  /// Steps 4-10: a client asks this node to evaluate a k-class query.
  /// Returns true iff the node offers: the period's execution-time budget
  /// still covers the query (see WouldAccept) and the class's price
  /// density passes the first-order-condition gate. When the node declines
  /// a class it could evaluate in principle, the price of k is raised:
  /// p_k += lambda * p_k (step 9).
  bool OnRequest(int k);

  /// Step 6: the client accepted our offer; one unit of supply is consumed.
  void OnOfferAccepted(int k);

  /// The client chose another node's offer. The algorithm listing makes no
  /// price move here; the unused unit is caught by the end-of-period decay.
  void OnOfferRejected(int k);

  /// Steps 12-14: for every class with leftover planned supply, decay the
  /// price: p_k -= s_ik * lambda * p_k (clamped to the floor).
  void EndPeriod();

  catalog::NodeId node() const { return node_; }
  const PriceVector& prices() const { return prices_; }
  /// s_i computed at the start of the current period.
  const QuantityVector& planned_supply() const { return planned_supply_; }
  /// Remaining (not yet accepted) part of the planned supply.
  const QuantityVector& remaining_supply() const { return remaining_supply_; }
  const CapacitySupplySet& supply_set() const { return supply_set_; }
  const QaNtAgentStats& stats() const { return stats_; }

  bool CanEvaluate(int k) const { return supply_set_.CanEvaluateClass(k); }
  util::VDuration unit_cost(int k) const { return supply_set_.unit_cost(k); }

  /// True when the activation threshold (if any) says prices are still low
  /// enough that the agent should not restrict supply.
  bool SupplyRestrictionActive() const;

  /// Capacity debt carried into the current period: execution time accepted
  /// in earlier periods that exceeds the capacity those periods offered.
  util::VDuration debt() const { return debt_; }

  /// Unspent execution-time budget of the current period (negative after
  /// an allowed overshoot).
  util::VDuration remaining_budget() const { return remaining_budget_; }

  /// Whether a request for class `k` would currently be offered.
  bool WouldAccept(int k) const;

  /// Cumulative virtual value earned by this node: the sum over accepted
  /// queries of their price at acceptance time. This is the node's utility
  /// in the market; the equitable-allocation extension (paper §6) selects
  /// offers so as to equalize it across nodes.
  double earnings() const { return earnings_; }

  /// True when the first-order-condition density gate is armed (capacity
  /// was contended in the previous period).
  bool density_gate_active() const { return density_gate_active_; }

  /// Overrides the current prices (tests / warm starts).
  void SetPrices(PriceVector prices);

  /// Revises this node's own execution-time belief for class `k` (fed by
  /// the node's plan-history estimator in the real-DBMS deployment, §5.2).
  /// Takes effect at the next BeginPeriod. Only the node's private data is
  /// involved, so autonomy is intact.
  void UpdateUnitCost(int k, util::VDuration cost) {
    supply_set_.SetUnitCost(k, cost);
  }

 private:
  void BumpPriceUp(int k);

  catalog::NodeId node_;
  CapacitySupplySet supply_set_;
  QaNtConfig config_;
  PriceVector prices_;
  QuantityVector planned_supply_;
  QuantityVector remaining_supply_;
  QaNtAgentStats stats_;
  /// Execution time accepted during the current period.
  util::VDuration accepted_cost_ = 0;
  /// Carryover debt (see QaNtConfig::allow_min_one_offer); negative values
  /// are banked capacity from integer-rounding leftovers.
  util::VDuration debt_ = 0;
  bool first_period_ = true;
  /// Unspent budget of the running period (admission is budget-elastic
  /// within the density gate, not hard-committed to the planned classes).
  util::VDuration remaining_budget_ = 0;
  /// Best price-per-cost density over evaluable classes at period start
  /// (kept fresh as declines bump prices up).
  double max_density_ = 0.0;
  /// Armed when the previous period ended with no budget left (capacity
  /// contended => positive shadow price => enforce first-order conditions).
  bool density_gate_active_ = false;
  double earnings_ = 0.0;
};

}  // namespace qa::market

#endif  // QAMARKET_MARKET_QA_NT_H_
