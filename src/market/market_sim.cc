#include "market/market_sim.h"

#include <algorithm>
#include <cassert>

namespace qa::market {

MarketSimulator::MarketSimulator(const query::CostModel* cost_model,
                                 MarketSimConfig config)
    : cost_model_(cost_model), config_(config) {
  assert(cost_model_ != nullptr);
  int num_nodes = cost_model_->num_nodes();
  int num_classes = cost_model_->num_classes();
  for (int i = 0; i < num_nodes; ++i) {
    std::vector<util::VDuration> unit_costs(static_cast<size_t>(num_classes));
    for (int k = 0; k < num_classes; ++k) {
      util::VDuration c = cost_model_->Cost(k, i);
      unit_costs[static_cast<size_t>(k)] =
          c == query::kInfeasibleCost ? CapacitySupplySet::kCannotEvaluate : c;
    }
    agents_.push_back(std::make_unique<QaNtAgent>(
        i, std::move(unit_costs), config_.period, config_.agent));
    pending_.emplace_back(num_classes);
  }
}

MarketSimulator::PeriodResult MarketSimulator::RunPeriod(
    const std::vector<QuantityVector>& new_demands) {
  int num_nodes = this->num_nodes();
  int num_classes = this->num_classes();
  assert(static_cast<int>(new_demands.size()) == num_nodes);

  for (int i = 0; i < num_nodes; ++i) {
    pending_[static_cast<size_t>(i)] += new_demands[static_cast<size_t>(i)];
  }

  PeriodResult result;
  result.demands = pending_;
  result.consumptions.assign(static_cast<size_t>(num_nodes),
                             QuantityVector(num_classes));
  result.supplies.assign(static_cast<size_t>(num_nodes),
                         QuantityVector(num_classes));

  for (auto& agent : agents_) agent->BeginPeriod();

  // Clients drain their queues one query at a time, round-robin over nodes,
  // so that no client starves the market within a period.
  bool progress = true;
  std::vector<QuantityVector> to_place = pending_;
  while (progress) {
    progress = false;
    for (int i = 0; i < num_nodes; ++i) {
      QuantityVector& queue = to_place[static_cast<size_t>(i)];
      // Find the next class this client still has to place.
      int k = -1;
      for (int c = 0; c < num_classes; ++c) {
        if (queue[c] > 0) {
          k = c;
          break;
        }
      }
      if (k < 0) continue;
      queue[k] -= 1;
      progress = true;

      // Broadcast the request to every node able to evaluate the class
      // (the query-trading framework collects offers from all relevant
      // servers; declining servers raise their prices, per the listing).
      std::vector<int> offers;
      for (int j = 0; j < num_nodes; ++j) {
        if (!cost_model_->CanEvaluate(k, j)) continue;
        if (agents_[static_cast<size_t>(j)]->OnRequest(k)) {
          offers.push_back(j);
        }
      }
      if (offers.empty()) continue;  // resubmitted next period

      // Accept the cheapest offer (best estimated execution time), reject
      // the rest.
      int best = offers[0];
      for (int j : offers) {
        if (cost_model_->Cost(k, j) < cost_model_->Cost(k, best)) best = j;
      }
      for (int j : offers) {
        if (j == best) {
          agents_[static_cast<size_t>(j)]->OnOfferAccepted(k);
        } else {
          agents_[static_cast<size_t>(j)]->OnOfferRejected(k);
        }
      }
      result.consumptions[static_cast<size_t>(i)][k] += 1;
      result.supplies[static_cast<size_t>(best)][k] += 1;
      pending_[static_cast<size_t>(i)][k] -= 1;
    }
  }

  for (auto& agent : agents_) agent->EndPeriod();

  result.aggregate_demand = Aggregate(result.demands);
  result.aggregate_consumption = Aggregate(result.consumptions);
  result.unserved = result.aggregate_demand - result.aggregate_consumption;
  return result;
}

MarketSimulator::PeriodResult MarketSimulator::RunSteadyDemand(
    const std::vector<QuantityVector>& demand, int periods) {
  PeriodResult last;
  for (int t = 0; t < periods; ++t) {
    last = RunPeriod(demand);
  }
  return last;
}

QuantityVector MarketSimulator::AggregatePlannedSupply() const {
  QuantityVector sum(num_classes());
  for (const auto& agent : agents_) sum += agent->planned_supply();
  return sum;
}

}  // namespace qa::market
