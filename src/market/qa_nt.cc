#include "market/qa_nt.h"

#include <algorithm>
#include <cassert>

namespace qa::market {

QaNtAgent::QaNtAgent(catalog::NodeId node,
                     std::vector<util::VDuration> unit_costs,
                     util::VDuration period_budget, QaNtConfig config)
    : node_(node),
      supply_set_(std::move(unit_costs), period_budget),
      config_(config),
      prices_(supply_set_.num_classes(), config.initial_price),
      planned_supply_(supply_set_.num_classes()),
      remaining_supply_(supply_set_.num_classes()) {}

void QaNtAgent::BeginPeriod() {
  // Settle last period's books: work accepted beyond one period's capacity
  // carries over as debt and eats into this period's budget. Unused
  // capacity is banked as *negative* debt (at most one period's worth):
  // the integer knapsack always strands a fractional budget remainder, and
  // without banking that remainder is lost every period, systematically
  // under-supplying the market. No settlement happens before the first
  // period (there is nothing to bank yet).
  if (first_period_) {
    first_period_ = false;
  } else {
    util::VDuration floor =
        config_.bank_leftover_capacity ? -supply_set_.budget() : 0;
    debt_ = std::max<util::VDuration>(
        debt_ + accepted_cost_ - supply_set_.budget(), floor);
  }
  accepted_cost_ = 0;

  remaining_budget_ = supply_set_.budget() - debt_;
  if (remaining_budget_ <= 0) {
    planned_supply_ = QuantityVector(supply_set_.num_classes());
  } else {
    planned_supply_ =
        supply_set_.MaximizeValueWithBudget(prices_, remaining_budget_);
  }
  remaining_supply_ = planned_supply_;

  max_density_ = 0.0;
  for (int k = 0; k < supply_set_.num_classes(); ++k) {
    if (!CanEvaluate(k)) continue;
    double density =
        prices_[k] / static_cast<double>(supply_set_.unit_cost(k));
    max_density_ = std::max(max_density_, density);
  }
  ++stats_.periods;
}

bool QaNtAgent::SupplyRestrictionActive() const {
  if (config_.activation_threshold <= 0.0) return true;
  double max_price = 0.0;
  for (int k = 0; k < prices_.num_classes(); ++k) {
    max_price = std::max(max_price, prices_[k]);
  }
  return max_price >= config_.activation_threshold;
}

bool QaNtAgent::WouldAccept(int k) const {
  if (!CanEvaluate(k)) return false;
  if (remaining_budget_ <= 0) return false;
  util::VDuration cost = supply_set_.unit_cost(k);
  if (cost > remaining_budget_) {
    // Overshoot: only for classes that can never fit within one period
    // (cost > T), and only if the config allows debt financing. Classes
    // that do fit a period must wait for a period with budget.
    if (!config_.allow_min_one_offer || cost <= supply_set_.budget()) {
      return false;
    }
  }
  // First-order-condition gate (eq. 4, relaxed by the tolerance): supply
  // classes whose price-per-cost density is near the node's best. Armed
  // only while capacity is contended — an uncontended node's capacity has
  // zero shadow price, so it serves whatever it can evaluate.
  if (!density_gate_active_ && !config_.density_gate_when_idle) return true;
  if (max_density_ <= 0.0) return false;
  double density = prices_[k] / static_cast<double>(cost);
  return density >= config_.supply_density_tolerance * max_density_ - 1e-18;
}

bool QaNtAgent::OnRequest(int k) {
  ++stats_.requests_seen;
  if (!CanEvaluate(k)) return false;  // no data: not a market event at all
  if (WouldAccept(k)) {
    ++stats_.offers_made;
    return true;
  }
  if (!SupplyRestrictionActive()) {
    // Below the activation threshold the node behaves permissively: it
    // offers whenever it can physically evaluate the class, while prices
    // keep tracking demand in the background.
    ++stats_.offers_made;
    BumpPriceUp(k);
    return true;
  }
  // Step 8-9: decline and raise the price of the scarce class.
  ++stats_.declines_no_supply;
  BumpPriceUp(k);
  return false;
}

void QaNtAgent::OnOfferAccepted(int k) {
  assert(CanEvaluate(k));
  ++stats_.offers_accepted;
  earnings_ += prices_[k];
  util::VDuration cost = supply_set_.unit_cost(k);
  accepted_cost_ += cost;
  remaining_budget_ -= cost;
  if (remaining_supply_[k] > 0) {
    remaining_supply_[k] -= 1;
  }
}

void QaNtAgent::OnOfferRejected(int k) {
  // The algorithm listing adjusts prices only on trading *failures* (a
  // request the node could not serve, or leftover supply at period end).
  // Losing one offer to a competitor is neither, so nothing happens here.
  (void)k;
}

void QaNtAgent::EndPeriod() {
  // Complementary slackness: arm the density gate for the next period only
  // if this one consumed the whole budget (capacity was scarce).
  density_gate_active_ = remaining_budget_ <= 0;
  // Steps 12-14: leftover supply means the price was too high for the
  // demand this node saw; decay proportionally to the leftover quantity.
  for (int k = 0; k < prices_.num_classes(); ++k) {
    Quantity leftover = std::min<Quantity>(
        remaining_supply_[k], config_.max_leftover_decay_units);
    if (leftover > 0) {
      double factor = 1.0 - config_.lambda * static_cast<double>(leftover);
      prices_[k] *= std::max(factor, 0.0);
    }
  }
  prices_.ClampFloor(config_.price_floor);
}

void QaNtAgent::BumpPriceUp(int k) {
  prices_[k] = std::min(prices_[k] * (1.0 + config_.lambda),
                        config_.price_cap);
  // A bump can promote this class to the node's best density.
  if (CanEvaluate(k)) {
    max_density_ = std::max(
        max_density_,
        prices_[k] / static_cast<double>(supply_set_.unit_cost(k)));
  }
}

void QaNtAgent::SetPrices(PriceVector prices) {
  assert(prices.num_classes() == prices_.num_classes());
  prices_ = std::move(prices);
  prices_.ClampFloor(config_.price_floor);
  max_density_ = 0.0;
  for (int k = 0; k < supply_set_.num_classes(); ++k) {
    if (!CanEvaluate(k)) continue;
    max_density_ = std::max(
        max_density_,
        prices_[k] / static_cast<double>(supply_set_.unit_cost(k)));
  }
}

}  // namespace qa::market
