#include "market/tatonnement.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qa::market {

TatonnementResult RunTatonnement(
    const QuantityVector& aggregate_demand,
    const std::vector<const SupplySet*>& supply_sets,
    const TatonnementConfig& config) {
  int num_classes = aggregate_demand.num_classes();
  TatonnementResult result;
  result.prices = PriceVector(num_classes, config.initial_price);

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Collect every seller's optimal supply at the announced prices (eq. 4).
    result.supplies.clear();
    for (const SupplySet* set : supply_sets) {
      result.supplies.push_back(set->MaximizeValue(result.prices));
    }
    result.aggregate_supply = Aggregate(result.supplies);
    result.excess_demand =
        ExcessDemand(aggregate_demand, result.aggregate_supply);

    Quantity max_abs = 0;
    for (int k = 0; k < num_classes; ++k) {
      max_abs = std::max<Quantity>(max_abs,
                                   std::abs(result.excess_demand[k]));
    }
    if (max_abs <= config.tolerance) {
      result.converged = true;
      return result;
    }

    // Price adjustment (eq. 6): raise prices of excess-demanded classes,
    // lower prices of excess-supplied ones.
    for (int k = 0; k < num_classes; ++k) {
      result.prices[k] +=
          config.lambda * static_cast<double>(result.excess_demand[k]);
    }
    result.prices.ClampFloor(config.price_floor);
  }
  return result;
}

}  // namespace qa::market
