#ifndef QAMARKET_QUERY_COST_MODEL_H_
#define QAMARKET_QUERY_COST_MODEL_H_

#include <limits>
#include <vector>

#include "catalog/catalog.h"
#include "query/node_profile.h"
#include "query/query.h"
#include "util/vtime.h"

namespace qa::query {

/// Sentinel cost for (class, node) pairs the node cannot evaluate at all
/// (missing data or capability).
inline constexpr util::VDuration kInfeasibleCost =
    std::numeric_limits<util::VDuration>::max();

/// Per-(query class, node) execution-cost oracle.
///
/// This is the information each *node* has about its own execution costs.
/// The allocation baselines that consult other nodes' costs (Greedy, BNQRD)
/// obtain them through the network protocol, which the simulator charges
/// for; the cost model itself is mechanism-neutral.
class CostModel {
 public:
  virtual ~CostModel() = default;

  virtual int num_classes() const = 0;
  virtual int num_nodes() const = 0;

  /// Estimated execution time of a `k`-class query on `node`, or
  /// kInfeasibleCost when the node cannot evaluate the class.
  virtual util::VDuration Cost(QueryClassId k, catalog::NodeId node) const = 0;

  bool CanEvaluate(QueryClassId k, catalog::NodeId node) const {
    return Cost(k, node) != kInfeasibleCost;
  }

  /// Nodes able to evaluate class `k`, in id order.
  std::vector<catalog::NodeId> FeasibleNodes(QueryClassId k) const;

  /// Cheapest feasible cost of class `k` over all nodes (kInfeasibleCost if
  /// nowhere feasible).
  util::VDuration BestCost(QueryClassId k) const;
};

/// Cost model backed by an explicit K x I matrix, used for the paper's
/// hand-crafted examples (Fig. 1) and the two-class sinusoid experiments.
class MatrixCostModel : public CostModel {
 public:
  MatrixCostModel(int num_classes, int num_nodes)
      : num_classes_(num_classes),
        num_nodes_(num_nodes),
        costs_(static_cast<size_t>(num_classes) *
                   static_cast<size_t>(num_nodes),
               kInfeasibleCost) {}

  void SetCost(QueryClassId k, catalog::NodeId node, util::VDuration cost) {
    costs_[Index(k, node)] = cost;
  }
  void SetInfeasible(QueryClassId k, catalog::NodeId node) {
    costs_[Index(k, node)] = kInfeasibleCost;
  }

  int num_classes() const override { return num_classes_; }
  int num_nodes() const override { return num_nodes_; }
  util::VDuration Cost(QueryClassId k, catalog::NodeId node) const override {
    return costs_[Index(k, node)];
  }

 private:
  size_t Index(QueryClassId k, catalog::NodeId node) const {
    return static_cast<size_t>(k) * static_cast<size_t>(num_nodes_) +
           static_cast<size_t>(node);
  }

  int num_classes_;
  int num_nodes_;
  std::vector<util::VDuration> costs_;
};

/// Knobs of the analytic cost formulas (cycles are per tuple).
struct CostModelConfig {
  double scan_cycles_per_tuple = 500;
  double hash_cycles_per_tuple = 1500;
  double sort_cycles_per_compare = 120;
  double output_cycles_per_tuple = 200;
  /// I/O multiplier for a partitioned (grace) hash join spilling to disk.
  double spill_io_passes = 2.0;
};

/// Analytic cost model for select-join-project-sort templates executed on
/// heterogeneous nodes (the simulator's stand-in for a real optimizer's
/// estimates).
///
/// For each template the model charges, per joined relation: a sequential
/// scan (I/O at the node's bandwidth plus CPU per tuple), then a pairwise
/// left-deep join chain using hash join when the node supports it (with
/// grace-hash spill passes when the build side exceeds the node's buffer)
/// and sort-merge otherwise (n log n compares plus external-sort I/O when a
/// side exceeds the buffer), and finally an optional output sort. All costs
/// are precomputed into a K x I matrix at construction.
class SyntheticCostModel : public CostModel {
 public:
  SyntheticCostModel(const catalog::Catalog* catalog,
                     std::vector<NodeProfile> profiles,
                     std::vector<QueryTemplate> templates,
                     CostModelConfig config = {});

  int num_classes() const override {
    return static_cast<int>(templates_.size());
  }
  int num_nodes() const override { return static_cast<int>(profiles_.size()); }
  util::VDuration Cost(QueryClassId k, catalog::NodeId node) const override {
    return costs_[static_cast<size_t>(k) * profiles_.size() +
                  static_cast<size_t>(node)];
  }

  const QueryTemplate& GetTemplate(QueryClassId k) const {
    return templates_[static_cast<size_t>(k)];
  }
  const NodeProfile& profile(catalog::NodeId node) const {
    return profiles_[static_cast<size_t>(node)];
  }

  /// Rescales all template work factors so that the mean over classes of
  /// the *best* per-class cost equals `target`. Returns the applied factor.
  /// (Paper: "Average best execution time of queries: 2000 ms".)
  double CalibrateBestCost(util::VDuration target);

 private:
  /// Cost of `tmpl` on `profile` ignoring feasibility, in microseconds.
  util::VDuration ComputeCost(const QueryTemplate& tmpl,
                              const NodeProfile& profile) const;
  void RecomputeMatrix();

  const catalog::Catalog* catalog_;
  std::vector<NodeProfile> profiles_;
  std::vector<QueryTemplate> templates_;
  CostModelConfig config_;
  std::vector<util::VDuration> costs_;
};

}  // namespace qa::query

#endif  // QAMARKET_QUERY_COST_MODEL_H_
