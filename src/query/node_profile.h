#ifndef QAMARKET_QUERY_NODE_PROFILE_H_
#define QAMARKET_QUERY_NODE_PROFILE_H_

#include <vector>

#include "util/rng.h"

namespace qa::query {

/// Hardware capabilities of one RDBMS node (Table 3 of the paper).
struct NodeProfile {
  /// CPU clock in GHz; one CPU per node, 1-3.5 GHz (avg 2.3).
  double cpu_ghz = 2.3;
  /// Sequential I/O bandwidth in MB/s; 5-80 (avg 42.5).
  double io_mbps = 42.5;
  /// Sorting/hashing buffer per query in MB; 2-10 (avg 6).
  double buffer_mb = 6.0;
  /// Whether the node's executor supports hash joins (95 of 100 nodes);
  /// merge-scan join is supported everywhere.
  bool supports_hash_join = true;
};

/// Parameters for synthetic profile generation (Table 3 defaults).
struct NodeProfileConfig {
  int num_nodes = 100;
  double min_cpu_ghz = 1.0;
  double max_cpu_ghz = 3.5;
  double min_io_mbps = 5.0;
  double max_io_mbps = 80.0;
  double min_buffer_mb = 2.0;
  double max_buffer_mb = 10.0;
  /// Fraction of nodes with hash-join capability (95/100 in the paper).
  double hash_join_fraction = 0.95;
};

/// Draws `config.num_nodes` heterogeneous profiles uniformly within the
/// Table 3 ranges. Exactly round(num_nodes * hash_join_fraction) nodes get
/// hash-join support (chosen at random).
std::vector<NodeProfile> MakeSyntheticProfiles(const NodeProfileConfig& config,
                                               util::Rng& rng);

/// A homogeneous federation (all nodes identical), used by tests and by the
/// homogeneous control experiments the paper mentions in §5.1.
std::vector<NodeProfile> MakeHomogeneousProfiles(int num_nodes,
                                                 const NodeProfile& profile);

}  // namespace qa::query

#endif  // QAMARKET_QUERY_NODE_PROFILE_H_
