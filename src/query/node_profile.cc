#include "query/node_profile.h"

#include <cmath>

namespace qa::query {

std::vector<NodeProfile> MakeSyntheticProfiles(const NodeProfileConfig& config,
                                               util::Rng& rng) {
  std::vector<NodeProfile> profiles(static_cast<size_t>(config.num_nodes));
  for (NodeProfile& p : profiles) {
    p.cpu_ghz = rng.UniformReal(config.min_cpu_ghz, config.max_cpu_ghz);
    p.io_mbps = rng.UniformReal(config.min_io_mbps, config.max_io_mbps);
    p.buffer_mb = rng.UniformReal(config.min_buffer_mb, config.max_buffer_mb);
    p.supports_hash_join = false;
  }
  int num_hash = static_cast<int>(
      std::lround(config.hash_join_fraction * config.num_nodes));
  for (int idx : rng.Sample(config.num_nodes, num_hash)) {
    profiles[static_cast<size_t>(idx)].supports_hash_join = true;
  }
  return profiles;
}

std::vector<NodeProfile> MakeHomogeneousProfiles(int num_nodes,
                                                 const NodeProfile& profile) {
  return std::vector<NodeProfile>(static_cast<size_t>(num_nodes), profile);
}

}  // namespace qa::query
