#ifndef QAMARKET_QUERY_TEMPLATE_GEN_H_
#define QAMARKET_QUERY_TEMPLATE_GEN_H_

#include <vector>

#include "catalog/catalog.h"
#include "query/query.h"
#include "util/rng.h"

namespace qa::query {

/// Parameters of the synthetic workload templates (Table 3).
struct TemplateGenConfig {
  int num_classes = 100;
  int min_joins = 0;
  int max_joins = 49;
  double selectivity = 0.5;
  double output_fraction = 0.1;
  double sort_probability = 0.8;
};

/// Generates `config.num_classes` select-join-project-sort templates over
/// the catalog.
///
/// Each template is anchored at a random "home" node and draws its joined
/// relations from that node's local set, which guarantees at least one node
/// can evaluate the whole query (mirroring makes further nodes eligible).
/// When a home node holds fewer relations than the drawn join count, the
/// count is clamped to what is locally available.
std::vector<QueryTemplate> GenerateTemplates(const catalog::Catalog& catalog,
                                             const TemplateGenConfig& config,
                                             util::Rng& rng);

}  // namespace qa::query

#endif  // QAMARKET_QUERY_TEMPLATE_GEN_H_
