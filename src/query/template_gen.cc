#include "query/template_gen.h"

#include <algorithm>
#include <cassert>

namespace qa::query {

std::vector<QueryTemplate> GenerateTemplates(const catalog::Catalog& catalog,
                                             const TemplateGenConfig& config,
                                             util::Rng& rng) {
  assert(catalog.num_nodes() > 0);
  std::vector<QueryTemplate> templates;
  templates.reserve(static_cast<size_t>(config.num_classes));
  for (int k = 0; k < config.num_classes; ++k) {
    // Anchor the template at a home node that holds at least one relation.
    catalog::NodeId home = -1;
    for (int attempts = 0; attempts < 1000; ++attempts) {
      catalog::NodeId candidate = static_cast<catalog::NodeId>(
          rng.UniformInt(0, catalog.num_nodes() - 1));
      if (!catalog.RelationsAt(candidate).empty()) {
        home = candidate;
        break;
      }
    }
    assert(home >= 0 && "catalog has no populated node");

    const std::vector<catalog::RelationId>& local = catalog.RelationsAt(home);
    int num_joins =
        static_cast<int>(rng.UniformInt(config.min_joins, config.max_joins));
    int num_relations =
        std::min<int>(num_joins + 1, static_cast<int>(local.size()));

    QueryTemplate tmpl;
    tmpl.class_id = static_cast<QueryClassId>(k);
    for (int idx :
         rng.Sample(static_cast<int>(local.size()), num_relations)) {
      tmpl.relations.push_back(local[static_cast<size_t>(idx)]);
    }
    tmpl.selectivity = config.selectivity;
    tmpl.output_fraction = config.output_fraction;
    tmpl.has_sort = rng.Bernoulli(config.sort_probability);
    templates.push_back(std::move(tmpl));
  }
  return templates;
}

}  // namespace qa::query
