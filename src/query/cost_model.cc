#include "query/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qa::query {

namespace {

constexpr double kBytesPerMb = 1024.0 * 1024.0;

/// Seconds to read `bytes` at `mbps` MB/s.
double IoSeconds(double bytes, double mbps) {
  return bytes / (mbps * kBytesPerMb);
}

/// Seconds to spend `cycles` CPU cycles at `ghz` GHz.
double CpuSeconds(double cycles, double ghz) { return cycles / (ghz * 1e9); }

}  // namespace

std::vector<catalog::NodeId> CostModel::FeasibleNodes(QueryClassId k) const {
  std::vector<catalog::NodeId> nodes;
  for (catalog::NodeId n = 0; n < num_nodes(); ++n) {
    if (CanEvaluate(k, n)) nodes.push_back(n);
  }
  return nodes;
}

util::VDuration CostModel::BestCost(QueryClassId k) const {
  util::VDuration best = kInfeasibleCost;
  for (catalog::NodeId n = 0; n < num_nodes(); ++n) {
    best = std::min(best, Cost(k, n));
  }
  return best;
}

SyntheticCostModel::SyntheticCostModel(const catalog::Catalog* catalog,
                                       std::vector<NodeProfile> profiles,
                                       std::vector<QueryTemplate> templates,
                                       CostModelConfig config)
    : catalog_(catalog),
      profiles_(std::move(profiles)),
      templates_(std::move(templates)),
      config_(config) {
  assert(catalog_ != nullptr);
  RecomputeMatrix();
}

void SyntheticCostModel::RecomputeMatrix() {
  costs_.assign(templates_.size() * profiles_.size(), kInfeasibleCost);
  for (size_t k = 0; k < templates_.size(); ++k) {
    const QueryTemplate& tmpl = templates_[k];
    for (size_t n = 0; n < profiles_.size(); ++n) {
      catalog::NodeId node = static_cast<catalog::NodeId>(n);
      // A node can evaluate a class only if it locally mirrors every base
      // relation the template touches (nodes are autonomous black boxes; we
      // allocate whole queries, not subqueries).
      if (!catalog_->NodeHoldsAll(node, tmpl.relations)) continue;
      costs_[k * profiles_.size() + n] = ComputeCost(tmpl, profiles_[n]);
    }
  }
}

util::VDuration SyntheticCostModel::ComputeCost(
    const QueryTemplate& tmpl, const NodeProfile& profile) const {
  double seconds = 0.0;
  double buffer_bytes = profile.buffer_mb * kBytesPerMb;

  // Scan + filter every base relation.
  std::vector<double> side_bytes;
  std::vector<double> side_tuples;
  for (catalog::RelationId rel_id : tmpl.relations) {
    const catalog::Relation& rel = catalog_->relation(rel_id);
    double bytes = static_cast<double>(rel.size_bytes);
    double tuples = static_cast<double>(rel.cardinality);
    seconds += IoSeconds(bytes, profile.io_mbps);
    seconds += CpuSeconds(tuples * config_.scan_cycles_per_tuple,
                          profile.cpu_ghz);
    side_bytes.push_back(bytes * tmpl.selectivity);
    side_tuples.push_back(tuples * tmpl.selectivity);
  }

  // Left-deep join chain over the filtered inputs.
  double acc_bytes = side_bytes.empty() ? 0.0 : side_bytes[0];
  double acc_tuples = side_tuples.empty() ? 0.0 : side_tuples[0];
  for (size_t j = 1; j < side_bytes.size(); ++j) {
    double rhs_bytes = side_bytes[j];
    double rhs_tuples = side_tuples[j];
    double build_bytes = std::min(acc_bytes, rhs_bytes);
    if (profile.supports_hash_join) {
      seconds += CpuSeconds(
          (acc_tuples + rhs_tuples) * config_.hash_cycles_per_tuple,
          profile.cpu_ghz);
      if (build_bytes > buffer_bytes) {
        // Grace hash join: partition both sides to disk and re-read them.
        seconds += config_.spill_io_passes *
                   IoSeconds(acc_bytes + rhs_bytes, profile.io_mbps);
      }
    } else {
      // Sort-merge: sort each side (n log2 n compares), spilling runs when a
      // side exceeds the work buffer, then a linear merge.
      for (double side : {acc_tuples, rhs_tuples}) {
        if (side > 1.0) {
          seconds += CpuSeconds(side * std::log2(side) *
                                    config_.sort_cycles_per_compare,
                                profile.cpu_ghz);
        }
      }
      for (double bytes : {acc_bytes, rhs_bytes}) {
        if (bytes > buffer_bytes) {
          seconds += 2.0 * IoSeconds(bytes, profile.io_mbps);
        }
      }
      seconds += CpuSeconds(
          (acc_tuples + rhs_tuples) * config_.scan_cycles_per_tuple,
          profile.cpu_ghz);
    }
    // Foreign-key-style join: the result stays at the size of the larger
    // input (no cartesian blowup, no pruning).
    acc_tuples = std::max(acc_tuples, rhs_tuples);
    acc_bytes = std::max(acc_bytes, rhs_bytes);
  }

  // Final projection and optional ORDER BY on the output.
  double out_tuples = acc_tuples * tmpl.output_fraction;
  double out_bytes = acc_bytes * tmpl.output_fraction;
  seconds += CpuSeconds(out_tuples * config_.output_cycles_per_tuple,
                        profile.cpu_ghz);
  if (tmpl.has_sort && out_tuples > 1.0) {
    seconds += CpuSeconds(
        out_tuples * std::log2(out_tuples) * config_.sort_cycles_per_compare,
        profile.cpu_ghz);
    if (out_bytes > buffer_bytes) {
      seconds += 2.0 * IoSeconds(out_bytes, profile.io_mbps);
    }
  }

  seconds *= tmpl.work_scale;
  return std::max<util::VDuration>(util::FromSeconds(seconds), 1);
}

double SyntheticCostModel::CalibrateBestCost(util::VDuration target) {
  double sum_best = 0.0;
  int counted = 0;
  for (QueryClassId k = 0; k < num_classes(); ++k) {
    util::VDuration best = BestCost(k);
    if (best == kInfeasibleCost) continue;
    sum_best += static_cast<double>(best);
    ++counted;
  }
  if (counted == 0 || sum_best <= 0.0) return 1.0;
  double factor = static_cast<double>(target) * counted / sum_best;
  for (QueryTemplate& tmpl : templates_) tmpl.work_scale *= factor;
  RecomputeMatrix();
  return factor;
}

}  // namespace qa::query
