#ifndef QAMARKET_QUERY_QUERY_H_
#define QAMARKET_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "util/vtime.h"

namespace qa::query {

/// Index of a query template/class (the paper's q_k, 0 <= k < K).
using QueryClassId = int32_t;

/// Globally unique id of a query instance.
using QueryId = int64_t;

/// A family of select-join-project-sort queries differing only in selection
/// constants. Queries of the same template use similar resources and have
/// similar estimated execution cost on the same node (paper §2.1).
struct QueryTemplate {
  QueryClassId class_id = -1;
  /// Base relations joined by the query (num_joins = relations.size() - 1).
  std::vector<catalog::RelationId> relations;
  /// Fraction of each base relation surviving the selection predicates.
  double selectivity = 1.0;
  /// Whether the query ends with an ORDER BY over its result.
  bool has_sort = true;
  /// Fraction of joined tuples surviving to the (projected) output.
  double output_fraction = 0.1;
  /// Calibration multiplier applied to the whole cost (used to hit the
  /// paper's "average best execution time ~2000 ms").
  double work_scale = 1.0;

  int num_joins() const {
    return relations.empty() ? 0 : static_cast<int>(relations.size()) - 1;
  }
};

/// One query instance flowing through the system.
struct Query {
  QueryId id = -1;
  QueryClassId class_id = -1;
  /// Node at which the query was posed (the buyer/client in the market).
  catalog::NodeId origin = -1;
  /// Time the query first entered the system.
  util::VTime arrival = 0;
  /// Multiplicative jitter on the execution cost of this particular instance
  /// (selection constants differ within a class; paper: "similar", not
  /// identical, resources). Drawn once at generation time.
  double cost_jitter = 1.0;
};

}  // namespace qa::query

#endif  // QAMARKET_QUERY_QUERY_H_
