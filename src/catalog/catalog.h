#ifndef QAMARKET_CATALOG_CATALOG_H_
#define QAMARKET_CATALOG_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace qa::catalog {

using RelationId = int32_t;
using NodeId = int32_t;

/// A base relation in the federation's common schema.
struct Relation {
  RelationId id = -1;
  std::string name;
  int64_t size_bytes = 0;
  int num_attributes = 0;
  /// Estimated tuple count (size / average tuple width).
  int64_t cardinality = 0;
};

/// Parameters for the synthetic dataset of Table 3.
struct CatalogConfig {
  int num_relations = 1000;
  int64_t min_relation_bytes = 1LL << 20;        // 1 MB
  int64_t max_relation_bytes = 20LL << 20;       // 20 MB
  int num_attributes = 10;
  double avg_mirrors_per_relation = 5.0;
  int num_nodes = 100;
  /// Average bytes per tuple, used to derive cardinalities.
  int avg_tuple_bytes = 100;
};

/// The global data dictionary: relations plus their mirror placement over
/// the federation's nodes.
///
/// In the paper each of the 1,000 relations has ~5 mirrors placed uniformly
/// at random over 100 RDBMSs, giving each node ~50 relations. The catalog is
/// the only globally shared piece of metadata; it does not expose node load
/// or capability information (node autonomy is preserved).
class Catalog {
 public:
  Catalog() = default;

  /// Builds the synthetic catalog of Table 3. Each relation receives between
  /// 1 and 2*avg-1 mirrors (mean `avg_mirrors_per_relation`), assigned to
  /// distinct random nodes.
  static Catalog MakeSynthetic(const CatalogConfig& config, util::Rng& rng);

  /// Adds a relation with explicit placement; returns its id.
  RelationId AddRelation(std::string name, int64_t size_bytes,
                         int num_attributes, int64_t cardinality,
                         std::vector<NodeId> mirrors);

  int num_relations() const { return static_cast<int>(relations_.size()); }
  int num_nodes() const { return num_nodes_; }

  const Relation& relation(RelationId id) const {
    return relations_[static_cast<size_t>(id)];
  }

  /// Nodes holding a mirror of `id`.
  const std::vector<NodeId>& MirrorsOf(RelationId id) const {
    return mirrors_[static_cast<size_t>(id)];
  }

  /// Relations that node `node` holds locally.
  const std::vector<RelationId>& RelationsAt(NodeId node) const {
    return by_node_[static_cast<size_t>(node)];
  }

  /// True iff `node` holds mirrors of every relation in `relations`.
  bool NodeHoldsAll(NodeId node,
                    const std::vector<RelationId>& relations) const;

  /// Nodes that hold *all* of `relations` (candidate evaluation sites for a
  /// query touching those relations).
  std::vector<NodeId> NodesHoldingAll(
      const std::vector<RelationId>& relations) const;

 private:
  int num_nodes_ = 0;
  std::vector<Relation> relations_;
  std::vector<std::vector<NodeId>> mirrors_;
  std::vector<std::vector<RelationId>> by_node_;
};

}  // namespace qa::catalog

#endif  // QAMARKET_CATALOG_CATALOG_H_
