#include "catalog/catalog.h"

#include <algorithm>
#include <cassert>

namespace qa::catalog {

Catalog Catalog::MakeSynthetic(const CatalogConfig& config, util::Rng& rng) {
  Catalog cat;
  cat.num_nodes_ = config.num_nodes;
  cat.by_node_.resize(static_cast<size_t>(config.num_nodes));
  int avg = static_cast<int>(config.avg_mirrors_per_relation);
  for (int r = 0; r < config.num_relations; ++r) {
    int64_t size = rng.UniformInt(config.min_relation_bytes,
                                  config.max_relation_bytes);
    // Mirrors uniform in [1, 2*avg - 1] so the mean matches the config while
    // some relations stay rare (a single copy) and some are widely mirrored.
    int num_mirrors = static_cast<int>(rng.UniformInt(1, 2 * avg - 1));
    num_mirrors = std::min(num_mirrors, config.num_nodes);
    std::vector<NodeId> mirrors;
    for (int idx : rng.Sample(config.num_nodes, num_mirrors)) {
      mirrors.push_back(static_cast<NodeId>(idx));
    }
    int64_t cardinality = size / config.avg_tuple_bytes;
    cat.AddRelation("rel_" + std::to_string(r), size, config.num_attributes,
                    cardinality, std::move(mirrors));
  }
  return cat;
}

RelationId Catalog::AddRelation(std::string name, int64_t size_bytes,
                                int num_attributes, int64_t cardinality,
                                std::vector<NodeId> mirrors) {
  RelationId id = static_cast<RelationId>(relations_.size());
  Relation rel;
  rel.id = id;
  rel.name = std::move(name);
  rel.size_bytes = size_bytes;
  rel.num_attributes = num_attributes;
  rel.cardinality = cardinality;
  relations_.push_back(std::move(rel));
  for (NodeId node : mirrors) {
    assert(node >= 0);
    if (node >= num_nodes_) {
      num_nodes_ = node + 1;
      by_node_.resize(static_cast<size_t>(num_nodes_));
    }
    by_node_[static_cast<size_t>(node)].push_back(id);
  }
  mirrors_.push_back(std::move(mirrors));
  return id;
}

bool Catalog::NodeHoldsAll(NodeId node,
                           const std::vector<RelationId>& relations) const {
  for (RelationId rel : relations) {
    const std::vector<NodeId>& m = MirrorsOf(rel);
    if (std::find(m.begin(), m.end(), node) == m.end()) return false;
  }
  return true;
}

std::vector<NodeId> Catalog::NodesHoldingAll(
    const std::vector<RelationId>& relations) const {
  std::vector<NodeId> result;
  if (relations.empty()) {
    for (NodeId n = 0; n < num_nodes_; ++n) result.push_back(n);
    return result;
  }
  for (NodeId candidate : MirrorsOf(relations[0])) {
    if (NodeHoldsAll(candidate, relations)) result.push_back(candidate);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace qa::catalog
