#ifndef QAMARKET_DBMS_LEXER_H_
#define QAMARKET_DBMS_LEXER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace qa::dbms {

enum class TokenType {
  kIdentifier,  // table/column names (case-preserved)
  kKeyword,     // SELECT, FROM, ... (upper-cased in `text`)
  kInteger,
  kFloat,
  kString,      // 'quoted literal', quotes stripped
  kSymbol,      // = <> != < <= > >= ( ) , . *
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  /// 1-based position in the input, for error messages.
  int offset = 0;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively and
/// normalized to upper case; identifiers keep their case. Returns
/// InvalidArgument on malformed input (unterminated string, stray char).
util::StatusOr<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_LEXER_H_
