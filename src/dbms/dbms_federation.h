#ifndef QAMARKET_DBMS_DBMS_FEDERATION_H_
#define QAMARKET_DBMS_DBMS_FEDERATION_H_

#include <memory>
#include <string>
#include <vector>

#include "dbms/dataset.h"
#include "dbms/dbms_node.h"
#include "market/qa_nt.h"
#include "stats/summary.h"
#include "util/rng.h"
#include "util/vtime.h"

namespace qa::dbms {

/// Configuration of the §5.2 deployment reproduction: 5 heterogeneous
/// nodes, one behind a slow wireless link, a 20-table/80-view dataset and
/// star-query templates.
struct DbmsFederationConfig {
  DatasetConfig dataset;
  /// CPU range of the PCs (paper: 1.3-3.06 GHz).
  double min_cpu_ghz = 1.3;
  double max_cpu_ghz = 3.06;
  /// Wide I/O spread so per-template costs span the paper's ~1 s (fastest)
  /// to ~14 s (slowest) range.
  double min_io_mbps = 6.0;
  double max_io_mbps = 80.0;
  int64_t buffer_bytes = 48LL << 20;
  /// LAN latency (100 Mb full-duplex hub) and the one wireless node's
  /// latency (54 Mb P2P link).
  util::VDuration lan_latency = 1 * util::kMillisecond;
  util::VDuration wireless_latency = 8 * util::kMillisecond;
  /// Target mean execution time of the templates on the fastest node.
  /// The paper's ~1 s was measured in operation, i.e. with warm buffer
  /// pools; our calibration uses cold (buffer-blind) estimates, which run
  /// roughly 1.8x the warm executions, so the cold target is set so warm
  /// runs land at ~1 s.
  util::VDuration target_fastest_exec = 1800 * util::kMillisecond;
  /// Market period for QA-NT.
  util::VDuration period = 500 * util::kMillisecond;
  /// The §5.1 deployment recipe is applied here: agents always track
  /// prices but only restrict supply once prices signal overload (3x the
  /// initial price). Below the threshold QA-NT admits like a plain server
  /// while the economy keeps running in the background.
  market::QaNtConfig qa_nt{.activation_threshold = 1.5};
  uint64_t seed = 42;
};

/// Per-run measurements (the two bars of Fig. 7 per mechanism).
struct DbmsRunResult {
  std::string mechanism;
  /// Time from query arrival to node assignment (both mechanisms wait for
  /// every node's estimate reply before deciding).
  stats::Summary assign_ms;
  /// Time from arrival to completed execution.
  stats::Summary total_ms;
  stats::Summary exec_ms;
  int64_t completed = 0;
  int64_t retries = 0;
  int64_t dropped = 0;
};

/// The five-node minidb federation with a virtual-time driver implementing
/// the §5.2 protocol: broadcast estimate requests, wait for all replies
/// (EXPLAIN on the slowest PC takes seconds), assign per the mechanism
/// (Greedy or QA-NT), execute, and measure assign/total times.
class DbmsFederation {
 public:
  explicit DbmsFederation(DbmsFederationConfig config);

  /// Runs `num_queries` queries with uniform inter-arrival times of mean
  /// `mean_interarrival` using `mechanism` ("Greedy" = least estimated
  /// completion, "GreedyBlind" = least estimated execution time — the
  /// information a §5.2 client really had — or "QA-NT"). Each Run resets
  /// node buffer pools, histories and agents.
  DbmsRunResult Run(const std::string& mechanism, int num_queries,
                    util::VDuration mean_interarrival, uint64_t run_seed);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_templates() const {
    return static_cast<int>(dataset_.templates.size());
  }
  const DbmsNode& node(int i) const { return *nodes_[static_cast<size_t>(i)]; }
  const Fig7Dataset& dataset() const { return dataset_; }
  /// data_scale chosen by calibration.
  double data_scale() const { return data_scale_; }
  /// Static (empty-history) estimate of template `t` on node `n`, used as
  /// the QA-NT agents' unit costs; kInfeasible-like 0 when not eligible.
  util::VDuration TemplateCost(int t, int n) const {
    return template_cost_[static_cast<size_t>(t)][static_cast<size_t>(n)];
  }

 private:
  void BuildNodes();
  void Calibrate();

  DbmsFederationConfig config_;
  util::Rng rng_;
  Fig7Dataset dataset_;
  std::vector<std::unique_ptr<DbmsNode>> nodes_;
  std::vector<util::VDuration> node_latency_;
  /// template x node static cost matrix (0 = infeasible).
  std::vector<std::vector<util::VDuration>> template_cost_;
  double data_scale_ = 1.0;
};

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_DBMS_FEDERATION_H_
