#include "dbms/dbms_federation.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace qa::dbms {

DbmsFederation::DbmsFederation(DbmsFederationConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  dataset_ = BuildFig7Dataset(config_.dataset, rng_);
  BuildNodes();
  Calibrate();
}

void DbmsFederation::BuildNodes() {
  int n = config_.dataset.num_nodes;
  // The wireless node is the last one (paper: one PC on a 54 Mb P2P link).
  for (int i = 0; i < n; ++i) {
    DbmsNodeConfig node_config;
    node_config.hw.cpu_ghz =
        rng_.UniformReal(config_.min_cpu_ghz, config_.max_cpu_ghz);
    node_config.hw.io_mbps =
        rng_.UniformReal(config_.min_io_mbps, config_.max_io_mbps);
    node_config.hw.supports_hash_join = true;
    node_config.buffer_bytes = config_.buffer_bytes;
    node_config.link_latency =
        i == n - 1 ? config_.wireless_latency : config_.lan_latency;
    nodes_.push_back(std::make_unique<DbmsNode>(
        i, std::move(dataset_.node_dbs[static_cast<size_t>(i)]),
        node_config));
    node_latency_.push_back(node_config.link_latency);
  }
  dataset_.node_dbs.clear();
}

void DbmsFederation::Calibrate() {
  // Find the fastest node and the mean buffer-blind estimate of all
  // templates on their eligible nodes; set data_scale so that the mean
  // estimate on the *fastest eligible* node hits the target.
  double sum_fastest = 0.0;
  int counted = 0;
  int num_t = num_templates();
  std::vector<std::vector<util::VDuration>> raw(
      static_cast<size_t>(num_t),
      std::vector<util::VDuration>(nodes_.size(), 0));
  for (int t = 0; t < num_t; ++t) {
    util::VDuration fastest = std::numeric_limits<util::VDuration>::max();
    for (int i : dataset_.template_nodes[static_cast<size_t>(t)]) {
      Planner planner(&nodes_[static_cast<size_t>(i)]->db(),
                      nodes_[static_cast<size_t>(i)]->config().planner);
      util::StatusOr<ExplainResult> explained =
          planner.Explain(dataset_.templates[static_cast<size_t>(t)]);
      assert(explained.ok());
      util::VDuration d = nodes_[static_cast<size_t>(i)]->EstimateToDuration(
          explained->estimate);
      raw[static_cast<size_t>(t)][static_cast<size_t>(i)] = d;
      fastest = std::min(fastest, d);
    }
    if (fastest != std::numeric_limits<util::VDuration>::max()) {
      sum_fastest += static_cast<double>(fastest);
      ++counted;
    }
  }
  double mean_fastest = counted > 0 ? sum_fastest / counted : 1.0;
  data_scale_ = mean_fastest > 0.0
                    ? static_cast<double>(config_.target_fastest_exec) /
                          mean_fastest
                    : 1.0;
  for (auto& node : nodes_) node->set_data_scale(data_scale_);

  // Static template-cost matrix at the calibrated scale.
  template_cost_.assign(static_cast<size_t>(num_t),
                        std::vector<util::VDuration>(nodes_.size(), 0));
  for (int t = 0; t < num_t; ++t) {
    for (int i : dataset_.template_nodes[static_cast<size_t>(t)]) {
      template_cost_[static_cast<size_t>(t)][static_cast<size_t>(i)] =
          std::max<util::VDuration>(
              static_cast<util::VDuration>(
                  static_cast<double>(
                      raw[static_cast<size_t>(t)][static_cast<size_t>(i)]) *
                  data_scale_),
              1);
    }
  }
}

DbmsRunResult DbmsFederation::Run(const std::string& mechanism,
                                  int num_queries,
                                  util::VDuration mean_interarrival,
                                  uint64_t run_seed) {
  DbmsRunResult result;
  result.mechanism = mechanism;
  util::Rng rng(run_seed);
  for (auto& node : nodes_) node->ResetState();

  int n = num_nodes();
  int num_t = num_templates();
  std::vector<util::VTime> busy_until(static_cast<size_t>(n), 0);

  // QA-NT agents: unit costs = static template-cost matrix.
  std::vector<std::unique_ptr<market::QaNtAgent>> agents;
  if (mechanism == "QA-NT") {
    for (int i = 0; i < n; ++i) {
      std::vector<util::VDuration> costs(static_cast<size_t>(num_t));
      for (int t = 0; t < num_t; ++t) {
        util::VDuration c = TemplateCost(t, i);
        costs[static_cast<size_t>(t)] =
            c > 0 ? c : market::CapacitySupplySet::kCannotEvaluate;
      }
      agents.push_back(std::make_unique<market::QaNtAgent>(
          i, std::move(costs), config_.period, config_.qa_nt));
      agents.back()->BeginPeriod();
    }
  }
  util::VTime next_boundary = config_.period;
  auto advance_periods = [&](util::VTime t) {
    while (next_boundary <= t) {
      for (auto& agent : agents) {
        agent->EndPeriod();
        agent->BeginPeriod();
      }
      next_boundary += config_.period;
    }
  };

  // QA-NT converts overload into boundary retries rather than node-side
  // queueing; the cap only guards against templates that are permanently
  // unservable (it must exceed the drain time of a worst-case burst, in
  // periods).
  constexpr int kMaxRetries = 2000;
  util::VTime t_arr = 0;
  for (int q = 0; q < num_queries; ++q) {
    t_arr += rng.UniformInt(0, 2 * mean_interarrival);
    int tmpl = static_cast<int>(rng.UniformInt(0, num_t - 1));
    SelectStatement stmt =
        InstantiateTemplate(dataset_, tmpl, config_.dataset, rng);
    const std::vector<int>& eligible =
        dataset_.template_nodes[static_cast<size_t>(tmpl)];

    util::VTime t_now = t_arr;
    int chosen = -1;
    util::VTime t_dec = 0;
    int attempts = 0;
    while (chosen < 0) {
      if (!agents.empty()) advance_periods(t_now);

      // Broadcast estimate requests and wait for every reply (this is the
      // behavior the paper measured: both algorithms waited for all nodes,
      // and the slowest PC took seconds per EXPLAIN).
      util::VDuration slowest_reply = 0;
      std::vector<util::VDuration> est(static_cast<size_t>(n), 0);
      for (int i : eligible) {
        util::StatusOr<EstimateReply> reply =
            nodes_[static_cast<size_t>(i)]->EstimateQuery(stmt);
        assert(reply.ok());
        est[static_cast<size_t>(i)] = reply->est_exec;
        slowest_reply =
            std::max(slowest_reply, 2 * node_latency_[static_cast<size_t>(i)] +
                                        reply->explain_time);
        // The node's own estimate also refreshes its market agent's
        // execution-time belief (history-corrected once the plan shape has
        // run before) so the agent prices capacity realistically.
        if (!agents.empty()) {
          agents[static_cast<size_t>(i)]->UpdateUnitCost(tmpl,
                                                         reply->est_exec);
        }
      }
      t_dec = t_now + slowest_reply;

      if (mechanism == "Greedy") {
        // Least estimated completion time: the node's quoted execution
        // estimate (EXPLAIN + history) on top of its current commitments.
        util::VTime best_completion = 0;
        for (int i : eligible) {
          util::VTime completion =
              std::max(busy_until[static_cast<size_t>(i)], t_dec) +
              est[static_cast<size_t>(i)];
          if (chosen < 0 || completion < best_completion) {
            chosen = i;
            best_completion = completion;
          }
        }
        break;
      }
      if (mechanism == "GreedyBlind") {
        // What a real client can actually compute without queue
        // disclosure: least estimated *execution* time. This is the §5.2
        // implementation's information set.
        for (int i : eligible) {
          if (chosen < 0 || est[static_cast<size_t>(i)] <
                                est[static_cast<size_t>(chosen)]) {
            chosen = i;
          }
        }
        break;
      }

      // QA-NT: collect offers at decision time.
      if (!agents.empty()) advance_periods(t_dec);
      std::vector<int> offers;
      for (int i : eligible) {
        if (agents[static_cast<size_t>(i)]->OnRequest(tmpl)) {
          offers.push_back(i);
        }
      }
      if (!offers.empty()) {
        for (int i : offers) {
          if (chosen < 0 || est[static_cast<size_t>(i)] <
                                est[static_cast<size_t>(chosen)]) {
            chosen = i;
          }
        }
        for (int i : offers) {
          if (i == chosen) {
            agents[static_cast<size_t>(i)]->OnOfferAccepted(tmpl);
          } else {
            agents[static_cast<size_t>(i)]->OnOfferRejected(tmpl);
          }
        }
        break;
      }
      // All declined: resubmit at the next period boundary *after this
      // query's own clock* (next_boundary is a global cursor that earlier
      // queries may already have pushed far ahead).
      ++result.retries;
      if (++attempts > kMaxRetries) break;
      t_now = (t_now / config_.period + 1) * config_.period;
    }

    if (chosen < 0) {
      ++result.dropped;
      continue;
    }

    util::StatusOr<ExecutionOutcome> outcome =
        nodes_[static_cast<size_t>(chosen)]->ExecuteQuery(stmt);
    assert(outcome.ok());
    util::VTime start =
        std::max(busy_until[static_cast<size_t>(chosen)],
                 t_dec + node_latency_[static_cast<size_t>(chosen)]);
    util::VTime completion = start + outcome->duration;
    busy_until[static_cast<size_t>(chosen)] = completion;

    result.assign_ms.Add(util::ToMillis(t_dec - t_arr));
    result.total_ms.Add(util::ToMillis(completion - t_arr));
    result.exec_ms.Add(util::ToMillis(outcome->duration));
    ++result.completed;
  }
  return result;
}

}  // namespace qa::dbms
