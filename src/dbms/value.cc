#include "dbms/value.h"

#include <functional>

namespace qa::dbms {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

ValueType Value::type() const {
  if (std::holds_alternative<std::monostate>(v_)) return ValueType::kNull;
  if (std::holds_alternative<int64_t>(v_)) return ValueType::kInt;
  if (std::holds_alternative<double>(v_)) return ValueType::kDouble;
  return ValueType::kString;
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(v_)) {
    return static_cast<double>(std::get<int64_t>(v_));
  }
  return std::get<double>(v_);
}

namespace {

bool BothNumeric(const Value& a, const Value& b) {
  ValueType ta = a.type();
  ValueType tb = b.type();
  bool na = ta == ValueType::kInt || ta == ValueType::kDouble;
  bool nb = tb == ValueType::kInt || tb == ValueType::kDouble;
  return na && nb;
}

}  // namespace

bool operator==(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (BothNumeric(a, b)) return a.AsDouble() == b.AsDouble();
  if (a.type() != b.type()) return false;
  if (a.type() == ValueType::kString) return a.AsString() == b.AsString();
  return false;
}

bool operator<(const Value& a, const Value& b) {
  if (a.is_null()) return !b.is_null();
  if (b.is_null()) return false;
  if (BothNumeric(a, b)) return a.AsDouble() < b.AsDouble();
  if (a.type() != b.type()) {
    return static_cast<int>(a.type()) < static_cast<int>(b.type());
  }
  if (a.type() == ValueType::kString) return a.AsString() < b.AsString();
  return false;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt:
      // Hash ints through double so 3 and 3.0 collide (they compare equal).
      return std::hash<double>()(AsDouble());
    case ValueType::kDouble:
      return std::hash<double>()(AsDouble());
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

size_t HashKey(const Row& row, const std::vector<int>& key_columns) {
  size_t h = 1469598103934665603ULL;
  for (int c : key_columns) {
    h ^= row[static_cast<size_t>(c)].Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace qa::dbms
