#ifndef QAMARKET_DBMS_TABLE_H_
#define QAMARKET_DBMS_TABLE_H_

#include <string>
#include <vector>

#include "dbms/value.h"
#include "util/status.h"

namespace qa::dbms {

/// One column of a schema.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt;
};

/// An ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of `name`, or -1.
  int FindColumn(const std::string& name) const;

  /// Concatenation (join output schema), with column names prefixed as-is.
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// An in-memory row store.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  const std::vector<Row>& rows() const { return rows_; }
  const Row& row(int64_t i) const { return rows_[static_cast<size_t>(i)]; }

  /// Appends after checking arity and types (NULL fits any column).
  util::Status Append(Row row);
  /// Appends without validation (internal operators build valid rows).
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  void Reserve(int64_t n) { rows_.reserve(static_cast<size_t>(n)); }

  /// Approximate on-disk footprint, used by the cost model & buffer pool:
  /// fixed 16 bytes per numeric value, string length + 16 for strings.
  int64_t EstimatedBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_TABLE_H_
