#include "dbms/parser.h"

#include <vector>

#include "dbms/lexer.h"

namespace qa::dbms {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  util::StatusOr<SelectStatement> Parse() {
    QA_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    QA_RETURN_IF_ERROR(ParseSelectList());
    QA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    QA_RETURN_IF_ERROR(ParseFromClause());
    QA_RETURN_IF_ERROR(ResolveSelectList());
    if (AcceptKeyword("WHERE")) {
      QA_RETURN_IF_ERROR(ParseWhereClause());
    }
    if (AcceptKeyword("GROUP")) {
      QA_RETURN_IF_ERROR(ExpectKeyword("BY"));
      QA_RETURN_IF_ERROR(ParseColumnList(&stmt_.group_by));
    }
    if (AcceptKeyword("ORDER")) {
      QA_RETURN_IF_ERROR(ExpectKeyword("BY"));
      QA_RETURN_IF_ERROR(ParseOrderList());
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) {
        return Error("expected row count after LIMIT");
      }
      stmt_.limit = std::stoll(Next().text);
      if (stmt_.limit < 0) return Error("LIMIT must be non-negative");
    }
    if (!Peek().IsSymbol("") && Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt_;
  }

 private:
  /// A column reference captured before table names are known.
  struct RawColumn {
    std::string table;  // empty = unqualified
    std::string column;
    int offset = 0;
  };
  struct RawSelectItem {
    bool is_aggregate = false;
    Aggregate::Fn fn = Aggregate::Fn::kCount;
    bool count_star = false;
    RawColumn column;
  };

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  util::Status Error(const std::string& message) const {
    return util::Status::InvalidArgument(
        message + " at position " + std::to_string(Peek().offset));
  }

  bool AcceptKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  util::Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error(std::string("expected ") + kw);
    }
    return util::Status::OK();
  }
  util::Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Error(std::string("expected '") + sym + "'");
    }
    return util::Status::OK();
  }

  util::Status ParseIdentifier(std::string* out) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected identifier");
    }
    *out = Next().text;
    return util::Status::OK();
  }

  /// ident | ident '.' ident
  util::Status ParseRawColumn(RawColumn* out) {
    out->offset = Peek().offset;
    std::string first;
    QA_RETURN_IF_ERROR(ParseIdentifier(&first));
    if (AcceptSymbol(".")) {
      out->table = std::move(first);
      QA_RETURN_IF_ERROR(ParseIdentifier(&out->column));
    } else {
      out->column = std::move(first);
    }
    return util::Status::OK();
  }

  util::Status ParseSelectList() {
    if (AcceptSymbol("*")) return util::Status::OK();  // SELECT *
    while (true) {
      RawSelectItem item;
      if (Peek().type == TokenType::kKeyword &&
          (Peek().text == "COUNT" || Peek().text == "SUM" ||
           Peek().text == "MIN" || Peek().text == "MAX" ||
           Peek().text == "AVG")) {
        item.is_aggregate = true;
        std::string fn = Next().text;
        if (fn == "COUNT") item.fn = Aggregate::Fn::kCount;
        if (fn == "SUM") item.fn = Aggregate::Fn::kSum;
        if (fn == "MIN") item.fn = Aggregate::Fn::kMin;
        if (fn == "MAX") item.fn = Aggregate::Fn::kMax;
        if (fn == "AVG") item.fn = Aggregate::Fn::kAvg;
        QA_RETURN_IF_ERROR(ExpectSymbol("("));
        if (item.fn == Aggregate::Fn::kCount && AcceptSymbol("*")) {
          item.count_star = true;
        } else {
          QA_RETURN_IF_ERROR(ParseRawColumn(&item.column));
        }
        QA_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        QA_RETURN_IF_ERROR(ParseRawColumn(&item.column));
      }
      select_items_.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    return util::Status::OK();
  }

  util::Status ParseFromClause() {
    std::string table;
    QA_RETURN_IF_ERROR(ParseIdentifier(&table));
    stmt_.tables.push_back({std::move(table)});
    while (true) {
      if (AcceptKeyword("JOIN")) {
        std::string joined;
        QA_RETURN_IF_ERROR(ParseIdentifier(&joined));
        stmt_.tables.push_back({std::move(joined)});
        QA_RETURN_IF_ERROR(ExpectKeyword("ON"));
        RawColumn left;
        RawColumn right;
        QA_RETURN_IF_ERROR(ParseRawColumn(&left));
        QA_RETURN_IF_ERROR(ExpectSymbol("="));
        QA_RETURN_IF_ERROR(ParseRawColumn(&right));
        int lt = 0;
        int rt = 0;
        QA_RETURN_IF_ERROR(ResolveTable(left, &lt));
        QA_RETURN_IF_ERROR(ResolveTable(right, &rt));
        stmt_.joins.push_back({lt, left.column, rt, right.column});
      } else if (AcceptSymbol(",")) {
        // Comma join (cross product unless constrained in WHERE; minidb's
        // WHERE only supports column-vs-literal, so this is a plain cross
        // product).
        std::string joined;
        QA_RETURN_IF_ERROR(ParseIdentifier(&joined));
        stmt_.tables.push_back({std::move(joined)});
      } else {
        break;
      }
    }
    return util::Status::OK();
  }

  /// Maps a (possibly unqualified) raw column onto a FROM-table index.
  util::Status ResolveTable(const RawColumn& raw, int* table_index) const {
    if (raw.table.empty()) {
      if (stmt_.tables.size() != 1) {
        return util::Status::InvalidArgument(
            "column '" + raw.column +
            "' must be qualified (table.column) in a multi-table query, "
            "at position " +
            std::to_string(raw.offset));
      }
      *table_index = 0;
      return util::Status::OK();
    }
    for (size_t t = 0; t < stmt_.tables.size(); ++t) {
      if (stmt_.tables[t].name == raw.table) {
        *table_index = static_cast<int>(t);
        return util::Status::OK();
      }
    }
    return util::Status::InvalidArgument(
        "unknown table '" + raw.table + "' at position " +
        std::to_string(raw.offset));
  }

  util::Status ResolveSelectList() {
    for (const RawSelectItem& item : select_items_) {
      if (item.is_aggregate) {
        Aggregate agg;
        agg.fn = item.fn;
        if (!item.count_star) {
          int t = 0;
          QA_RETURN_IF_ERROR(ResolveTable(item.column, &t));
          agg.arg = {t, item.column.column};
        }
        stmt_.aggregates.push_back(std::move(agg));
      } else {
        int t = 0;
        QA_RETURN_IF_ERROR(ResolveTable(item.column, &t));
        // With aggregates present, plain columns are grouping outputs and
        // handled via GROUP BY; otherwise they are projections.
        stmt_.projections.push_back({t, item.column.column});
      }
    }
    return util::Status::OK();
  }

  util::Status ParseWhereClause() {
    while (true) {
      RawColumn column;
      QA_RETURN_IF_ERROR(ParseRawColumn(&column));
      int op = 0;
      if (AcceptSymbol("=")) {
        op = 0;
      } else if (AcceptSymbol("!=") || AcceptSymbol("<>")) {
        op = 1;
      } else if (AcceptSymbol("<=")) {
        op = 3;
      } else if (AcceptSymbol("<")) {
        op = 2;
      } else if (AcceptSymbol(">=")) {
        op = 5;
      } else if (AcceptSymbol(">")) {
        op = 4;
      } else {
        return Error("expected comparison operator");
      }
      Value constant;
      const Token& lit = Peek();
      switch (lit.type) {
        case TokenType::kInteger:
          constant = Value(static_cast<int64_t>(std::stoll(lit.text)));
          break;
        case TokenType::kFloat:
          constant = Value(std::stod(lit.text));
          break;
        case TokenType::kString:
          constant = Value(lit.text);
          break;
        default:
          return Error("expected literal");
      }
      Next();
      int t = 0;
      QA_RETURN_IF_ERROR(ResolveTable(column, &t));
      stmt_.filters.push_back({t, column.column, op, std::move(constant)});
      if (!AcceptKeyword("AND")) break;
    }
    return util::Status::OK();
  }

  util::Status ParseColumnList(std::vector<ColumnRef>* out) {
    while (true) {
      RawColumn column;
      QA_RETURN_IF_ERROR(ParseRawColumn(&column));
      int t = 0;
      QA_RETURN_IF_ERROR(ResolveTable(column, &t));
      out->push_back({t, column.column});
      if (!AcceptSymbol(",")) break;
    }
    return util::Status::OK();
  }

  util::Status ParseOrderList() {
    while (true) {
      RawColumn column;
      QA_RETURN_IF_ERROR(ParseRawColumn(&column));
      int t = 0;
      QA_RETURN_IF_ERROR(ResolveTable(column, &t));
      bool descending = false;
      if (AcceptKeyword("DESC")) {
        descending = true;
      } else {
        AcceptKeyword("ASC");
      }
      stmt_.order_by.push_back({{t, column.column}, descending});
      if (!AcceptSymbol(",")) break;
    }
    return util::Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  SelectStatement stmt_;
  std::vector<RawSelectItem> select_items_;
};

}  // namespace

util::StatusOr<SelectStatement> ParseSelect(const std::string& sql) {
  util::StatusOr<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  util::StatusOr<SelectStatement> parsed = parser.Parse();
  if (!parsed.ok()) return parsed.status();

  // SELECT a, SUM(b) ... : the plain columns are group keys; when the user
  // wrote an explicit GROUP BY the projections double as its outputs and
  // are dropped (the planner emits keys + aggregates).
  SelectStatement stmt = std::move(parsed).value();
  if (!stmt.aggregates.empty() && stmt.group_by.empty() &&
      !stmt.projections.empty()) {
    stmt.group_by = stmt.projections;
  }
  if (stmt.has_grouping()) stmt.projections.clear();
  return stmt;
}

}  // namespace qa::dbms
