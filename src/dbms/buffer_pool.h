#ifndef QAMARKET_DBMS_BUFFER_POOL_H_
#define QAMARKET_DBMS_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace qa::dbms {

/// Table-granular LRU buffer cache. This is the piece of DBMS state the
/// paper's EXPLAIN PLAN estimates did not know about (§5.2): a table that
/// is already resident makes the real execution far cheaper than the
/// optimizer predicted. The federation's timing model consults the pool to
/// decide how many scanned bytes actually hit the disk.
class BufferPool {
 public:
  explicit BufferPool(int64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Charges a full read of `table` (`bytes` big). Returns how many bytes
  /// had to come from disk: 0 when the table was resident, `bytes`
  /// otherwise. The table is then made resident (evicting LRU victims);
  /// tables larger than the whole pool are never cached.
  int64_t Access(const std::string& table, int64_t bytes);

  bool IsCached(const std::string& table) const {
    return entries_.count(table) > 0;
  }
  int64_t capacity() const { return capacity_; }
  int64_t used() const { return used_; }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

  void Clear();

 private:
  void EvictUntilFits(int64_t bytes);

  int64_t capacity_;
  int64_t used_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  /// LRU order: front = most recent.
  std::list<std::string> lru_;
  struct Entry {
    int64_t bytes;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_BUFFER_POOL_H_
