#ifndef QAMARKET_DBMS_CSV_H_
#define QAMARKET_DBMS_CSV_H_

#include <iosfwd>
#include <string>

#include "dbms/table.h"
#include "util/status.h"

namespace qa::dbms {

/// Writes `table` as CSV: a header row of column names, then one line per
/// row. Strings containing commas, quotes or newlines are double-quoted
/// with RFC-4180 escaping; NULL renders as an empty unquoted field.
void WriteCsv(const Table& table, std::ostream& out);

/// Reads a CSV stream into a table of the given name. The first line is
/// the header (column names). Column types are inferred from the first
/// data row of each column: integer, double, else string; empty fields are
/// NULL. Subsequent rows must convert to the inferred types (numeric
/// narrowing from int to double is allowed).
util::StatusOr<Table> ReadCsv(const std::string& table_name,
                              std::istream& in);

/// Parses one CSV line into raw fields (exposed for tests).
util::StatusOr<std::vector<std::string>> SplitCsvLine(
    const std::string& line);

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_CSV_H_
