#ifndef QAMARKET_DBMS_PLANNER_H_
#define QAMARKET_DBMS_PLANNER_H_

#include <string>

#include "dbms/database.h"
#include "dbms/plan.h"
#include "dbms/query_ast.h"
#include "util/status.h"

namespace qa::dbms {

struct PlannerOptions {
  /// Use hash joins for equi joins (false = sort-merge only; 5 of the
  /// paper's 100 simulated nodes lack hash-join capability).
  bool use_hash_join = true;
};

/// Optimizer estimates of a plan's resource demands. Deliberately
/// buffer-blind: io_bytes assumes every scanned byte comes from disk, which
/// is the EXPLAIN PLAN mis-estimation the paper ran into (§5.2).
struct ResourceEstimate {
  double io_bytes = 0.0;
  /// Abstract per-tuple CPU work units (scan/probe/sort-weighted).
  double cpu_tuples = 0.0;
  double out_rows = 0.0;
};

/// A physical plan plus its optimizer estimates and shape signature.
struct PlannedQuery {
  PlanPtr plan;
  ResourceEstimate estimate;
  std::string signature;
};

/// What EXPLAIN PLAN returns.
struct ExplainResult {
  std::string text;
  std::string signature;
  ResourceEstimate estimate;
};

/// Rule-based planner: per-table filter pushdown, view expansion
/// (select-project views over base tables), greedy smallest-first left-deep
/// join ordering preferring connected inputs, hash join or sort-merge per
/// options, then grouping / sort / projection.
class Planner {
 public:
  explicit Planner(const Database* db, PlannerOptions options = {});

  util::StatusOr<PlannedQuery> Plan(const SelectStatement& stmt) const;

  /// Plans and renders without executing (EXPLAIN PLAN).
  util::StatusOr<ExplainResult> Explain(const SelectStatement& stmt) const;

 private:
  const Database* db_;
  PlannerOptions options_;
};

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_PLANNER_H_
