#include "dbms/plan.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "dbms/database.h"

namespace qa::dbms {

namespace {

std::string Indent(int n) { return std::string(static_cast<size_t>(n), ' '); }

Row ConcatRows(const Row& left, const Row& right) {
  Row out = left;
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

}  // namespace

int64_t ExecStats::TotalTableBytes() const {
  int64_t total = 0;
  for (const auto& [name, bytes] : table_bytes) total += bytes;
  return total;
}

// ------------------------------------------------------------------ Scan

ScanNode::ScanNode(std::string table_name, Schema schema, ExprPtr filter)
    : table_name_(std::move(table_name)), filter_(std::move(filter)) {
  output_schema_ = std::move(schema);
}

Table ScanNode::Execute(const Database& db, ExecStats* stats) const {
  const Table* table = db.GetTable(table_name_);
  assert(table != nullptr && "planner validated table existence");
  Table out("scan", output_schema_);
  for (const Row& row : table->rows()) {
    if (filter_ == nullptr || filter_->EvalBool(row)) {
      out.AppendUnchecked(row);
    }
  }
  if (stats != nullptr) {
    stats->rows_scanned += table->num_rows();
    stats->table_bytes[table_name_] += table->EstimatedBytes();
  }
  return out;
}

std::string ScanNode::Describe(int indent) const {
  std::string out = Indent(indent) + "SCAN " + table_name_;
  if (filter_ != nullptr) {
    out += " filter=" + filter_->ToString(&output_schema_);
  }
  out += " (est_rows=" + std::to_string(static_cast<int64_t>(est_rows)) + ")";
  return out + "\n";
}

void ScanNode::AppendSignature(std::string* out) const {
  *out += "SCAN(" + table_name_;
  if (filter_ != nullptr) *out += "|F";
  *out += ")";
}

// -------------------------------------------------------------- HashJoin

HashJoinNode::HashJoinNode(PlanPtr left, PlanPtr right, int left_key,
                           int right_key)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(left_key),
      right_key_(right_key) {
  output_schema_ =
      Schema::Concat(left_->output_schema(), right_->output_schema());
}

Table HashJoinNode::Execute(const Database& db, ExecStats* stats) const {
  Table left = left_->Execute(db, stats);
  Table right = right_->Execute(db, stats);
  Table out("hash_join", output_schema_);

  std::unordered_multimap<size_t, const Row*> build;
  build.reserve(static_cast<size_t>(left.num_rows()));
  for (const Row& row : left.rows()) {
    if (row[static_cast<size_t>(left_key_)].is_null()) continue;
    build.emplace(row[static_cast<size_t>(left_key_)].Hash(), &row);
  }
  for (const Row& probe : right.rows()) {
    const Value& key = probe[static_cast<size_t>(right_key_)];
    if (key.is_null()) continue;
    auto [lo, hi] = build.equal_range(key.Hash());
    for (auto it = lo; it != hi; ++it) {
      const Row& match = *it->second;
      if (match[static_cast<size_t>(left_key_)] == key) {
        out.AppendUnchecked(ConcatRows(match, probe));
      }
    }
  }
  if (stats != nullptr) {
    stats->hash_build_rows += left.num_rows();
    stats->hash_probe_rows += right.num_rows();
  }
  return out;
}

std::string HashJoinNode::Describe(int indent) const {
  std::string out = Indent(indent) + "HASH_JOIN key_l=" +
                    std::to_string(left_key_) +
                    " key_r=" + std::to_string(right_key_) + " (est_rows=" +
                    std::to_string(static_cast<int64_t>(est_rows)) + ")\n";
  out += left_->Describe(indent + 2);
  out += right_->Describe(indent + 2);
  return out;
}

void HashJoinNode::AppendSignature(std::string* out) const {
  *out += "HJ(";
  left_->AppendSignature(out);
  *out += ",";
  right_->AppendSignature(out);
  *out += ")";
}

// ------------------------------------------------------------- MergeJoin

MergeJoinNode::MergeJoinNode(PlanPtr left, PlanPtr right, int left_key,
                             int right_key)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(left_key),
      right_key_(right_key) {
  output_schema_ =
      Schema::Concat(left_->output_schema(), right_->output_schema());
}

Table MergeJoinNode::Execute(const Database& db, ExecStats* stats) const {
  Table left = left_->Execute(db, stats);
  Table right = right_->Execute(db, stats);

  std::vector<const Row*> lrows;
  std::vector<const Row*> rrows;
  lrows.reserve(static_cast<size_t>(left.num_rows()));
  rrows.reserve(static_cast<size_t>(right.num_rows()));
  for (const Row& r : left.rows()) lrows.push_back(&r);
  for (const Row& r : right.rows()) rrows.push_back(&r);
  auto by_key = [](int key) {
    return [key](const Row* a, const Row* b) {
      return (*a)[static_cast<size_t>(key)] < (*b)[static_cast<size_t>(key)];
    };
  };
  std::sort(lrows.begin(), lrows.end(), by_key(left_key_));
  std::sort(rrows.begin(), rrows.end(), by_key(right_key_));

  Table out("merge_join", output_schema_);
  size_t i = 0;
  size_t j = 0;
  while (i < lrows.size() && j < rrows.size()) {
    const Value& lv = (*lrows[i])[static_cast<size_t>(left_key_)];
    const Value& rv = (*rrows[j])[static_cast<size_t>(right_key_)];
    if (lv.is_null()) {
      ++i;
      continue;
    }
    if (rv.is_null()) {
      ++j;
      continue;
    }
    if (lv < rv) {
      ++i;
    } else if (rv < lv) {
      ++j;
    } else {
      // Emit the cross product of the equal-key runs.
      size_t i_end = i;
      while (i_end < lrows.size() &&
             (*lrows[i_end])[static_cast<size_t>(left_key_)] == lv) {
        ++i_end;
      }
      size_t j_end = j;
      while (j_end < rrows.size() &&
             (*rrows[j_end])[static_cast<size_t>(right_key_)] == rv) {
        ++j_end;
      }
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          out.AppendUnchecked(ConcatRows(*lrows[a], *rrows[b]));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  if (stats != nullptr) {
    stats->rows_sorted += left.num_rows() + right.num_rows();
  }
  return out;
}

std::string MergeJoinNode::Describe(int indent) const {
  std::string out = Indent(indent) + "MERGE_JOIN key_l=" +
                    std::to_string(left_key_) +
                    " key_r=" + std::to_string(right_key_) + " (est_rows=" +
                    std::to_string(static_cast<int64_t>(est_rows)) + ")\n";
  out += left_->Describe(indent + 2);
  out += right_->Describe(indent + 2);
  return out;
}

void MergeJoinNode::AppendSignature(std::string* out) const {
  *out += "MJ(";
  left_->AppendSignature(out);
  *out += ",";
  right_->AppendSignature(out);
  *out += ")";
}

// -------------------------------------------------------- NestedLoopJoin

NestedLoopJoinNode::NestedLoopJoinNode(PlanPtr left, PlanPtr right,
                                       ExprPtr predicate)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)) {
  output_schema_ =
      Schema::Concat(left_->output_schema(), right_->output_schema());
}

Table NestedLoopJoinNode::Execute(const Database& db,
                                  ExecStats* stats) const {
  Table left = left_->Execute(db, stats);
  Table right = right_->Execute(db, stats);
  Table out("nl_join", output_schema_);
  for (const Row& l : left.rows()) {
    for (const Row& r : right.rows()) {
      Row joined = ConcatRows(l, r);
      if (predicate_ == nullptr || predicate_->EvalBool(joined)) {
        out.AppendUnchecked(std::move(joined));
      }
    }
  }
  if (stats != nullptr) {
    stats->nested_loop_compares += left.num_rows() * right.num_rows();
  }
  return out;
}

std::string NestedLoopJoinNode::Describe(int indent) const {
  std::string out = Indent(indent) + "NL_JOIN";
  if (predicate_ != nullptr) {
    out += " pred=" + predicate_->ToString(&output_schema_);
  }
  out += " (est_rows=" + std::to_string(static_cast<int64_t>(est_rows)) +
         ")\n";
  out += left_->Describe(indent + 2);
  out += right_->Describe(indent + 2);
  return out;
}

void NestedLoopJoinNode::AppendSignature(std::string* out) const {
  *out += "NL(";
  left_->AppendSignature(out);
  *out += ",";
  right_->AppendSignature(out);
  *out += ")";
}

// ---------------------------------------------------------------- Filter

FilterNode::FilterNode(PlanPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {
  output_schema_ = child_->output_schema();
}

Table FilterNode::Execute(const Database& db, ExecStats* stats) const {
  Table in = child_->Execute(db, stats);
  Table out("filter", output_schema_);
  for (const Row& row : in.rows()) {
    if (predicate_->EvalBool(row)) out.AppendUnchecked(row);
  }
  return out;
}

std::string FilterNode::Describe(int indent) const {
  return Indent(indent) + "FILTER " +
         predicate_->ToString(&output_schema_) + " (est_rows=" +
         std::to_string(static_cast<int64_t>(est_rows)) + ")\n" +
         child_->Describe(indent + 2);
}

void FilterNode::AppendSignature(std::string* out) const {
  *out += "F(";
  child_->AppendSignature(out);
  *out += ")";
}

// --------------------------------------------------------------- Project

ProjectNode::ProjectNode(PlanPtr child, std::vector<int> columns,
                         std::vector<std::string> names)
    : child_(std::move(child)), columns_(std::move(columns)) {
  assert(names.empty() || names.size() == columns_.size());
  std::vector<Column> cols;
  for (size_t i = 0; i < columns_.size(); ++i) {
    Column c = child_->output_schema().column(columns_[i]);
    if (!names.empty()) c.name = names[i];
    cols.push_back(std::move(c));
  }
  output_schema_ = Schema(std::move(cols));
}

Table ProjectNode::Execute(const Database& db, ExecStats* stats) const {
  Table in = child_->Execute(db, stats);
  Table out("project", output_schema_);
  for (const Row& row : in.rows()) {
    Row projected;
    projected.reserve(columns_.size());
    for (int c : columns_) projected.push_back(row[static_cast<size_t>(c)]);
    out.AppendUnchecked(std::move(projected));
  }
  if (stats != nullptr) stats->output_rows += out.num_rows();
  return out;
}

std::string ProjectNode::Describe(int indent) const {
  std::string out = Indent(indent) + "PROJECT [";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i != 0) out += ", ";
    out += output_schema_.column(static_cast<int>(i)).name;
  }
  return out + "]\n" + child_->Describe(indent + 2);
}

void ProjectNode::AppendSignature(std::string* out) const {
  *out += "P(";
  child_->AppendSignature(out);
  *out += ")";
}

// ------------------------------------------------------------------ Sort

SortNode::SortNode(PlanPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {
  output_schema_ = child_->output_schema();
}

SortNode::SortNode(PlanPtr child, std::vector<int> columns)
    : child_(std::move(child)) {
  for (int c : columns) keys_.push_back({c, false});
  output_schema_ = child_->output_schema();
}

Table SortNode::Execute(const Database& db, ExecStats* stats) const {
  Table in = child_->Execute(db, stats);
  std::vector<Row> rows = in.rows();
  std::stable_sort(rows.begin(), rows.end(),
                   [this](const Row& a, const Row& b) {
                     for (const SortKey& key : keys_) {
                       const Value& va = a[static_cast<size_t>(key.column)];
                       const Value& vb = b[static_cast<size_t>(key.column)];
                       if (va < vb) return !key.descending;
                       if (vb < va) return key.descending;
                     }
                     return false;
                   });
  Table out("sort", output_schema_);
  for (Row& row : rows) out.AppendUnchecked(std::move(row));
  if (stats != nullptr) stats->rows_sorted += out.num_rows();
  return out;
}

std::string SortNode::Describe(int indent) const {
  std::string out = Indent(indent) + "SORT [";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i != 0) out += ", ";
    out += output_schema_.column(keys_[i].column).name;
    if (keys_[i].descending) out += " DESC";
  }
  return out + "]\n" + child_->Describe(indent + 2);
}

void SortNode::AppendSignature(std::string* out) const {
  *out += "S(";
  child_->AppendSignature(out);
  *out += ")";
}

// ----------------------------------------------------------------- Limit

LimitNode::LimitNode(PlanPtr child, int64_t limit)
    : child_(std::move(child)), limit_(limit) {
  output_schema_ = child_->output_schema();
}

Table LimitNode::Execute(const Database& db, ExecStats* stats) const {
  Table in = child_->Execute(db, stats);
  Table out("limit", output_schema_);
  int64_t n = std::min<int64_t>(limit_, in.num_rows());
  for (int64_t i = 0; i < n; ++i) out.AppendUnchecked(in.row(i));
  return out;
}

std::string LimitNode::Describe(int indent) const {
  return Indent(indent) + "LIMIT " + std::to_string(limit_) + "\n" +
         child_->Describe(indent + 2);
}

void LimitNode::AppendSignature(std::string* out) const {
  *out += "L(";
  child_->AppendSignature(out);
  *out += ")";
}

// --------------------------------------------------------------- GroupBy

GroupByNode::GroupByNode(PlanPtr child, std::vector<int> keys,
                         std::vector<Agg> aggs)
    : child_(std::move(child)), keys_(std::move(keys)),
      aggs_(std::move(aggs)) {
  std::vector<Column> cols;
  for (int k : keys_) cols.push_back(child_->output_schema().column(k));
  for (const Agg& agg : aggs_) {
    ValueType type = ValueType::kDouble;
    if (agg.fn == Aggregate::Fn::kCount) type = ValueType::kInt;
    if ((agg.fn == Aggregate::Fn::kMin || agg.fn == Aggregate::Fn::kMax) &&
        agg.column >= 0) {
      type = child_->output_schema().column(agg.column).type;
    }
    cols.push_back({agg.output_name, type});
  }
  output_schema_ = Schema(std::move(cols));
}

Table GroupByNode::Execute(const Database& db, ExecStats* stats) const {
  Table in = child_->Execute(db, stats);

  struct GroupState {
    Row key;
    std::vector<int64_t> counts;
    std::vector<double> sums;
    std::vector<Value> mins;
    std::vector<Value> maxs;
  };
  std::unordered_map<size_t, std::vector<GroupState>> groups;

  for (const Row& row : in.rows()) {
    Row key;
    key.reserve(keys_.size());
    for (int k : keys_) key.push_back(row[static_cast<size_t>(k)]);
    size_t h = HashKey(row, keys_);
    std::vector<GroupState>& bucket = groups[h];
    GroupState* state = nullptr;
    for (GroupState& g : bucket) {
      if (g.key == key) {
        state = &g;
        break;
      }
    }
    if (state == nullptr) {
      bucket.push_back(GroupState{});
      state = &bucket.back();
      state->key = std::move(key);
      state->counts.assign(aggs_.size(), 0);
      state->sums.assign(aggs_.size(), 0.0);
      state->mins.assign(aggs_.size(), Value::Null());
      state->maxs.assign(aggs_.size(), Value::Null());
    }
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const Agg& agg = aggs_[a];
      if (agg.column < 0) {
        ++state->counts[a];
        continue;
      }
      const Value& v = row[static_cast<size_t>(agg.column)];
      if (v.is_null()) continue;
      ++state->counts[a];
      if (v.type() == ValueType::kInt || v.type() == ValueType::kDouble) {
        state->sums[a] += v.AsDouble();
      }
      if (state->mins[a].is_null() || v < state->mins[a]) state->mins[a] = v;
      if (state->maxs[a].is_null() || state->maxs[a] < v) state->maxs[a] = v;
    }
  }

  Table out("group_by", output_schema_);
  auto emit = [&](const GroupState& g) {
    Row row = g.key;
    for (size_t a = 0; a < aggs_.size(); ++a) {
      switch (aggs_[a].fn) {
        case Aggregate::Fn::kCount:
          row.push_back(Value(g.counts[a]));
          break;
        case Aggregate::Fn::kSum:
          row.push_back(Value(g.sums[a]));
          break;
        case Aggregate::Fn::kAvg:
          row.push_back(g.counts[a] > 0
                            ? Value(g.sums[a] /
                                    static_cast<double>(g.counts[a]))
                            : Value::Null());
          break;
        case Aggregate::Fn::kMin:
          row.push_back(g.mins[a]);
          break;
        case Aggregate::Fn::kMax:
          row.push_back(g.maxs[a]);
          break;
      }
    }
    out.AppendUnchecked(std::move(row));
  };
  for (const auto& [h, bucket] : groups) {
    for (const GroupState& g : bucket) emit(g);
  }
  // A global aggregate over zero rows still emits one row (SQL semantics
  // for COUNT/SUM over an empty input).
  if (keys_.empty() && out.num_rows() == 0) {
    GroupState g;
    g.counts.assign(aggs_.size(), 0);
    g.sums.assign(aggs_.size(), 0.0);
    g.mins.assign(aggs_.size(), Value::Null());
    g.maxs.assign(aggs_.size(), Value::Null());
    emit(g);
  }
  if (stats != nullptr) stats->rows_grouped += in.num_rows();
  return out;
}

std::string GroupByNode::Describe(int indent) const {
  std::string out = Indent(indent) + "GROUP_BY keys=" +
                    std::to_string(keys_.size()) +
                    " aggs=" + std::to_string(aggs_.size()) + "\n";
  return out + child_->Describe(indent + 2);
}

void GroupByNode::AppendSignature(std::string* out) const {
  *out += "G(";
  child_->AppendSignature(out);
  *out += ")";
}

}  // namespace qa::dbms
