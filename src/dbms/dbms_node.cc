#include "dbms/dbms_node.h"

#include <algorithm>
#include <cmath>

namespace qa::dbms {

namespace {
constexpr double kBytesPerMb = 1024.0 * 1024.0;
}  // namespace

DbmsNode::DbmsNode(catalog::NodeId id, Database db, DbmsNodeConfig config)
    : id_(id),
      db_(std::move(db)),
      config_(config),
      buffer_pool_(config.buffer_bytes) {}

void DbmsNode::ResetState() {
  buffer_pool_.Clear();
  history_ = ExecutionHistory();
}

bool DbmsNode::CanEvaluate(const SelectStatement& stmt) const {
  for (const TableRef& ref : stmt.tables) {
    if (!db_.HasRelation(ref.name)) return false;
  }
  return true;
}

util::VDuration DbmsNode::CpuTime(double tuples) const {
  double seconds = tuples * config_.data_scale * config_.cycles_per_tuple /
                   (config_.hw.cpu_ghz * 1e9);
  return std::max<util::VDuration>(util::FromSeconds(seconds), 0);
}

util::VDuration DbmsNode::IoTime(double bytes) const {
  double seconds =
      bytes * config_.data_scale / (config_.hw.io_mbps * kBytesPerMb);
  return std::max<util::VDuration>(util::FromSeconds(seconds), 0);
}

util::VDuration DbmsNode::EstimateToDuration(
    const ResourceEstimate& estimate) const {
  return IoTime(estimate.io_bytes) + CpuTime(estimate.cpu_tuples);
}

util::StatusOr<EstimateReply> DbmsNode::EstimateQuery(
    const SelectStatement& stmt) {
  Planner planner(&db_, config_.planner);
  util::StatusOr<ExplainResult> explained = planner.Explain(stmt);
  if (!explained.ok()) return explained.status();

  EstimateReply reply;
  reply.signature = explained->signature;
  reply.explain_time = std::max<util::VDuration>(
      static_cast<util::VDuration>(
          static_cast<double>(config_.explain_base) / config_.hw.cpu_ghz),
      1);
  if (std::optional<util::VDuration> hist =
          history_.Estimate(explained->signature)) {
    reply.est_exec = *hist;
    reply.from_history = true;
  } else {
    reply.est_exec = EstimateToDuration(explained->estimate);
  }
  return reply;
}

util::StatusOr<ExecutionOutcome> DbmsNode::ExecuteQuery(
    const SelectStatement& stmt) {
  util::StatusOr<QueryResult> result =
      ExecuteStatement(db_, stmt, config_.planner);
  if (!result.ok()) return result.status();

  // Actual I/O: only bytes that were not buffer-resident hit the disk.
  double cold_bytes = 0.0;
  for (const auto& [table, bytes] : result->stats.table_bytes) {
    cold_bytes += static_cast<double>(buffer_pool_.Access(table, bytes));
  }
  // Actual CPU from the executed plan's observed counters.
  const ExecStats& s = result->stats;
  double sorted = static_cast<double>(s.rows_sorted);
  double cpu_tuples =
      static_cast<double>(s.rows_scanned) +
      2.0 * static_cast<double>(s.hash_build_rows + s.hash_probe_rows) +
      static_cast<double>(s.nested_loop_compares) +
      sorted * (sorted > 2.0 ? std::log2(sorted) : 1.0) +
      static_cast<double>(s.rows_grouped) +
      static_cast<double>(s.output_rows);

  ExecutionOutcome outcome;
  outcome.result_rows = result->table.num_rows();
  outcome.duration =
      std::max<util::VDuration>(IoTime(cold_bytes) + CpuTime(cpu_tuples), 1);
  outcome.signature = result->signature;
  history_.Record(result->signature, outcome.duration);
  return outcome;
}

}  // namespace qa::dbms
