#include "dbms/csv.h"

#include <cctype>
#include <cstdlib>
#include <istream>
#include <ostream>

namespace qa::dbms {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void WriteField(const Value& value, std::ostream& out) {
  if (value.is_null()) return;  // empty field = NULL
  std::string text = value.ToString();
  if (value.type() == ValueType::kString &&
      (NeedsQuoting(text) || text.empty())) {
    out << '"';
    for (char c : text) {
      if (c == '"') out << '"';
      out << c;
    }
    out << '"';
    return;
  }
  out << text;
}

/// Kind of literal a raw field looks like.
enum class FieldKind { kNull, kInt, kDouble, kString };

FieldKind Classify(const std::string& field, bool quoted) {
  if (field.empty() && !quoted) return FieldKind::kNull;
  if (quoted) return FieldKind::kString;
  char* end = nullptr;
  errno = 0;
  (void)std::strtoll(field.c_str(), &end, 10);
  if (errno == 0 && end != field.c_str() && *end == '\0') {
    return FieldKind::kInt;
  }
  errno = 0;
  (void)std::strtod(field.c_str(), &end);
  if (errno == 0 && end != field.c_str() && *end == '\0') {
    return FieldKind::kDouble;
  }
  return FieldKind::kString;
}

}  // namespace

void WriteCsv(const Table& table, std::ostream& out) {
  for (int c = 0; c < table.schema().num_columns(); ++c) {
    if (c != 0) out << ',';
    out << table.schema().column(c).name;
  }
  out << '\n';
  for (const Row& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      WriteField(row[c], out);
    }
    out << '\n';
  }
}

util::StatusOr<std::vector<std::string>> SplitCsvLine(
    const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
    ++i;
  }
  if (in_quotes) {
    return util::Status::InvalidArgument("unterminated quote in CSV line");
  }
  fields.push_back(std::move(field));
  return fields;
}

util::StatusOr<Table> ReadCsv(const std::string& table_name,
                              std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return util::Status::InvalidArgument("CSV input is empty (no header)");
  }
  util::StatusOr<std::vector<std::string>> header = SplitCsvLine(line);
  if (!header.ok()) return header.status();
  size_t width = header->size();

  // Collect raw rows (and whether each field was quoted — quoting forces
  // string typing). To keep the quoting flag we re-scan cheaply: a field
  // that began with '"' in the raw line is quoted. Simplify: treat every
  // field through Classify with quoted=false, except fully empty fields
  // are NULL and anything non-numeric is a string; explicit quoting is
  // respected by retaining the literal text.
  std::vector<std::vector<std::string>> raw_rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    util::StatusOr<std::vector<std::string>> fields = SplitCsvLine(line);
    if (!fields.ok()) return fields.status();
    if (fields->size() != width) {
      return util::Status::InvalidArgument(
          "CSV row has " + std::to_string(fields->size()) +
          " fields, header has " + std::to_string(width));
    }
    raw_rows.push_back(std::move(fields).value());
  }

  // Infer a type per column from the first non-NULL field.
  std::vector<ValueType> types(width, ValueType::kString);
  for (size_t c = 0; c < width; ++c) {
    for (const auto& row : raw_rows) {
      FieldKind kind = Classify(row[c], false);
      if (kind == FieldKind::kNull) continue;
      if (kind == FieldKind::kInt) types[c] = ValueType::kInt;
      if (kind == FieldKind::kDouble) types[c] = ValueType::kDouble;
      if (kind == FieldKind::kString) types[c] = ValueType::kString;
      break;
    }
  }

  std::vector<Column> columns;
  for (size_t c = 0; c < width; ++c) {
    columns.push_back({(*header)[c], types[c]});
  }
  Table table(table_name, Schema(std::move(columns)));
  for (const auto& raw : raw_rows) {
    Row row;
    for (size_t c = 0; c < width; ++c) {
      const std::string& field = raw[c];
      if (field.empty()) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt: {
          char* end = nullptr;
          int64_t v = std::strtoll(field.c_str(), &end, 10);
          if (*end != '\0') {
            return util::Status::InvalidArgument(
                "field '" + field + "' is not an integer (column " +
                (*header)[c] + ")");
          }
          row.push_back(Value(v));
          break;
        }
        case ValueType::kDouble: {
          char* end = nullptr;
          double v = std::strtod(field.c_str(), &end);
          if (*end != '\0') {
            return util::Status::InvalidArgument(
                "field '" + field + "' is not a number (column " +
                (*header)[c] + ")");
          }
          row.push_back(Value(v));
          break;
        }
        default:
          row.push_back(Value(field));
      }
    }
    table.AppendUnchecked(std::move(row));
  }
  return table;
}

}  // namespace qa::dbms
